#include "ledger/format.hpp"

#include <array>
#include <bit>

namespace vmp::ledger {

// Same big-endian byte order as the wire protocol, so dumps are readable
// with the same tooling and doubles round-trip bit-exactly.

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

bool ByteReader::get_u32(std::uint32_t& value) {
  if (pos + 4 > data.size()) return false;
  value = 0;
  for (int i = 0; i < 4; ++i)
    value = (value << 8) | static_cast<std::uint8_t>(data[pos++]);
  return true;
}

bool ByteReader::get_u64(std::uint64_t& value) {
  if (pos + 8 > data.size()) return false;
  value = 0;
  for (int i = 0; i < 8; ++i)
    value = (value << 8) | static_cast<std::uint8_t>(data[pos++]);
  return true;
}

bool ByteReader::get_f64(double& value) {
  std::uint64_t bits = 0;
  if (!get_u64(bits)) return false;
  value = std::bit_cast<double>(bits);
  return true;
}

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char byte : data)
    crc = kCrcTable[(crc ^ static_cast<std::uint8_t>(byte)) & 0xffu] ^
          (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string encode_record(const TickRecord& record) {
  std::string body;
  body.reserve(64 + record.vms.size() * 28 + record.tenants.size() * 20);
  put_u64(body, record.epoch);
  put_u64(body, record.tick);
  put_f64(body, record.time_s);
  put_f64(body, record.period_s);
  put_f64(body, record.total_power_w);
  put_f64(body, record.total_energy_j);
  put_f64(body, record.unattributed_j);
  put_u32(body, static_cast<std::uint32_t>(record.vms.size()));
  put_u32(body, static_cast<std::uint32_t>(record.tenants.size()));
  for (const VmEntry& vm : record.vms) {
    put_u32(body, vm.host);
    put_u32(body, vm.vm);
    put_u32(body, vm.tenant);
    put_f64(body, vm.power_w);
    put_f64(body, vm.energy_j);
  }
  for (const TenantEntry& tenant : record.tenants) {
    put_u32(body, tenant.tenant);
    put_f64(body, tenant.power_w);
    put_f64(body, tenant.energy_j);
  }
  return body;
}

std::optional<TickRecord> decode_record(std::string_view body) {
  ByteReader reader{body};
  TickRecord record;
  std::uint32_t vm_count = 0, tenant_count = 0;
  if (!reader.get_u64(record.epoch) || !reader.get_u64(record.tick) ||
      !reader.get_f64(record.time_s) || !reader.get_f64(record.period_s) ||
      !reader.get_f64(record.total_power_w) ||
      !reader.get_f64(record.total_energy_j) ||
      !reader.get_f64(record.unattributed_j) || !reader.get_u32(vm_count) ||
      !reader.get_u32(tenant_count))
    return std::nullopt;
  // Counts are bounded by the remaining bytes before any allocation, so a
  // corrupt count cannot balloon memory.
  if (static_cast<std::size_t>(vm_count) * 28 +
          static_cast<std::size_t>(tenant_count) * 20 >
      body.size() - reader.pos)
    return std::nullopt;
  record.vms.resize(vm_count);
  for (VmEntry& vm : record.vms)
    if (!reader.get_u32(vm.host) || !reader.get_u32(vm.vm) ||
        !reader.get_u32(vm.tenant) || !reader.get_f64(vm.power_w) ||
        !reader.get_f64(vm.energy_j))
      return std::nullopt;
  record.tenants.resize(tenant_count);
  for (TenantEntry& tenant : record.tenants)
    if (!reader.get_u32(tenant.tenant) || !reader.get_f64(tenant.power_w) ||
        !reader.get_f64(tenant.energy_j))
      return std::nullopt;
  if (!reader.exhausted()) return std::nullopt;  // trailing garbage.
  return record;
}

void append_frame(std::string& out, const TickRecord& record) {
  const std::string body = encode_record(record);
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  put_u32(out, crc32(body));
  out.append(body);
}

FrameStatus read_frame(std::string_view data, std::size_t& offset,
                       TickRecord& record) {
  if (offset == data.size()) return FrameStatus::kEndOfLog;
  if (offset + kFrameHeaderBytes > data.size()) return FrameStatus::kTorn;
  ByteReader header{data.substr(offset, kFrameHeaderBytes)};
  std::uint32_t length = 0, crc = 0;
  (void)header.get_u32(length);
  (void)header.get_u32(crc);
  if (length > kMaxRecordBytes ||
      offset + kFrameHeaderBytes + length > data.size())
    return FrameStatus::kTorn;
  const std::string_view body =
      data.substr(offset + kFrameHeaderBytes, length);
  if (crc32(body) != crc) return FrameStatus::kTorn;
  auto decoded = decode_record(body);
  if (!decoded) return FrameStatus::kTorn;
  record = std::move(*decoded);
  offset += kFrameHeaderBytes + length;
  return FrameStatus::kOk;
}

}  // namespace vmp::ledger
