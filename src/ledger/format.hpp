// On-disk format of the durable attribution ledger.
//
// The ledger is an append-only log of per-tick attribution records. Every
// record is framed as
//
//   [u32 body length][u32 CRC32(body)][body]
//
// with all integers big-endian and doubles as IEEE-754 bit patterns, exactly
// like the wire protocol — a record read back is bit-identical to the one
// appended, which is what lets window queries served from the ledger match
// the retention ring byte for byte. The CRC (reflected polynomial
// 0xEDB88320, the zlib/PNG one) covers the body only; a frame whose length
// is insane, whose body is short, or whose CRC mismatches marks the *torn
// tail* of a segment: recovery keeps every record before it and truncates
// the rest, so a crash mid-append loses at most the record being written.
//
// Records carry cumulative energies (not per-tick increments), so each one
// is self-contained: answering a window query needs only the two records
// bracketing the window, never a replay from the start of history.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vmp::ledger {

/// One VM's attribution state at a tick (mirrors serve::VmRecord).
struct VmEntry {
  std::uint32_t host = 0;
  std::uint32_t vm = 0;
  std::uint32_t tenant = 0;  ///< 0 = unbound (unattributed bucket).
  double power_w = 0.0;
  double energy_j = 0.0;
};

/// One tenant's cross-host roll-up at a tick (mirrors serve::TenantRecord).
struct TenantEntry {
  std::uint32_t tenant = 0;
  double power_w = 0.0;
  double energy_j = 0.0;
};

/// One per-tick attribution delta: the fleet's full attribution state at one
/// publish epoch, with cumulative energies so the record is self-contained.
struct TickRecord {
  std::uint64_t epoch = 0;  ///< snapshot publish epoch; strictly ascending.
  std::uint64_t tick = 0;
  double time_s = 0.0;
  double period_s = 1.0;
  std::vector<VmEntry> vms;          ///< sorted by (host, vm).
  std::vector<TenantEntry> tenants;  ///< sorted by tenant.
  double total_power_w = 0.0;
  double total_energy_j = 0.0;  ///< measured host energy (fleet roll-up).
  double unattributed_j = 0.0;
};

/// Frame header: u32 body length + u32 CRC32.
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Upper bound on one record body; a declared length beyond this is treated
/// as a torn/corrupt frame, never an allocation.
inline constexpr std::size_t kMaxRecordBytes = 16 * 1024 * 1024;

/// CRC32 (reflected 0xEDB88320, zlib polynomial) of `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// --- byte codec (big-endian, shared with the segment index/footer) ---------

void put_u32(std::string& out, std::uint32_t value);
void put_u64(std::string& out, std::uint64_t value);
void put_f64(std::string& out, double value);

/// Cursor over a byte buffer; every get_* fails (returns false) on underrun.
struct ByteReader {
  std::string_view data;
  std::size_t pos = 0;

  bool get_u32(std::uint32_t& value);
  bool get_u64(std::uint64_t& value);
  bool get_f64(double& value);
  [[nodiscard]] bool exhausted() const { return pos == data.size(); }
};

/// --- record bodies ---------------------------------------------------------

[[nodiscard]] std::string encode_record(const TickRecord& record);
/// nullopt on truncated or malformed bodies (counts mismatching the length).
[[nodiscard]] std::optional<TickRecord> decode_record(std::string_view body);

/// --- framing ---------------------------------------------------------------

/// Appends one CRC-framed record to `out`.
void append_frame(std::string& out, const TickRecord& record);

/// Outcome of reading one frame at an offset of a segment's byte buffer.
enum class FrameStatus {
  kOk,        ///< record decoded; offset advanced past the frame.
  kEndOfLog,  ///< exactly at the end: a cleanly closed segment.
  kTorn,      ///< short header/body, insane length, CRC or decode failure.
};

/// Reads the frame at `offset` in `data`. On kOk, `record` holds the decoded
/// record and `offset` points at the next frame. On kTorn, `offset` is
/// unchanged: everything from it onward is the damaged tail.
[[nodiscard]] FrameStatus read_frame(std::string_view data, std::size_t& offset,
                                     TickRecord& record);

}  // namespace vmp::ledger
