#include "ledger/ledger.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace vmp::ledger {

namespace {

// Both magics are 8 bytes so a cold segment's frame offsets line up with the
// WAL segment it was compacted from.
constexpr std::string_view kWalMagic = "vmpwal1\n";
constexpr std::string_view kColdMagic = "vmpcold\n";
constexpr std::uint64_t kFooterMagic = 0x564D504C434F4C44ull;  // "VMPLCOLD".
// u64 index_offset + u32 entry_count + u64 record_count + u64 first_epoch +
// u64 last_epoch + u32 index_crc + u64 magic.
constexpr std::size_t kFooterBytes = 48;
constexpr std::size_t kIndexEntryBytes = 24;  // u64 epoch, f64 time, u64 off.

std::string segment_file_name(const char* prefix, std::uint64_t first,
                              std::uint64_t last = 0) {
  char buffer[64];
  if (last == 0)
    std::snprintf(buffer, sizeof buffer, "%s-%020" PRIu64 ".log", prefix,
                  first);
  else
    std::snprintf(buffer, sizeof buffer, "%s-%020" PRIu64 "-%020" PRIu64
                  ".seg", prefix, first, last);
  return buffer;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("ledger: cannot open " + path.string());
  std::string data;
  in.seekg(0, std::ios::end);
  data.resize(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  if (!in)
    throw std::runtime_error("ledger: cannot read " + path.string());
  return data;
}

/// Parsed cold-segment footer (offsets into the file).
struct ColdFooter {
  std::uint64_t index_offset = 0;
  std::uint32_t entry_count = 0;
  std::uint64_t record_count = 0;
  std::uint64_t first_epoch = 0;
  std::uint64_t last_epoch = 0;
};

std::string encode_footer(const ColdFooter& footer, std::uint32_t index_crc) {
  std::string out;
  out.reserve(kFooterBytes);
  put_u64(out, footer.index_offset);
  put_u32(out, footer.entry_count);
  put_u64(out, footer.record_count);
  put_u64(out, footer.first_epoch);
  put_u64(out, footer.last_epoch);
  put_u32(out, index_crc);
  put_u64(out, kFooterMagic);
  return out;
}

/// Validates the footer and index CRC of a cold file's contents; nullopt on
/// any damage (the caller falls back to a frame-by-frame scan).
std::optional<ColdFooter> decode_footer(std::string_view data) {
  if (data.size() < kColdMagic.size() + kFooterBytes) return std::nullopt;
  if (data.substr(0, kColdMagic.size()) != kColdMagic) return std::nullopt;
  ByteReader reader{data.substr(data.size() - kFooterBytes)};
  ColdFooter footer;
  std::uint32_t index_crc = 0;
  std::uint64_t magic = 0;
  if (!reader.get_u64(footer.index_offset) ||
      !reader.get_u32(footer.entry_count) ||
      !reader.get_u64(footer.record_count) ||
      !reader.get_u64(footer.first_epoch) ||
      !reader.get_u64(footer.last_epoch) || !reader.get_u32(index_crc) ||
      !reader.get_u64(magic))
    return std::nullopt;
  if (magic != kFooterMagic) return std::nullopt;
  const std::uint64_t index_bytes =
      static_cast<std::uint64_t>(footer.entry_count) * kIndexEntryBytes;
  if (footer.index_offset < kColdMagic.size() ||
      footer.index_offset + index_bytes + kFooterBytes != data.size())
    return std::nullopt;
  if (crc32(data.substr(footer.index_offset, index_bytes)) != index_crc)
    return std::nullopt;
  return footer;
}

/// Reads one frame from an open stream at `offset`; the frames region ends
/// at `end`. Returns nullopt at the region end or on damage.
std::optional<TickRecord> read_frame_stream(std::ifstream& in,
                                            std::uint64_t& offset,
                                            std::uint64_t end) {
  if (offset + kFrameHeaderBytes > end) return std::nullopt;
  char header[kFrameHeaderBytes];
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(header, kFrameHeaderBytes);
  if (!in) return std::nullopt;
  ByteReader reader{std::string_view(header, kFrameHeaderBytes)};
  std::uint32_t length = 0, crc = 0;
  (void)reader.get_u32(length);
  (void)reader.get_u32(crc);
  if (length > kMaxRecordBytes || offset + kFrameHeaderBytes + length > end)
    return std::nullopt;
  std::string body(length, '\0');
  in.read(body.data(), static_cast<std::streamsize>(length));
  if (!in || crc32(body) != crc) return std::nullopt;
  auto record = decode_record(body);
  if (record) offset += kFrameHeaderBytes + length;
  return record;
}

}  // namespace

void LedgerOptions::validate() const {
  if (dir.empty())
    throw std::invalid_argument("LedgerOptions: dir must be set");
  if (segment_max_records == 0 || segment_max_bytes == 0)
    throw std::invalid_argument(
        "LedgerOptions: segment thresholds must be >= 1");
  if (index_stride == 0)
    throw std::invalid_argument("LedgerOptions: index_stride must be >= 1");
}

Ledger::Ledger(LedgerOptions options) : options_(std::move(options)) {
  options_.validate();
  std::filesystem::create_directories(options_.dir);
  recover();
  register_metrics();
  if (options_.auto_compact && options_.background_compaction)
    compactor_ = std::thread([this] { compactor_loop(); });
  if (options_.auto_compact) {
    // Sealed segments left over from a previous process compact now.
    if (options_.background_compaction)
      work_cv_.notify_one();
    else
      compact_all();
  }
}

Ledger::~Ledger() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
  std::lock_guard lock(mutex_);
  if (active_.is_open()) active_.close();
}

// --- recovery ---------------------------------------------------------------

void Ledger::recover() {
  std::vector<std::filesystem::path> wal_files, cold_files;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp")) {
      // A compaction that died mid-write; the source WAL still exists.
      std::filesystem::remove(entry.path());
      continue;
    }
    if (name.starts_with("wal-") && name.ends_with(".log"))
      wal_files.push_back(entry.path());
    else if (name.starts_with("cold-") && name.ends_with(".seg"))
      cold_files.push_back(entry.path());
  }

  for (const auto& path : cold_files)
    if (auto segment = recover_cold(path)) {
      recovery_.records += segment->records;
      segments_.push_back(std::move(*segment));
    }
  for (const auto& path : wal_files)
    if (auto segment = recover_wal(path)) {
      recovery_.records += segment->records;
      segments_.push_back(std::move(*segment));
    }
  recovery_.segments = segments_.size();
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.first_epoch < b.first_epoch;
            });
  for (std::size_t i = 1; i < segments_.size(); ++i)
    if (segments_[i].first_epoch != segments_[i - 1].last_epoch + 1)
      VMP_LOG_WARN(
          "ledger: epoch gap between %s (last %llu) and %s (first %llu)",
          segments_[i - 1].path.filename().string().c_str(),
          static_cast<unsigned long long>(segments_[i - 1].last_epoch),
          segments_[i].path.filename().string().c_str(),
          static_cast<unsigned long long>(segments_[i].first_epoch));

  // The newest WAL segment resumes as the active one (unless it is already
  // at a rotation threshold, in which case the next append starts fresh).
  if (!segments_.empty() && segments_.back().kind == Kind::kSealed &&
      segments_.back().path.filename().string().starts_with("wal-") &&
      segments_.back().records < options_.segment_max_records &&
      segments_.back().bytes < options_.segment_max_bytes) {
    Segment& tail = segments_.back();
    active_.open(tail.path, std::ios::binary | std::ios::app);
    if (!active_)
      throw std::runtime_error("ledger: cannot reopen " + tail.path.string());
    tail.kind = Kind::kActive;
  }
}

std::optional<Ledger::Segment> Ledger::recover_wal(
    const std::filesystem::path& path) {
  const std::string data = read_file(path);
  if (data.size() < kWalMagic.size() ||
      std::string_view(data).substr(0, kWalMagic.size()) != kWalMagic) {
    ++recovery_.torn_records;
    recovery_.truncated_bytes += data.size();
    VMP_LOG_WARN("ledger: %s has a damaged header; dropping the segment",
                 path.filename().string().c_str());
    std::filesystem::remove(path);
    return std::nullopt;
  }

  Segment segment;
  segment.kind = Kind::kSealed;
  segment.path = path;
  std::size_t offset = kWalMagic.size();
  TickRecord record;
  for (;;) {
    const std::size_t frame_offset = offset;
    const FrameStatus status = read_frame(data, offset, record);
    if (status == FrameStatus::kEndOfLog) break;
    if (status == FrameStatus::kTorn ||
        (segment.records > 0 && record.epoch <= segment.last_epoch)) {
      // Damage (or an impossible epoch regression, which is damage too):
      // keep everything before it, truncate the rest, and say so.
      const std::uint64_t lost = data.size() - frame_offset;
      ++recovery_.torn_records;
      recovery_.truncated_bytes += lost;
      VMP_LOG_WARN(
          "ledger: %s torn at offset %zu; kept %llu records, truncated %llu "
          "bytes",
          path.filename().string().c_str(), frame_offset,
          static_cast<unsigned long long>(segment.records),
          static_cast<unsigned long long>(lost));
      std::filesystem::resize_file(path, frame_offset);
      offset = frame_offset;
      break;
    }
    if (segment.records == 0) {
      segment.first_epoch = record.epoch;
      segment.first_time_s = record.time_s;
    }
    segment.index.push_back({record.epoch, record.time_s, frame_offset});
    segment.last_epoch = record.epoch;
    segment.last_time_s = record.time_s;
    ++segment.records;
  }
  if (segment.records == 0) {
    std::filesystem::remove(path);  // nothing recoverable survives here.
    return std::nullopt;
  }
  segment.bytes = offset;
  segment.frames_end = offset;
  return segment;
}

std::optional<Ledger::Segment> Ledger::recover_cold(
    const std::filesystem::path& path) {
  const std::string data = read_file(path);
  Segment segment;
  segment.kind = Kind::kCold;
  segment.path = path;
  segment.bytes = data.size();

  if (const auto footer = decode_footer(data)) {
    ByteReader reader{std::string_view(data).substr(
        footer->index_offset,
        static_cast<std::size_t>(footer->entry_count) * kIndexEntryBytes)};
    segment.index.resize(footer->entry_count);
    for (IndexEntry& entry : segment.index) {
      (void)reader.get_u64(entry.epoch);
      (void)reader.get_f64(entry.time_s);
      (void)reader.get_u64(entry.offset);
    }
    segment.records = footer->record_count;
    segment.first_epoch = footer->first_epoch;
    segment.last_epoch = footer->last_epoch;
    segment.frames_end = footer->index_offset;
    if (!segment.index.empty()) {
      segment.first_time_s = segment.index.front().time_s;
      segment.last_time_s = segment.index.back().time_s;
    }
    return segment;
  }

  // Footer damaged: the frames themselves are still CRC-protected, so scan
  // them like a WAL, keep the segment sealed, and let compaction rebuild it.
  ++recovery_.rescanned_cold;
  VMP_LOG_WARN("ledger: %s has a damaged footer; rescanning frames",
               path.filename().string().c_str());
  segment.kind = Kind::kSealed;
  std::size_t offset = kColdMagic.size();
  TickRecord record;
  for (;;) {
    const std::size_t frame_offset = offset;
    const FrameStatus status = read_frame(data, offset, record);
    if (status != FrameStatus::kOk ||
        (segment.records > 0 && record.epoch <= segment.last_epoch))
      break;  // the index/footer region reads as torn; stop quietly.
    if (segment.records == 0) {
      segment.first_epoch = record.epoch;
      segment.first_time_s = record.time_s;
    }
    segment.index.push_back({record.epoch, record.time_s, frame_offset});
    segment.last_epoch = record.epoch;
    segment.last_time_s = record.time_s;
    ++segment.records;
  }
  if (segment.records == 0) {
    ++recovery_.torn_records;
    recovery_.truncated_bytes += data.size();
    VMP_LOG_WARN("ledger: %s held no intact records; dropping it",
                 path.filename().string().c_str());
    std::filesystem::remove(path);
    return std::nullopt;
  }
  segment.frames_end = offset;
  return segment;
}

// --- append and rotation ----------------------------------------------------

void Ledger::open_active_locked(std::uint64_t first_epoch) {
  Segment segment;
  segment.kind = Kind::kActive;
  segment.path = options_.dir / segment_file_name("wal", first_epoch);
  segment.first_epoch = first_epoch;
  segment.last_epoch = first_epoch - 1;  // no records yet.
  active_.open(segment.path, std::ios::binary | std::ios::trunc);
  if (!active_)
    throw std::runtime_error("ledger: cannot create " +
                             segment.path.string());
  active_.write(kWalMagic.data(),
                static_cast<std::streamsize>(kWalMagic.size()));
  segment.bytes = kWalMagic.size();
  segment.frames_end = segment.bytes;
  segments_.push_back(std::move(segment));
}

void Ledger::seal_active_locked() {
  active_.close();
  segments_.back().kind = Kind::kSealed;
}

void Ledger::append(const TickRecord& record) {
  bool rotated = false;
  {
    std::lock_guard lock(mutex_);
    if (!segments_.empty() && record.epoch <= segments_.back().last_epoch)
      throw std::logic_error(
          "Ledger::append: epoch " + std::to_string(record.epoch) +
          " does not follow tail " +
          std::to_string(segments_.back().last_epoch));
    if (segments_.empty() || segments_.back().kind != Kind::kActive)
      open_active_locked(record.epoch);

    std::string frame;
    append_frame(frame, record);
    Segment& tail = segments_.back();
    active_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    active_.flush();
    if (!active_)
      throw std::runtime_error("ledger: append failed on " +
                               tail.path.string());
    if (tail.records == 0) {
      tail.first_epoch = record.epoch;
      tail.first_time_s = record.time_s;
    }
    tail.index.push_back({record.epoch, record.time_s, tail.bytes});
    tail.last_epoch = record.epoch;
    tail.last_time_s = record.time_s;
    tail.bytes += frame.size();
    tail.frames_end = tail.bytes;
    ++tail.records;
    ++appended_records_;
    appended_bytes_ += frame.size();
    if (appended_counter_) appended_counter_->inc();
    if (appended_bytes_counter_) appended_bytes_counter_->inc(frame.size());

    if (tail.records >= options_.segment_max_records ||
        tail.bytes >= options_.segment_max_bytes) {
      seal_active_locked();
      rotated = true;
    }
    update_gauges_locked();
  }
  if (rotated && options_.auto_compact) {
    if (options_.background_compaction)
      work_cv_.notify_one();
    else
      (void)compact_one();
  }
}

// --- compaction -------------------------------------------------------------

bool Ledger::compact_one() {
  std::lock_guard compaction_lock(compaction_mutex_);
  std::filesystem::path source;
  std::uint64_t stride = options_.index_stride;
  {
    std::lock_guard lock(mutex_);
    const auto it =
        std::find_if(segments_.begin(), segments_.end(),
                     [](const Segment& s) { return s.kind == Kind::kSealed; });
    if (it == segments_.end()) return false;
    source = it->path;
  }

  // The sealed file is immutable, so the expensive rewrite happens without
  // the state lock: copy the frames verbatim (no re-encode — the records
  // stay bit-identical), sampling every `stride`-th record plus the last
  // into the sparse index.
  const std::string data = read_file(source);
  const bool was_cold =
      source.filename().string().starts_with("cold-");  // footer rebuild.
  std::size_t offset = was_cold ? kColdMagic.size() : kWalMagic.size();
  std::string out(kColdMagic);
  std::string index_block;
  ColdFooter footer;
  std::uint64_t indexed = 0;
  IndexEntry last_entry;
  std::vector<IndexEntry> index;
  TickRecord record;
  for (;;) {
    const std::size_t frame_offset = offset;
    if (read_frame(data, offset, record) != FrameStatus::kOk) break;
    const std::uint64_t out_offset = out.size();
    out.append(data, frame_offset, offset - frame_offset);
    if (footer.record_count == 0) footer.first_epoch = record.epoch;
    footer.last_epoch = record.epoch;
    last_entry = {record.epoch, record.time_s, out_offset};
    if (footer.record_count % stride == 0) {
      index.push_back(last_entry);
      ++indexed;
    }
    ++footer.record_count;
  }
  if (footer.record_count == 0) {
    // Nothing intact: drop the segment entry and the file.
    std::lock_guard lock(mutex_);
    const auto it = std::find_if(
        segments_.begin(), segments_.end(),
        [&source](const Segment& s) { return s.path == source; });
    if (it != segments_.end()) segments_.erase(it);
    std::filesystem::remove(source);
    update_gauges_locked();
    idle_cv_.notify_all();
    return true;
  }
  if (index.back().offset != last_entry.offset) {
    index.push_back(last_entry);  // the tail record is always indexed.
    ++indexed;
  }
  footer.index_offset = out.size();
  footer.entry_count = static_cast<std::uint32_t>(indexed);
  for (const IndexEntry& entry : index) {
    put_u64(index_block, entry.epoch);
    put_f64(index_block, entry.time_s);
    put_u64(index_block, entry.offset);
  }
  out += index_block;
  out += encode_footer(footer, crc32(index_block));

  const std::filesystem::path cold_path =
      options_.dir /
      segment_file_name("cold", footer.first_epoch, footer.last_epoch);
  const std::filesystem::path tmp_path =
      cold_path.string() + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    if (!file ||
        !file.write(out.data(), static_cast<std::streamsize>(out.size())))
      throw std::runtime_error("ledger: cannot write " + tmp_path.string());
  }
  std::filesystem::rename(tmp_path, cold_path);

  {
    std::lock_guard lock(mutex_);
    const auto it = std::find_if(
        segments_.begin(), segments_.end(),
        [&source](const Segment& s) { return s.path == source; });
    if (it != segments_.end()) {
      it->kind = Kind::kCold;
      it->path = cold_path;
      it->index = std::move(index);
      it->bytes = out.size();
      it->frames_end = footer.index_offset;
    }
    compacted_records_ += footer.record_count;
    if (compacted_counter_) compacted_counter_->inc(footer.record_count);
    if (source != cold_path) std::filesystem::remove(source);
    update_gauges_locked();
  }
  idle_cv_.notify_all();
  return true;
}

std::size_t Ledger::compact_all() {
  std::size_t compacted = 0;
  while (compact_one()) ++compacted;
  return compacted;
}

void Ledger::compactor_loop() {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] {
        return stop_ ||
               std::any_of(segments_.begin(), segments_.end(),
                           [](const Segment& s) {
                             return s.kind == Kind::kSealed;
                           });
      });
      if (stop_) return;
    }
    (void)compact_one();
  }
}

void Ledger::wait_for_compaction() const {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return std::none_of(
        segments_.begin(), segments_.end(),
        [](const Segment& s) { return s.kind == Kind::kSealed; });
  });
}

// --- queries ----------------------------------------------------------------

const Ledger::Segment* Ledger::segment_for_time_locked(double t_s) const {
  const Segment* found = nullptr;
  for (const Segment& segment : segments_) {
    if (segment.records == 0) continue;
    if (segment.first_time_s <= t_s) found = &segment;
    else break;
  }
  return found;
}

const Ledger::Segment* Ledger::segment_for_epoch_locked(
    std::uint64_t epoch) const {
  for (const Segment& segment : segments_)
    if (segment.records > 0 && segment.first_epoch <= epoch &&
        epoch <= segment.last_epoch)
      return &segment;
  return nullptr;
}

std::optional<TickRecord> Ledger::read_at(const Segment& segment,
                                          std::uint64_t offset) const {
  std::ifstream in(segment.path, std::ios::binary);
  if (!in) return std::nullopt;
  std::uint64_t cursor = offset;
  return read_frame_stream(in, cursor, segment.frames_end);
}

std::optional<TickRecord> Ledger::scan_from(const Segment& segment,
                                            const IndexEntry& start,
                                            bool by_epoch, double t_s,
                                            std::uint64_t epoch) const {
  std::ifstream in(segment.path, std::ios::binary);
  if (!in) return std::nullopt;
  std::uint64_t cursor = start.offset;
  std::optional<TickRecord> best;
  while (auto record = read_frame_stream(in, cursor, segment.frames_end)) {
    if (by_epoch ? record->epoch > epoch : record->time_s > t_s) break;
    best = std::move(record);
    if (by_epoch && best->epoch == epoch) break;
  }
  return best;
}

std::optional<TickRecord> Ledger::at_or_before(double t_s) const {
  std::lock_guard lock(mutex_);
  const Segment* segment = segment_for_time_locked(t_s);
  if (!segment) return std::nullopt;
  // Last index entry with time_s <= t_s (the first entry qualifies by the
  // segment choice above).
  const auto it = std::upper_bound(
      segment->index.begin(), segment->index.end(), t_s,
      [](double t, const IndexEntry& entry) { return t < entry.time_s; });
  return scan_from(*segment, *std::prev(it), /*by_epoch=*/false, t_s, 0);
}

std::optional<TickRecord> Ledger::at_epoch(std::uint64_t epoch) const {
  std::lock_guard lock(mutex_);
  const Segment* segment = segment_for_epoch_locked(epoch);
  if (!segment) return std::nullopt;
  const auto it = std::upper_bound(
      segment->index.begin(), segment->index.end(), epoch,
      [](std::uint64_t e, const IndexEntry& entry) { return e < entry.epoch; });
  auto record =
      scan_from(*segment, *std::prev(it), /*by_epoch=*/true, 0.0, epoch);
  if (record && record->epoch != epoch) return std::nullopt;
  return record;
}

std::vector<TickRecord> Ledger::range(std::uint64_t first,
                                      std::uint64_t last) const {
  std::lock_guard lock(mutex_);
  std::vector<TickRecord> records;
  for (const Segment& segment : segments_) {
    if (segment.records == 0 || segment.last_epoch < first) continue;
    if (segment.first_epoch > last) break;
    const std::uint64_t from = std::max(first, segment.first_epoch);
    const auto it = std::upper_bound(
        segment.index.begin(), segment.index.end(), from,
        [](std::uint64_t e, const IndexEntry& entry) {
          return e < entry.epoch;
        });
    std::ifstream in(segment.path, std::ios::binary);
    if (!in) continue;
    std::uint64_t cursor = std::prev(it)->offset;
    while (auto record =
               read_frame_stream(in, cursor, segment.frames_end)) {
      if (record->epoch > last) break;
      if (record->epoch >= first) records.push_back(std::move(*record));
    }
  }
  return records;
}

// --- truncation (checkpoint restore rewind) ---------------------------------

void Ledger::truncate_after(std::uint64_t epoch) {
  std::lock_guard compaction_lock(compaction_mutex_);
  std::lock_guard lock(mutex_);

  while (!segments_.empty() && segments_.back().first_epoch > epoch) {
    if (segments_.back().kind == Kind::kActive) active_.close();
    std::filesystem::remove(segments_.back().path);
    segments_.pop_back();
  }
  if (segments_.empty() || segments_.back().last_epoch <= epoch) {
    update_gauges_locked();
    return;
  }

  Segment& tail = segments_.back();
  if (tail.kind == Kind::kCold) {
    // Rewrite the straddling cold segment as a WAL holding only the kept
    // prefix; compaction will rebuild its index later.
    std::ifstream in(tail.path, std::ios::binary);
    std::string out(kWalMagic);
    Segment replacement;
    replacement.kind = Kind::kSealed;
    std::uint64_t cursor = kColdMagic.size();
    while (auto record = read_frame_stream(in, cursor, tail.frames_end)) {
      if (record->epoch > epoch) break;
      const std::uint64_t out_offset = out.size();
      // Re-frame from the decoded record: offsets shift, bytes do not.
      append_frame(out, *record);
      if (replacement.records == 0) {
        replacement.first_epoch = record->epoch;
        replacement.first_time_s = record->time_s;
      }
      replacement.index.push_back({record->epoch, record->time_s, out_offset});
      replacement.last_epoch = record->epoch;
      replacement.last_time_s = record->time_s;
      ++replacement.records;
    }
    in.close();
    const std::filesystem::path old_path = tail.path;
    replacement.path =
        options_.dir / segment_file_name("wal", replacement.first_epoch);
    replacement.bytes = out.size();
    replacement.frames_end = out.size();
    {
      std::ofstream file(replacement.path,
                         std::ios::binary | std::ios::trunc);
      if (!file ||
          !file.write(out.data(), static_cast<std::streamsize>(out.size())))
        throw std::runtime_error("ledger: cannot rewrite " +
                                 replacement.path.string());
    }
    std::filesystem::remove(old_path);
    if (replacement.records == 0) {
      std::filesystem::remove(replacement.path);
      segments_.pop_back();
    } else {
      tail = std::move(replacement);
    }
  } else {
    // Dense index: the first dropped record's offset is the new file size.
    const auto it = std::upper_bound(
        tail.index.begin(), tail.index.end(), epoch,
        [](std::uint64_t e, const IndexEntry& entry) {
          return e < entry.epoch;
        });
    const std::uint64_t cut = it->offset;
    if (tail.kind == Kind::kActive) active_.close();
    std::filesystem::resize_file(tail.path, cut);
    tail.index.erase(it, tail.index.end());
    tail.records = tail.index.size();
    tail.bytes = cut;
    tail.frames_end = cut;
    tail.last_epoch = tail.index.back().epoch;
    tail.last_time_s = tail.index.back().time_s;
    if (tail.kind == Kind::kActive) {
      active_.open(tail.path, std::ios::binary | std::ios::app);
      if (!active_)
        throw std::runtime_error("ledger: cannot reopen " +
                                 tail.path.string());
    }
  }
  update_gauges_locked();
}

// --- stats and metrics ------------------------------------------------------

Stats Ledger::stats() const {
  std::lock_guard lock(mutex_);
  Stats stats;
  for (const Segment& segment : segments_) {
    if (segment.records == 0) continue;
    if (stats.records == 0) {
      stats.oldest_epoch = segment.first_epoch;
      stats.oldest_time_s = segment.first_time_s;
    }
    stats.records += segment.records;
    stats.tail_epoch = segment.last_epoch;
    stats.tail_time_s = segment.last_time_s;
  }
  stats.segments = segments_.size();
  for (const Segment& segment : segments_) {
    if (segment.kind == Kind::kCold) ++stats.cold_segments;
    if (segment.kind == Kind::kSealed) ++stats.sealed_segments;
  }
  stats.appended_records = appended_records_;
  stats.appended_bytes = appended_bytes_;
  stats.compacted_records = compacted_records_;
  return stats;
}

std::vector<SegmentInfo> Ledger::segments() const {
  std::lock_guard lock(mutex_);
  std::vector<SegmentInfo> infos;
  infos.reserve(segments_.size());
  for (const Segment& segment : segments_) {
    SegmentInfo info;
    info.file = segment.path.filename().string();
    info.cold = segment.kind == Kind::kCold;
    info.active = segment.kind == Kind::kActive;
    info.first_epoch = segment.first_epoch;
    info.last_epoch = segment.last_epoch;
    info.records = segment.records;
    info.bytes = segment.bytes;
    infos.push_back(std::move(info));
  }
  return infos;
}

void Ledger::register_metrics() {
  if (!options_.metrics) return;
  obs::MetricsRegistry& registry = *options_.metrics;
  appended_counter_ =
      &registry.counter("vmpower_ledger_appended_records_total",
                        "Attribution records appended to the ledger WAL");
  appended_bytes_counter_ =
      &registry.counter("vmpower_ledger_appended_bytes_total",
                        "Framed bytes appended to the ledger WAL");
  compacted_counter_ =
      &registry.counter("vmpower_ledger_compacted_records_total",
                        "Records rewritten into indexed cold segments");
  recovered_counter_ =
      &registry.counter("vmpower_ledger_recovered_records_total",
                        "Intact records found by ledger crash recovery");
  torn_counter_ = &registry.counter(
      "vmpower_ledger_torn_records_total",
      "Torn or corrupt records truncated away at ledger recovery");
  segments_gauge_ = &registry.gauge("vmpower_ledger_segments",
                                    "Ledger segments on disk (all tiers)");
  cold_segments_gauge_ =
      &registry.gauge("vmpower_ledger_cold_segments",
                      "Compacted, index-bearing cold segments");
  tail_epoch_gauge_ = &registry.gauge(
      "vmpower_ledger_tail_epoch", "Epoch of the newest ledger record");
  oldest_epoch_gauge_ = &registry.gauge(
      "vmpower_ledger_oldest_epoch", "Epoch of the oldest ledger record");
  recovered_counter_->inc(recovery_.records);
  torn_counter_->inc(recovery_.torn_records);
  std::lock_guard lock(mutex_);
  update_gauges_locked();
}

void Ledger::update_gauges_locked() {
  if (!segments_gauge_) return;
  segments_gauge_->set(static_cast<double>(segments_.size()));
  std::uint64_t cold = 0, oldest = 0, tail = 0;
  for (const Segment& segment : segments_) {
    if (segment.kind == Kind::kCold) ++cold;
    if (segment.records == 0) continue;
    if (oldest == 0) oldest = segment.first_epoch;
    tail = segment.last_epoch;
  }
  cold_segments_gauge_->set(static_cast<double>(cold));
  tail_epoch_gauge_->set(static_cast<double>(tail));
  oldest_epoch_gauge_->set(static_cast<double>(oldest));
}

// --- offline verification ---------------------------------------------------

VerifyReport verify_dir(const std::filesystem::path& dir) {
  VerifyReport report;
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if ((name.starts_with("wal-") && name.ends_with(".log")) ||
        (name.starts_with("cold-") && name.ends_with(".seg"))) {
      // Epoch prefix follows the "wal-"/"cold-" tag; names sort by it.
      const std::size_t dash = name.find('-');
      files.emplace_back(std::stoull(name.substr(dash + 1)), entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::uint64_t previous_last = 0;
  for (const auto& [first, path] : files) {
    ++report.segments;
    const std::string data = read_file(path);
    const bool cold = path.filename().string().starts_with("cold-");
    std::size_t frames_end = data.size();
    if (cold) {
      if (const auto footer = decode_footer(data)) {
        frames_end = footer->index_offset;
      } else {
        ++report.torn_records;  // the footer itself is damaged.
      }
    } else if (data.size() < kWalMagic.size() ||
               std::string_view(data).substr(0, kWalMagic.size()) !=
                   kWalMagic) {
      ++report.torn_records;
      continue;
    }
    std::size_t offset = cold ? kColdMagic.size() : kWalMagic.size();
    std::uint64_t last_epoch = 0;
    TickRecord record;
    for (;;) {
      const FrameStatus status = read_frame(
          std::string_view(data).substr(0, frames_end), offset, record);
      if (status == FrameStatus::kEndOfLog) break;
      if (status == FrameStatus::kTorn ||
          (last_epoch != 0 && record.epoch <= last_epoch)) {
        ++report.torn_records;
        break;
      }
      if (last_epoch == 0 && previous_last != 0 &&
          record.epoch != previous_last + 1)
        ++report.epoch_gaps;
      last_epoch = record.epoch;
      ++report.records;
    }
    if (last_epoch != 0) previous_last = last_epoch;
  }
  return report;
}

}  // namespace vmp::ledger
