// Durable attribution ledger: a write-ahead log of per-tick attribution
// records with segment rotation, background compaction, and crash recovery.
//
// The retention ring (serve::SnapshotStore) answers hot window queries from
// memory and forgets everything older by design; the ledger is the durable
// tier underneath it. Layout of a ledger directory:
//
//   wal-<first_epoch>.log    append-only segment of CRC-framed TickRecords
//                            (see ledger/format.hpp); exactly one is active,
//                            older ones are sealed and awaiting compaction.
//   cold-<first>-<last>.seg  a compacted sealed segment: the same frames,
//                            followed by a sparse (epoch, time, offset)
//                            index and a CRC'd footer, so a window seek is
//                            one binary search plus at most `index_stride`
//                            sequential frame reads.
//
// Rotation seals the active segment once it reaches segment_max_records or
// segment_max_bytes; sealed segments are compacted on a background thread
// (or inline, or never — see LedgerOptions). Compaction writes the cold file
// beside the WAL under a ".tmp" name and renames it into place before
// deleting the WAL, so a crash mid-compaction leaves either the old WAL or
// a complete cold segment, never a half state the reader trusts.
//
// Recovery (constructor): every WAL segment is scanned frame by frame and
// truncated at the first torn/corrupt record — a crash mid-append loses at
// most that one record, and the loss is WARN-logged and counted, never
// silent. Cold segments load by footer; a cold file with a bad footer falls
// back to a full scan and is re-queued for compaction.
//
// Epochs are strictly ascending across the whole ledger and 1:1 with
// snapshot publish epochs, which is what lets checkpoint restore replay the
// ledger tail into the retention ring and continue byte-identically (see
// serve::SnapshotStore::restore_from_ledger).
//
// Thread safety: append() must come from one thread (the engine's publish
// path); reads are safe from any thread. Compaction synchronizes through
// the same state mutex when it swaps a WAL entry for its cold replacement.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ledger/format.hpp"
#include "obs/metrics.hpp"

namespace vmp::ledger {

struct LedgerOptions {
  std::filesystem::path dir;
  /// Rotation thresholds for the active segment (whichever trips first).
  std::uint64_t segment_max_records = 4096;
  std::uint64_t segment_max_bytes = 8ull << 20;
  /// Cold segments index every Nth record; a seek costs one binary search
  /// plus at most N sequential frame reads.
  std::uint64_t index_stride = 64;
  /// Compact sealed segments into indexed cold segments at all.
  bool auto_compact = true;
  /// Run compaction on a background thread instead of inline at rotation.
  bool background_compaction = true;
  /// When set, exports the vmpower_ledger_* metric families.
  obs::MetricsRegistry* metrics = nullptr;

  /// Throws std::invalid_argument on an empty dir or zero thresholds.
  void validate() const;
};

/// What recovery found when the ledger directory was opened.
struct RecoveryReport {
  std::uint64_t segments = 0;          ///< segments found on disk.
  std::uint64_t records = 0;           ///< intact records recovered.
  std::uint64_t torn_records = 0;      ///< damaged tails truncated away.
  std::uint64_t truncated_bytes = 0;   ///< bytes dropped with those tails.
  std::uint64_t rescanned_cold = 0;    ///< cold segments with a bad footer.
};

/// Point-in-time counters and extent of the ledger.
struct Stats {
  std::uint64_t oldest_epoch = 0;  ///< 0 when the ledger is empty.
  std::uint64_t tail_epoch = 0;
  double oldest_time_s = 0.0;
  double tail_time_s = 0.0;
  std::uint64_t records = 0;
  std::uint64_t segments = 0;
  std::uint64_t cold_segments = 0;
  std::uint64_t sealed_segments = 0;  ///< rotated, not yet compacted.
  std::uint64_t appended_records = 0;
  std::uint64_t appended_bytes = 0;
  std::uint64_t compacted_records = 0;
};

/// One segment's extent, for `vmpower ledger inspect`.
struct SegmentInfo {
  std::string file;
  bool cold = false;
  bool active = false;
  std::uint64_t first_epoch = 0;
  std::uint64_t last_epoch = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
};

/// Full-scan integrity check of a ledger directory (no mutation, no
/// truncation — the read-only counterpart of recovery, for `ledger verify`).
struct VerifyReport {
  std::uint64_t segments = 0;
  std::uint64_t records = 0;
  std::uint64_t torn_records = 0;
  std::uint64_t epoch_gaps = 0;
  bool clean() const noexcept { return torn_records == 0 && epoch_gaps == 0; }
};
[[nodiscard]] VerifyReport verify_dir(const std::filesystem::path& dir);

class Ledger {
 public:
  /// Opens (creating if needed) the ledger directory and runs recovery.
  /// Throws std::invalid_argument on bad options, std::runtime_error on I/O
  /// failure.
  explicit Ledger(LedgerOptions options);
  ~Ledger();

  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Appends one record. `record.epoch` must exceed the current tail epoch
  /// (throws std::logic_error otherwise); the frame is flushed to the OS
  /// before return. Single writer.
  void append(const TickRecord& record);

  /// Newest record with time_s <= t_s; nullopt when t_s predates the oldest
  /// record (or the ledger is empty) — same step semantics as the ring.
  [[nodiscard]] std::optional<TickRecord> at_or_before(double t_s) const;

  /// The record published at exactly `epoch`, if the ledger holds it.
  [[nodiscard]] std::optional<TickRecord> at_epoch(std::uint64_t epoch) const;

  /// All records with epoch in [first, last], ascending. Clamped to the
  /// ledger's extent; empty when the ranges don't intersect.
  [[nodiscard]] std::vector<TickRecord> range(std::uint64_t first,
                                              std::uint64_t last) const;

  /// Drops every record with epoch > `epoch` (checkpoint restore rewinds the
  /// ledger to the checkpointed tick before the engine replays forward).
  /// Cold segments straddling the cut are rewritten as WAL segments.
  void truncate_after(std::uint64_t epoch);

  /// Synchronously compacts every sealed segment; returns how many.
  std::size_t compact_all();

  /// Blocks until the background compactor has drained its queue.
  void wait_for_compaction() const;

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] RecoveryReport recovery() const { return recovery_; }
  [[nodiscard]] std::vector<SegmentInfo> segments() const;
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return options_.dir;
  }

 private:
  enum class Kind { kActive, kSealed, kCold };

  struct IndexEntry {
    std::uint64_t epoch = 0;
    double time_s = 0.0;
    std::uint64_t offset = 0;  ///< frame offset in the segment file.
  };

  struct Segment {
    Kind kind = Kind::kSealed;
    std::filesystem::path path;
    std::uint64_t first_epoch = 0;
    std::uint64_t last_epoch = 0;
    double first_time_s = 0.0;
    double last_time_s = 0.0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;       ///< file size.
    std::uint64_t frames_end = 0;  ///< end of the frames region (< bytes for
                                   ///< cold segments, which carry an index).
    std::vector<IndexEntry> index;  ///< dense (WAL) or sparse (cold).
  };

  void recover();
  /// Scans a WAL file, truncating any torn tail; returns the segment or
  /// nullopt for an empty file (which is deleted).
  std::optional<Segment> recover_wal(const std::filesystem::path& path);
  /// Loads a cold segment by footer; falls back to a full scan (and marks it
  /// sealed for re-compaction) when the footer is damaged.
  std::optional<Segment> recover_cold(const std::filesystem::path& path);

  void open_active_locked(std::uint64_t first_epoch);
  void seal_active_locked();
  /// Compacts the oldest sealed segment (if any); returns whether one was.
  bool compact_one();
  void compactor_loop();

  /// Reads the record at `offset` of `segment`'s file; nullopt on damage.
  [[nodiscard]] std::optional<TickRecord> read_at(
      const Segment& segment, std::uint64_t offset) const;
  /// Scans forward from the sparse index entry to the newest record with
  /// time_s <= t_s (or epoch <= epoch when `by_epoch`).
  [[nodiscard]] std::optional<TickRecord> scan_from(
      const Segment& segment, const IndexEntry& start, bool by_epoch,
      double t_s, std::uint64_t epoch) const;
  [[nodiscard]] const Segment* segment_for_time_locked(double t_s) const;
  [[nodiscard]] const Segment* segment_for_epoch_locked(
      std::uint64_t epoch) const;

  void register_metrics();
  void update_gauges_locked();

  LedgerOptions options_;
  RecoveryReport recovery_;

  mutable std::mutex mutex_;
  std::vector<Segment> segments_;  ///< ascending by first_epoch.
  std::ofstream active_;           ///< open iff some segment is kActive.
  std::uint64_t appended_records_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t compacted_records_ = 0;

  mutable std::mutex compaction_mutex_;  ///< serializes compaction passes.
  mutable std::condition_variable work_cv_;
  mutable std::condition_variable idle_cv_;
  bool stop_ = false;
  std::thread compactor_;

  // Registered once in the constructor; null without options_.metrics.
  obs::Counter* appended_counter_ = nullptr;
  obs::Counter* appended_bytes_counter_ = nullptr;
  obs::Counter* compacted_counter_ = nullptr;
  obs::Counter* recovered_counter_ = nullptr;
  obs::Counter* torn_counter_ = nullptr;
  obs::Gauge* segments_gauge_ = nullptr;
  obs::Gauge* cold_segments_gauge_ = nullptr;
  obs::Gauge* tail_epoch_gauge_ = nullptr;
  obs::Gauge* oldest_epoch_gauge_ = nullptr;
};

}  // namespace vmp::ledger
