// vCPU -> logical-CPU placement.
//
// Whether two busy vCPUs land on sibling hyper-threads of one physical core
// or on separate cores decides how much execution-unit competition (and hence
// sub-additive power) the machine exhibits. The simulator provides:
//
//   * kSpread — prefer empty physical cores (what an idle-balancing scheduler
//     does on an uncrowded host);
//   * kPack   — prefer filling a half-busy core's free sibling first (what a
//     consolidating scheduler, or a crowded host, produces; this is the
//     placement behind the paper's Fig. 4 measurement);
//   * StochasticScheduler — picks pack vs spread per scheduling epoch with
//     probability `pack_affinity`, reproducing the time-averaged partial
//     contention that makes the paper's Table IV per-type coefficients land
//     between the pure-pack and pure-spread extremes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/cpu_topology.hpp"
#include "util/rng.hpp"

namespace vmp::sim {

/// One runnable vCPU's demand for a scheduling epoch.
struct VcpuDemand {
  std::size_t vm_index = 0;   ///< index into the caller's VM array.
  double utilization = 0.0;   ///< demanded fraction of the thread, [0, 1].
  double intensity = 1.0;     ///< workload power intensity (> 0).
};

/// Per-logical-CPU assignment produced by placement. vm_index ==
/// kUnassigned marks an idle thread.
struct ThreadAssignment {
  static constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  std::size_t vm_index = kUnassigned;
  double utilization = 0.0;
  double intensity = 1.0;

  [[nodiscard]] bool busy() const noexcept { return vm_index != kUnassigned; }
  /// Effective execution-unit pressure this thread exerts.
  [[nodiscard]] double effective_load() const noexcept {
    return busy() ? utilization * intensity : 0.0;
  }
};

/// A full placement: one ThreadAssignment per logical CPU.
using Placement = std::vector<ThreadAssignment>;

enum class PlacementMode { kSpread, kPack };

[[nodiscard]] const char* to_string(PlacementMode mode) noexcept;

/// Deterministic greedy placement of the demands in order.
///
/// Throws std::invalid_argument if more vCPUs are demanded than logical CPUs
/// exist (the hypervisor enforces no-overcommit, matching the paper's Sec. V-B
/// observation that hosts run at most one vCPU per logical core).
[[nodiscard]] Placement place(const CpuTopology& topology,
                              std::span<const VcpuDemand> demands,
                              PlacementMode mode);

/// Epoch-stochastic scheduler: each call to schedule() chooses kPack with
/// probability pack_affinity, else kSpread, then places deterministically.
class StochasticScheduler {
 public:
  /// Throws std::invalid_argument if pack_affinity is outside [0, 1].
  StochasticScheduler(double pack_affinity, std::uint64_t seed);

  [[nodiscard]] Placement schedule(const CpuTopology& topology,
                                   std::span<const VcpuDemand> demands);

  /// Mode chosen by the most recent schedule() call.
  [[nodiscard]] PlacementMode last_mode() const noexcept { return last_mode_; }

 private:
  double pack_affinity_;
  util::Rng rng_;
  PlacementMode last_mode_ = PlacementMode::kSpread;
};

}  // namespace vmp::sim
