#include "sim/dstat.hpp"

namespace vmp::sim {

void DstatCollector::sample(const Hypervisor& hypervisor) {
  records_.push_back({hypervisor.now(), hypervisor.observations()});
}

std::vector<common::StateVector> DstatCollector::series_for(VmId id) const {
  std::vector<common::StateVector> out;
  out.reserve(records_.size());
  for (const DstatRecord& record : records_) {
    common::StateVector state{};
    for (const VmObservation& obs : record.observations) {
      if (obs.id == id) {
        state = obs.state;
        break;
      }
    }
    out.push_back(state);
  }
  return out;
}

}  // namespace vmp::sim
