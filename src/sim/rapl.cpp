#include "sim/rapl.hpp"

#include <cmath>
#include <stdexcept>

namespace vmp::sim {

const char* to_string(RaplDomain d) noexcept {
  switch (d) {
    case RaplDomain::kPackage: return "package";
    case RaplDomain::kPp0: return "pp0";
    case RaplDomain::kDram: return "dram";
  }
  return "?";
}

std::uint32_t msr_address(RaplDomain d) noexcept {
  switch (d) {
    case RaplDomain::kPackage: return kMsrPkgEnergyStatus;
    case RaplDomain::kPp0: return kMsrPp0EnergyStatus;
    case RaplDomain::kDram: return kMsrDramEnergyStatus;
  }
  return 0;
}

RaplSimulator::RaplSimulator(MsrFile& msr, unsigned energy_status_unit)
    : msr_(msr), joules_per_count_(std::ldexp(1.0, -static_cast<int>(energy_status_unit))) {
  if (energy_status_unit == 0 || energy_status_unit > 31)
    throw std::invalid_argument("RaplSimulator: ESU must be in [1, 31]");
  // MSR_RAPL_POWER_UNIT: energy unit in bits 12:8 (power and time units left
  // at their common defaults: PU=3 -> 1/8 W, TU=10 -> ~1 ms).
  const std::uint64_t unit_reg =
      (static_cast<std::uint64_t>(energy_status_unit) << 8) | 0x3 | (0xAULL << 16);
  msr_.write(kMsrRaplPowerUnit, unit_reg);
}

void RaplSimulator::add_energy(std::uint32_t address, double joules) {
  double* residual = nullptr;
  switch (address) {
    case kMsrPkgEnergyStatus: residual = &pkg_residual_; break;
    case kMsrPp0EnergyStatus: residual = &pp0_residual_; break;
    case kMsrDramEnergyStatus: residual = &dram_residual_; break;
    default: throw std::invalid_argument("RaplSimulator: unknown energy MSR");
  }
  *residual += joules / joules_per_count_;
  const double whole = std::floor(*residual);
  *residual -= whole;
  const auto counts = static_cast<std::uint64_t>(whole);
  const auto current = static_cast<std::uint32_t>(msr_.read(address));
  // 32-bit wraparound is the defining quirk of these counters.
  msr_.write(address, static_cast<std::uint32_t>(current + counts));
}

void RaplSimulator::accumulate(const PowerBreakdown& power, double dt_s) {
  if (!(dt_s > 0.0))
    throw std::invalid_argument("RaplSimulator::accumulate: dt must be > 0");
  const double cpu = power.cpu_dynamic - power.llc_penalty;
  add_energy(kMsrPp0EnergyStatus, cpu * dt_s);
  add_energy(kMsrPkgEnergyStatus, (cpu + power.idle) * dt_s);
  add_energy(kMsrDramEnergyStatus, power.memory * dt_s);
}

RaplReader::RaplReader(const MsrFile& msr)
    : msr_(msr),
      last_pkg_(static_cast<std::uint32_t>(msr.read(kMsrPkgEnergyStatus))),
      last_pp0_(static_cast<std::uint32_t>(msr.read(kMsrPp0EnergyStatus))),
      last_dram_(static_cast<std::uint32_t>(msr.read(kMsrDramEnergyStatus))) {
  const std::uint64_t unit_reg = msr.read(kMsrRaplPowerUnit);
  const auto esu = static_cast<unsigned>((unit_reg >> 8) & 0x1F);
  if (esu == 0)
    throw std::runtime_error("RaplReader: MSR_RAPL_POWER_UNIT not initialized");
  joules_per_count_ = std::ldexp(1.0, -static_cast<int>(esu));
}

std::uint32_t& RaplReader::last_of(RaplDomain d) {
  switch (d) {
    case RaplDomain::kPackage: return last_pkg_;
    case RaplDomain::kPp0: return last_pp0_;
    case RaplDomain::kDram: return last_dram_;
  }
  throw std::invalid_argument("RaplReader: unknown domain");
}

double RaplReader::energy_since_last_j(RaplDomain domain) {
  const auto now = static_cast<std::uint32_t>(msr_.read(msr_address(domain)));
  std::uint32_t& last = last_of(domain);
  // Unsigned subtraction handles a single wrap correctly.
  const std::uint32_t delta = now - last;
  last = now;
  return static_cast<double>(delta) * joules_per_count_;
}

double RaplReader::average_power_w(RaplDomain domain, double dt_s) {
  if (!(dt_s > 0.0))
    throw std::invalid_argument("RaplReader::average_power_w: dt must be > 0");
  return energy_since_last_j(domain) / dt_s;
}

}  // namespace vmp::sim
