// The coalition-worth oracle.
//
// The paper defines v(S, C) as the idle-adjusted power of the physical
// machine when exactly the VMs of coalition S run with states C. On a real
// testbed obtaining every v(S, C) means physically running 2^n coalition
// configurations — the very cost the VHC approximation avoids. In the
// simulator we *can* evaluate any coalition directly: CoalitionProbe computes
// the deterministic expected power (over the scheduler's pack/spread epoch
// distribution, without meter noise) of an arbitrary subset of a fixed VM
// fleet at arbitrary states. It provides:
//
//   * exact-Shapley ground truth (what the paper compares its
//     non-deterministic Shapley against);
//   * synthetic "offline measurements" for training (callers add meter noise).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/state_vector.hpp"
#include "common/vm_config.hpp"
#include "sim/machine_spec.hpp"
#include "sim/power_model.hpp"

namespace vmp::sim {

/// Bitmask over the probe's VM fleet: bit i set => VM i is in the coalition.
using CoalitionMask = std::uint32_t;

class CoalitionProbe {
 public:
  /// A fleet of n VMs (n <= 30) with per-VM workload power intensities.
  /// intensities must have the same length as configs (or be empty for all
  /// 1.0). Throws std::invalid_argument on size mismatch, empty fleet, or a
  /// fleet whose total vCPUs exceed the machine's logical CPUs.
  CoalitionProbe(MachineSpec spec, std::vector<common::VmConfig> configs,
                 std::vector<double> intensities = {});

  [[nodiscard]] std::size_t fleet_size() const noexcept {
    return configs_.size();
  }
  [[nodiscard]] const MachineSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<common::VmConfig>& configs() const noexcept {
    return configs_;
  }

  /// v(S, C): idle-adjusted expected machine power with exactly the VMs in
  /// `mask` running at `states` (one state per fleet VM; states of VMs
  /// outside the mask are ignored). Throws std::invalid_argument if states
  /// size differs from the fleet or mask addresses VMs beyond the fleet.
  [[nodiscard]] double worth(CoalitionMask mask,
                             std::span<const common::StateVector> states) const;

  /// Full power breakdown (including idle) for a coalition; worth() is
  /// breakdown(mask, states).adjusted().
  [[nodiscard]] PowerBreakdown breakdown(
      CoalitionMask mask, std::span<const common::StateVector> states) const;

 private:
  MachineSpec spec_;
  std::vector<common::VmConfig> configs_;
  std::vector<double> intensities_;
};

}  // namespace vmp::sim
