#include "sim/vm.hpp"

#include <stdexcept>

namespace vmp::sim {

const char* to_string(VmState s) noexcept {
  switch (s) {
    case VmState::kStopped: return "stopped";
    case VmState::kRunning: return "running";
  }
  return "?";
}

Vm::Vm(VmId id, common::VmConfig config, wl::WorkloadPtr workload)
    : id_(id), config_(std::move(config)), workload_(std::move(workload)) {
  config_.validate();
  if (workload_ == nullptr)
    throw std::invalid_argument("Vm: workload must not be null");
}

void Vm::start(double now_s) {
  if (state_ == VmState::kRunning) return;
  state_ = VmState::kRunning;
  started_at_s_ = now_s;
  refresh(now_s);
}

void Vm::stop() {
  state_ = VmState::kStopped;
  observed_state_ = common::StateVector::zero();
}

void Vm::refresh(double now_s) {
  if (state_ != VmState::kRunning) {
    observed_state_ = common::StateVector::zero();
    return;
  }
  observed_state_ = workload_->demand(now_s - started_at_s_).clamped();
}

void Vm::bind_workload(wl::WorkloadPtr workload) {
  if (workload == nullptr)
    throw std::invalid_argument("Vm::bind_workload: workload must not be null");
  workload_ = std::move(workload);
}

}  // namespace vmp::sim
