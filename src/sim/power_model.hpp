// The simulated machine's physical power synthesis.
//
// This is the "analog truth" of the testbed — the quantity the wall meter
// observes. Per physical core, the dynamic power of sibling hyper-threads is
// sub-additive:
//
//   p_core = p_t * (e1 + e2) - gamma * p_t * min(e1, e2)
//
// where e is a thread's effective load (utilization x instruction-mix
// intensity) and gamma the SMT contention factor: while both siblings issue
// work, they compete for the core's shared execution units (Fig. 5 of the
// paper), so the overlapping fraction min(e1, e2) costs (1 - gamma) of its
// nominal power. A second, smaller machine-level coupling models shared LLC /
// memory-bandwidth contention between *distinct VMs*. Memory and disk draw a
// few watts each (Sec. VI-C measures ~12 W and ~10 W) and the idle floor is a
// stable constant (Remark 1).
#pragma once

#include <span>

#include "sim/machine_spec.hpp"
#include "sim/scheduler.hpp"

namespace vmp::sim {

/// Per-VM aggregate load for machine-level power terms.
struct VmLoad {
  double cpu_thread_demand = 0.0;  ///< sum over vCPUs of util x intensity.
  double memory_mb_used = 0.0;     ///< resident DRAM of this VM, MB.
  double disk_util = 0.0;          ///< fraction of device throughput, [0,1].
};

/// Decomposed instantaneous machine power, all in watts.
struct PowerBreakdown {
  double idle = 0.0;
  double cpu_dynamic = 0.0;   ///< after SMT contention.
  double llc_penalty = 0.0;   ///< cross-VM shared-resource saving (subtracted).
  double memory = 0.0;
  double disk = 0.0;

  /// Wall power: idle + cpu - llc + memory + disk.
  [[nodiscard]] double total() const noexcept {
    return idle + cpu_dynamic - llc_penalty + memory + disk;
  }
  /// Idle-adjusted power, the quantity every estimator disaggregates
  /// (paper Remark 1 deducts the idle floor).
  [[nodiscard]] double adjusted() const noexcept { return total() - idle; }
};

/// Computes the machine's true instantaneous power for a given placement and
/// per-VM loads. `placement.size()` must equal the topology's logical CPU
/// count (throws std::invalid_argument otherwise).
[[nodiscard]] PowerBreakdown compute_power(const MachineSpec& spec,
                                           const Placement& placement,
                                           std::span<const VmLoad> vm_loads);

/// Power blend between the two placements at a given pack fraction:
/// pack_fraction * power(pack placement) + (1 - pack_fraction) *
/// power(spread placement). This is what a 1 Hz sample observes: within one
/// sampling interval the OS migrates threads many times, so the sample
/// averages the two extremes. pack_fraction must be in [0, 1].
[[nodiscard]] PowerBreakdown blended_power(const MachineSpec& spec,
                                           std::span<const VcpuDemand> demands,
                                           std::span<const VmLoad> vm_loads,
                                           double pack_fraction);

/// blended_power at the spec's nominal pack_affinity. This is the
/// deterministic oracle used for coalition worths (exact Shapley ground
/// truth) — the value sampled power fluctuates around for fixed states.
[[nodiscard]] PowerBreakdown expected_power(const MachineSpec& spec,
                                            std::span<const VcpuDemand> demands,
                                            std::span<const VmLoad> vm_loads);

}  // namespace vmp::sim
