#include "sim/msr.hpp"

namespace vmp::sim {

std::uint64_t MsrFile::read(std::uint32_t address) const noexcept {
  const auto it = regs_.find(address);
  return it != regs_.end() ? it->second : 0;
}

void MsrFile::write(std::uint32_t address, std::uint64_t value) {
  regs_[address] = value;
}

}  // namespace vmp::sim
