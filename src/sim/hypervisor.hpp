// The hypervisor: VM lifecycle, vCPU scheduling, and machine power synthesis.
//
// Plays the role of XenServer in the paper's prototype (Fig. 8/9): it tracks
// each VM's component state, decides vCPU placement every tick, and — because
// this is a simulator — also evaluates the machine's true physical power for
// the meter to observe.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/machine_spec.hpp"
#include "sim/power_model.hpp"
#include "sim/scheduler.hpp"
#include "sim/vm.hpp"
#include "util/rng.hpp"

namespace vmp::sim {

/// One VM's telemetry snapshot as the monitoring plane sees it.
struct VmObservation {
  VmId id = 0;
  common::VmTypeId type_id = 0;
  common::StateVector state;
};

class Hypervisor {
 public:
  /// Validates the spec; the scheduler's randomness derives from `seed`.
  explicit Hypervisor(MachineSpec spec, std::uint64_t seed = 1);

  // --- VM lifecycle ---

  /// Defines a VM (initially stopped). Throws std::invalid_argument on bad
  /// config/null workload.
  VmId create_vm(common::VmConfig config, wl::WorkloadPtr workload);

  /// Starts a VM. Throws std::out_of_range on unknown id and
  /// std::runtime_error if starting it would exceed the host's logical CPUs
  /// (the no-overcommit rule of Sec. V-B).
  void start_vm(VmId id);
  void stop_vm(VmId id);
  /// Rebinds the workload of a VM. Throws std::out_of_range on unknown id.
  void bind_workload(VmId id, wl::WorkloadPtr workload);

  [[nodiscard]] const Vm& vm(VmId id) const;
  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }
  [[nodiscard]] std::size_t running_vcpus() const noexcept;

  // --- clocking ---

  /// Advances the simulation clock by dt seconds: refreshes every running
  /// VM's state, reschedules vCPUs for the new epoch, and recomputes the
  /// machine's true power. dt must be > 0 (throws std::invalid_argument).
  void tick(double dt);

  [[nodiscard]] double now() const noexcept { return now_s_; }

  // --- observation plane ---

  /// Telemetry for all *running* VMs, in VmId order.
  [[nodiscard]] std::vector<VmObservation> observations() const;

  /// The machine's true power for the current epoch (set by the last tick;
  /// idle-only before the first tick).
  [[nodiscard]] const PowerBreakdown& current_power() const noexcept {
    return power_;
  }

  /// Representative placement of the current epoch: the pack placement when
  /// the realized pack fraction exceeds 1/2, else the spread one (the power
  /// itself is the fraction-weighted blend; see MachineSpec::pack_affinity).
  [[nodiscard]] const Placement& current_placement() const noexcept {
    return placement_;
  }

  /// Pack fraction realized in the current epoch.
  [[nodiscard]] double current_pack_fraction() const noexcept {
    return pack_fraction_;
  }

  [[nodiscard]] const MachineSpec& spec() const noexcept { return spec_; }

 private:
  void recompute_epoch();

  MachineSpec spec_;
  util::Rng rng_;
  std::vector<Vm> vms_;
  double now_s_ = 0.0;
  double pack_fraction_ = 0.0;
  Placement placement_;
  PowerBreakdown power_;
};

}  // namespace vmp::sim
