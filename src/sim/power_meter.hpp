// The wall power meter of the prototype (Fig. 9).
//
// The paper's meter reports electrical signals (voltage, current, active
// power) over a serial port at 1 Hz. PowerMeter models the measurement error
// (Gaussian noise + display quantization); SerialMeterPort wraps it in the
// frame-oriented read API a collection daemon would use, including an
// accumulating energy register.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace vmp::sim {

/// Noisy, quantized observation of a true power value.
class PowerMeter {
 public:
  /// noise_sigma_w and quantum_w must be >= 0 (throws std::invalid_argument).
  PowerMeter(double noise_sigma_w, double quantum_w, std::uint64_t seed);

  /// One reading of the given true power: adds Gaussian noise, quantizes to
  /// the display quantum, clamps at zero.
  [[nodiscard]] double read(double true_power_w);

 private:
  double noise_sigma_w_;
  double quantum_w_;
  util::Rng rng_;
};

/// One serial frame, mirroring the fields the prototype's meter exposes.
struct MeterFrame {
  double voltage_v = 0.0;
  double current_a = 0.0;
  double active_power_w = 0.0;
  double energy_wh = 0.0;  ///< cumulative active energy since power-on.
};

/// Frame-level serial interface on top of PowerMeter.
class SerialMeterPort {
 public:
  SerialMeterPort(PowerMeter meter, double line_voltage_v = 230.0);

  /// Produces the frame for one sampling interval of length dt_s during which
  /// the machine drew true_power_w. dt_s must be > 0.
  [[nodiscard]] MeterFrame read_frame(double true_power_w, double dt_s);

  [[nodiscard]] double total_energy_wh() const noexcept { return energy_wh_; }

 private:
  PowerMeter meter_;
  double line_voltage_v_;
  double energy_wh_ = 0.0;
};

}  // namespace vmp::sim
