#include "sim/machine_spec.hpp"

#include <stdexcept>

namespace vmp::sim {

void MachineSpec::validate() const {
  if (idle_power_w < 0.0)
    throw std::invalid_argument("MachineSpec: idle power must be >= 0");
  if (!(thread_full_power_w > 0.0))
    throw std::invalid_argument("MachineSpec: thread power must be > 0");
  if (smt_contention < 0.0 || smt_contention >= 1.0)
    throw std::invalid_argument("MachineSpec: smt_contention must be in [0,1)");
  if (llc_contention_w < 0.0)
    throw std::invalid_argument("MachineSpec: llc_contention_w must be >= 0");
  if (!(cpu_power_knee_w > 0.0))
    throw std::invalid_argument("MachineSpec: cpu_power_knee_w must be > 0");
  if (cpu_saturation_slope < 0.0 || cpu_saturation_slope > 1.0)
    throw std::invalid_argument(
        "MachineSpec: cpu_saturation_slope must be in [0, 1]");
  if (memory_power_w < 0.0 || disk_power_w < 0.0)
    throw std::invalid_argument("MachineSpec: component power must be >= 0");
  if (memory_mb == 0)
    throw std::invalid_argument("MachineSpec: memory_mb must be >= 1");
  if (meter_noise_sigma_w < 0.0)
    throw std::invalid_argument("MachineSpec: meter noise must be >= 0");
  if (meter_quantum_w < 0.0)
    throw std::invalid_argument("MachineSpec: meter quantum must be >= 0");
  if (pack_affinity < 0.0 || pack_affinity > 1.0)
    throw std::invalid_argument("MachineSpec: pack_affinity must be in [0,1]");
  if (affinity_jitter < 0.0)
    throw std::invalid_argument("MachineSpec: affinity_jitter must be >= 0");
}

MachineSpec xeon_prototype() {
  MachineSpec spec;
  spec.name = "xeon-prototype";
  spec.topology = CpuTopology{1, 8, 2};  // 16 logical CPUs, as in the paper.
  spec.idle_power_w = 138.0;
  spec.thread_full_power_w = 13.15;
  spec.smt_contention = 0.4425;
  spec.llc_contention_w = 0.25;
  spec.memory_power_w = 12.0;
  spec.disk_power_w = 10.0;
  spec.memory_mb = 32768;
  spec.meter_noise_sigma_w = 0.4;
  spec.meter_quantum_w = 0.1;
  spec.pack_affinity = 0.40;
  spec.validate();
  return spec;
}

MachineSpec pentium_desktop() {
  MachineSpec spec;
  spec.name = "pentium-desktop";
  spec.cpu_power_knee_w = 30.0;
  spec.cpu_saturation_slope = 0.5;
  spec.topology = CpuTopology{1, 2, 2};  // hyper-threaded dual-core desktop.
  spec.idle_power_w = 45.0;
  spec.thread_full_power_w = 9.0;
  spec.smt_contention = 0.2355;
  spec.llc_contention_w = 0.15;
  spec.memory_power_w = 4.0;
  spec.disk_power_w = 6.0;
  spec.memory_mb = 8192;
  spec.meter_noise_sigma_w = 0.3;
  spec.meter_quantum_w = 0.1;
  spec.pack_affinity = 0.40;
  spec.validate();
  return spec;
}

}  // namespace vmp::sim
