// A simulated model-specific-register (MSR) file.
//
// On real Intel hardware, RAPL energy counters are read through rdmsr on
// /dev/cpu/*/msr. The simulator keeps a sparse register file with the same
// access semantics (64-bit read/write by address) so the RAPL plumbing in
// this repo exercises the exact code shape a host agent uses.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace vmp::sim {

/// Well-known Intel MSR addresses used by the RAPL interface.
inline constexpr std::uint32_t kMsrRaplPowerUnit = 0x606;
inline constexpr std::uint32_t kMsrPkgEnergyStatus = 0x611;
inline constexpr std::uint32_t kMsrDramEnergyStatus = 0x619;
inline constexpr std::uint32_t kMsrPp0EnergyStatus = 0x639;

/// Sparse 64-bit register file. Unwritten registers read as zero, matching
/// the reset value of the energy-status MSRs.
class MsrFile {
 public:
  [[nodiscard]] std::uint64_t read(std::uint32_t address) const noexcept;
  void write(std::uint32_t address, std::uint64_t value);

  /// Number of registers ever written (introspection for tests).
  [[nodiscard]] std::size_t populated() const noexcept { return regs_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> regs_;
};

}  // namespace vmp::sim
