// Simulated Intel RAPL (Running Average Power Limit) energy counters.
//
// RAPL exposes cumulative energy per power domain through 32-bit MSR fields
// in units of 1 / 2^ESU joules (ESU from MSR_RAPL_POWER_UNIT bits 12:8,
// typically 14 -> ~61 µJ). The counters wrap frequently — at 100 W a 14-bit
// unit wraps every ~44 minutes — so any consumer must difference successive
// reads modulo 2^32. RaplSimulator integrates the machine's PowerBreakdown
// into the MSR file; RaplReader implements the wrap-safe differencing a host
// power agent performs. The paper (Sec. II-A) situates RAPL as the model-based
// counter this work complements; we include it both for fidelity and because
// per-domain energy makes a useful cross-check of the simulator's breakdown.
#pragma once

#include <cstdint>

#include "sim/msr.hpp"
#include "sim/power_model.hpp"

namespace vmp::sim {

enum class RaplDomain { kPackage, kPp0, kDram };

[[nodiscard]] const char* to_string(RaplDomain d) noexcept;
[[nodiscard]] std::uint32_t msr_address(RaplDomain d) noexcept;

/// Writes energy accumulation into an MsrFile the way the PCU firmware does.
class RaplSimulator {
 public:
  /// energy_status_unit (ESU) must be in [1, 31]; the unit register is
  /// initialized accordingly. Throws std::invalid_argument otherwise.
  RaplSimulator(MsrFile& msr, unsigned energy_status_unit = 14);

  /// Accounts dt seconds of the given power draw: package counts CPU + LLC-
  /// adjusted dynamic power plus the idle share attributable to the package
  /// (we fold the whole idle floor into package, as the wall and package
  /// rails differ only by PSU/fan losses the simulator does not model);
  /// PP0 counts core dynamic power only; DRAM counts memory power.
  void accumulate(const PowerBreakdown& power, double dt_s);

  [[nodiscard]] double joules_per_count() const noexcept {
    return joules_per_count_;
  }

 private:
  void add_energy(std::uint32_t address, double joules);

  MsrFile& msr_;
  double joules_per_count_;
  // Fractional counts not yet committed to the 32-bit registers.
  double pkg_residual_ = 0.0;
  double pp0_residual_ = 0.0;
  double dram_residual_ = 0.0;
};

/// Wrap-safe reader: turns successive counter snapshots into joules/watts.
class RaplReader {
 public:
  explicit RaplReader(const MsrFile& msr);

  /// Energy in joules accumulated in the domain since the previous call (or
  /// since construction on the first call), handling 32-bit wraparound under
  /// the standard single-wrap assumption.
  [[nodiscard]] double energy_since_last_j(RaplDomain domain);

  /// Average power over an interval: energy_since_last_j / dt. dt must be > 0.
  [[nodiscard]] double average_power_w(RaplDomain domain, double dt_s);

 private:
  const MsrFile& msr_;
  std::uint32_t last_pkg_;
  std::uint32_t last_pp0_;
  std::uint32_t last_dram_;
  double joules_per_count_;

  std::uint32_t& last_of(RaplDomain d);
};

}  // namespace vmp::sim
