// The assembled testbed: hypervisor + wall meter + RAPL counters.
//
// PhysicalMachine is the facade the examples and benches drive. Advancing it
// one sampling period (a) ticks the hypervisor (VM states, scheduling, true
// power), (b) produces a wall-meter frame, and (c) accumulates RAPL energy —
// exactly the three data paths of the paper's prototype (Fig. 8/9).
#pragma once

#include <cstdint>

#include "sim/dstat.hpp"
#include "sim/hypervisor.hpp"
#include "sim/msr.hpp"
#include "sim/power_meter.hpp"
#include "sim/rapl.hpp"

namespace vmp::sim {

class PhysicalMachine {
 public:
  /// Builds the testbed from a spec; all stochastic components (scheduler,
  /// meter noise) derive deterministically from `seed`.
  explicit PhysicalMachine(MachineSpec spec, std::uint64_t seed = 1);

  /// Underlying hypervisor for VM lifecycle management.
  [[nodiscard]] Hypervisor& hypervisor() noexcept { return hypervisor_; }
  [[nodiscard]] const Hypervisor& hypervisor() const noexcept {
    return hypervisor_;
  }

  /// Advances one sampling period and returns the wall-meter frame for it.
  /// dt must be > 0.
  MeterFrame step(double dt_s);

  /// True (noiseless) power of the current epoch.
  [[nodiscard]] const PowerBreakdown& true_power() const noexcept {
    return hypervisor_.current_power();
  }

  /// The machine's idle floor, as the operator would calibrate it once with
  /// all VMs stopped (paper Sec. VII-A treats it as the constant 138 W).
  [[nodiscard]] double idle_power_w() const noexcept {
    return hypervisor_.spec().idle_power_w;
  }

  [[nodiscard]] const MsrFile& msr() const noexcept { return msr_; }
  [[nodiscard]] double now() const noexcept { return hypervisor_.now(); }

 private:
  Hypervisor hypervisor_;
  SerialMeterPort meter_port_;
  MsrFile msr_;
  RaplSimulator rapl_;
};

}  // namespace vmp::sim
