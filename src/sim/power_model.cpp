#include "sim/power_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vmp::sim {

PowerBreakdown compute_power(const MachineSpec& spec, const Placement& placement,
                             std::span<const VmLoad> vm_loads) {
  const CpuTopology& topo = spec.topology;
  if (placement.size() != topo.logical_cpus())
    throw std::invalid_argument("compute_power: placement size != logical CPUs");

  PowerBreakdown p;
  p.idle = spec.idle_power_w;

  // Per-core SMT-contended dynamic power.
  const double pt = spec.thread_full_power_w;
  const std::size_t tpc = topo.threads_per_core();
  for (std::size_t core = 0; core < topo.physical_cores(); ++core) {
    const LogicalCpu t0 = topo.first_thread_of(core);
    const double e1 = placement[t0].effective_load();
    const double e2 = tpc == 2 ? placement[t0 + 1].effective_load() : 0.0;
    p.cpu_dynamic += pt * (e1 + e2) - spec.smt_contention * pt * std::min(e1, e2);
  }
  // Power-limited turbo: beyond the knee the package controller scales
  // frequency, so nominal load converts to power at a reduced slope.
  if (p.cpu_dynamic > spec.cpu_power_knee_w) {
    p.cpu_dynamic = spec.cpu_power_knee_w +
                    spec.cpu_saturation_slope *
                        (p.cpu_dynamic - spec.cpu_power_knee_w);
  }

  // Cross-VM LLC / memory-bandwidth coupling: every pair of distinct VMs
  // saves a little power proportional to their overlapping CPU demand
  // (both stall more, so neither's pipelines run as hot). Capped so the
  // machine's dynamic power can never go negative.
  double llc = 0.0;
  for (std::size_t i = 0; i < vm_loads.size(); ++i) {
    if (vm_loads[i].cpu_thread_demand <= 0.0) continue;
    for (std::size_t j = i + 1; j < vm_loads.size(); ++j) {
      llc += spec.llc_contention_w *
             std::min(vm_loads[i].cpu_thread_demand, vm_loads[j].cpu_thread_demand);
    }
  }
  p.llc_penalty = std::min(llc, 0.25 * p.cpu_dynamic);

  // Memory and disk: linear in the host-level component utilization.
  double mem_mb = 0.0;
  double disk = 0.0;
  for (const VmLoad& load : vm_loads) {
    mem_mb += load.memory_mb_used;
    disk += load.disk_util;
  }
  p.memory = spec.memory_power_w *
             std::min(1.0, mem_mb / static_cast<double>(spec.memory_mb));
  p.disk = spec.disk_power_w * std::min(1.0, disk);
  return p;
}

PowerBreakdown blended_power(const MachineSpec& spec,
                             std::span<const VcpuDemand> demands,
                             std::span<const VmLoad> vm_loads,
                             double pack_fraction) {
  if (pack_fraction < 0.0 || pack_fraction > 1.0)
    throw std::invalid_argument("blended_power: pack_fraction must be in [0,1]");
  const PowerBreakdown packed =
      compute_power(spec, place(spec.topology, demands, PlacementMode::kPack),
                    vm_loads);
  const PowerBreakdown spread =
      compute_power(spec, place(spec.topology, demands, PlacementMode::kSpread),
                    vm_loads);
  const double a = pack_fraction;
  PowerBreakdown p;
  p.idle = packed.idle;
  p.cpu_dynamic = a * packed.cpu_dynamic + (1.0 - a) * spread.cpu_dynamic;
  p.llc_penalty = a * packed.llc_penalty + (1.0 - a) * spread.llc_penalty;
  p.memory = packed.memory;  // placement-independent
  p.disk = packed.disk;
  return p;
}

PowerBreakdown expected_power(const MachineSpec& spec,
                              std::span<const VcpuDemand> demands,
                              std::span<const VmLoad> vm_loads) {
  return blended_power(spec, demands, vm_loads, spec.pack_affinity);
}

}  // namespace vmp::sim
