#include "sim/power_meter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vmp::sim {

PowerMeter::PowerMeter(double noise_sigma_w, double quantum_w, std::uint64_t seed)
    : noise_sigma_w_(noise_sigma_w), quantum_w_(quantum_w), rng_(seed) {
  if (noise_sigma_w < 0.0)
    throw std::invalid_argument("PowerMeter: noise sigma must be >= 0");
  if (quantum_w < 0.0)
    throw std::invalid_argument("PowerMeter: quantum must be >= 0");
}

double PowerMeter::read(double true_power_w) {
  double reading = true_power_w + rng_.normal(0.0, noise_sigma_w_);
  if (quantum_w_ > 0.0) reading = std::round(reading / quantum_w_) * quantum_w_;
  return std::max(reading, 0.0);
}

SerialMeterPort::SerialMeterPort(PowerMeter meter, double line_voltage_v)
    : meter_(std::move(meter)), line_voltage_v_(line_voltage_v) {
  if (!(line_voltage_v > 0.0))
    throw std::invalid_argument("SerialMeterPort: line voltage must be > 0");
}

MeterFrame SerialMeterPort::read_frame(double true_power_w, double dt_s) {
  if (!(dt_s > 0.0))
    throw std::invalid_argument("SerialMeterPort::read_frame: dt must be > 0");
  MeterFrame frame;
  frame.active_power_w = meter_.read(true_power_w);
  frame.voltage_v = line_voltage_v_;
  frame.current_a = frame.active_power_w / line_voltage_v_;
  energy_wh_ += frame.active_power_w * dt_s / 3600.0;
  frame.energy_wh = energy_wh_;
  return frame;
}

}  // namespace vmp::sim
