// CPU topology: sockets x cores x SMT threads.
//
// The hyper-threading structure is the root cause of the paper's Sec. III
// observation — two logical cores share one physical core's execution
// resources — so the simulator models logical CPUs explicitly and exposes the
// sibling relation the scheduler and power model need.
#pragma once

#include <cstddef>

namespace vmp::sim {

/// Index of a logical CPU (hardware thread), 0-based and dense.
using LogicalCpu = std::size_t;

/// Immutable machine CPU layout.
class CpuTopology {
 public:
  /// Throws std::invalid_argument if any dimension is zero or threads_per_core
  /// exceeds 2 (the model covers 2-way SMT, which is what HTT provides).
  CpuTopology(std::size_t sockets, std::size_t cores_per_socket,
              std::size_t threads_per_core);

  [[nodiscard]] std::size_t sockets() const noexcept { return sockets_; }
  [[nodiscard]] std::size_t cores_per_socket() const noexcept {
    return cores_per_socket_;
  }
  [[nodiscard]] std::size_t threads_per_core() const noexcept {
    return threads_per_core_;
  }
  [[nodiscard]] std::size_t physical_cores() const noexcept {
    return sockets_ * cores_per_socket_;
  }
  [[nodiscard]] std::size_t logical_cpus() const noexcept {
    return physical_cores() * threads_per_core_;
  }

  /// Physical core that hosts the given logical CPU. Logical CPUs are laid
  /// out core-major: logical CPUs {2c, 2c+1} are the siblings of core c (for
  /// 2-way SMT). Throws std::out_of_range for an invalid index.
  [[nodiscard]] std::size_t core_of(LogicalCpu cpu) const;

  /// Sibling logical CPU sharing the physical core, or the CPU itself when
  /// SMT is off (threads_per_core == 1).
  [[nodiscard]] LogicalCpu sibling_of(LogicalCpu cpu) const;

  /// First logical CPU of physical core `core`.
  [[nodiscard]] LogicalCpu first_thread_of(std::size_t core) const;

  [[nodiscard]] bool operator==(const CpuTopology&) const noexcept = default;

 private:
  std::size_t sockets_;
  std::size_t cores_per_socket_;
  std::size_t threads_per_core_;
};

}  // namespace vmp::sim
