// Scenario runner: drives a PhysicalMachine for a duration at a sampling rate
// and returns the aligned traces (meter power, true power, per-VM states) the
// evaluation consumes.
#pragma once

#include "sim/dstat.hpp"
#include "sim/physical_machine.hpp"
#include "util/time_series.hpp"

namespace vmp::sim {

/// Everything one experiment run produces, sample-aligned.
struct ScenarioTrace {
  util::TimeSeries measured_power{0.0, 1.0};  ///< wall meter, includes idle.
  util::TimeSeries true_power{0.0, 1.0};      ///< noiseless, includes idle.
  DstatCollector states;                      ///< per-sample VM observations.

  [[nodiscard]] std::size_t size() const noexcept {
    return measured_power.size();
  }

  /// Measured power with the idle floor deducted (paper Remark 1), clamped
  /// at zero (meter noise can dip an idle sample below the floor).
  [[nodiscard]] util::TimeSeries adjusted_measured(double idle_power_w) const;
};

/// Steps `machine` for duration_s in increments of period_s (default 1 Hz,
/// the prototype's sampling rate), recording one sample per step. Throws
/// std::invalid_argument on non-positive duration/period.
[[nodiscard]] ScenarioTrace run_scenario(PhysicalMachine& machine,
                                         double duration_s,
                                         double period_s = 1.0);

}  // namespace vmp::sim
