#include "sim/coalition_probe.hpp"

#include <stdexcept>

namespace vmp::sim {

CoalitionProbe::CoalitionProbe(MachineSpec spec,
                               std::vector<common::VmConfig> configs,
                               std::vector<double> intensities)
    : spec_(std::move(spec)), configs_(std::move(configs)),
      intensities_(std::move(intensities)) {
  spec_.validate();
  if (configs_.empty())
    throw std::invalid_argument("CoalitionProbe: empty VM fleet");
  if (configs_.size() > 30)
    throw std::invalid_argument("CoalitionProbe: at most 30 VMs supported");
  if (intensities_.empty()) {
    intensities_.assign(configs_.size(), 1.0);
  } else if (intensities_.size() != configs_.size()) {
    throw std::invalid_argument(
        "CoalitionProbe: intensities size must match fleet size");
  }
  std::size_t total_vcpus = 0;
  for (const auto& config : configs_) {
    config.validate();
    total_vcpus += config.vcpus;
  }
  if (total_vcpus > spec_.topology.logical_cpus())
    throw std::invalid_argument(
        "CoalitionProbe: fleet vCPUs exceed the machine's logical CPUs");
  for (double mu : intensities_)
    if (!(mu > 0.0))
      throw std::invalid_argument("CoalitionProbe: intensities must be > 0");
}

PowerBreakdown CoalitionProbe::breakdown(
    CoalitionMask mask, std::span<const common::StateVector> states) const {
  if (states.size() != configs_.size())
    throw std::invalid_argument("CoalitionProbe: states size != fleet size");
  if (configs_.size() < 32 && (mask >> configs_.size()) != 0)
    throw std::invalid_argument("CoalitionProbe: mask addresses unknown VMs");

  std::vector<VcpuDemand> demands;
  std::vector<VmLoad> loads(configs_.size());
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if ((mask & (CoalitionMask{1} << i)) == 0) continue;
    const common::StateVector state = states[i].clamped();
    const double mu = intensities_[i];
    // Idle vCPUs are not scheduled onto cores: they must not occupy logical
    // CPU slots or they would perturb other VMs' sibling pairings (and break
    // the Dummy axiom for zero-state VMs).
    if (state.cpu() > 0.0) {
      for (unsigned v = 0; v < configs_[i].vcpus; ++v)
        demands.push_back({i, state.cpu(), mu});
    }
    loads[i].cpu_thread_demand =
        state.cpu() * mu * static_cast<double>(configs_[i].vcpus);
    loads[i].memory_mb_used =
        state.memory() * static_cast<double>(configs_[i].memory_mb);
    loads[i].disk_util = state.disk_io();
  }
  return expected_power(spec_, demands, loads);
}

double CoalitionProbe::worth(CoalitionMask mask,
                             std::span<const common::StateVector> states) const {
  return breakdown(mask, states).adjusted();
}

}  // namespace vmp::sim
