#include "sim/cpu_topology.hpp"

#include <stdexcept>

namespace vmp::sim {

CpuTopology::CpuTopology(std::size_t sockets, std::size_t cores_per_socket,
                         std::size_t threads_per_core)
    : sockets_(sockets), cores_per_socket_(cores_per_socket),
      threads_per_core_(threads_per_core) {
  if (sockets == 0 || cores_per_socket == 0 || threads_per_core == 0)
    throw std::invalid_argument("CpuTopology: dimensions must be positive");
  if (threads_per_core > 2)
    throw std::invalid_argument("CpuTopology: at most 2-way SMT is modelled");
}

std::size_t CpuTopology::core_of(LogicalCpu cpu) const {
  if (cpu >= logical_cpus()) throw std::out_of_range("CpuTopology::core_of");
  return cpu / threads_per_core_;
}

LogicalCpu CpuTopology::sibling_of(LogicalCpu cpu) const {
  if (cpu >= logical_cpus()) throw std::out_of_range("CpuTopology::sibling_of");
  if (threads_per_core_ == 1) return cpu;
  return cpu ^ 1U;
}

LogicalCpu CpuTopology::first_thread_of(std::size_t core) const {
  if (core >= physical_cores())
    throw std::out_of_range("CpuTopology::first_thread_of");
  return core * threads_per_core_;
}

}  // namespace vmp::sim
