// Runtime representation of a virtual machine inside the hypervisor.
#pragma once

#include <cstdint>
#include <string>

#include "common/state_vector.hpp"
#include "common/vm_config.hpp"
#include "workload/workload.hpp"

namespace vmp::sim {

/// Hypervisor-assigned VM identifier, dense from 0 in creation order.
using VmId = std::uint32_t;

enum class VmState { kStopped, kRunning };

[[nodiscard]] const char* to_string(VmState s) noexcept;

/// A VM instance: immutable configuration plus mutable runtime state. Owned
/// by the Hypervisor; exposed const to observers.
class Vm {
 public:
  /// Throws std::invalid_argument on an invalid config or null workload.
  Vm(VmId id, common::VmConfig config, wl::WorkloadPtr workload);

  [[nodiscard]] VmId id() const noexcept { return id_; }
  [[nodiscard]] const common::VmConfig& config() const noexcept { return config_; }
  [[nodiscard]] VmState state() const noexcept { return state_; }
  [[nodiscard]] bool running() const noexcept {
    return state_ == VmState::kRunning;
  }

  /// The component state a dstat-style collector observes right now. While
  /// stopped the VM reports all-zero (an idle VM adds no load nor power —
  /// the paper's Dummy-axiom observation).
  [[nodiscard]] const common::StateVector& observed_state() const noexcept {
    return observed_state_;
  }

  [[nodiscard]] double power_intensity() const noexcept {
    return workload_->power_intensity();
  }
  [[nodiscard]] std::string_view workload_name() const noexcept {
    return workload_->name();
  }

  // Lifecycle and clocking — called by the Hypervisor only.
  void start(double now_s);
  void stop();
  /// Refreshes observed_state() from the workload at hypervisor time now_s
  /// (relative workload time = now_s - start time).
  void refresh(double now_s);
  /// Replaces the bound workload (takes effect at the next refresh). Throws
  /// std::invalid_argument on null.
  void bind_workload(wl::WorkloadPtr workload);

 private:
  VmId id_;
  common::VmConfig config_;
  wl::WorkloadPtr workload_;
  VmState state_ = VmState::kStopped;
  double started_at_s_ = 0.0;
  common::StateVector observed_state_{};
};

}  // namespace vmp::sim
