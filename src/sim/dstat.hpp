// dstat-style VM state collection (paper Sec. VI-C).
//
// The prototype samples every VM's component states once per second with the
// off-the-shelf dstat tool; DstatCollector is that sampling plane: it snapshots
// the hypervisor's per-VM observations at a fixed cadence and keeps the
// aligned records the estimators consume.
#pragma once

#include <vector>

#include "sim/hypervisor.hpp"

namespace vmp::sim {

/// All running VMs' states at one sampling instant.
struct DstatRecord {
  double time_s = 0.0;
  std::vector<VmObservation> observations;
};

class DstatCollector {
 public:
  /// Snapshots the hypervisor's current observations.
  void sample(const Hypervisor& hypervisor);

  [[nodiscard]] const std::vector<DstatRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  void clear() noexcept { records_.clear(); }

  /// The state series of one VM across all records; instants where the VM was
  /// not running are reported as all-zero states.
  [[nodiscard]] std::vector<common::StateVector> series_for(VmId id) const;

 private:
  std::vector<DstatRecord> records_;
};

}  // namespace vmp::sim
