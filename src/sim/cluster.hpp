// A small cluster of simulated hosts with VM placement.
//
// The paper's deployment context (Sec. I/II, Fig. 2) is a datacenter of many
// virtualized hosts, each metered and disaggregated independently. Cluster
// models that: a set of PhysicalMachines, first-fit or least-loaded VM
// placement by vCPU capacity, and lock-step clocking, so fleet-level
// examples/benches (per-tenant billing across hosts) have a substrate.
#pragma once

#include <memory>
#include <vector>

#include "sim/physical_machine.hpp"

namespace vmp::sim {

/// Index of a host within the cluster.
using HostIndex = std::size_t;

enum class PlacementPolicy {
  kFirstFit,     ///< first host with enough free logical CPUs.
  kLeastLoaded,  ///< host with the most free logical CPUs (balance).
};

[[nodiscard]] const char* to_string(PlacementPolicy policy) noexcept;

class Cluster {
 public:
  explicit Cluster(PlacementPolicy policy = PlacementPolicy::kFirstFit);

  /// Adds a host; the returned index is stable for the cluster's lifetime.
  HostIndex add_host(MachineSpec spec, std::uint64_t seed);

  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }
  [[nodiscard]] PhysicalMachine& host(HostIndex index);
  [[nodiscard]] const PhysicalMachine& host(HostIndex index) const;

  /// Where a launched VM lives.
  struct VmLocation {
    HostIndex host = 0;
    VmId vm = 0;
  };

  /// Places, creates, and starts a VM per the policy. Throws
  /// std::runtime_error when no host has capacity, std::invalid_argument on
  /// a bad config / null workload.
  VmLocation launch(const common::VmConfig& config, wl::WorkloadPtr workload);

  /// Free logical CPUs of a host right now.
  [[nodiscard]] std::size_t free_vcpus(HostIndex index) const;

  /// Advances every host by dt seconds (lock-step) and returns each host's
  /// meter frame, indexed by host.
  std::vector<MeterFrame> step(double dt_s);

  /// Sum of all hosts' true power draw, watts.
  [[nodiscard]] double total_true_power_w() const noexcept;

 private:
  PlacementPolicy policy_;
  std::vector<std::unique_ptr<PhysicalMachine>> hosts_;
};

}  // namespace vmp::sim
