#include "sim/physical_machine.hpp"

namespace vmp::sim {

PhysicalMachine::PhysicalMachine(MachineSpec spec, std::uint64_t seed)
    : hypervisor_(std::move(spec), seed),
      meter_port_(PowerMeter(hypervisor_.spec().meter_noise_sigma_w,
                             hypervisor_.spec().meter_quantum_w, seed ^ 0x9E37),
                  230.0),
      rapl_(msr_) {}

MeterFrame PhysicalMachine::step(double dt_s) {
  hypervisor_.tick(dt_s);
  const PowerBreakdown& power = hypervisor_.current_power();
  rapl_.accumulate(power, dt_s);
  return meter_port_.read_frame(power.total(), dt_s);
}

}  // namespace vmp::sim
