#include "sim/hypervisor.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace vmp::sim {

Hypervisor::Hypervisor(MachineSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  spec_.validate();
  pack_fraction_ = spec_.pack_affinity;
  placement_.assign(spec_.topology.logical_cpus(), ThreadAssignment{});
  power_ = compute_power(spec_, placement_, {});
}

VmId Hypervisor::create_vm(common::VmConfig config, wl::WorkloadPtr workload) {
  const auto id = static_cast<VmId>(vms_.size());
  vms_.emplace_back(id, std::move(config), std::move(workload));
  VMP_LOG_INFO("created VM %u (%s, %u vCPU)", id,
               vms_.back().config().type_name.c_str(), vms_.back().config().vcpus);
  return id;
}

void Hypervisor::start_vm(VmId id) {
  if (id >= vms_.size()) throw std::out_of_range("Hypervisor::start_vm: bad id");
  Vm& vm = vms_[id];
  if (vm.running()) return;
  const std::size_t would_run = running_vcpus() + vm.config().vcpus;
  if (would_run > spec_.topology.logical_cpus())
    throw std::runtime_error(
        "Hypervisor::start_vm: host has insufficient logical CPUs (no "
        "overcommit)");
  vm.start(now_s_);
  recompute_epoch();
}

void Hypervisor::stop_vm(VmId id) {
  if (id >= vms_.size()) throw std::out_of_range("Hypervisor::stop_vm: bad id");
  vms_[id].stop();
  recompute_epoch();
}

void Hypervisor::bind_workload(VmId id, wl::WorkloadPtr workload) {
  if (id >= vms_.size())
    throw std::out_of_range("Hypervisor::bind_workload: bad id");
  vms_[id].bind_workload(std::move(workload));
  vms_[id].refresh(now_s_);
  recompute_epoch();
}

const Vm& Hypervisor::vm(VmId id) const {
  if (id >= vms_.size()) throw std::out_of_range("Hypervisor::vm: bad id");
  return vms_[id];
}

std::size_t Hypervisor::running_vcpus() const noexcept {
  std::size_t total = 0;
  for (const Vm& vm : vms_)
    if (vm.running()) total += vm.config().vcpus;
  return total;
}

void Hypervisor::tick(double dt) {
  if (!(dt > 0.0)) throw std::invalid_argument("Hypervisor::tick: dt must be > 0");
  now_s_ += dt;
  for (Vm& vm : vms_) vm.refresh(now_s_);
  recompute_epoch();
}

std::vector<VmObservation> Hypervisor::observations() const {
  std::vector<VmObservation> out;
  out.reserve(vms_.size());
  for (const Vm& vm : vms_) {
    if (!vm.running()) continue;
    out.push_back({vm.id(), vm.config().type_id, vm.observed_state()});
  }
  return out;
}

void Hypervisor::recompute_epoch() {
  std::vector<VcpuDemand> demands;
  std::vector<VmLoad> loads(vms_.size());
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    const Vm& vm = vms_[i];
    if (!vm.running()) continue;
    const common::StateVector& s = vm.observed_state();
    const double intensity = vm.power_intensity();
    // Idle vCPUs stay off the cores (see CoalitionProbe): they draw nothing
    // and must not displace busy threads' placement.
    if (s.cpu() > 0.0) {
      for (unsigned v = 0; v < vm.config().vcpus; ++v)
        demands.push_back({i, s.cpu(), intensity});
    }
    loads[i].cpu_thread_demand =
        s.cpu() * intensity * static_cast<double>(vm.config().vcpus);
    loads[i].memory_mb_used =
        s.memory() * static_cast<double>(vm.config().memory_mb);
    loads[i].disk_util = s.disk_io();
  }
  // Realized pack fraction for this epoch: nominal affinity plus sub-second
  // scheduling variability, clamped to [0, 1].
  pack_fraction_ = std::clamp(
      spec_.pack_affinity + rng_.normal(0.0, spec_.affinity_jitter), 0.0, 1.0);
  placement_ = place(spec_.topology, demands,
                     pack_fraction_ >= 0.5 ? PlacementMode::kPack
                                           : PlacementMode::kSpread);
  power_ = blended_power(spec_, demands, loads, pack_fraction_);
}

}  // namespace vmp::sim
