// Physical-machine parameterization and the two measurement platforms of the
// paper (Sec. III-A: an Intel Pentium desktop and the Xeon prototype server).
//
// Calibration targets, taken from the paper's measurements:
//   * Xeon: idle power ~138 W; one fully-loaded 1-vCPU VM adds ~13 W; a
//     second identical VM packed onto the sibling hyper-thread adds only
//     ~7 W, a 46.15 % power-model error. Two mechanisms share that decline:
//     SMT execution-unit contention (gamma) and the cross-VM LLC/memory-
//     bandwidth coupling, so gamma = 0.4615 - llc_w/p_t = 0.4425.
//   * Pentium: the same experiment yields a 25.22 % error
//     => gamma = 0.2522 - 0.15/9.0 = 0.2355.
#pragma once

#include <string>

#include "sim/cpu_topology.hpp"

namespace vmp::sim {

/// All physical parameters of a simulated server.
struct MachineSpec {
  std::string name;
  CpuTopology topology{1, 1, 2};

  // --- power model ---
  double idle_power_w = 138.0;       ///< stable baseline (paper Remark 1).
  double thread_full_power_w = 13.15;///< dynamic power of one busy thread (p_t).
  double smt_contention = 0.4425;    ///< fraction of the overlapping sibling
                                     ///< load whose power is saved (gamma).
  double llc_contention_w = 0.25;     ///< cross-VM shared-cache/membw coupling,
                                     ///< watts per unit overlapping demand pair.
  /// Power-limited turbo: beyond this CPU dynamic power the package power
  /// controller scales frequency down, so additional load adds only
  /// cpu_saturation_slope watts per nominal watt. This is why the summed
  /// per-VM isolation models (trained far below the knee) overshoot the
  /// measured power so badly at machine saturation — the paper's Fig. 11
  /// reports a 56.43 % aggregate error for the 5-VM full-load mix.
  double cpu_power_knee_w = 105.0;
  double cpu_saturation_slope = 0.65;

  double memory_power_w = 12.0;      ///< max DRAM power above idle (Sec. VI-C).
  double disk_power_w = 10.0;        ///< max disk power above idle (Sec. VI-C).
  unsigned memory_mb = 32768;        ///< host DRAM capacity.

  // --- measurement chain ---
  double meter_noise_sigma_w = 0.4;  ///< wall-meter Gaussian noise.
  double meter_quantum_w = 0.1;      ///< meter display quantization.

  // --- scheduling behaviour ---
  /// Time-averaged fraction of a sampling interval during which the
  /// hypervisor's scheduler co-schedules sibling hyper-threads (pack) rather
  /// than spreading across idle cores. Within one 1 Hz sample the OS migrates
  /// threads many times, so sampled power is the pack/spread *blend* at this
  /// fraction rather than one placement or the other. Calibrated so the
  /// fitted per-type isolation models land near the paper's Table IV
  /// coefficients.
  double pack_affinity = 0.40;

  /// Per-sample standard deviation of the realized pack fraction (sub-second
  /// scheduling variability visible at 1 Hz).
  double affinity_jitter = 0.06;

  /// Throws std::invalid_argument when a parameter is outside its domain.
  void validate() const;
};

/// The paper's prototype server: Intel Xeon, 8 physical cores x 2 HT threads
/// (16 logical CPUs), 32 GB RAM, idle 138 W.
[[nodiscard]] MachineSpec xeon_prototype();

/// The paper's second platform: a Pentium desktop with one hyper-threaded
/// core pair and a shallower SMT contention (25.22 %).
[[nodiscard]] MachineSpec pentium_desktop();

}  // namespace vmp::sim
