#include "sim/runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vmp::sim {

util::TimeSeries ScenarioTrace::adjusted_measured(double idle_power_w) const {
  util::TimeSeries out(measured_power.start(), measured_power.period());
  out.reserve(measured_power.size());
  for (std::size_t i = 0; i < measured_power.size(); ++i)
    out.push(std::max(0.0, measured_power[i] - idle_power_w));
  return out;
}

ScenarioTrace run_scenario(PhysicalMachine& machine, double duration_s,
                           double period_s) {
  if (!(duration_s > 0.0))
    throw std::invalid_argument("run_scenario: duration must be > 0");
  if (!(period_s > 0.0))
    throw std::invalid_argument("run_scenario: period must be > 0");

  const auto samples = static_cast<std::size_t>(std::round(duration_s / period_s));
  ScenarioTrace trace{util::TimeSeries(machine.now() + period_s, period_s),
                      util::TimeSeries(machine.now() + period_s, period_s),
                      {}};
  for (std::size_t i = 0; i < samples; ++i) {
    const MeterFrame frame = machine.step(period_s);
    trace.measured_power.push(frame.active_power_w);
    trace.true_power.push(machine.true_power().total());
    trace.states.sample(machine.hypervisor());
  }
  return trace;
}

}  // namespace vmp::sim
