#include "sim/scheduler.hpp"

#include <limits>
#include <stdexcept>

namespace vmp::sim {

const char* to_string(PlacementMode mode) noexcept {
  switch (mode) {
    case PlacementMode::kSpread: return "spread";
    case PlacementMode::kPack: return "pack";
  }
  return "?";
}

Placement place(const CpuTopology& topology, std::span<const VcpuDemand> demands,
                PlacementMode mode) {
  const std::size_t n_cpus = topology.logical_cpus();
  if (demands.size() > n_cpus)
    throw std::invalid_argument(
        "place: demanded vCPUs exceed logical CPUs (host overcommit is not "
        "modelled)");

  Placement placement(n_cpus);
  for (const VcpuDemand& demand : demands) {
    // Score every free logical CPU; lower is better.
    std::size_t best = ThreadAssignment::kUnassigned;
    std::size_t best_score = std::numeric_limits<std::size_t>::max();
    for (std::size_t cpu = 0; cpu < n_cpus; ++cpu) {
      if (placement[cpu].busy()) continue;
      const bool sibling_busy = placement[topology.sibling_of(cpu)].busy();
      // kPack: prefer joining a half-busy core (sibling_busy first);
      // kSpread: prefer an empty core. Ties resolve to the lowest CPU index
      // so placement is fully deterministic for a given mode.
      const std::size_t affinity_rank =
          (mode == PlacementMode::kPack) == sibling_busy ? 0U : 1U;
      const std::size_t score = affinity_rank * n_cpus + cpu;
      if (score < best_score) {
        best_score = score;
        best = cpu;
      }
    }
    // A free CPU always exists because demands.size() <= n_cpus.
    placement[best] = ThreadAssignment{demand.vm_index, demand.utilization,
                                       demand.intensity};
  }
  return placement;
}

StochasticScheduler::StochasticScheduler(double pack_affinity, std::uint64_t seed)
    : pack_affinity_(pack_affinity), rng_(seed) {
  if (pack_affinity < 0.0 || pack_affinity > 1.0)
    throw std::invalid_argument(
        "StochasticScheduler: pack_affinity must be in [0, 1]");
}

Placement StochasticScheduler::schedule(const CpuTopology& topology,
                                        std::span<const VcpuDemand> demands) {
  last_mode_ = rng_.bernoulli(pack_affinity_) ? PlacementMode::kPack
                                              : PlacementMode::kSpread;
  return place(topology, demands, last_mode_);
}

}  // namespace vmp::sim
