#include "sim/cluster.hpp"

#include <stdexcept>

namespace vmp::sim {

const char* to_string(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kFirstFit: return "first-fit";
    case PlacementPolicy::kLeastLoaded: return "least-loaded";
  }
  return "?";
}

Cluster::Cluster(PlacementPolicy policy) : policy_(policy) {}

HostIndex Cluster::add_host(MachineSpec spec, std::uint64_t seed) {
  hosts_.push_back(std::make_unique<PhysicalMachine>(std::move(spec), seed));
  return hosts_.size() - 1;
}

PhysicalMachine& Cluster::host(HostIndex index) {
  if (index >= hosts_.size()) throw std::out_of_range("Cluster::host");
  return *hosts_[index];
}

const PhysicalMachine& Cluster::host(HostIndex index) const {
  if (index >= hosts_.size()) throw std::out_of_range("Cluster::host");
  return *hosts_[index];
}

std::size_t Cluster::free_vcpus(HostIndex index) const {
  const Hypervisor& hv = host(index).hypervisor();
  return hv.spec().topology.logical_cpus() - hv.running_vcpus();
}

Cluster::VmLocation Cluster::launch(const common::VmConfig& config,
                                    wl::WorkloadPtr workload) {
  config.validate();
  if (hosts_.empty())
    throw std::runtime_error("Cluster::launch: cluster has no hosts");

  HostIndex chosen = hosts_.size();
  std::size_t best_free = 0;
  for (HostIndex h = 0; h < hosts_.size(); ++h) {
    const std::size_t free = free_vcpus(h);
    if (free < config.vcpus) continue;
    if (policy_ == PlacementPolicy::kFirstFit) {
      chosen = h;
      break;
    }
    if (free > best_free) {  // kLeastLoaded: maximize headroom
      best_free = free;
      chosen = h;
    }
  }
  if (chosen == hosts_.size())
    throw std::runtime_error(
        "Cluster::launch: no host has capacity for this VM");

  Hypervisor& hv = hosts_[chosen]->hypervisor();
  const VmId id = hv.create_vm(config, std::move(workload));
  hv.start_vm(id);
  return {chosen, id};
}

std::vector<MeterFrame> Cluster::step(double dt_s) {
  std::vector<MeterFrame> frames;
  frames.reserve(hosts_.size());
  for (auto& host_ptr : hosts_) frames.push_back(host_ptr->step(dt_s));
  return frames;
}

double Cluster::total_true_power_w() const noexcept {
  double total = 0.0;
  for (const auto& host_ptr : hosts_) total += host_ptr->true_power().total();
  return total;
}

}  // namespace vmp::sim
