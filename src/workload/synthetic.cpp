#include "workload/synthetic.hpp"

#include <cmath>
#include <stdexcept>

namespace vmp::wl {

SyntheticRandomCpu::SyntheticRandomCpu(std::uint64_t seed, double dwell_s,
                                       double lo, double hi)
    : rng_(seed), dwell_s_(dwell_s), lo_(lo), hi_(hi), level_(0.0) {
  if (!(dwell_s > 0.0))
    throw std::invalid_argument("SyntheticRandomCpu: dwell must be > 0");
  if (lo < 0.0 || hi > 1.0 || lo > hi)
    throw std::invalid_argument("SyntheticRandomCpu: need 0 <= lo <= hi <= 1");
  level_ = rng_.uniform(lo_, hi_);
}

common::StateVector SyntheticRandomCpu::demand(double t) {
  const auto epoch = static_cast<std::int64_t>(std::floor(t / dwell_s_));
  if (epoch != epoch_) {
    // Redraw once per dwell epoch. Epochs may be skipped when sampled
    // coarsely; each query draws a fresh level for its epoch, which keeps the
    // marginal distribution uniform regardless of the sampling cadence.
    level_ = rng_.uniform(lo_, hi_);
    epoch_ = epoch;
  }
  return common::StateVector::cpu_only(level_);
}

SyntheticRandomState::SyntheticRandomState(std::uint64_t seed, double dwell_s)
    : rng_(seed), dwell_s_(dwell_s) {
  if (!(dwell_s > 0.0))
    throw std::invalid_argument("SyntheticRandomState: dwell must be > 0");
}

common::StateVector SyntheticRandomState::demand(double t) {
  const auto epoch = static_cast<std::int64_t>(std::floor(t / dwell_s_));
  if (epoch != epoch_) {
    state_[common::Component::kCpu] = rng_.uniform();
    state_[common::Component::kMemory] = rng_.uniform();
    state_[common::Component::kDiskIo] = rng_.uniform(0.0, 0.5);
    epoch_ = epoch;
  }
  return state_;
}

}  // namespace vmp::wl
