// Workload interface: what a VM is asked to do over time.
//
// A workload produces, for any simulation time t, the VM's demanded component
// utilization (the state the guest OS would report through dstat) and carries
// a *power intensity*: the relative energy cost per unit of CPU utilization
// of its instruction mix. Intensity is what makes two workloads at identical
// OS-visible utilization draw different power (fp-heavy SPEC codes vs integer
// codes) — the very effect that breaks purely utilization-linear models and
// gives the paper's Fig. 10 its residual errors.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/state_vector.hpp"

namespace vmp::wl {

/// Abstract workload bound to one VM.
///
/// demand() may be stateful (random workloads advance their generator), but
/// implementations must be *monotone-replayable*: calling demand with
/// non-decreasing t values yields the intended trace. Querying the past is
/// not required to be consistent.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Demanded component utilization at time t (seconds since VM start).
  /// Coordinates are fractions in [0, 1].
  [[nodiscard]] virtual common::StateVector demand(double t) = 0;

  /// Relative power cost per unit CPU utilization (1.0 = the synthetic
  /// calibration mix used for offline model training).
  [[nodiscard]] virtual double power_intensity() const noexcept { return 1.0; }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

}  // namespace vmp::wl
