// Trace replay: drive a VM from a recorded sequence of state vectors.
//
// Used to (a) replay dstat captures through the simulator and (b) pin exact
// states in tests and in the coalition-probe oracle.
#pragma once

#include <vector>

#include "workload/workload.hpp"

namespace vmp::wl {

/// Replays a fixed-period sequence of states; holds the last state after the
/// trace ends (or loops, if requested).
class TraceWorkload final : public Workload {
 public:
  /// Throws std::invalid_argument on an empty trace or period <= 0.
  TraceWorkload(std::vector<common::StateVector> states, double period_s,
                bool loop = false, double intensity = 1.0,
                std::string name = "trace");

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] double power_intensity() const noexcept override {
    return intensity_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t length() const noexcept { return states_.size(); }

 private:
  std::vector<common::StateVector> states_;
  double period_s_;
  bool loop_;
  double intensity_;
  std::string name_;
};

}  // namespace vmp::wl
