#include "workload/spec_suite.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vmp::wl {

using common::Component;
using common::StateVector;

const char* to_string(SpecBenchmark b) noexcept {
  switch (b) {
    case SpecBenchmark::kGcc: return "gcc";
    case SpecBenchmark::kGobmk: return "gobmk";
    case SpecBenchmark::kSjeng: return "sjeng";
    case SpecBenchmark::kOmnetpp: return "omnetpp";
    case SpecBenchmark::kNamd: return "namd";
    case SpecBenchmark::kWrf: return "wrf";
    case SpecBenchmark::kTonto: return "tonto";
  }
  return "?";
}

std::vector<SpecBenchmark> spec_subset() {
  return {SpecBenchmark::kGcc,   SpecBenchmark::kGobmk, SpecBenchmark::kSjeng,
          SpecBenchmark::kOmnetpp, SpecBenchmark::kNamd, SpecBenchmark::kWrf,
          SpecBenchmark::kTonto};
}

SpecProfile spec_profile(SpecBenchmark b) {
  // Intensities are anchored to the synthetic calibration mix (1.0). SPECint
  // mixes land a few percent below, SPECfp a few percent above; memory-bound
  // codes also carry memory-component state. The spreads are modest on
  // purpose: they generate the paper's few-percent Fig. 10 residuals rather
  // than implausible 2x gaps.
  switch (b) {
    case SpecBenchmark::kGcc:
      return {"gcc", 0.98, 0.82, 0.15, 23.0, 0.28, 0.02, 0.02};
    case SpecBenchmark::kGobmk:
      return {"gobmk", 0.985, 0.93, 0.06, 31.0, 0.18, 0.01, 0.015};
    case SpecBenchmark::kSjeng:
      return {"sjeng", 0.99, 0.95, 0.04, 29.0, 0.12, 0.01, 0.01};
    case SpecBenchmark::kOmnetpp:
      return {"omnetpp", 0.955, 0.78, 0.12, 17.0, 0.42, 0.01, 0.025};
    case SpecBenchmark::kNamd:
      return {"namd", 1.02, 0.97, 0.03, 41.0, 0.08, 0.01, 0.01};
    case SpecBenchmark::kWrf:
      return {"wrf", 1.01, 0.88, 0.10, 19.0, 0.31, 0.01, 0.02};
    case SpecBenchmark::kTonto:
      return {"tonto", 1.02, 0.94, 0.05, 37.0, 0.10, 0.02, 0.015};
  }
  throw std::invalid_argument("spec_profile: unknown benchmark");
}

SpecWorkload::SpecWorkload(SpecBenchmark benchmark, std::uint64_t seed)
    : profile_(spec_profile(benchmark)), rng_(seed) {
  phase_level_ = profile_.base_cpu;
}

StateVector SpecWorkload::demand(double t) {
  const auto epoch = static_cast<std::int64_t>(std::floor(t / profile_.phase_period_s));
  if (epoch != phase_epoch_) {
    phase_level_ =
        profile_.base_cpu + rng_.uniform(-profile_.cpu_swing, profile_.cpu_swing);
    phase_epoch_ = epoch;
  }
  const double cpu =
      std::clamp(phase_level_ + rng_.normal(0.0, profile_.jitter), 0.0, 1.0);

  StateVector s;
  s[Component::kCpu] = cpu;
  s[Component::kMemory] = profile_.memory_util;
  s[Component::kDiskIo] = profile_.disk_util;
  return s;
}

WorkloadPtr make_spec_workload(SpecBenchmark b, std::uint64_t seed) {
  return std::make_unique<SpecWorkload>(b, seed);
}

}  // namespace vmp::wl
