#include "workload/workload.hpp"

// The Workload interface itself is header-only; this translation unit anchors
// the vtable (key function pattern) so every user does not emit it.
namespace vmp::wl {}  // namespace vmp::wl
