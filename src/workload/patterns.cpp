#include "workload/patterns.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vmp::wl {

using common::StateVector;

OnOffWorkload::OnOffWorkload(double busy_util, double on_s, double off_s,
                             double idle_util, double intensity)
    : busy_util_(busy_util), idle_util_(idle_util), on_s_(on_s), off_s_(off_s),
      intensity_(intensity) {
  if (busy_util < 0.0 || busy_util > 1.0 || idle_util < 0.0 || idle_util > 1.0)
    throw std::invalid_argument("OnOffWorkload: utilizations must be in [0,1]");
  if (!(on_s > 0.0) || !(off_s > 0.0))
    throw std::invalid_argument("OnOffWorkload: phase lengths must be > 0");
  if (!(intensity > 0.0))
    throw std::invalid_argument("OnOffWorkload: intensity must be > 0");
}

StateVector OnOffWorkload::demand(double t) {
  if (t < 0.0) t = 0.0;
  const double phase = std::fmod(t, on_s_ + off_s_);
  return StateVector::cpu_only(phase < on_s_ ? busy_util_ : idle_util_);
}

PoissonBurstWorkload::PoissonBurstWorkload(double rate_per_s,
                                           double util_per_request,
                                           std::uint64_t seed, double intensity)
    : rate_per_s_(rate_per_s), util_per_request_(util_per_request), rng_(seed),
      intensity_(intensity) {
  if (!(rate_per_s > 0.0))
    throw std::invalid_argument("PoissonBurstWorkload: rate must be > 0");
  if (!(util_per_request > 0.0))
    throw std::invalid_argument(
        "PoissonBurstWorkload: util_per_request must be > 0");
  if (!(intensity > 0.0))
    throw std::invalid_argument("PoissonBurstWorkload: intensity must be > 0");
}

StateVector PoissonBurstWorkload::demand(double t) {
  const auto second = static_cast<std::int64_t>(std::floor(t));
  if (second != last_second_) {
    // Knuth's bounded Poisson sampler — rate_per_s is small (tens at most)
    // in every realistic configuration, so the loop is short.
    const double limit = std::exp(-rate_per_s_);
    double product = rng_.uniform();
    unsigned arrivals = 0;
    while (product > limit && arrivals < 10000) {
      product *= rng_.uniform();
      ++arrivals;
    }
    level_ = std::min(1.0, static_cast<double>(arrivals) * util_per_request_);
    last_second_ = second;
  }
  return StateVector::cpu_only(level_);
}

DiurnalWorkload::DiurnalWorkload(double night_util, double peak_util,
                                 double day_length_s, std::uint64_t seed,
                                 double intensity)
    : night_util_(night_util), peak_util_(peak_util),
      day_length_s_(day_length_s), rng_(seed), intensity_(intensity) {
  if (night_util < 0.0 || peak_util > 1.0 || night_util > peak_util)
    throw std::invalid_argument(
        "DiurnalWorkload: need 0 <= night <= peak <= 1");
  if (!(day_length_s > 0.0))
    throw std::invalid_argument("DiurnalWorkload: day length must be > 0");
  if (!(intensity > 0.0))
    throw std::invalid_argument("DiurnalWorkload: intensity must be > 0");
}

StateVector DiurnalWorkload::demand(double t) {
  // Raised cosine with trough at t=0 ("midnight") and crest mid-"day".
  const double phase = 2.0 * std::numbers::pi * t / day_length_s_;
  const double base =
      night_util_ +
      (peak_util_ - night_util_) * 0.5 * (1.0 - std::cos(phase));
  const double noisy = base + rng_.normal(0.0, 0.02);
  return StateVector::cpu_only(std::clamp(noisy, 0.0, 1.0));
}

}  // namespace vmp::wl
