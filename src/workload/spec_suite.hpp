// SPEC CPU2006-like validation workloads (paper Table V).
//
// The paper validates on a subset of SPEC CPU 2006: four SPECint codes (gcc,
// gobmk, sjeng, omnetpp) and three SPECfp codes (namd, wrf, tonto). The real
// binaries are not available offline, so each benchmark is modelled as a
// phase-structured CPU-utilization profile with a characteristic *power
// intensity* for its instruction mix:
//
//   * SPECint codes run slightly below the synthetic mix's power per unit
//     utilization (integer pipelines, µ < 1);
//   * SPECfp codes run hotter (wide floating-point units, µ > 1);
//   * memory-bound codes (omnetpp, wrf) add memory-component state and stall
//     phases that depress effective intensity.
//
// These per-benchmark signatures are what the VHC linear fit — trained on the
// synthetic mix — cannot represent exactly, producing the few-percent
// validation residuals of Fig. 10 just as on the real testbed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace vmp::wl {

enum class SpecBenchmark {
  kGcc,      ///< SPECint: compiler.
  kGobmk,    ///< SPECint: AI, go.
  kSjeng,    ///< SPECint: AI, chess.
  kOmnetpp,  ///< SPECint: discrete event simulation (memory bound).
  kNamd,     ///< SPECfp: molecular dynamics.
  kWrf,      ///< SPECfp: weather prediction.
  kTonto,    ///< SPECfp: quantum chemistry.
};

[[nodiscard]] const char* to_string(SpecBenchmark b) noexcept;

/// All seven benchmarks of Table V, SPECint first.
[[nodiscard]] std::vector<SpecBenchmark> spec_subset();

/// Static profile of one modelled benchmark.
struct SpecProfile {
  std::string name;
  double power_intensity;   ///< relative power per unit utilization.
  double base_cpu;          ///< mean CPU utilization while active.
  double cpu_swing;         ///< amplitude of per-phase CPU variation.
  double phase_period_s;    ///< duration of a compute phase.
  double memory_util;       ///< steady memory-component state.
  double disk_util;         ///< steady disk-I/O component state.
  double jitter;            ///< per-second utilization noise sigma.
};

[[nodiscard]] SpecProfile spec_profile(SpecBenchmark b);

/// Workload realization of a SpecProfile: phase-structured utilization with
/// per-phase plateaus, small per-second jitter, and the benchmark's intensity.
class SpecWorkload final : public Workload {
 public:
  SpecWorkload(SpecBenchmark benchmark, std::uint64_t seed);

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] double power_intensity() const noexcept override {
    return profile_.power_intensity;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return profile_.name;
  }
  [[nodiscard]] const SpecProfile& profile() const noexcept { return profile_; }

 private:
  SpecProfile profile_;
  util::Rng rng_;
  double phase_level_ = 0.0;
  std::int64_t phase_epoch_ = -1;
};

/// Factory: a fresh workload for the given benchmark.
[[nodiscard]] WorkloadPtr make_spec_workload(SpecBenchmark b, std::uint64_t seed);

}  // namespace vmp::wl
