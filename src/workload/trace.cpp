#include "workload/trace.hpp"

#include <cmath>
#include <stdexcept>

namespace vmp::wl {

TraceWorkload::TraceWorkload(std::vector<common::StateVector> states,
                             double period_s, bool loop, double intensity,
                             std::string name)
    : states_(std::move(states)), period_s_(period_s), loop_(loop),
      intensity_(intensity), name_(std::move(name)) {
  if (states_.empty()) throw std::invalid_argument("TraceWorkload: empty trace");
  if (!(period_s > 0.0))
    throw std::invalid_argument("TraceWorkload: period must be > 0");
  if (!(intensity > 0.0))
    throw std::invalid_argument("TraceWorkload: intensity must be > 0");
}

common::StateVector TraceWorkload::demand(double t) {
  if (t < 0.0) t = 0.0;
  auto idx = static_cast<std::size_t>(std::floor(t / period_s_));
  if (loop_) {
    idx %= states_.size();
  } else if (idx >= states_.size()) {
    idx = states_.size() - 1;
  }
  return states_[idx];
}

}  // namespace vmp::wl
