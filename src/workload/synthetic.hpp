// The paper's calibration workloads (Sec. III-B, Table V).
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace vmp::wl {

/// The paper's synthetic benchmark that "randomly consumes CPU cycles": the
/// CPU utilization is redrawn uniformly from [lo, hi] every `dwell_s` seconds.
/// Used to measure the v(S, C) samples during offline data collection; its
/// instruction mix defines the unit power intensity.
class SyntheticRandomCpu final : public Workload {
 public:
  /// Throws std::invalid_argument if dwell_s <= 0 or [lo, hi] not a valid
  /// sub-interval of [0, 1].
  explicit SyntheticRandomCpu(std::uint64_t seed, double dwell_s = 5.0,
                              double lo = 0.0, double hi = 1.0);

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "synthetic_random_cpu";
  }

 private:
  util::Rng rng_;
  double dwell_s_;
  double lo_;
  double hi_;
  double level_;
  std::int64_t epoch_ = -1;
};

/// Extended calibration workload: redraws *all* component states (CPU,
/// memory, disk I/O) uniformly every dwell epoch. Used when the offline
/// collector should give the regression coverage over non-CPU components too
/// (the paper's collector only randomizes CPU; see CollectionOptions).
class SyntheticRandomState final : public Workload {
 public:
  explicit SyntheticRandomState(std::uint64_t seed, double dwell_s = 5.0);

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "synthetic_random_state";
  }

 private:
  util::Rng rng_;
  double dwell_s_;
  common::StateVector state_{};
  std::int64_t epoch_ = -1;
};

/// The Sec. III-C floating-point microbenchmark
/// ('echo "scale=6000; 4*a(1)" | bc -l -q'): pins one vCPU at 100 % CPU with
/// everything else idle. This is the job used to expose the 13 W -> +7 W
/// hyper-threading interaction (Fig. 4).
class BcFloatLoop final : public Workload {
 public:
  [[nodiscard]] common::StateVector demand(double) override {
    return common::StateVector::cpu_only(1.0);
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "bc_float_loop";
  }
};

}  // namespace vmp::wl
