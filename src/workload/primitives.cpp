#include "workload/primitives.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vmp::wl {

using common::Component;
using common::StateVector;

ConstantWorkload::ConstantWorkload(StateVector state, double intensity,
                                   std::string name)
    : state_(state), intensity_(intensity), name_(std::move(name)) {
  if (!state.is_normalized())
    throw std::invalid_argument("ConstantWorkload: state must be in [0,1]^k");
  if (!(intensity > 0.0))
    throw std::invalid_argument("ConstantWorkload: intensity must be > 0");
}

StepWorkload::StepWorkload(std::vector<Phase> phases, bool loop, double intensity,
                           std::string name)
    : phases_(std::move(phases)), loop_(loop), total_(0.0), intensity_(intensity),
      name_(std::move(name)) {
  if (phases_.empty())
    throw std::invalid_argument("StepWorkload: empty schedule");
  if (!(intensity > 0.0))
    throw std::invalid_argument("StepWorkload: intensity must be > 0");
  for (const auto& phase : phases_) {
    if (!(phase.duration_s > 0.0))
      throw std::invalid_argument("StepWorkload: phase durations must be > 0");
    if (!phase.state.is_normalized())
      throw std::invalid_argument("StepWorkload: phase state must be in [0,1]^k");
    total_ += phase.duration_s;
  }
}

StateVector StepWorkload::demand(double t) {
  if (t < 0.0) t = 0.0;
  if (loop_) t = std::fmod(t, total_);
  double elapsed = 0.0;
  for (const auto& phase : phases_) {
    elapsed += phase.duration_s;
    if (t < elapsed) return phase.state;
  }
  return phases_.back().state;
}

RampWorkload::RampWorkload(double from, double to, double duration_s,
                           double intensity)
    : from_(from), to_(to), duration_s_(duration_s), intensity_(intensity) {
  if (from < 0.0 || from > 1.0 || to < 0.0 || to > 1.0)
    throw std::invalid_argument("RampWorkload: endpoints must be in [0,1]");
  if (!(duration_s > 0.0))
    throw std::invalid_argument("RampWorkload: duration must be > 0");
  if (!(intensity > 0.0))
    throw std::invalid_argument("RampWorkload: intensity must be > 0");
}

StateVector RampWorkload::demand(double t) {
  const double frac = std::clamp(t / duration_s_, 0.0, 1.0);
  return StateVector::cpu_only(from_ + (to_ - from_) * frac);
}

SineWorkload::SineWorkload(double mean, double amplitude, double period_s,
                           double intensity, double phase_rad)
    : mean_(mean), amplitude_(amplitude), period_s_(period_s),
      intensity_(intensity), phase_(phase_rad) {
  if (!(period_s > 0.0))
    throw std::invalid_argument("SineWorkload: period must be > 0");
  if (!(intensity > 0.0))
    throw std::invalid_argument("SineWorkload: intensity must be > 0");
}

StateVector SineWorkload::demand(double t) {
  const double u =
      mean_ + amplitude_ * std::sin(2.0 * std::numbers::pi * t / period_s_ + phase_);
  return StateVector::cpu_only(std::clamp(u, 0.0, 1.0));
}

RandomWalkWorkload::RandomWalkWorkload(double mean, double volatility,
                                       double reversion, std::uint64_t seed,
                                       double intensity)
    : mean_(mean), volatility_(volatility), reversion_(reversion), level_(mean),
      rng_(seed), intensity_(intensity) {
  if (mean < 0.0 || mean > 1.0)
    throw std::invalid_argument("RandomWalkWorkload: mean must be in [0,1]");
  if (volatility < 0.0)
    throw std::invalid_argument("RandomWalkWorkload: volatility must be >= 0");
  if (reversion < 0.0 || reversion > 1.0)
    throw std::invalid_argument("RandomWalkWorkload: reversion must be in [0,1]");
  if (!(intensity > 0.0))
    throw std::invalid_argument("RandomWalkWorkload: intensity must be > 0");
}

StateVector RandomWalkWorkload::demand(double t) {
  // Advance one step per whole elapsed second since the last query.
  if (last_t_ < 0.0) last_t_ = t;
  while (last_t_ + 1.0 <= t) {
    level_ += reversion_ * (mean_ - level_) + rng_.normal(0.0, volatility_);
    level_ = std::clamp(level_, 0.0, 1.0);
    last_t_ += 1.0;
  }
  return StateVector::cpu_only(level_);
}

}  // namespace vmp::wl
