// Elementary workload shapes used to compose scenarios and tests.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace vmp::wl {

/// A VM doing nothing (all components zero) — the paper's "idle VM" whose
/// Shapley share must be zero by the Dummy axiom.
class IdleWorkload final : public Workload {
 public:
  [[nodiscard]] common::StateVector demand(double) override { return {}; }
  [[nodiscard]] std::string_view name() const noexcept override { return "idle"; }
};

/// Constant component state with a fixed instruction-mix intensity.
class ConstantWorkload final : public Workload {
 public:
  /// Throws std::invalid_argument if state is not normalized or intensity<=0.
  explicit ConstantWorkload(common::StateVector state, double intensity = 1.0,
                            std::string name = "constant");

  [[nodiscard]] common::StateVector demand(double) override { return state_; }
  [[nodiscard]] double power_intensity() const noexcept override {
    return intensity_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

 private:
  common::StateVector state_;
  double intensity_;
  std::string name_;
};

/// Piecewise-constant schedule: a list of (duration, state) phases, optionally
/// looping. Holds the last state forever when not looping.
class StepWorkload final : public Workload {
 public:
  struct Phase {
    double duration_s = 0.0;
    common::StateVector state;
  };

  /// Throws std::invalid_argument on an empty schedule or non-positive phase
  /// durations.
  StepWorkload(std::vector<Phase> phases, bool loop = false,
               double intensity = 1.0, std::string name = "step");

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] double power_intensity() const noexcept override {
    return intensity_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] double total_duration() const noexcept { return total_; }

 private:
  std::vector<Phase> phases_;
  bool loop_;
  double total_;
  double intensity_;
  std::string name_;
};

/// CPU utilization ramping linearly from `from` to `to` over `duration_s`,
/// then holding `to`.
class RampWorkload final : public Workload {
 public:
  RampWorkload(double from, double to, double duration_s, double intensity = 1.0);

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] double power_intensity() const noexcept override {
    return intensity_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "ramp"; }

 private:
  double from_;
  double to_;
  double duration_s_;
  double intensity_;
};

/// Sinusoidal CPU utilization: mean + amplitude * sin(2*pi*t/period), clamped
/// to [0, 1]. Models diurnal-style load in compressed time.
class SineWorkload final : public Workload {
 public:
  /// Throws std::invalid_argument if period <= 0.
  SineWorkload(double mean, double amplitude, double period_s,
               double intensity = 1.0, double phase_rad = 0.0);

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] double power_intensity() const noexcept override {
    return intensity_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "sine"; }

 private:
  double mean_;
  double amplitude_;
  double period_s_;
  double intensity_;
  double phase_;
};

/// Mean-reverting random walk over CPU utilization (Ornstein-Uhlenbeck style,
/// discretized per second); used for load that meanders realistically.
class RandomWalkWorkload final : public Workload {
 public:
  RandomWalkWorkload(double mean, double volatility, double reversion,
                     std::uint64_t seed, double intensity = 1.0);

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] double power_intensity() const noexcept override {
    return intensity_;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "random_walk";
  }

 private:
  double mean_;
  double volatility_;
  double reversion_;
  double level_;
  double last_t_ = -1.0;
  util::Rng rng_;
  double intensity_;
};

}  // namespace vmp::wl
