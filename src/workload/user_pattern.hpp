// The Fig. 1 motivating scenario: two users rent identical VMs over the same
// interval [T0, T5] but stress them differently, so user B consumes ~33 %
// more energy while both pay the same under per-instance-hour pricing.
#pragma once

#include "workload/primitives.hpp"

namespace vmp::wl {

/// Length of each of the five Fig. 1 intervals (T0..T5), in seconds.
inline constexpr double kUserPatternPhaseSeconds = 600.0;

/// User A's CPU utilization steps over [T0, T5]: a light, bursty pattern.
[[nodiscard]] WorkloadPtr make_user_a_pattern();

/// User B's CPU utilization steps over [T0, T5]: sustained heavy use whose
/// total energy is ~4/3 of user A's under a linear power model.
[[nodiscard]] WorkloadPtr make_user_b_pattern();

}  // namespace vmp::wl
