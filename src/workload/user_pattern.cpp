#include "workload/user_pattern.hpp"

#include <memory>

namespace vmp::wl {

namespace {

WorkloadPtr make_pattern(std::initializer_list<double> cpu_levels,
                         const char* name) {
  std::vector<StepWorkload::Phase> phases;
  phases.reserve(cpu_levels.size());
  for (double u : cpu_levels)
    phases.push_back({kUserPatternPhaseSeconds, common::StateVector::cpu_only(u)});
  return std::make_unique<StepWorkload>(std::move(phases), /*loop=*/false,
                                        /*intensity=*/1.0, name);
}

}  // namespace

WorkloadPtr make_user_a_pattern() {
  // Average utilization 0.45 across the five intervals.
  return make_pattern({0.30, 0.75, 0.20, 0.60, 0.40}, "user_a");
}

WorkloadPtr make_user_b_pattern() {
  // Average utilization 0.60 = 4/3 of user A's -> 33 % more dynamic energy.
  return make_pattern({0.55, 0.90, 0.45, 0.80, 0.30}, "user_b");
}

}  // namespace vmp::wl
