// Datacenter-flavoured load patterns beyond the paper's benchmarks: duty
// cycles (batch jobs), Poisson request bursts (interactive services), and a
// compressed diurnal curve (tenant day/night rhythm). Used by the cluster
// scenarios and available to downstream users for their own studies.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace vmp::wl {

/// Square-wave duty cycle: `busy_util` for on_s seconds, `idle_util` for
/// off_s seconds, repeating — the shape of periodic batch work.
class OnOffWorkload final : public Workload {
 public:
  /// Throws std::invalid_argument on non-positive phase lengths or
  /// out-of-range utilizations.
  OnOffWorkload(double busy_util, double on_s, double off_s,
                double idle_util = 0.0, double intensity = 1.0);

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] double power_intensity() const noexcept override {
    return intensity_;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "on_off";
  }

 private:
  double busy_util_;
  double idle_util_;
  double on_s_;
  double off_s_;
  double intensity_;
};

/// Interactive-service load: requests arrive as a Poisson process; each
/// second's utilization is the offered load (arrivals x per-request cost)
/// clamped to capacity. Produces the ragged, bursty traces request-serving
/// VMs show in practice.
class PoissonBurstWorkload final : public Workload {
 public:
  /// rate_per_s > 0: mean arrivals per second; util_per_request > 0: CPU
  /// fraction consumed per arrival.
  PoissonBurstWorkload(double rate_per_s, double util_per_request,
                       std::uint64_t seed, double intensity = 1.0);

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] double power_intensity() const noexcept override {
    return intensity_;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "poisson_burst";
  }

 private:
  double rate_per_s_;
  double util_per_request_;
  util::Rng rng_;
  double intensity_;
  double level_ = 0.0;
  std::int64_t last_second_ = -1;
};

/// Compressed diurnal rhythm: a day of tenant load squeezed into
/// `day_length_s` seconds — low at "night", peaking in the "afternoon",
/// with small per-second noise.
class DiurnalWorkload final : public Workload {
 public:
  /// night/peak utils in [0,1] with night <= peak; day_length_s > 0.
  DiurnalWorkload(double night_util, double peak_util, double day_length_s,
                  std::uint64_t seed, double intensity = 1.0);

  [[nodiscard]] common::StateVector demand(double t) override;
  [[nodiscard]] double power_intensity() const noexcept override {
    return intensity_;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "diurnal";
  }

 private:
  double night_util_;
  double peak_util_;
  double day_length_s_;
  util::Rng rng_;
  double intensity_;
};

}  // namespace vmp::wl
