// Loopback TCP front end of the attribution query service.
//
// One acceptor thread hands each connection to a reader thread that sniffs
// the protocol from the first byte (a control byte starts a length-prefixed
// binary frame, anything printable starts a text line), applies per-client
// token-bucket admission, and enqueues admitted requests on a bounded queue
// drained by a small worker pool. Overload is shed at the edge with an
// explicit error response — a throttled or overflowed request never touches
// a worker — and every shed is counted in fleet::Metrics.
//
// Completion order: requests that carry an echoed id (kFrameIdFlag /
// "#<id>") complete out of order by default — the worker pool writes each
// response, sheds included, the moment it is ready, and the id is the
// client's correlation handle. Requests without an id fall back to
// strictly-ordered delivery: a per-connection reorder buffer holds each
// completed response until every earlier id-less response has been written,
// so a pre-id client observes exactly the arrival-ordered protocol it was
// built against. ServerOptions::out_of_order=false forces the ordered path
// for id-carrying requests too. Every request is answered exactly once
// either way; the balance is exported through admitted()/answered() for
// obs::InvariantMonitor::observe_serve_accounting.
//
// The server binds 127.0.0.1 only: attribution data is tenant-billing data,
// and transport hardening (TLS, auth) is out of scope for the loopback MVP.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fleet/metrics.hpp"
#include "fleet/queue.hpp"
#include "serve/query.hpp"
#include "serve/token_bucket.hpp"
#include "serve/transport.hpp"

namespace vmp::serve {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (see Server::port).
  std::size_t workers = 2;
  std::size_t queue_capacity = 64;
  double tokens_per_s = 10000.0;  ///< per-connection refill rate.
  double token_burst = 1000.0;    ///< per-connection bucket depth.
  /// When true (the default), responses to id-stamped requests are written
  /// as soon as their worker finishes — out of order across a pipelined
  /// connection — while id-less requests always keep arrival order. False
  /// forces arrival order for every response (the explicit ordered mode).
  bool out_of_order = true;
  /// Disable Nagle's algorithm on accepted connections (the default):
  /// responses are small and latency-bound, so coalescing them behind a
  /// delayed ACK only adds round trips. False restores the kernel default
  /// for before/after measurement.
  bool tcp_nodelay = true;
  /// Test hook: stalls each worker per request so overload tests can fill
  /// the queue deterministically. Zero in production.
  std::chrono::milliseconds worker_delay{0};
  /// Test hook: stalls workers on tenant-cost queries only, so ordering
  /// tests can build a deterministic slow-head / fast-tail pipeline without
  /// slowing the cheap queries behind it. Zero in production.
  std::chrono::milliseconds cost_query_delay{0};
  /// When set, every request carries a StageProfile from read edge to write
  /// edge and the finished breakdown (queue wait, execute, cache probe,
  /// write — the lot) is folded into this profiler. Null = zero overhead.
  ServeProfiler* profiler = nullptr;

  /// Throws std::invalid_argument on zero workers/queue capacity or a
  /// non-positive bucket.
  void validate() const;
};

class Server {
 public:
  /// Binds and listens on 127.0.0.1 and starts the acceptor and workers.
  /// `engine` is any QueryHandler — the single-fleet QueryEngine or the
  /// multi-fleet federation frontend. Throws std::runtime_error when the
  /// socket cannot be set up.
  Server(QueryHandler& engine, fleet::Metrics& metrics,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Idempotent; joins every thread and closes every connection.
  void stop();

  /// The actual bound port (resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Exactly-once response accounting: every request read off a connection
  /// (sheds included) must produce exactly one response write attempt.
  /// `outstanding` is admitted-but-unanswered work still queued or on a
  /// worker; sample these while quiescent (or feed them to
  /// InvariantMonitor::observe_serve_accounting, which tolerates transient
  /// in-flight deficits).
  [[nodiscard]] std::uint64_t admitted() const noexcept {
    return admitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t answered() const noexcept {
    return answered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
    TokenBucket bucket;
    // Reader-thread-only arrival accounting (one reader per connection).
    std::uint64_t arrivals = 0;      ///< next arrival index to assign.
    std::uint64_t ordered_seqs = 0;  ///< next ordered-delivery slot.
    // Reorder buffer: workers park completed ordered responses here until
    // every earlier ordered response has been written.
    std::mutex order_mutex;
    struct Held {
      std::uint64_t arrival = 0;
      std::string bytes;
      /// Rides along so the write stage can bill reorder-buffer hold time
      /// to the query that actually waited.
      std::shared_ptr<StageProfile> profile;
    };
    std::uint64_t next_ordered = 0;  ///< next slot allowed to write.
    std::map<std::uint64_t, Held> held;
    std::uint64_t written = 0;  ///< responses written; guarded by write_mutex.
    explicit Conn(int descriptor, const ServerOptions& options)
        : fd(descriptor),
          bucket(options.tokens_per_s, options.token_burst) {}
  };

  struct Task {
    std::shared_ptr<Conn> conn;
    std::string payload;  ///< binary body or text line.
    bool binary = false;
    bool has_id = false;           ///< binary frame carried kFrameIdFlag.
    std::uint64_t request_id = 0;  ///< echoed in the response frame.
    bool ordered = true;           ///< deliver in arrival order.
    std::uint64_t seq = 0;         ///< ordered-delivery slot (when ordered).
    std::uint64_t arrival = 0;     ///< per-connection arrival index.
    bool has_trace = false;        ///< frame carried a trace-context block.
    TraceContextWire trace;        ///< caller's trace id / parent / budget.
    std::shared_ptr<StageProfile> profile;  ///< null when profiling is off.
  };

  void accept_loop();
  void serve_connection(const std::shared_ptr<Conn>& conn);
  void serve_binary(const std::shared_ptr<Conn>& conn);
  void serve_text(const std::shared_ptr<Conn>& conn);
  void worker_loop();
  /// Token bucket + queue admission; routes the shed error through the same
  /// delivery path as real responses (echoing the request id), so ordered
  /// clients never see a shed overtake an earlier response.
  void admit(const std::shared_ptr<Conn>& conn, std::string payload,
             bool binary, bool has_id = false, std::uint64_t request_id = 0,
             bool has_trace = false, TraceContextWire trace = {});
  /// Routes one completed response: unordered responses are written
  /// immediately; ordered responses wait in the reorder buffer for their
  /// arrival turn. `bytes` is taken by reference so the caller's reusable
  /// encode buffer survives the common immediate-write path with its
  /// capacity intact; it is only moved from when the response parks in the
  /// reorder buffer (or joins a corked batch).
  void deliver(Conn& conn, bool ordered, std::uint64_t seq,
               std::uint64_t arrival, std::string& bytes,
               std::shared_ptr<StageProfile> profile = nullptr);
  /// The single response write: counts the response, the out-of-arrival
  /// writes, and drops the connection on a failed send. Finalises and
  /// observes the profile (write stage + total) when one rode along.
  void write_response(Conn& conn, std::uint64_t arrival,
                      std::string_view bytes,
                      StageProfile* profile = nullptr);
  /// Corked flush: when one response unblocks a run of parked successors,
  /// the whole run goes out in a single send with per-response accounting —
  /// one syscall instead of batch-size syscalls of small writes.
  void write_corked(Conn& conn, std::vector<Conn::Held>& batch);
  [[nodiscard]] std::string error_bytes(bool binary, ErrorCode code,
                                        const std::string& message,
                                        bool has_id,
                                        std::uint64_t request_id) const;
  /// Raw uncounted write (framing errors only; real responses go through
  /// write_response so the exactly-once balance holds).
  void reply(Conn& conn, std::string_view bytes);
  /// Immediate out-of-band error write for unrecoverable framing failures
  /// (the connection is dropped right after, so ordering is moot).
  void reply_error(Conn& conn, bool binary, ErrorCode code,
                   const std::string& message, bool has_id = false,
                   std::uint64_t request_id = 0);

  ServerOptions options_;
  Dispatcher dispatcher_;
  fleet::Metrics& metrics_;
  fleet::BoundedQueue<Task> queue_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> active_conns_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> answered_{0};
  std::atomic<std::uint64_t> outstanding_{0};
  fleet::Counter* admitted_counter_ = nullptr;
  fleet::Counter* answered_counter_ = nullptr;
  fleet::Counter* reordered_counter_ = nullptr;
  fleet::Counter* corked_counter_ = nullptr;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex conns_mutex_;
  std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> conns_;
};

}  // namespace vmp::serve
