// Loopback TCP front end of the attribution query service.
//
// One acceptor thread hands each connection to a reader thread that sniffs
// the protocol from the first byte (a control byte starts a length-prefixed
// binary frame, anything printable starts a text line), applies per-client
// token-bucket admission, and enqueues admitted requests on a bounded queue
// drained by a small worker pool. Overload is shed at the edge with an
// explicit error response — a throttled or overflowed request never touches
// a worker — and every shed is counted in fleet::Metrics. Responses are
// written in completion order; a client that pipelines requests on one
// connection may see a shed error overtake an earlier slow response, so it
// should stamp a request id into each frame (kFrameIdFlag / "#<id>", echoed
// in every response including sheds) or await each response, as the CLI
// client does.
//
// The server binds 127.0.0.1 only: attribution data is tenant-billing data,
// and transport hardening (TLS, auth) is out of scope for the loopback MVP.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fleet/metrics.hpp"
#include "fleet/queue.hpp"
#include "serve/query.hpp"
#include "serve/token_bucket.hpp"
#include "serve/transport.hpp"

namespace vmp::serve {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (see Server::port).
  std::size_t workers = 2;
  std::size_t queue_capacity = 64;
  double tokens_per_s = 10000.0;  ///< per-connection refill rate.
  double token_burst = 1000.0;    ///< per-connection bucket depth.
  /// Test hook: stalls each worker per request so overload tests can fill
  /// the queue deterministically. Zero in production.
  std::chrono::milliseconds worker_delay{0};

  /// Throws std::invalid_argument on zero workers/queue capacity or a
  /// non-positive bucket.
  void validate() const;
};

class Server {
 public:
  /// Binds and listens on 127.0.0.1 and starts the acceptor and workers.
  /// Throws std::runtime_error when the socket cannot be set up.
  Server(QueryEngine& engine, fleet::Metrics& metrics,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Idempotent; joins every thread and closes every connection.
  void stop();

  /// The actual bound port (resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
    TokenBucket bucket;
    explicit Conn(int descriptor, const ServerOptions& options)
        : fd(descriptor),
          bucket(options.tokens_per_s, options.token_burst) {}
  };

  struct Task {
    std::shared_ptr<Conn> conn;
    std::string payload;  ///< binary body or text line.
    bool binary = false;
    bool has_id = false;          ///< binary frame carried kFrameIdFlag.
    std::uint64_t request_id = 0; ///< echoed in the response frame.
  };

  void accept_loop();
  void serve_connection(const std::shared_ptr<Conn>& conn);
  void serve_binary(const std::shared_ptr<Conn>& conn);
  void serve_text(const std::shared_ptr<Conn>& conn);
  void worker_loop();
  /// Token bucket + queue admission; writes the shed error itself when the
  /// request is rejected (echoing the request id, so a pipelining client can
  /// still correlate the shed).
  void admit(const std::shared_ptr<Conn>& conn, std::string payload,
             bool binary, bool has_id = false, std::uint64_t request_id = 0);
  void reply(Conn& conn, std::string_view bytes);
  void reply_error(Conn& conn, bool binary, ErrorCode code,
                   const std::string& message, bool has_id = false,
                   std::uint64_t request_id = 0);

  ServerOptions options_;
  Dispatcher dispatcher_;
  fleet::Metrics& metrics_;
  fleet::BoundedQueue<Task> queue_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> active_conns_{0};

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex conns_mutex_;
  std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> conns_;
};

}  // namespace vmp::serve
