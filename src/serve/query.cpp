#include "serve/query.hpp"

#include <cmath>
#include <utility>

#include "common/units.hpp"
#include "obs/trace.hpp"
#include "serve/profile.hpp"

namespace vmp::serve {

namespace {

bool is_window_query(QueryKind kind) noexcept {
  return kind == QueryKind::kVmEnergy || kind == QueryKind::kTenantEnergy ||
         kind == QueryKind::kTenantCost;
}

double tenant_energy_in(const Snapshot& snapshot, core::TenantId tenant) {
  const TenantRecord* record = snapshot.find_tenant(tenant);
  return record ? record->energy_j : 0.0;
}

/// Zero-energy baseline for window bounds that precede the first snapshot:
/// accounting starts at zero, so "before the beginning" is a legitimate
/// epoch-0 state, not missing history.
const std::shared_ptr<const Snapshot>& genesis_baseline() {
  static const std::shared_ptr<const Snapshot> baseline =
      std::make_shared<const Snapshot>();
  return baseline;
}

}  // namespace

QueryEngine::QueryEngine(const SnapshotStore& store, QueryEngineOptions options)
    : store_(store), options_(std::move(options)) {
  options_.tou.validate();
  const std::size_t shard_count =
      options_.cache_shards == 0 ? 1 : options_.cache_shards;
  shard_capacity_ =
      options_.cache_capacity == 0
          ? 0
          : (options_.cache_capacity + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    if (options_.metrics && shard_capacity_ > 0) {
      const std::string label = "{shard=\"" + std::to_string(i) + "\"}";
      shard->hits = &options_.metrics->counter(
          "vmpower_serve_cache_shard_hits_total" + label,
          "Result-cache lookup hits in this shard");
      shard->misses = &options_.metrics->counter(
          "vmpower_serve_cache_shard_misses_total" + label,
          "Result-cache lookup misses in this shard");
    }
    shards_.push_back(std::move(shard));
  }
  if (options_.metrics) {
    hits_counter_ = &options_.metrics->counter(
        "vmpower_serve_cache_hits_total", "Result-cache hits");
    misses_counter_ = &options_.metrics->counter(
        "vmpower_serve_cache_misses_total", "Result-cache misses");
    evictions_counter_ = &options_.metrics->counter(
        "vmpower_serve_cache_evictions_total", "Result-cache LRU evictions");
    coalesced_counter_ = &options_.metrics->counter(
        "vmpower_serve_coalesced_total",
        "Queries attached to an identical in-flight computation");
  }
}

Response QueryEngine::execute(const Request& request) {
  std::shared_ptr<const Snapshot> latest;
  {
    VMP_TRACE_SPAN("serve.snapshot_fetch", "serve");
    latest = store_.latest();
    if (!latest) {
      // Empty ring, non-empty ledger: a restarted server that has not
      // published its first post-restart snapshot yet still owns durable
      // history, and the ledger tail carries the same cumulative state
      // bit-for-bit — answer from it rather than claiming no data exists.
      if (const ledger::Ledger* log = store_.ledger()) {
        const ledger::Stats stats = log->stats();
        if (stats.records > 0) {
          if (const auto tail = log->at_epoch(stats.tail_epoch))
            latest = std::make_shared<const Snapshot>(to_snapshot(*tail));
        }
      }
    }
  }
  if (!latest)
    return Response::error(ErrorCode::kNoSnapshot,
                           "no snapshot published yet");

  Response cached;
  if (!is_window_query(request.kind)) {
    const std::string key =
        request.canonical() + "@" + std::to_string(latest->epoch);
    if (cache_lookup(key, cached)) return note_hit(cached);
    return compute(key, nullptr,
                   [&] { return evaluate(request, nullptr, latest); });
  }

  if (!std::isfinite(request.t0) || !std::isfinite(request.t1) ||
      request.t1 < request.t0)
    return Response::error(ErrorCode::kBadWindow, "window end precedes start");

  // Fast path: against an unchanged store the same window resolves to the
  // same epoch pair (the ring only mutates on publish, which moves the
  // latest epoch), so the latest epoch alone vouches for a cached entry
  // without paying the two retention-ring searches per hit.
  const std::string fast_key =
      request.canonical() + "@L" + std::to_string(latest->epoch);
  if (cache_lookup(fast_key, cached)) return note_hit(cached);

  std::shared_ptr<const Snapshot> s0, s1;
  {
    VMP_TRACE_SPAN("serve.snapshot_fetch", "serve");
    Response error;
    s0 = resolve_at_or_before(request.t0, error);
    if (!s0) return error;
    s1 = request.t1 >= latest->time_s ? latest
                                      : resolve_at_or_before(request.t1, error);
    // t1 >= t0, so s1 can only be null when s0 already fell back to the
    // genesis baseline: the whole window predates accounting.
    if (!s1) s1 = s0;
  }

  // Durable key: pinned to the resolved epoch pair, so the entry stays valid
  // across publishes that leave the pair — and therefore the answer —
  // unchanged.
  const std::string key = request.canonical() + "@" +
                          std::to_string(s0->epoch) + ":" +
                          std::to_string(s1->epoch);
  if (cache_lookup(key, cached)) {
    cache_insert(fast_key, cached);  // re-arm the fast path at this epoch.
    return note_hit(cached);
  }
  return compute(key, &fast_key, [&] { return evaluate(request, s0, s1); });
}

Response QueryEngine::compute(const std::string& key,
                              const std::string* fast_key,
                              const std::function<Response()>& eval) {
  if (!options_.coalesce) {
    note_miss();
    const Response response = eval();
    cache_insert(key, response);
    if (fast_key) cache_insert(*fast_key, response);
    return response;
  }

  Shard& shard = shard_for(key);
  Response cached;
  std::shared_ptr<Inflight> flight;
  switch (probe(shard, key, cached, flight)) {
    case Probe::kHit:
      // A leader published between our unlocked lookup and this probe.
      if (fast_key) cache_insert(*fast_key, cached);
      return note_hit(cached);
    case Probe::kJoin: {
      // The follower's whole wall time here is spent parked on the leader —
      // the stage the profiler calls coalesce_hold.
      StageTimer hold(Stage::kCoalesceHold);
      VMP_TRACE_SPAN("serve.coalesce_hold", "serve");
      std::unique_lock lock(flight->mutex);
      flight->cv.wait(lock, [&] { return flight->done; });
      Response response = flight->response;
      lock.unlock();
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      if (coalesced_counter_) coalesced_counter_->inc();
      // The answer is valid for this follower's own latest epoch too (same
      // durable key means the same resolved pair), so re-arming is safe.
      if (fast_key) cache_insert(*fast_key, response);
      return response;
    }
    case Probe::kLead:
      break;
  }

  note_miss();
  if (options_.coalesce_hold) options_.coalesce_hold();
  const Response response = eval();
  cache_insert(key, response);
  if (fast_key) cache_insert(*fast_key, response);
  {
    std::lock_guard lock(flight->mutex);
    flight->done = true;
    flight->response = response;
  }
  flight->cv.notify_all();
  {
    std::lock_guard lock(shard.mutex);
    shard.inflight.erase(key);
  }
  return response;
}

QueryEngine::Probe QueryEngine::probe(Shard& shard, const std::string& key,
                                      Response& out,
                                      std::shared_ptr<Inflight>& flight) {
  StageTimer timer(Stage::kCacheProbe);
  std::lock_guard lock(shard.mutex);
  if (shard_capacity_ > 0) {
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch.
      out = it->second->response;
      return Probe::kHit;
    }
  }
  auto [it, inserted] = shard.inflight.try_emplace(key);
  if (inserted) it->second = std::make_shared<Inflight>();
  flight = it->second;
  return inserted ? Probe::kLead : Probe::kJoin;
}

std::shared_ptr<const Snapshot> QueryEngine::resolve_at_or_before(
    double t_s, Response& error) const {
  if (auto snapshot = store_.at_or_before(t_s)) return snapshot;
  // A bound before the oldest snapshot is a zero baseline while the genesis
  // snapshot (epoch 1) is still retained — "before the beginning" is a
  // legitimate epoch-0 state, not missing history.
  const auto first = store_.oldest();
  if (first && first->epoch == 1) return genesis_baseline();
  if (const ledger::Ledger* log = store_.ledger()) {
    if (const auto record = log->at_or_before(t_s))
      return std::make_shared<const Snapshot>(to_snapshot(*record));
    const ledger::Stats stats = log->stats();
    if (stats.records > 0) {
      // The ledger reaches back to accounting's start: before it is genesis.
      if (stats.oldest_epoch == 1) return genesis_baseline();
      error = Response::error(ErrorCode::kOutOfHistory,
                              "window start predates the durable ledger",
                              stats.oldest_epoch);
      return nullptr;
    }
  }
  error = Response::error(ErrorCode::kOutOfRetention,
                          "window start predates the snapshot retention ring",
                          first ? first->epoch : 0);
  return nullptr;
}

Response QueryEngine::note_hit(const Response& response) {
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (hits_counter_) hits_counter_->inc();
  return response;
}

void QueryEngine::note_miss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (misses_counter_) misses_counter_->inc();
}

Response QueryEngine::evaluate(
    const Request& request, const std::shared_ptr<const Snapshot>& s0,
    const std::shared_ptr<const Snapshot>& s1) const {
  VMP_TRACE_SPAN("serve.evaluate", "serve");
  const Snapshot& head = *s1;
  switch (request.kind) {
    case QueryKind::kVmPower: {
      const VmRecord* record = head.find_vm(request.host, request.vm);
      if (!record)
        return Response::error(ErrorCode::kUnknownEntity,
                               "unknown vm " + std::to_string(request.host) +
                                   "/" + std::to_string(request.vm));
      return Response::success(head.epoch, {record->power_w});
    }
    case QueryKind::kTenantPower: {
      const TenantRecord* record = head.find_tenant(request.tenant);
      if (!record)
        return Response::error(
            ErrorCode::kUnknownEntity,
            "unknown tenant " + std::to_string(request.tenant));
      return Response::success(head.epoch, {record->power_w});
    }
    case QueryKind::kFleetPower:
      return Response::success(head.epoch, {head.total_power_w});
    case QueryKind::kVmEnergy: {
      const VmRecord* r1 = head.find_vm(request.host, request.vm);
      if (!r1)
        return Response::error(ErrorCode::kUnknownEntity,
                               "unknown vm " + std::to_string(request.host) +
                                   "/" + std::to_string(request.vm));
      const VmRecord* r0 = s0->find_vm(request.host, request.vm);
      return Response::success(head.epoch,
                               {r1->energy_j - (r0 ? r0->energy_j : 0.0)});
    }
    case QueryKind::kTenantEnergy: {
      if (!head.find_tenant(request.tenant))
        return Response::error(
            ErrorCode::kUnknownEntity,
            "unknown tenant " + std::to_string(request.tenant));
      return Response::success(head.epoch,
                               {tenant_energy_in(head, request.tenant) -
                                tenant_energy_in(*s0, request.tenant)});
    }
    case QueryKind::kTenantCost: {
      if (!head.find_tenant(request.tenant))
        return Response::error(
            ErrorCode::kUnknownEntity,
            "unknown tenant " + std::to_string(request.tenant));
      // Price each constant-rate segment at the energy actually drawn in it
      // (snapshot differences), so the per-segment energies telescope to the
      // window total.
      const double e_start = tenant_energy_in(*s0, request.tenant);
      const double e_end = tenant_energy_in(head, request.tenant);
      double cost = 0.0;
      double previous = e_start;
      for (const core::TouSegment& segment :
           core::tou_segments(options_.tou, request.t0, request.t1)) {
        double at_boundary = e_end;
        if (segment.t1 < request.t1) {
          Response error;
          const auto snapshot = resolve_at_or_before(segment.t1, error);
          if (!snapshot) return error;  // boundary slid out of all history.
          at_boundary = tenant_energy_in(*snapshot, request.tenant);
        }
        cost += common::joules_to_kwh(at_boundary - previous) *
                segment.usd_per_kwh;
        previous = at_boundary;
      }
      return Response::success(head.epoch, {cost, e_end - e_start});
    }
    case QueryKind::kStats:
      return Response::success(
          head.epoch,
          {static_cast<double>(head.tick), head.time_s,
           static_cast<double>(head.vms.size()),
           static_cast<double>(head.tenants.size()), head.total_power_w,
           head.total_energy_j, head.unattributed_j});
  }
  return Response::error(ErrorCode::kUnknownQuery, "unhandled query kind");
}

QueryEngine::Shard& QueryEngine::shard_for(const std::string& key) noexcept {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool QueryEngine::cache_lookup(const std::string& key, Response& out) {
  if (shard_capacity_ == 0) return false;
  StageTimer timer(Stage::kCacheProbe);
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    if (shard.misses) shard.misses->inc();
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch.
  out = it->second->response;
  if (shard.hits) shard.hits->inc();
  return true;
}

void QueryEngine::cache_insert(const std::string& key,
                               const Response& response) {
  if (shard_capacity_ == 0) return;
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  if (shard.index.contains(key)) return;  // raced with another worker; keep first.
  shard.lru.push_front(CacheEntry{key, response});
  shard.index[key] = shard.lru.begin();
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    if (evictions_counter_) evictions_counter_->inc();
  }
}

}  // namespace vmp::serve
