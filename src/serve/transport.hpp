// The single request path shared by every transport.
//
// Dispatcher turns request bytes into response bytes: decode (binary body or
// text line) -> QueryEngine::execute -> encode, with per-protocol and
// per-query-kind latency histograms, a protocol-error counter, and trace
// spans over the parse/evaluate/encode phases (the client's request id, when
// the framing carried one, becomes the spans' trace id). The TCP server's
// workers and the in-process transport both call it, which is what makes
// "the same query returns byte-identical responses on every transport" true
// by construction rather than by test luck — and lets tests and benches
// drive the exact production path deterministically, no sockets involved.
//
// Two text-protocol *commands* ride the same path next to the query verbs:
// "METRICS" answers with the full Prometheus exposition of the wired
// registry and "TRACE" with the tracer ring as Chrome trace-event JSONL —
// both multi-line payloads terminated by a lone "# EOF" line, so a
// line-oriented client knows where the scrape ends.
#pragma once

#include <string>
#include <string_view>

#include "fleet/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/query.hpp"

namespace vmp::serve {

class Dispatcher {
 public:
  explicit Dispatcher(QueryHandler& engine, fleet::Metrics* metrics = nullptr);

  /// Handles one binary request body (unframed); returns the response body.
  /// `trace_id` (the frame's request id, 0 when absent) groups the request's
  /// spans; framing-level id echo is the transport's job.
  [[nodiscard]] std::string handle_binary(std::string_view body,
                                          std::uint64_t trace_id = 0);

  /// Handles one request line (no newline); returns the response line. A
  /// leading "#<id>" token is consumed, used as the trace id, and echoed as
  /// the first token of the response.
  [[nodiscard]] std::string handle_text(std::string_view line);

 private:
  [[nodiscard]] Response run(const std::optional<Request>& request,
                             const char* proto);
  /// nullopt when `line` is not a command; otherwise the full multi-line
  /// payload, "# EOF"-terminated.
  [[nodiscard]] std::optional<std::string> run_command(std::string_view line);

  QueryHandler& engine_;
  fleet::Metrics* metrics_;
};

/// Drives the dispatcher with the server's framing rules, in process.
class InProcessTransport {
 public:
  explicit InProcessTransport(QueryHandler& engine,
                              fleet::Metrics* metrics = nullptr);

  /// Full binary round trip: a framed request in, a framed response out.
  /// Applies the server's frame checks (oversized, truncated, trailing
  /// bytes all yield protocol-error responses, never exceptions).
  [[nodiscard]] std::string roundtrip_binary(std::string_view frame);

  /// Text round trip: one request line in (trailing newline optional), the
  /// response line out (no newline).
  [[nodiscard]] std::string roundtrip_text(std::string_view line);

  /// Struct-level convenience over the binary path.
  [[nodiscard]] Response query(const Request& request);

 private:
  Dispatcher dispatcher_;
};

}  // namespace vmp::serve
