// The single request path shared by every transport.
//
// Dispatcher turns request bytes into response bytes: decode (binary body or
// text line) -> QueryEngine::execute -> encode, with per-protocol and
// per-query-kind latency histograms and a protocol-error counter. The TCP
// server's workers and the in-process transport both call it, which is what
// makes "the same query returns byte-identical responses on every transport"
// true by construction rather than by test luck — and lets tests and benches
// drive the exact production path deterministically, no sockets involved.
#pragma once

#include <string>
#include <string_view>

#include "fleet/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/query.hpp"

namespace vmp::serve {

class Dispatcher {
 public:
  explicit Dispatcher(QueryEngine& engine, fleet::Metrics* metrics = nullptr);

  /// Handles one binary request body (unframed); returns the response body.
  [[nodiscard]] std::string handle_binary(std::string_view body);

  /// Handles one request line (no newline); returns the response line.
  [[nodiscard]] std::string handle_text(std::string_view line);

 private:
  [[nodiscard]] Response run(const std::optional<Request>& request,
                             const char* proto);

  QueryEngine& engine_;
  fleet::Metrics* metrics_;
};

/// Drives the dispatcher with the server's framing rules, in process.
class InProcessTransport {
 public:
  explicit InProcessTransport(QueryEngine& engine,
                              fleet::Metrics* metrics = nullptr);

  /// Full binary round trip: a framed request in, a framed response out.
  /// Applies the server's frame checks (oversized, truncated, trailing
  /// bytes all yield protocol-error responses, never exceptions).
  [[nodiscard]] std::string roundtrip_binary(std::string_view frame);

  /// Text round trip: one request line in (trailing newline optional), the
  /// response line out (no newline).
  [[nodiscard]] std::string roundtrip_text(std::string_view line);

  /// Struct-level convenience over the binary path.
  [[nodiscard]] Response query(const Request& request);

 private:
  Dispatcher dispatcher_;
};

}  // namespace vmp::serve
