// The single request path shared by every transport.
//
// Dispatcher turns request bytes into response bytes: decode (binary body or
// text line) -> QueryEngine::execute -> encode, with per-protocol and
// per-query-kind latency histograms, a protocol-error counter, and trace
// spans over the parse/evaluate/encode phases (the client's request id, when
// the framing carried one, becomes the spans' trace id). The TCP server's
// workers and the in-process transport both call it, which is what makes
// "the same query returns byte-identical responses on every transport" true
// by construction rather than by test luck — and lets tests and benches
// drive the exact production path deterministically, no sockets involved.
//
// Three text-protocol *commands* ride the same path next to the query
// verbs: "METRICS" answers with the full Prometheus exposition of the wired
// registry, "TRACE" with the tracer ring as Chrome trace-event JSONL, and
// "HEALTH" with the profiler's stage-quantile / SLO / slow-query-log
// rendering — all multi-line payloads terminated by a lone "# EOF" line, so
// a line-oriented client knows where the scrape ends.
#pragma once

#include <string>
#include <string_view>

#include "fleet/metrics.hpp"
#include "serve/profile.hpp"
#include "serve/protocol.hpp"
#include "serve/query.hpp"

namespace vmp::serve {

class Dispatcher {
 public:
  explicit Dispatcher(QueryHandler& engine, fleet::Metrics* metrics = nullptr,
                      ServeProfiler* profiler = nullptr);

  /// Handles one binary request body (unframed); returns the response body.
  /// `trace_id` (the frame's request id, 0 when absent) groups the request's
  /// spans. When the frame carried a trace-context block, `trace` overrides
  /// the span grouping with the caller's trace id and nests this request's
  /// spans under the caller's parent span. Framing-level id echo is the
  /// transport's job.
  [[nodiscard]] std::string handle_binary(
      std::string_view body, std::uint64_t trace_id = 0,
      const TraceContextWire* trace = nullptr);

  /// Single-copy sibling of handle_binary: appends the response body to
  /// `out` instead of returning it, so a caller that already opened a frame
  /// with begin_frame gets the encoded response without an intermediate
  /// body string.
  void handle_binary_into(std::string_view body, std::string& out,
                          std::uint64_t trace_id = 0,
                          const TraceContextWire* trace = nullptr);

  /// Handles one request line (no newline); returns the response line. A
  /// leading "#<id>" (or traced "#<id>@<trace>:<parent>:<budget>") token is
  /// consumed, used as the trace id, and echoed — id alone — as the first
  /// token of the response. A malformed trace suffix earns kMalformed
  /// without touching the engine.
  [[nodiscard]] std::string handle_text(std::string_view line);

  /// Single-copy sibling of handle_text: appends the response line (no
  /// trailing newline) to `out` — the id echo, scrape payload, or formatted
  /// response land directly in the caller's write buffer.
  void handle_text_into(std::string_view line, std::string& out);

  /// The profiler behind the HEALTH command (and METRICS-time publishing).
  void set_profiler(ServeProfiler* profiler) noexcept { profiler_ = profiler; }

 private:
  [[nodiscard]] Response run(const std::optional<Request>& request,
                             const char* proto);
  /// nullopt when `line` is not a command; otherwise the full multi-line
  /// payload, "# EOF"-terminated.
  [[nodiscard]] std::optional<std::string> run_command(std::string_view line);

  QueryHandler& engine_;
  fleet::Metrics* metrics_;
  ServeProfiler* profiler_ = nullptr;
};

/// Drives the dispatcher with the server's framing rules, in process.
class InProcessTransport {
 public:
  explicit InProcessTransport(QueryHandler& engine,
                              fleet::Metrics* metrics = nullptr);

  /// Full binary round trip: a framed request in, a framed response out.
  /// Applies the server's frame checks (oversized, truncated, trailing
  /// bytes all yield protocol-error responses, never exceptions).
  [[nodiscard]] std::string roundtrip_binary(std::string_view frame);

  /// Text round trip: one request line in (trailing newline optional), the
  /// response line out (no newline).
  [[nodiscard]] std::string roundtrip_text(std::string_view line);

  /// Struct-level convenience over the binary path.
  [[nodiscard]] Response query(const Request& request);

 private:
  Dispatcher dispatcher_;
};

}  // namespace vmp::serve
