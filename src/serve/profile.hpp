// Per-query latency profiling for the serve tier.
//
// Every admitted request can carry a StageProfile through its whole life:
// the server stamps admission and queue-wait, the dispatcher stamps execute
// and serialize, the query engine stamps cache-probe and coalesce-hold from
// inside the engine (via a thread-local ambient pointer, so the engine
// needs no plumbing through its API), and the final write — including any
// time parked in the per-connection reorder buffer — is stamped when the
// response bytes actually go out. The finished profile lands in the
// ServeProfiler:
//
//  * per-stage streaming quantile sketches (util::QuantileSketch — relative
//    error, no pre-declared buckets, so a 300 ns cache probe and a 2 s
//    coalesce hold are equally well resolved), published on scrape as the
//    vmpower_serve_stage_* gauge families;
//  * a bounded structured slow-query log, triggered by an absolute latency
//    threshold or by overrunning the deadline budget the client declared in
//    its trace context, each entry carrying the full stage breakdown plus
//    the trace id — the "why was *this* query slow" record;
//  * the SLO tracker (latency/availability objectives with burn rates).
//
// Everything here is null-safe by construction: a server without a profiler
// allocates no profiles, and the engine's thread-local hook is a no-op
// whenever no profile is ambient (the in-process transport, benches, the
// fleet tick path).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "serve/protocol.hpp"
#include "util/quantile_sketch.hpp"

namespace vmp::serve {

/// Pipeline stages of one serve-tier query, in wall order.
enum class Stage : std::uint8_t {
  kAdmission = 0,   ///< token bucket + queue push at the read edge.
  kQueueWait,       ///< enqueue -> worker pickup.
  kExecute,         ///< QueryHandler::execute (includes the two below).
  kCacheProbe,      ///< result-cache shard lookups inside execute.
  kCoalesceHold,    ///< follower wait on an in-flight leader's response.
  kSerialize,       ///< response encode (binary body or text line).
  kWrite,           ///< response ready -> bytes written (reorder hold incl.).
};
inline constexpr std::size_t kStageCount = 7;

[[nodiscard]] const char* to_string(Stage stage) noexcept;

/// One query's breakdown; plain data, owned by the server task that carries
/// it from read edge to write edge.
struct StageProfile {
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;  ///< request id unless the wire carried one.
  std::uint64_t budget_us = 0; ///< declared deadline budget; 0 = none.
  QueryKind kind = QueryKind::kStats;
  bool error = false;  ///< the response was an ERR (sheds included).
  double stage_s[kStageCount] = {};
  double total_s = 0.0;  ///< read edge -> write completed.

  // Server-side bookkeeping for the cross-thread stages (queue wait and
  // write span threads, so RAII timers cannot measure them).
  std::uint64_t start_ns = 0;    ///< read edge (steady ns).
  std::uint64_t enqueue_ns = 0;  ///< admission accepted the task.
  std::uint64_t ready_ns = 0;    ///< response bytes ready for delivery.

  void add(Stage stage, double seconds) noexcept {
    stage_s[static_cast<std::size_t>(stage)] += seconds;
  }
  [[nodiscard]] double stage(Stage stage) const noexcept {
    return stage_s[static_cast<std::size_t>(stage)];
  }
  /// True when a declared budget was overrun.
  [[nodiscard]] bool over_budget() const noexcept {
    return budget_us != 0 && total_s * 1e6 > static_cast<double>(budget_us);
  }
};

/// The profile ambient on this thread (null when profiling is off or the
/// caller is not a profiled server worker).
[[nodiscard]] StageProfile* current_stage_profile() noexcept;

/// Steady nanoseconds for the StageProfile timestamps above.
[[nodiscard]] std::uint64_t profile_now_ns() noexcept;

/// Makes `profile` ambient for the scope (nest-safe; restores on exit).
class StageProfileScope {
 public:
  explicit StageProfileScope(StageProfile* profile) noexcept;
  ~StageProfileScope();
  StageProfileScope(const StageProfileScope&) = delete;
  StageProfileScope& operator=(const StageProfileScope&) = delete;

 private:
  StageProfile* saved_;
};

/// Adds its scope's elapsed time to one stage of a profile. The one-argument
/// form binds to the ambient profile at construction and is free (no clock
/// read) when none is ambient.
class StageTimer {
 public:
  explicit StageTimer(Stage stage) noexcept
      : StageTimer(stage, current_stage_profile()) {}
  StageTimer(Stage stage, StageProfile* profile) noexcept;
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageProfile* profile_;
  Stage stage_;
  std::uint64_t start_ns_ = 0;
};

/// One slow-query log entry: the full breakdown plus why it was logged.
struct SlowQueryRecord {
  StageProfile profile;
  std::uint64_t seq = 0;        ///< monotone slow-query index (never reused).
  const char* trigger = "";     ///< "threshold" or "budget".
};

struct ServeProfilerOptions {
  /// Relative accuracy of the per-stage sketches (1% default).
  double sketch_alpha = 0.01;
  /// Queries at or over this total latency enter the slow-query log.
  double slow_threshold_s = 0.050;
  /// Bounded log depth; the oldest entry is dropped (and counted) when full.
  std::size_t slow_log_capacity = 64;
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional: every finished profile feeds record(total_s, error).
  obs::SloTracker* slo = nullptr;
};

/// Thread-safe sink for finished StageProfiles; the server owns one and the
/// dispatcher renders it for the HEALTH scrape command.
class ServeProfiler {
 public:
  explicit ServeProfiler(ServeProfilerOptions options = {});

  void observe(const StageProfile& profile);

  [[nodiscard]] std::uint64_t observed() const;
  /// Copy of one stage's sketch (for tests and HEALTH rendering).
  [[nodiscard]] util::QuantileSketch stage_sketch(Stage stage) const;
  [[nodiscard]] util::QuantileSketch total_sketch() const;
  /// Slow-log snapshot, oldest first.
  [[nodiscard]] std::vector<SlowQueryRecord> slow_queries() const;
  [[nodiscard]] std::uint64_t slow_dropped() const;

  /// Pushes current sketch quantiles into the vmpower_serve_stage_* gauges
  /// and the SLO gauges. Called on scrape, not per query.
  void publish();

  /// Plain-text health payload (stage quantiles, SLO cells, slow-query
  /// log) for the HEALTH command; also publishes.
  [[nodiscard]] std::string health_text();

  [[nodiscard]] obs::SloTracker* slo() const noexcept { return options_.slo; }
  [[nodiscard]] const ServeProfilerOptions& options() const noexcept {
    return options_;
  }

 private:
  ServeProfilerOptions options_;
  obs::Counter* slow_threshold_counter_ = nullptr;
  obs::Counter* slow_budget_counter_ = nullptr;
  obs::Counter* profiled_counter_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<util::QuantileSketch> stage_sketches_;  ///< kStageCount of them.
  util::QuantileSketch total_sketch_;
  std::uint64_t observed_ = 0;
  std::deque<SlowQueryRecord> slow_log_;
  std::uint64_t slow_seq_ = 0;
  std::uint64_t slow_dropped_ = 0;
};

}  // namespace vmp::serve
