#include "serve/profile.hpp"

#include <chrono>
#include <cstdio>

namespace vmp::serve {

namespace {

thread_local StageProfile* t_current_profile = nullptr;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t profile_now_ns() noexcept { return steady_now_ns(); }

const char* to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kAdmission: return "admission";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kExecute: return "execute";
    case Stage::kCacheProbe: return "cache_probe";
    case Stage::kCoalesceHold: return "coalesce_hold";
    case Stage::kSerialize: return "serialize";
    case Stage::kWrite: return "write";
  }
  return "?";
}

StageProfile* current_stage_profile() noexcept { return t_current_profile; }

StageProfileScope::StageProfileScope(StageProfile* profile) noexcept
    : saved_(t_current_profile) {
  t_current_profile = profile;
}

StageProfileScope::~StageProfileScope() { t_current_profile = saved_; }

StageTimer::StageTimer(Stage stage, StageProfile* profile) noexcept
    : profile_(profile), stage_(stage) {
  if (profile_ != nullptr) start_ns_ = steady_now_ns();
}

StageTimer::~StageTimer() {
  if (profile_ == nullptr) return;
  profile_->add(stage_,
                static_cast<double>(steady_now_ns() - start_ns_) * 1e-9);
}

ServeProfiler::ServeProfiler(ServeProfilerOptions options)
    : options_(options), total_sketch_(options.sketch_alpha) {
  stage_sketches_.reserve(kStageCount);
  for (std::size_t i = 0; i < kStageCount; ++i)
    stage_sketches_.emplace_back(options_.sketch_alpha);
  if (options_.metrics != nullptr) {
    profiled_counter_ = &options_.metrics->counter(
        "vmpower_serve_profiled_total",
        "Queries whose stage breakdown reached the profiler");
    slow_threshold_counter_ = &options_.metrics->counter(
        obs::labeled("vmpower_serve_slow_queries_total",
                     {{"trigger", "threshold"}}),
        "Queries logged slow, by trigger");
    slow_budget_counter_ = &options_.metrics->counter(
        obs::labeled("vmpower_serve_slow_queries_total",
                     {{"trigger", "budget"}}),
        "Queries logged slow, by trigger");
  }
}

void ServeProfiler::observe(const StageProfile& profile) {
  // Budget overrun outranks the plain threshold: it is the client-visible
  // deadline, and the log trigger should say so.
  const char* trigger = nullptr;
  if (profile.over_budget()) trigger = "budget";
  else if (profile.total_s >= options_.slow_threshold_s) trigger = "threshold";
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < kStageCount; ++i)
      stage_sketches_[i].record(profile.stage_s[i]);
    total_sketch_.record(profile.total_s);
    ++observed_;
    if (trigger != nullptr) {
      if (slow_log_.size() >= options_.slow_log_capacity &&
          options_.slow_log_capacity > 0) {
        slow_log_.pop_front();
        ++slow_dropped_;
      }
      if (options_.slow_log_capacity > 0)
        slow_log_.push_back(SlowQueryRecord{profile, slow_seq_++, trigger});
    }
  }
  if (profiled_counter_ != nullptr) profiled_counter_->inc();
  if (trigger != nullptr) {
    obs::Counter* counter = trigger[0] == 'b' ? slow_budget_counter_
                                              : slow_threshold_counter_;
    if (counter != nullptr) counter->inc();
  }
  if (options_.slo != nullptr)
    options_.slo->record(profile.total_s, profile.error);
}

std::uint64_t ServeProfiler::observed() const {
  std::lock_guard lock(mutex_);
  return observed_;
}

util::QuantileSketch ServeProfiler::stage_sketch(Stage stage) const {
  std::lock_guard lock(mutex_);
  return stage_sketches_[static_cast<std::size_t>(stage)];
}

util::QuantileSketch ServeProfiler::total_sketch() const {
  std::lock_guard lock(mutex_);
  return total_sketch_;
}

std::vector<SlowQueryRecord> ServeProfiler::slow_queries() const {
  std::lock_guard lock(mutex_);
  return {slow_log_.begin(), slow_log_.end()};
}

std::uint64_t ServeProfiler::slow_dropped() const {
  std::lock_guard lock(mutex_);
  return slow_dropped_;
}

void ServeProfiler::publish() {
  if (options_.metrics != nullptr) {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const util::QuantileSketch& sketch = stage_sketches_[i];
      const char* stage = to_string(static_cast<Stage>(i));
      // gauge() is idempotent (returns the existing instrument), so publish
      // doubles as lazy registration.
      static constexpr struct { const char* label; double q; } kQuantiles[] = {
          {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}};
      for (const auto& [label, q] : kQuantiles)
        options_.metrics
            ->gauge(obs::labeled("vmpower_serve_stage_latency_seconds",
                                 {{"stage", stage}, {"q", label}}),
                    "Per-stage latency quantiles from the streaming sketch")
            .set(sketch.quantile(q));
      options_.metrics
          ->gauge(obs::labeled("vmpower_serve_stage_count", {{"stage", stage}}),
                  "Queries folded into each stage sketch")
          .set(static_cast<double>(sketch.count()));
      options_.metrics
          ->gauge(obs::labeled("vmpower_serve_stage_max_seconds",
                               {{"stage", stage}}),
                  "Largest stage latency seen since start")
          .set(sketch.max());
    }
  }
  if (options_.slo != nullptr) options_.slo->publish();
}

std::string ServeProfiler::health_text() {
  publish();
  std::vector<util::QuantileSketch> stages;
  util::QuantileSketch total(options_.sketch_alpha);
  std::vector<SlowQueryRecord> slow;
  std::uint64_t observed = 0, dropped = 0;
  {
    std::lock_guard lock(mutex_);
    stages = stage_sketches_;
    total = total_sketch_;
    slow.assign(slow_log_.begin(), slow_log_.end());
    observed = observed_;
    dropped = slow_dropped_;
  }
  std::string out;
  char line[512];
  std::snprintf(line, sizeof line,
                "health queries=%llu slow_logged=%zu slow_dropped=%llu\n",
                static_cast<unsigned long long>(observed), slow.size(),
                static_cast<unsigned long long>(dropped));
  out += line;
  const auto render_sketch = [&](const char* name,
                                 const util::QuantileSketch& sketch) {
    std::snprintf(line, sizeof line,
                  "stage %s count=%llu p50=%.9f p90=%.9f p99=%.9f max=%.9f\n",
                  name, static_cast<unsigned long long>(sketch.count()),
                  sketch.quantile(0.50), sketch.quantile(0.90),
                  sketch.quantile(0.99), sketch.max());
    out += line;
  };
  for (std::size_t i = 0; i < kStageCount; ++i)
    render_sketch(to_string(static_cast<Stage>(i)), stages[i]);
  render_sketch("total", total);
  if (options_.slo != nullptr) out += options_.slo->to_text();
  for (const SlowQueryRecord& record : slow) {
    std::snprintf(
        line, sizeof line,
        "slowq seq=%llu trigger=%s id=%llu trace=%llu kind=%s error=%d "
        "total=%.9f budget_us=%llu admission=%.9f queue_wait=%.9f "
        "execute=%.9f cache_probe=%.9f coalesce_hold=%.9f serialize=%.9f "
        "write=%.9f\n",
        static_cast<unsigned long long>(record.seq), record.trigger,
        static_cast<unsigned long long>(record.profile.request_id),
        static_cast<unsigned long long>(record.profile.trace_id),
        to_string(record.profile.kind), record.profile.error ? 1 : 0,
        record.profile.total_s,
        static_cast<unsigned long long>(record.profile.budget_us),
        record.profile.stage(Stage::kAdmission),
        record.profile.stage(Stage::kQueueWait),
        record.profile.stage(Stage::kExecute),
        record.profile.stage(Stage::kCacheProbe),
        record.profile.stage(Stage::kCoalesceHold),
        record.profile.stage(Stage::kSerialize),
        record.profile.stage(Stage::kWrite));
    out += line;
  }
  return out;
}

}  // namespace vmp::serve
