// Minimal blocking loopback client for the query service.
//
// One Client speaks one protocol per connection (the server sniffs the mode
// from the first byte). The query_* helpers await each response before the
// next request; the send_/recv_ pairs pipeline — stamp an id on every
// pipelined request, because the server completes id-carrying requests out
// of order (see server.hpp) and the echoed id is the only correlation
// handle. The raw send/receive helpers exist so the protocol-robustness
// tests can inject garbage, truncated frames, and mid-request disconnects.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "serve/protocol.hpp"

namespace vmp::serve {

class Client {
 public:
  /// Connects to 127.0.0.1:port; throws std::runtime_error on failure.
  explicit Client(std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Binary round trip. Transport failures throw std::runtime_error;
  /// protocol failures come back as error Responses.
  [[nodiscard]] Response query(const Request& request);

  /// Binary round trip with `request_id` stamped in the frame (kFrameIdFlag);
  /// throws std::runtime_error when the response does not echo the same id.
  [[nodiscard]] Response query_with_id(const Request& request,
                                       std::uint64_t request_id);

  /// Text round trip: sends `line` (newline appended) and returns the
  /// response line without its newline.
  [[nodiscard]] std::string query_text(const std::string& line);

  /// Multi-line text command ("METRICS" / "TRACE"): returns every line up to
  /// — not including — the "# EOF" terminator, newline-separated.
  [[nodiscard]] std::string scrape(const std::string& command);

  /// Pipelining: sends one binary request without awaiting the response.
  void send_query(const Request& request);
  /// Pipelining with correlation: sends one id-stamped binary request.
  void send_query_with_id(const Request& request, std::uint64_t request_id);
  /// Receives the next id-less binary response (arrival order).
  [[nodiscard]] Response recv_response();
  /// Receives the next id-flagged binary response in whatever order the
  /// server completed it; the echoed id tells the caller which request it
  /// answers. Throws std::runtime_error on an id-less or undecodable frame.
  [[nodiscard]] std::pair<std::uint64_t, Response> recv_response_with_id();

  /// Raw escape hatches for robustness tests.
  void send_raw(std::string_view bytes);
  /// Receives one complete response frame (prefix + body); throws on EOF.
  [[nodiscard]] std::string recv_frame();
  /// Receives one response line without its newline; throws on EOF.
  [[nodiscard]] std::string recv_line();

  /// Half-closes the write side (simulates a mid-request disconnect).
  void shutdown_write();
  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< unread bytes beyond the last line.
};

}  // namespace vmp::serve
