// Minimal blocking loopback client for the query service.
//
// One Client speaks one protocol per connection (the server sniffs the mode
// from the first byte), awaiting each response before the next request —
// which also sidesteps the completion-order caveat documented in server.hpp.
// The raw send/receive helpers exist so the protocol-robustness tests can
// inject garbage, truncated frames, and mid-request disconnects.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace vmp::serve {

class Client {
 public:
  /// Connects to 127.0.0.1:port; throws std::runtime_error on failure.
  explicit Client(std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Binary round trip. Transport failures throw std::runtime_error;
  /// protocol failures come back as error Responses.
  [[nodiscard]] Response query(const Request& request);

  /// Binary round trip with `request_id` stamped in the frame (kFrameIdFlag);
  /// throws std::runtime_error when the response does not echo the same id.
  [[nodiscard]] Response query_with_id(const Request& request,
                                       std::uint64_t request_id);

  /// Text round trip: sends `line` (newline appended) and returns the
  /// response line without its newline.
  [[nodiscard]] std::string query_text(const std::string& line);

  /// Multi-line text command ("METRICS" / "TRACE"): returns every line up to
  /// — not including — the "# EOF" terminator, newline-separated.
  [[nodiscard]] std::string scrape(const std::string& command);

  /// Raw escape hatches for robustness tests.
  void send_raw(std::string_view bytes);
  /// Receives one complete response frame (prefix + body); throws on EOF.
  [[nodiscard]] std::string recv_frame();
  /// Receives one response line without its newline; throws on EOF.
  [[nodiscard]] std::string recv_line();

  /// Half-closes the write side (simulates a mid-request disconnect).
  void shutdown_write();
  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< unread bytes beyond the last line.
};

}  // namespace vmp::serve
