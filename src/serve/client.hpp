// Minimal blocking loopback client for the query service.
//
// One Client speaks one protocol per connection (the server sniffs the mode
// from the first byte). The query_* helpers await each response before the
// next request; the send_/recv_ pairs pipeline — stamp an id on every
// pipelined request, because the server completes id-carrying requests out
// of order (see server.hpp) and the echoed id is the only correlation
// handle. The raw send/receive helpers exist so the protocol-robustness
// tests can inject garbage, truncated frames, and mid-request disconnects.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "serve/protocol.hpp"

namespace vmp::serve {

/// Thrown when a per-query deadline (see Client::set_timeout) expires before
/// the response arrives. Distinct from the generic std::runtime_error used
/// for hard transport failures so callers — the CLI's --timeout-ms and the
/// federation frontend's per-shard deadlines — can treat "slow" differently
/// from "broken".
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  /// Connects to 127.0.0.1:port; throws std::runtime_error on failure.
  /// `tcp_nodelay` (the default) disables Nagle's algorithm — queries are
  /// single small frames, so coalescing them behind a delayed ACK only
  /// costs latency; pass false to measure against the kernel default.
  explicit Client(std::uint16_t port, bool tcp_nodelay = true);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Binary round trip. Transport failures throw std::runtime_error;
  /// protocol failures come back as error Responses.
  [[nodiscard]] Response query(const Request& request);

  /// Binary round trip with `request_id` stamped in the frame (kFrameIdFlag);
  /// throws std::runtime_error when the response does not echo the same id.
  [[nodiscard]] Response query_with_id(const Request& request,
                                       std::uint64_t request_id);

  /// Binary round trip carrying a full trace context (kFrameTraceFlag): the
  /// server joins the caller's trace instead of starting its own and honours
  /// the deadline budget in its slow-query accounting. Responses echo the id
  /// only, so the receive path is shared with query_with_id.
  [[nodiscard]] Response query_with_trace(const Request& request,
                                          std::uint64_t request_id,
                                          const TraceContextWire& trace);

  /// Text round trip: sends `line` (newline appended) and returns the
  /// response line without its newline.
  [[nodiscard]] std::string query_text(const std::string& line);

  /// Multi-line text command ("METRICS" / "TRACE"): returns every line up to
  /// — not including — the "# EOF" terminator, newline-separated.
  [[nodiscard]] std::string scrape(const std::string& command);

  /// Pipelining: sends one binary request without awaiting the response.
  void send_query(const Request& request);
  /// Pipelining with correlation: sends one id-stamped binary request.
  void send_query_with_id(const Request& request, std::uint64_t request_id);
  /// Pipelining with correlation and trace context.
  void send_query_with_trace(const Request& request, std::uint64_t request_id,
                             const TraceContextWire& trace);
  /// Receives the next id-less binary response (arrival order).
  [[nodiscard]] Response recv_response();
  /// Receives the next id-flagged binary response in whatever order the
  /// server completed it; the echoed id tells the caller which request it
  /// answers. Throws std::runtime_error on an id-less or undecodable frame.
  [[nodiscard]] std::pair<std::uint64_t, Response> recv_response_with_id();

  /// Raw escape hatches for robustness tests.
  void send_raw(std::string_view bytes);
  /// Receives one complete response frame (prefix + body); throws on EOF.
  [[nodiscard]] std::string recv_frame();
  /// Receives one response line without its newline; throws on EOF.
  [[nodiscard]] std::string recv_line();

  /// Half-closes the write side (simulates a mid-request disconnect).
  void shutdown_write();
  void close();

  /// Arms a per-operation deadline on the socket (SO_RCVTIMEO/SO_SNDTIMEO):
  /// any single send or receive that blocks longer than `timeout` throws
  /// TimeoutError. Zero disarms. The socket is left in an indeterminate
  /// mid-message state after a timeout — callers should close and reconnect
  /// rather than reuse the connection.
  void set_timeout(std::chrono::milliseconds timeout);
  [[nodiscard]] std::chrono::milliseconds timeout() const noexcept {
    return timeout_;
  }

 private:
  int fd_ = -1;
  std::string buffer_;  ///< unread bytes beyond the last line.
  /// Reusable frame buffer for send_query*: the request body is encoded
  /// straight into the frame (begin_frame/finish_frame), and the capacity
  /// survives across sends.
  std::string send_buffer_;
  std::chrono::milliseconds timeout_{0};  ///< 0 = block forever.
};

}  // namespace vmp::serve
