#include "serve/transport.hpp"

#include <chrono>

#include "obs/trace.hpp"

namespace vmp::serve {

namespace {

constexpr double kLatencyLoS = 0.0;
constexpr double kLatencyHiS = 0.002;
constexpr std::size_t kLatencyBins = 40;

std::uint32_t read_prefix(std::string_view frame) {
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < kFramePrefixBytes; ++i)
    length = (length << 8) | static_cast<std::uint8_t>(frame[i]);
  return length;
}

std::uint64_t read_frame_id(std::string_view frame) {
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < kFrameIdBytes; ++i)
    id = (id << 8) |
         static_cast<std::uint8_t>(frame[kFramePrefixBytes + i]);
  return id;
}

}  // namespace

Dispatcher::Dispatcher(QueryHandler& engine, fleet::Metrics* metrics,
                       ServeProfiler* profiler)
    : engine_(engine), metrics_(metrics), profiler_(profiler) {}

Response Dispatcher::run(const std::optional<Request>& request,
                         const char* proto) {
  if (!request) {
    if (metrics_)
      metrics_
          ->counter("vmpower_serve_protocol_errors_total",
                    "Requests rejected as unparseable")
          .inc();
    if (StageProfile* profile = current_stage_profile())
      profile->error = true;
    return Response::error(ErrorCode::kMalformed, "unparseable request");
  }
  if (StageProfile* profile = current_stage_profile())
    profile->kind = request->kind;
  const auto start = std::chrono::steady_clock::now();
  Response response;
  {
    StageTimer timer(Stage::kExecute);
    VMP_TRACE_SPAN("serve.execute", "serve");
    response = engine_.execute(*request);
  }
  if (StageProfile* profile = current_stage_profile())
    profile->error = !response.ok;
  if (metrics_) {
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const std::string proto_label(proto);
    const std::string kind_label(to_string(request->kind));
    metrics_
        ->counter("vmpower_serve_requests_total{proto=\"" + proto_label +
                      "\",kind=\"" + kind_label + "\"}",
                  "Requests dispatched, by protocol and query kind")
        .inc();
    metrics_
        ->histogram("vmpower_serve_request_latency_seconds{proto=\"" +
                        proto_label + "\"}",
                    "Query execution latency by protocol", kLatencyLoS,
                    kLatencyHiS, kLatencyBins)
        .observe(elapsed_s);
    metrics_
        ->histogram(
            "vmpower_serve_query_latency_seconds{kind=\"" + kind_label + "\"}",
            "Query execution latency by query kind", kLatencyLoS, kLatencyHiS,
            kLatencyBins)
        .observe(elapsed_s);
  }
  return response;
}

std::string Dispatcher::handle_binary(std::string_view body,
                                      std::uint64_t trace_id,
                                      const TraceContextWire* trace) {
  std::string out;
  handle_binary_into(body, out, trace_id, trace);
  return out;
}

void Dispatcher::handle_binary_into(std::string_view body, std::string& out,
                                    std::uint64_t trace_id,
                                    const TraceContextWire* trace) {
  // A carried trace context adopts the caller's trace and parents this
  // request's spans under the caller's span; otherwise the request id is
  // the trace and the spans are roots.
  VMP_TRACE_CONTEXT_PARENTED(trace != nullptr ? trace->trace_id : trace_id,
                             trace != nullptr ? trace->parent_span : 0);
  if (StageProfile* profile = current_stage_profile()) {
    if (trace != nullptr) {
      profile->trace_id = trace->trace_id;
      profile->budget_us = trace->budget_us;
    }
  }
  std::optional<Request> request;
  {
    VMP_TRACE_SPAN("serve.parse", "serve");
    request = decode_request(body);
  }
  const Response response = run(request, "binary");
  StageTimer serialize(Stage::kSerialize);
  VMP_TRACE_SPAN("serve.encode", "serve");
  encode_response_into(response, out);
}

std::optional<std::string> Dispatcher::run_command(std::string_view line) {
  std::string payload;
  const char* command = nullptr;
  if (line == "METRICS") {
    command = "metrics";
    // Sketch quantiles and SLO burn rates are published on scrape, not per
    // query, so the gauges are fresh exactly when someone looks.
    if (profiler_ != nullptr) profiler_->publish();
    if (metrics_) payload = metrics_->to_prometheus();
  } else if (line == "TRACE") {
    command = "trace";
    payload = obs::Tracer::global().to_chrome_jsonl();
  } else if (line == "HEALTH") {
    command = "health";
    payload = profiler_ != nullptr ? profiler_->health_text()
                                   : "health profiler=off\n";
  } else {
    return std::nullopt;
  }
  if (metrics_)
    metrics_
        ->counter("vmpower_serve_scrapes_total{command=\"" +
                      std::string(command) + "\"}",
                  "METRICS / TRACE / HEALTH scrape commands served")
        .inc();
  payload.append(kScrapeEof);
  return payload;
}

std::string Dispatcher::handle_text(std::string_view line) {
  std::string out;
  handle_text_into(line, out);
  return out;
}

void Dispatcher::handle_text_into(std::string_view line, std::string& out) {
  std::uint64_t request_id = 0;
  TraceContextWire wire;
  const TextEnvelope envelope = strip_text_envelope(line, request_id, wire);
  if (envelope == TextEnvelope::kMalformed) {
    if (metrics_)
      metrics_
          ->counter("vmpower_serve_protocol_errors_total",
                    "Requests rejected as unparseable")
          .inc();
    if (StageProfile* profile = current_stage_profile())
      profile->error = true;
    out += '#';
    out += std::to_string(request_id);
    out += ' ';
    format_response_text_into(
        Response::error(ErrorCode::kMalformed, "malformed trace context"),
        out);
    return;
  }
  const bool has_id = envelope != TextEnvelope::kNone;
  const bool traced = envelope == TextEnvelope::kTraced;
  VMP_TRACE_CONTEXT_PARENTED(traced ? wire.trace_id : request_id,
                             traced ? wire.parent_span : 0);
  if (StageProfile* profile = current_stage_profile()) {
    if (traced) {
      profile->trace_id = wire.trace_id;
      profile->budget_us = wire.budget_us;
    }
  }
  if (has_id) {
    out += '#';
    out += std::to_string(request_id);
    out += ' ';
  }
  if (auto scrape = run_command(line)) {
    out += *scrape;
    return;
  }
  std::optional<Request> request;
  {
    VMP_TRACE_SPAN("serve.parse", "serve");
    request = parse_request_text(line);
  }
  const Response response = run(request, "text");
  StageTimer serialize(Stage::kSerialize);
  VMP_TRACE_SPAN("serve.encode", "serve");
  format_response_text_into(response, out);
}

InProcessTransport::InProcessTransport(QueryHandler& engine,
                                       fleet::Metrics* metrics)
    : dispatcher_(engine, metrics) {}

std::string InProcessTransport::roundtrip_binary(std::string_view frame) {
  if (frame.size() < kFramePrefixBytes)
    return encode_frame(encode_response(
        Response::error(ErrorCode::kMalformed, "truncated frame prefix")));
  const std::uint32_t prefix = read_prefix(frame);
  const bool has_id = (prefix & kFrameIdFlag) != 0;
  const bool has_trace = (prefix & kFrameTraceFlag) != 0;
  const std::uint32_t length = prefix & kFrameLenMask;
  const std::size_t header = kFramePrefixBytes + (has_id ? kFrameIdBytes : 0) +
                             (has_trace ? kFrameTraceBytes : 0);
  if (length > kMaxFrameBytes)
    return encode_frame(encode_response(Response::error(
        ErrorCode::kFrameTooLarge, "frame exceeds 64 KiB limit")));
  if (frame.size() != header + length || frame.size() < header)
    return encode_frame(encode_response(
        Response::error(ErrorCode::kMalformed, "frame length mismatch")));
  const std::uint64_t request_id = has_id ? read_frame_id(frame) : 0;
  TraceContextWire trace;
  if (has_trace) {
    // The trace flag rides on the id flag (a lone trace flag would make the
    // first frame byte printable and defeat the server's protocol sniff),
    // and the block must carry a known version.
    const std::string error_body = encode_response(Response::error(
        ErrorCode::kMalformed, "malformed trace context"));
    if (!has_id)
      return encode_frame(error_body);
    if (!decode_trace_block(
            frame.substr(kFramePrefixBytes + kFrameIdBytes, kFrameTraceBytes),
            trace))
      return encode_frame_with_id(error_body, request_id);
  }
  std::string out;
  const std::size_t start = begin_frame(out, has_id, request_id);
  dispatcher_.handle_binary_into(frame.substr(header), out, request_id,
                                 has_trace ? &trace : nullptr);
  finish_frame(out, start);
  return out;
}

std::string InProcessTransport::roundtrip_text(std::string_view line) {
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return dispatcher_.handle_text(line);
}

Response InProcessTransport::query(const Request& request) {
  const std::string frame =
      roundtrip_binary(encode_frame(encode_request(request)));
  const auto response = decode_response(
      std::string_view(frame).substr(kFramePrefixBytes));
  return response ? *response
                  : Response::error(ErrorCode::kMalformed,
                                    "undecodable response");
}

}  // namespace vmp::serve
