#include "serve/transport.hpp"

#include <chrono>

namespace vmp::serve {

namespace {

constexpr double kLatencyLoS = 0.0;
constexpr double kLatencyHiS = 0.002;
constexpr std::size_t kLatencyBins = 40;

std::uint32_t read_prefix(std::string_view frame) {
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < kFramePrefixBytes; ++i)
    length = (length << 8) | static_cast<std::uint8_t>(frame[i]);
  return length;
}

}  // namespace

Dispatcher::Dispatcher(QueryEngine& engine, fleet::Metrics* metrics)
    : engine_(engine), metrics_(metrics) {}

Response Dispatcher::run(const std::optional<Request>& request,
                         const char* proto) {
  if (!request) {
    if (metrics_)
      metrics_
          ->counter("vmpower_serve_protocol_errors_total",
                    "Requests rejected as unparseable")
          .inc();
    return Response::error(ErrorCode::kMalformed, "unparseable request");
  }
  const auto start = std::chrono::steady_clock::now();
  Response response = engine_.execute(*request);
  if (metrics_) {
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const std::string proto_label(proto);
    const std::string kind_label(to_string(request->kind));
    metrics_
        ->counter("vmpower_serve_requests_total{proto=\"" + proto_label +
                      "\",kind=\"" + kind_label + "\"}",
                  "Requests dispatched, by protocol and query kind")
        .inc();
    metrics_
        ->histogram("vmpower_serve_request_latency_seconds{proto=\"" +
                        proto_label + "\"}",
                    "Query execution latency by protocol", kLatencyLoS,
                    kLatencyHiS, kLatencyBins)
        .observe(elapsed_s);
    metrics_
        ->histogram(
            "vmpower_serve_query_latency_seconds{kind=\"" + kind_label + "\"}",
            "Query execution latency by query kind", kLatencyLoS, kLatencyHiS,
            kLatencyBins)
        .observe(elapsed_s);
  }
  return response;
}

std::string Dispatcher::handle_binary(std::string_view body) {
  return encode_response(run(decode_request(body), "binary"));
}

std::string Dispatcher::handle_text(std::string_view line) {
  return format_response_text(run(parse_request_text(line), "text"));
}

InProcessTransport::InProcessTransport(QueryEngine& engine,
                                       fleet::Metrics* metrics)
    : dispatcher_(engine, metrics) {}

std::string InProcessTransport::roundtrip_binary(std::string_view frame) {
  if (frame.size() < kFramePrefixBytes)
    return encode_frame(encode_response(
        Response::error(ErrorCode::kMalformed, "truncated frame prefix")));
  const std::uint32_t length = read_prefix(frame);
  if (length > kMaxFrameBytes)
    return encode_frame(encode_response(Response::error(
        ErrorCode::kFrameTooLarge, "frame exceeds 64 KiB limit")));
  if (frame.size() != kFramePrefixBytes + length)
    return encode_frame(encode_response(
        Response::error(ErrorCode::kMalformed, "frame length mismatch")));
  return encode_frame(dispatcher_.handle_binary(frame.substr(kFramePrefixBytes)));
}

std::string InProcessTransport::roundtrip_text(std::string_view line) {
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return dispatcher_.handle_text(line);
}

Response InProcessTransport::query(const Request& request) {
  const std::string frame =
      roundtrip_binary(encode_frame(encode_request(request)));
  const auto response = decode_response(
      std::string_view(frame).substr(kFramePrefixBytes));
  return response ? *response
                  : Response::error(ErrorCode::kMalformed,
                                    "undecodable response");
}

}  // namespace vmp::serve
