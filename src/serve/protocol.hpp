// Wire protocol of the attribution query service.
//
// Two encodings of the same request/response model share one dispatch path:
//
//  * Binary: every frame is a 4-byte big-endian body length followed by the
//    body. Request bodies are an opcode byte (QueryKind) plus fixed-size
//    big-endian operands (u32 ids, IEEE-754 f64 times); a body whose length
//    does not match its opcode's operand layout is a protocol error, never a
//    crash. Response bodies are a status byte, then either
//    `u64 epoch, u8 count, count x f64` (OK),
//    `u64 epoch, u8 count, count x f64, u16 miss, miss x u32` (partial OK:
//    a federated roll-up missing the listed shards — see federate/), or
//    `u16 code, u64 detail, u16 len, message` (error; `detail` is a
//    code-specific operand — for the window errors kOutOfRetention and
//    kOutOfHistory it carries the oldest still-answerable epoch, so a client
//    can clamp its window instead of guessing). Frames longer than
//    kMaxFrameBytes are rejected up front.
//
//    A client may set bit 31 of the length prefix (kFrameIdFlag) to carry an
//    8-byte big-endian *request id* between the prefix and the body; the
//    response frame echoes the flag and the same id, which is what lets a
//    pipelining client correlate out-of-order responses. Unflagged frames
//    are byte-identical to the pre-id protocol.
//
//    Bit 30 (kFrameTraceFlag) extends the id mechanism with full *trace
//    context*: a kFrameTraceBytes block after the id carrying
//    `u8 version, u64 trace_id, u64 parent_span, u64 budget_us` — enough for
//    a downstream server to open spans as children of the caller's span in
//    the caller's trace, and to know how much of the end-to-end deadline
//    remains (budget_us; 0 = none declared). The trace flag is only valid
//    together with the id flag: a traced first byte is then >= 0xC0, which
//    the server's text-vs-binary sniff classifies as binary (a lone trace
//    flag would put 0x40 = '@' on the wire and be mistaken for text).
//    A bad version or a lone trace flag is answered with kMalformed on the
//    same connection — the frame length is still trusted for resync, so the
//    connection survives. Responses never carry the trace block; they echo
//    the id alone, byte-identical to an untraced exchange.
//
//  * Text: one newline-terminated line per request ("tenant-energy 2 10 50"),
//    one line per response ("OK <epoch> <values...>" / "ERR <code> <msg>") —
//    telnet-friendly and self-describing. A leading "#<id>" token is the
//    text spelling of the request id ("#42 stats") and is echoed as the
//    first token of the response line ("#42 OK ..."). Trace context extends
//    the token as "#<id>@<trace>:<parent>:<budget_us>"
//    ("#42@7:19:250000 stats"); the response echoes "#<id>" alone. An "@"
//    with a malformed context suffix is kMalformed — never silently read as
//    an untraced id.
//
// The request id and trace context are wire-level correlation only: they
// never enter Request::canonical(), so the result cache is id-blind. The
// dispatcher stamps the explicit trace id (or the request id, when no
// context is carried) into the query's trace spans.
//
// Doubles are formatted with %.17g so text responses round-trip exactly and
// identical queries produce byte-identical responses on every transport.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vmp::serve {

enum class QueryKind : std::uint8_t {
  kVmPower = 1,      ///< instant Shapley share of one VM, W.
  kTenantPower = 2,  ///< instant cross-host tenant power, W.
  kFleetPower = 3,   ///< instant fleet-wide allocated power, W.
  kVmEnergy = 4,     ///< VM energy over [t0, t1], J.
  kTenantEnergy = 5, ///< tenant energy over [t0, t1], J.
  kTenantCost = 6,   ///< tenant cost over [t0, t1] under the TOU schedule.
  kStats = 7,        ///< fleet rollup (tick, counts, totals).
};

[[nodiscard]] const char* to_string(QueryKind kind) noexcept;

struct Request {
  QueryKind kind = QueryKind::kStats;
  std::uint32_t host = 0;
  std::uint32_t vm = 0;
  std::uint32_t tenant = 0;
  double t0 = 0.0;
  double t1 = 0.0;

  /// Canonical text form; doubles as the result-cache key basis.
  [[nodiscard]] std::string canonical() const;
};

enum class ErrorCode : std::uint16_t {
  kMalformed = 1,       ///< unparseable frame/line or operand layout.
  kUnknownQuery = 2,    ///< opcode/verb not in QueryKind.
  kNoSnapshot = 3,      ///< nothing published yet.
  kUnknownEntity = 4,   ///< host/vm/tenant not in the snapshot.
  kOutOfRetention = 5,  ///< window start predates the retention ring (and no
                        ///< durable ledger holds it).
  kBadWindow = 6,       ///< t1 < t0 or non-finite bounds.
  kOverloaded = 7,      ///< request queue full; shed.
  kThrottled = 8,       ///< per-client token bucket empty; shed.
  kFrameTooLarge = 9,   ///< declared frame length exceeds kMaxFrameBytes.
  kOutOfHistory = 10,   ///< window start predates even the durable ledger's
                        ///< oldest record.
  kUnavailable = 11,    ///< no federation shard could answer at all.
  kEpochSkew = 12,      ///< shard epochs disagree beyond the skew budget
                        ///< (detail carries the observed skew).
};

struct Response {
  bool ok = false;
  std::uint64_t epoch = 0;  ///< snapshot epoch the answer was computed at.
  std::vector<double> values;
  ErrorCode code = ErrorCode::kMalformed;
  /// Code-specific operand; 0 when the code defines none. kOutOfRetention /
  /// kOutOfHistory: the oldest epoch a window query can still reach.
  /// kEpochSkew: the observed cross-shard epoch spread.
  std::uint64_t detail = 0;
  std::string message;
  /// Degraded-roll-up marker (federation): true everywhere except a partial
  /// scatter-gather answer, where `missing_shards` lists the fleet shards
  /// whose contribution is absent from `values`. Single-fleet responses are
  /// always complete.
  bool complete = true;
  std::vector<std::uint32_t> missing_shards;  ///< sorted fleet ids.

  static Response success(std::uint64_t epoch, std::vector<double> values);
  /// A degraded roll-up: still ok, but `values` misses the listed shards.
  static Response partial(std::uint64_t epoch, std::vector<double> values,
                          std::vector<std::uint32_t> missing);
  static Response error(ErrorCode code, std::string message,
                        std::uint64_t detail = 0);
};

inline constexpr std::size_t kFramePrefixBytes = 4;
inline constexpr std::size_t kMaxFrameBytes = 64 * 1024;
inline constexpr std::size_t kMaxLineBytes = 1024;
/// Bit 31 of the length prefix: an 8-byte request id follows the prefix.
/// Frame length checks mask the flag first, so a garbage prefix like
/// 0xFFFFFFFF still reads as an oversized frame, never a huge id-less body.
inline constexpr std::uint32_t kFrameIdFlag = 0x80000000u;
inline constexpr std::size_t kFrameIdBytes = 8;
/// Bit 30 of the length prefix: a kFrameTraceBytes trace-context block
/// follows the request id. Valid only together with kFrameIdFlag (see the
/// sniffing note in the header comment); requests only, never responses.
inline constexpr std::uint32_t kFrameTraceFlag = 0x40000000u;
inline constexpr std::uint32_t kFrameLenMask =
    ~(kFrameIdFlag | kFrameTraceFlag);
inline constexpr std::uint8_t kFrameTraceVersion = 1;
/// u8 version + u64 trace_id + u64 parent_span + u64 budget_us.
inline constexpr std::size_t kFrameTraceBytes = 25;

/// Trace context carried alongside a request id, in either protocol.
struct TraceContextWire {
  std::uint64_t trace_id = 0;     ///< the caller's trace (0 = request id).
  std::uint64_t parent_span = 0;  ///< caller span the server's spans nest in.
  std::uint64_t budget_us = 0;    ///< remaining end-to-end deadline; 0 = none.
};

/// Terminator line of the multi-line METRICS / TRACE scrape responses.
inline constexpr std::string_view kScrapeEof = "# EOF";

/// Length-prefixes `body` (the framing shared by requests and responses).
[[nodiscard]] std::string encode_frame(std::string_view body);
/// Length-prefixes `body` with kFrameIdFlag set and `request_id` between the
/// prefix and the body.
[[nodiscard]] std::string encode_frame_with_id(std::string_view body,
                                               std::uint64_t request_id);
/// Length-prefixes `body` with both flags set: prefix, id, trace block, body.
[[nodiscard]] std::string encode_frame_with_trace(std::string_view body,
                                                  std::uint64_t request_id,
                                                  const TraceContextWire& ctx);

/// Single-copy framing: appends the frame header (length-prefix placeholder,
/// optional request id, optional trace block) to `out` and returns the
/// frame's start offset. The caller then appends the body bytes directly —
/// encode_response_into / encode_request_into — and calls finish_frame,
/// which backpatches the placeholder with the real body length and the
/// flags the header implies. The encode_frame* functions above are this
/// pair plus one body copy; hot paths that already own a reusable buffer
/// skip that copy entirely.
[[nodiscard]] std::size_t begin_frame(std::string& out, bool has_id,
                                      std::uint64_t request_id,
                                      const TraceContextWire* trace = nullptr);
/// Backpatches the length prefix of the frame begun at `frame_start`. The
/// header layout (id / trace) is recovered from the placeholder's flag bits,
/// so no separate bookkeeping rides between the two calls.
void finish_frame(std::string& out, std::size_t frame_start);

/// The kFrameTraceBytes trace block alone (version byte + three u64s).
[[nodiscard]] std::string encode_trace_block(const TraceContextWire& ctx);
/// Decodes a trace block; false on wrong size or unknown version.
[[nodiscard]] bool decode_trace_block(std::string_view block,
                                      TraceContextWire& ctx);

/// Consumes a leading "#<id>" token ("#42 stats" -> line "stats", id 42).
/// Returns false — leaving `line` untouched — when there is no well-formed
/// id token; the line then parses (or fails) exactly as before ids existed.
[[nodiscard]] bool strip_text_request_id(std::string_view& line,
                                         std::uint64_t& request_id);

/// Classification of a text line's leading envelope token.
enum class TextEnvelope {
  kNone,       ///< no "#" token; plain pre-id line, untouched.
  kId,         ///< "#<id>" consumed; `request_id` set.
  kTraced,     ///< "#<id>@<trace>:<parent>:<budget>" consumed; both outputs.
  kMalformed,  ///< "#<id>@..." with a bad context suffix; line untouched —
               ///< the caller must answer kMalformed, not guess (the parsed
               ///< `request_id` is still reported, for the error echo).
};

/// Generalisation of strip_text_request_id that also understands the traced
/// form. On kId/kTraced the token is consumed from `line`; on kNone and
/// kMalformed the line is untouched. A malformed *id* (pre-trace rules:
/// "#x", overflow, no separator) stays kNone for compatibility — such lines
/// always fell through to the verb parser.
[[nodiscard]] TextEnvelope strip_text_envelope(std::string_view& line,
                                               std::uint64_t& request_id,
                                               TraceContextWire& trace);

/// --- binary bodies ---------------------------------------------------------

[[nodiscard]] std::string encode_request(const Request& request);
/// Appends the request body to `out` (the single-copy sibling of
/// encode_request; pairs with begin_frame/finish_frame).
void encode_request_into(const Request& request, std::string& out);
/// nullopt on an unknown opcode or operand-layout mismatch.
[[nodiscard]] std::optional<Request> decode_request(std::string_view body);

[[nodiscard]] std::string encode_response(const Response& response);
/// Appends the response body to `out` (the single-copy sibling of
/// encode_response; pairs with begin_frame/finish_frame).
void encode_response_into(const Response& response, std::string& out);
[[nodiscard]] std::optional<Response> decode_response(std::string_view body);

/// --- text lines (no trailing newline) --------------------------------------

[[nodiscard]] std::string format_request_text(const Request& request);
[[nodiscard]] std::optional<Request> parse_request_text(std::string_view line);

[[nodiscard]] std::string format_response_text(const Response& response);
/// Appends the response line to `out` (no trailing newline) — the
/// single-copy sibling of format_response_text for reply buffers.
void format_response_text_into(const Response& response, std::string& out);

}  // namespace vmp::serve
