// Wire protocol of the attribution query service.
//
// Two encodings of the same request/response model share one dispatch path:
//
//  * Binary: every frame is a 4-byte big-endian body length followed by the
//    body. Request bodies are an opcode byte (QueryKind) plus fixed-size
//    big-endian operands (u32 ids, IEEE-754 f64 times); a body whose length
//    does not match its opcode's operand layout is a protocol error, never a
//    crash. Response bodies are a status byte, then either
//    `u64 epoch, u8 count, count x f64` (OK) or `u16 code, u16 len, message`
//    (error). Frames longer than kMaxFrameBytes are rejected up front.
//
//  * Text: one newline-terminated line per request ("tenant-energy 2 10 50"),
//    one line per response ("OK <epoch> <values...>" / "ERR <code> <msg>") —
//    telnet-friendly and self-describing.
//
// Doubles are formatted with %.17g so text responses round-trip exactly and
// identical queries produce byte-identical responses on every transport.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vmp::serve {

enum class QueryKind : std::uint8_t {
  kVmPower = 1,      ///< instant Shapley share of one VM, W.
  kTenantPower = 2,  ///< instant cross-host tenant power, W.
  kFleetPower = 3,   ///< instant fleet-wide allocated power, W.
  kVmEnergy = 4,     ///< VM energy over [t0, t1], J.
  kTenantEnergy = 5, ///< tenant energy over [t0, t1], J.
  kTenantCost = 6,   ///< tenant cost over [t0, t1] under the TOU schedule.
  kStats = 7,        ///< fleet rollup (tick, counts, totals).
};

[[nodiscard]] const char* to_string(QueryKind kind) noexcept;

struct Request {
  QueryKind kind = QueryKind::kStats;
  std::uint32_t host = 0;
  std::uint32_t vm = 0;
  std::uint32_t tenant = 0;
  double t0 = 0.0;
  double t1 = 0.0;

  /// Canonical text form; doubles as the result-cache key basis.
  [[nodiscard]] std::string canonical() const;
};

enum class ErrorCode : std::uint16_t {
  kMalformed = 1,       ///< unparseable frame/line or operand layout.
  kUnknownQuery = 2,    ///< opcode/verb not in QueryKind.
  kNoSnapshot = 3,      ///< nothing published yet.
  kUnknownEntity = 4,   ///< host/vm/tenant not in the snapshot.
  kOutOfRetention = 5,  ///< window start predates the retention ring.
  kBadWindow = 6,       ///< t1 < t0 or non-finite bounds.
  kOverloaded = 7,      ///< request queue full; shed.
  kThrottled = 8,       ///< per-client token bucket empty; shed.
  kFrameTooLarge = 9,   ///< declared frame length exceeds kMaxFrameBytes.
};

struct Response {
  bool ok = false;
  std::uint64_t epoch = 0;  ///< snapshot epoch the answer was computed at.
  std::vector<double> values;
  ErrorCode code = ErrorCode::kMalformed;
  std::string message;

  static Response success(std::uint64_t epoch, std::vector<double> values);
  static Response error(ErrorCode code, std::string message);
};

inline constexpr std::size_t kFramePrefixBytes = 4;
inline constexpr std::size_t kMaxFrameBytes = 64 * 1024;
inline constexpr std::size_t kMaxLineBytes = 1024;

/// Length-prefixes `body` (the framing shared by requests and responses).
[[nodiscard]] std::string encode_frame(std::string_view body);

/// --- binary bodies ---------------------------------------------------------

[[nodiscard]] std::string encode_request(const Request& request);
/// nullopt on an unknown opcode or operand-layout mismatch.
[[nodiscard]] std::optional<Request> decode_request(std::string_view body);

[[nodiscard]] std::string encode_response(const Response& response);
[[nodiscard]] std::optional<Response> decode_response(std::string_view body);

/// --- text lines (no trailing newline) --------------------------------------

[[nodiscard]] std::string format_request_text(const Request& request);
[[nodiscard]] std::optional<Request> parse_request_text(std::string_view line);

[[nodiscard]] std::string format_response_text(const Response& response);

}  // namespace vmp::serve
