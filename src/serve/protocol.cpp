#include "serve/protocol.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace vmp::serve {

namespace {

void put_u16(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value >> 8));
  out.push_back(static_cast<char>(value & 0xff));
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

/// Cursor over a body; every get_* fails (returns false) on underrun instead
/// of reading past the end — truncated bodies become protocol errors.
struct Reader {
  std::string_view data;
  std::size_t pos = 0;

  bool get_u8(std::uint8_t& value) {
    if (pos + 1 > data.size()) return false;
    value = static_cast<std::uint8_t>(data[pos++]);
    return true;
  }
  bool get_u16(std::uint16_t& value) {
    if (pos + 2 > data.size()) return false;
    value = 0;
    for (int i = 0; i < 2; ++i)
      value = static_cast<std::uint16_t>(
          (value << 8) | static_cast<std::uint8_t>(data[pos++]));
    return true;
  }
  bool get_u32(std::uint32_t& value) {
    if (pos + 4 > data.size()) return false;
    value = 0;
    for (int i = 0; i < 4; ++i)
      value = (value << 8) | static_cast<std::uint8_t>(data[pos++]);
    return true;
  }
  bool get_u64(std::uint64_t& value) {
    if (pos + 8 > data.size()) return false;
    value = 0;
    for (int i = 0; i < 8; ++i)
      value = (value << 8) | static_cast<std::uint8_t>(data[pos++]);
    return true;
  }
  bool get_f64(double& value) {
    std::uint64_t bits = 0;
    if (!get_u64(bits)) return false;
    value = std::bit_cast<double>(bits);
    return true;
  }
  [[nodiscard]] bool exhausted() const { return pos == data.size(); }
};

/// %.17g: shortest-ish form that still round-trips doubles exactly, so the
/// text protocol is as faithful as the binary one.
std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

bool parse_u32(std::string_view token, std::uint32_t& value) {
  if (token.empty()) return false;
  std::uint64_t parsed = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    if (parsed > 0xffffffffull) return false;
  }
  value = static_cast<std::uint32_t>(parsed);
  return true;
}

bool parse_f64(const std::string& token, double& value) {
  if (token.empty()) return false;
  char* end = nullptr;
  value = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size() && std::isfinite(value);
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream in{std::string(line)};
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

const char* to_string(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::kVmPower: return "vm-power";
    case QueryKind::kTenantPower: return "tenant-power";
    case QueryKind::kFleetPower: return "fleet-power";
    case QueryKind::kVmEnergy: return "vm-energy";
    case QueryKind::kTenantEnergy: return "tenant-energy";
    case QueryKind::kTenantCost: return "tenant-cost";
    case QueryKind::kStats: return "stats";
  }
  return "?";
}

std::string Request::canonical() const { return format_request_text(*this); }

Response Response::success(std::uint64_t epoch, std::vector<double> values) {
  Response response;
  response.ok = true;
  response.epoch = epoch;
  response.values = std::move(values);
  return response;
}

Response Response::partial(std::uint64_t epoch, std::vector<double> values,
                           std::vector<std::uint32_t> missing) {
  Response response = success(epoch, std::move(values));
  response.complete = missing.empty();
  response.missing_shards = std::move(missing);
  return response;
}

Response Response::error(ErrorCode code, std::string message,
                         std::uint64_t detail) {
  Response response;
  response.ok = false;
  response.code = code;
  response.detail = detail;
  response.message = std::move(message);
  return response;
}

std::string encode_frame(std::string_view body) {
  std::string frame;
  frame.reserve(kFramePrefixBytes + body.size());
  const std::size_t start = begin_frame(frame, false, 0);
  frame.append(body);
  finish_frame(frame, start);
  return frame;
}

std::string encode_frame_with_id(std::string_view body,
                                 std::uint64_t request_id) {
  std::string frame;
  frame.reserve(kFramePrefixBytes + kFrameIdBytes + body.size());
  const std::size_t start = begin_frame(frame, true, request_id);
  frame.append(body);
  finish_frame(frame, start);
  return frame;
}

std::string encode_frame_with_trace(std::string_view body,
                                    std::uint64_t request_id,
                                    const TraceContextWire& ctx) {
  std::string frame;
  frame.reserve(kFramePrefixBytes + kFrameIdBytes + kFrameTraceBytes +
                body.size());
  const std::size_t start = begin_frame(frame, true, request_id, &ctx);
  frame.append(body);
  finish_frame(frame, start);
  return frame;
}

std::size_t begin_frame(std::string& out, bool has_id,
                        std::uint64_t request_id,
                        const TraceContextWire* trace) {
  const std::size_t start = out.size();
  std::uint32_t flags = 0;
  // The trace flag is only valid alongside an id (see the header comment's
  // sniffing note), so a trace context implies the id even if the caller
  // forgot to say so.
  if (has_id || trace != nullptr) flags |= kFrameIdFlag;
  if (trace != nullptr) flags |= kFrameTraceFlag;
  put_u32(out, flags);  // length placeholder; finish_frame backpatches it.
  if (flags & kFrameIdFlag) put_u64(out, request_id);
  if (trace != nullptr) {
    out.push_back(static_cast<char>(kFrameTraceVersion));
    put_u64(out, trace->trace_id);
    put_u64(out, trace->parent_span);
    put_u64(out, trace->budget_us);
  }
  return start;
}

void finish_frame(std::string& out, std::size_t frame_start) {
  const std::uint32_t flag_bits =
      static_cast<std::uint32_t>(
          static_cast<std::uint8_t>(out[frame_start]))
      << 24;
  std::size_t header = kFramePrefixBytes;
  if (flag_bits & kFrameIdFlag) header += kFrameIdBytes;
  if (flag_bits & kFrameTraceFlag) header += kFrameTraceBytes;
  const std::uint32_t length =
      static_cast<std::uint32_t>(out.size() - frame_start - header);
  const std::uint32_t prefix = length | (flag_bits & ~kFrameLenMask);
  for (int i = 0; i < 4; ++i)
    out[frame_start + static_cast<std::size_t>(i)] =
        static_cast<char>((prefix >> (24 - 8 * i)) & 0xff);
}

std::string encode_trace_block(const TraceContextWire& ctx) {
  std::string block;
  block.reserve(kFrameTraceBytes);
  block.push_back(static_cast<char>(kFrameTraceVersion));
  put_u64(block, ctx.trace_id);
  put_u64(block, ctx.parent_span);
  put_u64(block, ctx.budget_us);
  return block;
}

bool decode_trace_block(std::string_view block, TraceContextWire& ctx) {
  if (block.size() != kFrameTraceBytes) return false;
  Reader reader{block};
  std::uint8_t version = 0;
  if (!reader.get_u8(version) || version != kFrameTraceVersion) return false;
  return reader.get_u64(ctx.trace_id) && reader.get_u64(ctx.parent_span) &&
         reader.get_u64(ctx.budget_us);
}

namespace {

/// Parses a run of decimal digits at `pos` into `value` with overflow
/// checking; advances `pos` past the run. False when there is no digit or
/// the value overflows u64.
bool parse_decimal_run(std::string_view line, std::size_t& pos,
                       std::uint64_t& value) {
  const std::size_t start = pos;
  value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(line[pos] - '0');
    if (value > (0xffffffffffffffffull - digit) / 10) return false;
    value = value * 10 + digit;
    ++pos;
  }
  return pos != start;
}

}  // namespace

bool strip_text_request_id(std::string_view& line, std::uint64_t& request_id) {
  TraceContextWire ignored;
  const TextEnvelope envelope = strip_text_envelope(line, request_id, ignored);
  return envelope == TextEnvelope::kId || envelope == TextEnvelope::kTraced;
}

TextEnvelope strip_text_envelope(std::string_view& line,
                                 std::uint64_t& request_id,
                                 TraceContextWire& trace) {
  if (line.empty() || line.front() != '#') return TextEnvelope::kNone;
  std::size_t pos = 1;
  std::uint64_t id = 0;
  // A malformed *id* ("#x", overflow) is kNone — such lines always fell
  // through to the verb parser, and still do.
  if (!parse_decimal_run(line, pos, id)) return TextEnvelope::kNone;
  TextEnvelope kind = TextEnvelope::kId;
  if (pos < line.size() && line[pos] == '@') {
    // "#<id>@<trace>:<parent>:<budget_us>". Once the '@' committed the
    // client to a trace context, any defect in it is kMalformed — silently
    // downgrading to an untraced id would detach the server's spans from
    // the caller's tree with no signal to anyone. The id itself parsed, so
    // it is reported even on kMalformed for the caller's error echo.
    request_id = id;
    ++pos;
    TraceContextWire parsed;
    if (!parse_decimal_run(line, pos, parsed.trace_id))
      return TextEnvelope::kMalformed;
    if (pos >= line.size() || line[pos] != ':') return TextEnvelope::kMalformed;
    ++pos;
    if (!parse_decimal_run(line, pos, parsed.parent_span))
      return TextEnvelope::kMalformed;
    if (pos >= line.size() || line[pos] != ':') return TextEnvelope::kMalformed;
    ++pos;
    if (!parse_decimal_run(line, pos, parsed.budget_us))
      return TextEnvelope::kMalformed;
    if (pos < line.size() && line[pos] != ' ' && line[pos] != '\t')
      return TextEnvelope::kMalformed;
    trace = parsed;
    kind = TextEnvelope::kTraced;
  } else if (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') {
    return TextEnvelope::kNone;  // "#42x": not an envelope token at all.
  }
  line.remove_prefix(pos);
  while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
    line.remove_prefix(1);
  request_id = id;
  return kind;
}

std::string encode_request(const Request& request) {
  std::string body;
  encode_request_into(request, body);
  return body;
}

void encode_request_into(const Request& request, std::string& out) {
  out.push_back(static_cast<char>(request.kind));
  switch (request.kind) {
    case QueryKind::kVmPower:
      put_u32(out, request.host);
      put_u32(out, request.vm);
      break;
    case QueryKind::kTenantPower:
      put_u32(out, request.tenant);
      break;
    case QueryKind::kVmEnergy:
      put_u32(out, request.host);
      put_u32(out, request.vm);
      put_f64(out, request.t0);
      put_f64(out, request.t1);
      break;
    case QueryKind::kTenantEnergy:
    case QueryKind::kTenantCost:
      put_u32(out, request.tenant);
      put_f64(out, request.t0);
      put_f64(out, request.t1);
      break;
    case QueryKind::kFleetPower:
    case QueryKind::kStats:
      break;
  }
}

std::optional<Request> decode_request(std::string_view body) {
  Reader reader{body};
  std::uint8_t opcode = 0;
  if (!reader.get_u8(opcode)) return std::nullopt;
  Request request;
  switch (static_cast<QueryKind>(opcode)) {
    case QueryKind::kVmPower:
      request.kind = QueryKind::kVmPower;
      if (!reader.get_u32(request.host) || !reader.get_u32(request.vm))
        return std::nullopt;
      break;
    case QueryKind::kTenantPower:
      request.kind = QueryKind::kTenantPower;
      if (!reader.get_u32(request.tenant)) return std::nullopt;
      break;
    case QueryKind::kVmEnergy:
      request.kind = QueryKind::kVmEnergy;
      if (!reader.get_u32(request.host) || !reader.get_u32(request.vm) ||
          !reader.get_f64(request.t0) || !reader.get_f64(request.t1))
        return std::nullopt;
      break;
    case QueryKind::kTenantEnergy:
    case QueryKind::kTenantCost:
      request.kind = static_cast<QueryKind>(opcode);
      if (!reader.get_u32(request.tenant) || !reader.get_f64(request.t0) ||
          !reader.get_f64(request.t1))
        return std::nullopt;
      break;
    case QueryKind::kFleetPower:
    case QueryKind::kStats:
      request.kind = static_cast<QueryKind>(opcode);
      break;
    default:
      return std::nullopt;
  }
  if (!reader.exhausted()) return std::nullopt;  // trailing operand bytes.
  // Window bounds must be finite, matching the text parser's strictness.
  if (!std::isfinite(request.t0) || !std::isfinite(request.t1))
    return std::nullopt;
  return request;
}

std::string encode_response(const Response& response) {
  std::string body;
  encode_response_into(response, body);
  return body;
}

void encode_response_into(const Response& response, std::string& out) {
  // Status 0 = OK, 1 = error, 2 = partial OK (a federated roll-up missing
  // some shards; the OK layout plus a trailing missing-shard list).
  const bool partial = response.ok && !response.complete;
  out.push_back(response.ok ? (partial ? '\2' : '\0') : '\1');
  if (response.ok) {
    put_u64(out, response.epoch);
    out.push_back(static_cast<char>(response.values.size()));
    for (const double value : response.values) put_f64(out, value);
    if (partial) {
      put_u16(out, static_cast<std::uint16_t>(std::min<std::size_t>(
                       response.missing_shards.size(), 0xffff)));
      for (const std::uint32_t shard : response.missing_shards)
        put_u32(out, shard);
    }
  } else {
    put_u16(out, static_cast<std::uint16_t>(response.code));
    put_u64(out, response.detail);
    put_u16(out, static_cast<std::uint16_t>(response.message.size()));
    out.append(response.message, 0,
               std::min<std::size_t>(response.message.size(), 0xffff));
  }
}

std::optional<Response> decode_response(std::string_view body) {
  Reader reader{body};
  std::uint8_t status = 0;
  if (!reader.get_u8(status) || status > 2) return std::nullopt;
  Response response;
  response.ok = status != 1;
  if (response.ok) {
    std::uint8_t count = 0;
    if (!reader.get_u64(response.epoch) || !reader.get_u8(count))
      return std::nullopt;
    response.values.resize(count);
    for (double& value : response.values)
      if (!reader.get_f64(value)) return std::nullopt;
    if (status == 2) {
      std::uint16_t missing = 0;
      if (!reader.get_u16(missing) || missing == 0) return std::nullopt;
      response.complete = false;
      response.missing_shards.resize(missing);
      for (std::uint32_t& shard : response.missing_shards)
        if (!reader.get_u32(shard)) return std::nullopt;
    }
  } else {
    std::uint16_t code = 0, length = 0;
    if (!reader.get_u16(code) || !reader.get_u64(response.detail) ||
        !reader.get_u16(length))
      return std::nullopt;
    if (reader.pos + length > body.size()) return std::nullopt;
    response.code = static_cast<ErrorCode>(code);
    response.message = std::string(body.substr(reader.pos, length));
    reader.pos += length;
  }
  if (!reader.exhausted()) return std::nullopt;
  return response;
}

std::string format_request_text(const Request& request) {
  std::string line = to_string(request.kind);
  switch (request.kind) {
    case QueryKind::kVmPower:
      line += " " + std::to_string(request.host) + " " +
              std::to_string(request.vm);
      break;
    case QueryKind::kTenantPower:
      line += " " + std::to_string(request.tenant);
      break;
    case QueryKind::kVmEnergy:
      line += " " + std::to_string(request.host) + " " +
              std::to_string(request.vm) + " " + format_double(request.t0) +
              " " + format_double(request.t1);
      break;
    case QueryKind::kTenantEnergy:
    case QueryKind::kTenantCost:
      line += " " + std::to_string(request.tenant) + " " +
              format_double(request.t0) + " " + format_double(request.t1);
      break;
    case QueryKind::kFleetPower:
    case QueryKind::kStats:
      break;
  }
  return line;
}

std::optional<Request> parse_request_text(std::string_view line) {
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) return std::nullopt;
  Request request;
  const std::string& verb = tokens[0];
  if (verb == "vm-power") {
    request.kind = QueryKind::kVmPower;
    if (tokens.size() != 3 || !parse_u32(tokens[1], request.host) ||
        !parse_u32(tokens[2], request.vm))
      return std::nullopt;
  } else if (verb == "tenant-power") {
    request.kind = QueryKind::kTenantPower;
    if (tokens.size() != 2 || !parse_u32(tokens[1], request.tenant))
      return std::nullopt;
  } else if (verb == "fleet-power") {
    request.kind = QueryKind::kFleetPower;
    if (tokens.size() != 1) return std::nullopt;
  } else if (verb == "vm-energy") {
    request.kind = QueryKind::kVmEnergy;
    if (tokens.size() != 5 || !parse_u32(tokens[1], request.host) ||
        !parse_u32(tokens[2], request.vm) || !parse_f64(tokens[3], request.t0) ||
        !parse_f64(tokens[4], request.t1))
      return std::nullopt;
  } else if (verb == "tenant-energy" || verb == "tenant-cost") {
    request.kind = verb == "tenant-energy" ? QueryKind::kTenantEnergy
                                           : QueryKind::kTenantCost;
    if (tokens.size() != 4 || !parse_u32(tokens[1], request.tenant) ||
        !parse_f64(tokens[2], request.t0) || !parse_f64(tokens[3], request.t1))
      return std::nullopt;
  } else if (verb == "stats") {
    request.kind = QueryKind::kStats;
    if (tokens.size() != 1) return std::nullopt;
  } else {
    return std::nullopt;
  }
  return request;
}

std::string format_response_text(const Response& response) {
  std::string line;
  format_response_text_into(response, line);
  return line;
}

void format_response_text_into(const Response& response, std::string& out) {
  if (!response.ok) {
    out += "ERR ";
    out += std::to_string(static_cast<int>(response.code));
    // The detail operand becomes a self-describing token so existing
    // "ERR <code> <message>" consumers only see it when it means something.
    if (response.detail != 0) {
      out += " oldest=";
      out += std::to_string(response.detail);
    }
    out += ' ';
    out += response.message;
    return;
  }
  out += "OK ";
  out += std::to_string(response.epoch);
  for (const double value : response.values) {
    out += ' ';
    out += format_double(value);
  }
  // A degraded federated roll-up names the absent shards as one trailing
  // self-describing token, so complete answers keep their exact shape.
  if (!response.complete && !response.missing_shards.empty()) {
    out += " missing=";
    for (std::size_t i = 0; i < response.missing_shards.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(response.missing_shards[i]);
    }
  }
}

}  // namespace vmp::serve
