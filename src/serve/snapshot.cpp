#include "serve/snapshot.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace vmp::serve {

namespace {

struct VmKeyLess {
  bool operator()(const VmRecord& record,
                  std::pair<std::uint32_t, std::uint32_t> key) const noexcept {
    return std::make_pair(record.host, record.vm) < key;
  }
};

}  // namespace

ledger::TickRecord to_record(const Snapshot& snapshot) {
  ledger::TickRecord record;
  record.epoch = snapshot.epoch;
  record.tick = snapshot.tick;
  record.time_s = snapshot.time_s;
  record.period_s = snapshot.period_s;
  record.vms.reserve(snapshot.vms.size());
  for (const VmRecord& vm : snapshot.vms)
    record.vms.push_back({vm.host, vm.vm, vm.tenant, vm.power_w, vm.energy_j});
  record.tenants.reserve(snapshot.tenants.size());
  for (const TenantRecord& tenant : snapshot.tenants)
    record.tenants.push_back(
        {tenant.tenant, tenant.power_w, tenant.energy_j});
  record.total_power_w = snapshot.total_power_w;
  record.total_energy_j = snapshot.total_energy_j;
  record.unattributed_j = snapshot.unattributed_j;
  return record;
}

Snapshot to_snapshot(const ledger::TickRecord& record) {
  Snapshot snapshot;
  snapshot.epoch = record.epoch;
  snapshot.tick = record.tick;
  snapshot.time_s = record.time_s;
  snapshot.period_s = record.period_s;
  snapshot.vms.reserve(record.vms.size());
  for (const ledger::VmEntry& vm : record.vms)
    snapshot.vms.push_back({vm.host, vm.vm, vm.tenant, vm.power_w,
                            vm.energy_j});
  snapshot.tenants.reserve(record.tenants.size());
  for (const ledger::TenantEntry& tenant : record.tenants)
    snapshot.tenants.push_back(
        {tenant.tenant, tenant.power_w, tenant.energy_j});
  snapshot.total_power_w = record.total_power_w;
  snapshot.total_energy_j = record.total_energy_j;
  snapshot.unattributed_j = record.unattributed_j;
  return snapshot;
}

const VmRecord* Snapshot::find_vm(std::uint32_t host,
                                  std::uint32_t vm) const noexcept {
  const auto it = std::lower_bound(vms.begin(), vms.end(),
                                   std::make_pair(host, vm), VmKeyLess{});
  if (it == vms.end() || it->host != host || it->vm != vm) return nullptr;
  return &*it;
}

const TenantRecord* Snapshot::find_tenant(
    core::TenantId tenant) const noexcept {
  const auto it = std::lower_bound(
      tenants.begin(), tenants.end(), tenant,
      [](const TenantRecord& record, core::TenantId id) noexcept {
        return record.tenant < id;
      });
  if (it == tenants.end() || it->tenant != tenant) return nullptr;
  return &*it;
}

SnapshotStore::SnapshotStore(std::size_t retention) : retention_(retention) {
  if (retention == 0)
    throw std::invalid_argument("SnapshotStore: retention must be >= 1");
}

void SnapshotStore::publish(Snapshot snapshot) {
  snapshot.epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t epoch = snapshot.epoch;
  auto published = std::make_shared<const Snapshot>(std::move(snapshot));
  std::size_t occupancy = 0;
  std::uint64_t evictions = 0;
  {
    std::lock_guard lock(ring_mutex_);
    ring_.push_back(published);
    if (ring_.size() > retention_) {
      ring_.pop_front();
      ++evictions_;
    }
    occupancy = ring_.size();
    evictions = evictions_;
    latest_ = published;
  }
  if (ledger_ != nullptr) ledger_->append(to_record(*published));
  if (monitor_ != nullptr) {
    monitor_->observe_ring(epoch, occupancy, retention_, evictions);
    if (ledger_ != nullptr)
      monitor_->observe_ledger(epoch, ledger_->stats().tail_epoch);
  }
}

std::size_t SnapshotStore::restore_from_ledger(const ledger::Ledger& log) {
  const ledger::Stats stats = log.stats();
  if (stats.records == 0) return 0;
  std::uint64_t from = stats.oldest_epoch;
  if (stats.tail_epoch - stats.oldest_epoch + 1 > retention_)
    from = stats.tail_epoch - retention_ + 1;
  const std::vector<ledger::TickRecord> records =
      log.range(from, stats.tail_epoch);
  std::lock_guard lock(ring_mutex_);
  ring_.clear();
  for (const ledger::TickRecord& record : records) {
    auto snapshot = std::make_shared<const Snapshot>(to_snapshot(record));
    latest_ = snapshot;
    ring_.push_back(std::move(snapshot));
  }
  next_epoch_.store(stats.tail_epoch, std::memory_order_relaxed);
  return records.size();
}

std::shared_ptr<const Snapshot> SnapshotStore::latest() const {
  std::lock_guard lock(ring_mutex_);
  return latest_;
}

std::shared_ptr<const Snapshot> SnapshotStore::oldest() const {
  std::lock_guard lock(ring_mutex_);
  return ring_.empty() ? nullptr : ring_.front();
}

std::shared_ptr<const Snapshot> SnapshotStore::at_or_before(double t_s) const {
  std::lock_guard lock(ring_mutex_);
  // Ring is time-ascending: last entry with time_s <= t_s.
  const auto it = std::upper_bound(
      ring_.begin(), ring_.end(), t_s,
      [](double t, const std::shared_ptr<const Snapshot>& snapshot) {
        return t < snapshot->time_s;
      });
  if (it == ring_.begin()) return nullptr;
  return *std::prev(it);
}

void SnapshotStore::publish_tick(
    const fleet::FleetEngine& engine, std::uint64_t tick,
    const std::vector<fleet::HostTickResult>& results) {
  VMP_TRACE_SPAN("serve.snapshot_publish", "serve");
  const double period_s = engine.options().period_s;
  Snapshot snapshot;
  snapshot.tick = tick + 1;  // ledgers now include this tick's interval.
  snapshot.time_s = static_cast<double>(tick + 1) * period_s;
  snapshot.period_s = period_s;

  // Start from the previous snapshot's VM universe so hosts whose sample was
  // shed this tick keep their last instant power instead of vanishing.
  if (const auto previous = latest()) snapshot.vms = previous->vms;

  const auto upsert = [&snapshot](std::uint32_t host,
                                  std::uint32_t vm) -> VmRecord& {
    const auto it = std::lower_bound(snapshot.vms.begin(), snapshot.vms.end(),
                                     std::make_pair(host, vm), VmKeyLess{});
    if (it != snapshot.vms.end() && it->host == host && it->vm == vm)
      return *it;
    VmRecord record;
    record.host = host;
    record.vm = vm;
    return *snapshot.vms.insert(it, record);
  };

  for (const fleet::HostTickResult& result : results)
    for (std::size_t i = 0; i < result.phi.size(); ++i)
      upsert(result.host, result.vms[i].vm_id).power_w = result.phi[i];

  const core::MultiHostAccountant& tenants = engine.tenant_ledger();
  std::map<core::TenantId, TenantRecord> roll_up;
  for (VmRecord& record : snapshot.vms) {
    record.energy_j = engine.host_ledger(record.host).energy_j(record.vm);
    record.tenant =
        tenants.is_bound(static_cast<core::HostId>(record.host), record.vm)
            ? tenants.owner_of(static_cast<core::HostId>(record.host),
                               record.vm)
            : 0;
    snapshot.total_power_w += record.power_w;
    if (record.tenant != 0) roll_up[record.tenant].power_w += record.power_w;
  }
  for (const core::TenantId tenant : tenants.tenants()) {
    TenantRecord& record = roll_up[tenant];
    record.energy_j = tenants.tenant_energy_j(tenant);
  }
  snapshot.tenants.reserve(roll_up.size());
  for (auto& [tenant, record] : roll_up) {
    record.tenant = tenant;
    snapshot.tenants.push_back(record);
  }
  snapshot.total_energy_j = tenants.total_energy_j();
  snapshot.unattributed_j = tenants.unattributed_energy_j();
  publish(std::move(snapshot));
}

void SnapshotStore::attach(fleet::FleetEngine& engine) {
  set_monitor(&engine.invariants());
  engine.set_tick_observer(
      [this](const fleet::FleetEngine& source, std::uint64_t tick,
             const std::vector<fleet::HostTickResult>& results) {
        publish_tick(source, tick, results);
      });
}

}  // namespace vmp::serve
