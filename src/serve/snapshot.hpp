// Immutable per-tick attribution snapshots and their bounded retention ring.
//
// The fleet engine's ledgers are mutable single-writer state; queries must
// never make the metering tick wait on a reader. SnapshotStore decouples the
// two: at the end of every tick the engine publishes one immutable Snapshot
// (per-VM instant power, cumulative energies, tenant roll-ups) by swapping a
// shared_ptr under a short mutex — readers copy the pointer and keep the
// snapshot alive for as long as they hold it, so the critical section is a
// pointer copy, never a payload copy. (libstdc++'s lock-free
// std::atomic<shared_ptr> is opaque to TSan, and at serving rates the brief
// lock measures identically.) A bounded ring retains the last N
// snapshots so window queries can difference cumulative energy between two
// consistent epochs; anything older is out of retention, by design (the
// durable-history story is a WAL, not an unbounded ring — see ROADMAP).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/multi_host.hpp"
#include "fleet/engine.hpp"
#include "ledger/ledger.hpp"
#include "obs/invariants.hpp"

namespace vmp::serve {

/// One VM's attribution state at a tick.
struct VmRecord {
  std::uint32_t host = 0;
  std::uint32_t vm = 0;
  core::TenantId tenant = 0;  ///< 0 = unbound (unattributed bucket).
  double power_w = 0.0;       ///< instant Shapley share at this tick.
  double energy_j = 0.0;      ///< cumulative attributed energy.
};

/// One tenant's cross-host roll-up at a tick.
struct TenantRecord {
  core::TenantId tenant = 0;
  double power_w = 0.0;   ///< sum of the tenant's VM instant shares.
  double energy_j = 0.0;  ///< cumulative cross-host energy (Additivity).
};

/// Immutable view of the fleet's attribution state at one tick. Published
/// once, then only read — never mutated — so it is safe to share across
/// threads without locks.
struct Snapshot {
  std::uint64_t epoch = 0;  ///< publish sequence number, assigned by the store.
  std::uint64_t tick = 0;
  double time_s = 0.0;  ///< tick boundary in accounting time (tick*period).
  double period_s = 1.0;
  std::vector<VmRecord> vms;          ///< sorted by (host, vm).
  std::vector<TenantRecord> tenants;  ///< sorted by tenant.
  double total_power_w = 0.0;
  double total_energy_j = 0.0;
  double unattributed_j = 0.0;

  /// Binary search; nullptr when the (host, vm) pair is unknown.
  [[nodiscard]] const VmRecord* find_vm(std::uint32_t host,
                                        std::uint32_t vm) const noexcept;
  [[nodiscard]] const TenantRecord* find_tenant(
      core::TenantId tenant) const noexcept;
};

/// Snapshot <-> ledger record conversions. Field-for-field copies (the two
/// structs mirror each other), so a snapshot round-tripped through the
/// ledger is bit-identical — cold window answers match ring answers exactly.
[[nodiscard]] ledger::TickRecord to_record(const Snapshot& snapshot);
[[nodiscard]] Snapshot to_snapshot(const ledger::TickRecord& record);

class SnapshotStore {
 public:
  /// Retains the newest `retention` snapshots for window queries; throws
  /// std::invalid_argument on zero.
  explicit SnapshotStore(std::size_t retention = 512);

  /// Stamps the next epoch on `snapshot` and publishes it: the latest
  /// pointer is swapped and the ring evicts its oldest entry when full.
  /// Single writer (the engine thread); readers are never blocked by a
  /// publish beyond the ring's short critical section.
  void publish(Snapshot snapshot);

  /// Newest snapshot, or nullptr before the first publish.
  [[nodiscard]] std::shared_ptr<const Snapshot> latest() const;

  /// Newest retained snapshot with time_s <= t_s, or nullptr when t_s
  /// predates the retention window (or nothing is retained yet).
  [[nodiscard]] std::shared_ptr<const Snapshot> at_or_before(double t_s) const;

  /// Oldest retained snapshot (nullptr before the first publish). When this
  /// is still epoch 1, a window bound before it means "before accounting
  /// started" — a zero baseline — not "history evicted".
  [[nodiscard]] std::shared_ptr<const Snapshot> oldest() const;

  [[nodiscard]] std::size_t retention() const noexcept { return retention_; }
  [[nodiscard]] std::uint64_t published() const noexcept {
    return next_epoch_.load(std::memory_order_relaxed);
  }
  /// Snapshots evicted from the ring since construction.
  [[nodiscard]] std::uint64_t evictions() const {
    std::lock_guard lock(ring_mutex_);
    return evictions_;
  }

  /// Feeds ring occupancy/eviction samples into `monitor` on every publish
  /// (attach() wires the engine's monitor automatically); nullptr detaches.
  /// The monitor must outlive subsequent publishes.
  void set_monitor(obs::InvariantMonitor* monitor) noexcept {
    monitor_ = monitor;
  }

  /// Builds a snapshot from the engine's ledgers and this tick's results and
  /// publishes it. Hosts absent from `results` (shed under drop-oldest
  /// backpressure) carry their previous instant power; energies always come
  /// from the ledgers, which are authoritative.
  void publish_tick(const fleet::FleetEngine& engine, std::uint64_t tick,
                    const std::vector<fleet::HostTickResult>& results);

  /// Registers publish_tick as the engine's tick observer. The store must
  /// outlive the engine's run() calls.
  void attach(fleet::FleetEngine& engine);

  /// Mirrors every publish into `log` (the durable tier under the ring);
  /// nullptr detaches. The append happens on the publish thread, so the
  /// single-writer contracts of both sides line up. The ledger must outlive
  /// subsequent publishes.
  void set_ledger(ledger::Ledger* log) noexcept { ledger_ = log; }
  [[nodiscard]] ledger::Ledger* ledger() const noexcept { return ledger_; }

  /// Refills the ring from the tail of `log` (newest `retention` records,
  /// keeping their epochs) and advances the epoch counter so the next
  /// publish continues the sequence. Returns how many snapshots were
  /// restored. Call before the first publish, e.g. right after a checkpoint
  /// restore, so historical window queries answer byte-identically.
  std::size_t restore_from_ledger(const ledger::Ledger& log);

 private:
  const std::size_t retention_;
  std::atomic<std::uint64_t> next_epoch_{0};
  obs::InvariantMonitor* monitor_ = nullptr;  ///< publish-thread only.
  ledger::Ledger* ledger_ = nullptr;          ///< publish-thread only.
  mutable std::mutex ring_mutex_;
  std::shared_ptr<const Snapshot> latest_;            ///< guarded by the ring mutex.
  std::deque<std::shared_ptr<const Snapshot>> ring_;  ///< time-ascending.
  std::uint64_t evictions_ = 0;                       ///< guarded by the ring mutex.
};

}  // namespace vmp::serve
