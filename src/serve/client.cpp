#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace vmp::serve {

namespace {

[[noreturn]] void throw_recv_failure(ssize_t n) {
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
    throw TimeoutError("serve client: query deadline expired");
  throw std::runtime_error("serve client: connection closed mid-response");
}

void read_or_throw(int fd, char* out, std::size_t want) {
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::recv(fd, out + got, want - got, 0);
    if (n <= 0) throw_recv_failure(n);
    got += static_cast<std::size_t>(n);
  }
}

}  // namespace

Client::Client(std::uint16_t port, bool tcp_nodelay) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error("serve client: socket() failed: " +
                             std::string(std::strerror(errno)));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address), sizeof address) !=
      0) {
    const std::string what = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: cannot connect to 127.0.0.1:" +
                             std::to_string(port) + ": " + what);
  }
  if (tcp_nodelay) {
    // Best-effort: a failed setsockopt costs latency, not correctness.
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::set_timeout(std::chrono::milliseconds timeout) {
  timeout_ = timeout.count() < 0 ? std::chrono::milliseconds{0} : timeout;
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) != 0)
    throw std::runtime_error("serve client: setsockopt(SO_*TIMEO) failed: " +
                             std::string(std::strerror(errno)));
}

void Client::send_raw(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        throw TimeoutError("serve client: query deadline expired");
      throw std::runtime_error("serve client: send failed: " +
                               std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::recv_frame() {
  char prefix[kFramePrefixBytes];
  read_or_throw(fd_, prefix, sizeof prefix);
  std::uint32_t raw = 0;
  for (const char byte : prefix)
    raw = (raw << 8) | static_cast<std::uint8_t>(byte);
  const bool has_id = (raw & kFrameIdFlag) != 0;
  // Responses never carry a trace block, but mask both flag bits so a
  // misbehaving peer cannot inflate the length into the flag space.
  const std::uint32_t length = raw & kFrameLenMask;
  if (length > kMaxFrameBytes)
    throw std::runtime_error("serve client: oversized response frame");
  const std::size_t header =
      kFramePrefixBytes + (has_id ? kFrameIdBytes : 0);
  std::string frame(prefix, sizeof prefix);
  frame.resize(header + length);
  read_or_throw(fd_, frame.data() + kFramePrefixBytes,
                frame.size() - kFramePrefixBytes);
  return frame;
}

std::string Client::recv_line() {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) throw_recv_failure(n);
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::send_query(const Request& request) {
  send_buffer_.clear();
  const std::size_t start = begin_frame(send_buffer_, false, 0);
  encode_request_into(request, send_buffer_);
  finish_frame(send_buffer_, start);
  send_raw(send_buffer_);
}

void Client::send_query_with_id(const Request& request,
                                std::uint64_t request_id) {
  send_buffer_.clear();
  const std::size_t start = begin_frame(send_buffer_, true, request_id);
  encode_request_into(request, send_buffer_);
  finish_frame(send_buffer_, start);
  send_raw(send_buffer_);
}

void Client::send_query_with_trace(const Request& request,
                                   std::uint64_t request_id,
                                   const TraceContextWire& trace) {
  send_buffer_.clear();
  const std::size_t start = begin_frame(send_buffer_, true, request_id, &trace);
  encode_request_into(request, send_buffer_);
  finish_frame(send_buffer_, start);
  send_raw(send_buffer_);
}

Response Client::recv_response() {
  const std::string frame = recv_frame();
  const auto response =
      decode_response(std::string_view(frame).substr(kFramePrefixBytes));
  if (!response)
    throw std::runtime_error("serve client: undecodable response body");
  return *response;
}

std::pair<std::uint64_t, Response> Client::recv_response_with_id() {
  const std::string frame = recv_frame();
  std::string_view bytes{frame};
  std::uint32_t raw = 0;
  for (std::size_t i = 0; i < kFramePrefixBytes; ++i)
    raw = (raw << 8) | static_cast<std::uint8_t>(bytes[i]);
  if ((raw & kFrameIdFlag) == 0)
    throw std::runtime_error("serve client: response frame lost the id flag");
  std::uint64_t echoed = 0;
  for (std::size_t i = 0; i < kFrameIdBytes; ++i)
    echoed = (echoed << 8) |
             static_cast<std::uint8_t>(bytes[kFramePrefixBytes + i]);
  const auto response = decode_response(
      bytes.substr(kFramePrefixBytes + kFrameIdBytes));
  if (!response)
    throw std::runtime_error("serve client: undecodable response body");
  return {echoed, *response};
}

Response Client::query(const Request& request) {
  send_query(request);
  return recv_response();
}

Response Client::query_with_id(const Request& request,
                               std::uint64_t request_id) {
  send_query_with_id(request, request_id);
  const auto [echoed, response] = recv_response_with_id();
  if (echoed != request_id)
    throw std::runtime_error("serve client: response echoed wrong request id");
  return response;
}

Response Client::query_with_trace(const Request& request,
                                  std::uint64_t request_id,
                                  const TraceContextWire& trace) {
  send_query_with_trace(request, request_id, trace);
  const auto [echoed, response] = recv_response_with_id();
  if (echoed != request_id)
    throw std::runtime_error("serve client: response echoed wrong request id");
  return response;
}

std::string Client::query_text(const std::string& line) {
  send_raw(line + "\n");
  return recv_line();
}

std::string Client::scrape(const std::string& command) {
  send_raw(command + "\n");
  std::string payload;
  while (true) {
    const std::string line = recv_line();
    if (line == kScrapeEof) break;
    payload += line;
    payload += '\n';
  }
  return payload;
}

}  // namespace vmp::serve
