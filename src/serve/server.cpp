#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace vmp::serve {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// recv() exactly `want` bytes; false on EOF/error (drop the connection).
bool read_fully(int fd, char* out, std::size_t want) {
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::recv(fd, out + got, want - got, 0);
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_fully(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Matches the requests ServerOptions::cost_query_delay stalls: binary
/// bodies open with the opcode byte, text lines with the verb (after any
/// "#<id>" token).
bool is_cost_query(const std::string& payload, bool binary) {
  if (binary)
    return !payload.empty() &&
           static_cast<std::uint8_t>(payload.front()) ==
               static_cast<std::uint8_t>(QueryKind::kTenantCost);
  std::string_view line{payload};
  std::uint64_t ignored = 0;
  (void)strip_text_request_id(line, ignored);
  return line.substr(0, 11) == "tenant-cost";
}

}  // namespace

void ServerOptions::validate() const {
  if (workers == 0)
    throw std::invalid_argument("ServerOptions: need at least one worker");
  if (queue_capacity == 0)
    throw std::invalid_argument("ServerOptions: queue capacity must be >= 1");
  if (!(token_burst > 0.0) || tokens_per_s < 0.0)
    throw std::invalid_argument("ServerOptions: bad token bucket parameters");
}

Server::Server(QueryHandler& engine, fleet::Metrics& metrics,
               ServerOptions options)
    : options_((options.validate(), options)),
      dispatcher_(engine, &metrics, options.profiler),
      metrics_(metrics),
      queue_(options_.queue_capacity) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("serve: cannot listen on 127.0.0.1:" +
                             std::to_string(options_.port) + ": " + what);
  }
  socklen_t length = sizeof address;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);

  metrics_.gauge("vmpower_serve_active_connections",
                 "Currently open client connections");
  admitted_counter_ = &metrics_.counter(
      "vmpower_serve_admitted_total",
      "Requests read off client connections (sheds included)");
  answered_counter_ = &metrics_.counter(
      "vmpower_serve_answered_total",
      "Response writes attempted (exactly one per admitted request)");
  reordered_counter_ = &metrics_.counter(
      "vmpower_serve_responses_reordered_total",
      "Responses written out of their arrival position");
  corked_counter_ = &metrics_.counter(
      "vmpower_serve_corked_flushes_total",
      "Reorder-buffer drains that batched multiple responses into one send");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
  VMP_LOG_INFO("serve: listening on 127.0.0.1:%u", port_);
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);

  queue_.close();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();

  std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> conns;
  {
    std::lock_guard lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (auto& [conn, thread] : conns) {
    conn->open.store(false, std::memory_order_relaxed);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& [conn, thread] : conns) {
    if (thread.joinable()) thread.join();
    ::close(conn->fd);
  }
}

void Server::accept_loop() {
  fleet::Counter& accepted = metrics_.counter(
      "vmpower_serve_connections_total", "Client connections accepted");
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listening socket gone; nothing sensible left to accept.
    }
    accepted.inc();
    if (options_.tcp_nodelay) {
      // Best-effort: a failed setsockopt costs latency, not correctness.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    auto conn = std::make_shared<Conn>(fd, options_);
    std::lock_guard lock(conns_mutex_);
    conns_.emplace_back(conn,
                        std::thread([this, conn] { serve_connection(conn); }));
  }
}

void Server::serve_connection(const std::shared_ptr<Conn>& conn) {
  fleet::Gauge& active = metrics_.gauge("vmpower_serve_active_connections",
                                        "Currently open client connections");
  active.set(static_cast<double>(
      active_conns_.fetch_add(1, std::memory_order_relaxed) + 1));
  // Protocol sniff: binary frames open with a 4-byte big-endian length whose
  // first byte is 0x00 for any frame under 16 MiB — or 0x80 when the prefix
  // carries kFrameIdFlag; text lines open with a printable ASCII verb.
  char first = 0;
  const ssize_t peeked = ::recv(conn->fd, &first, 1, MSG_PEEK);
  if (peeked == 1) {
    const auto byte = static_cast<unsigned char>(first);
    if (byte < 0x20 || byte >= 0x80)
      serve_binary(conn);
    else
      serve_text(conn);
  }
  conn->open.store(false, std::memory_order_relaxed);
  ::shutdown(conn->fd, SHUT_RDWR);  // unblocks any late worker write cleanly.
  active.set(static_cast<double>(
      active_conns_.fetch_sub(1, std::memory_order_relaxed) - 1));
}

void Server::serve_binary(const std::shared_ptr<Conn>& conn) {
  while (conn->open.load(std::memory_order_relaxed)) {
    char prefix[kFramePrefixBytes];
    if (!read_fully(conn->fd, prefix, sizeof prefix)) return;
    std::uint32_t raw = 0;
    for (const char byte : prefix)
      raw = (raw << 8) | static_cast<std::uint8_t>(byte);
    const bool has_id = (raw & kFrameIdFlag) != 0;
    const bool has_trace = (raw & kFrameTraceFlag) != 0;
    const std::uint32_t length = raw & kFrameLenMask;
    if (length > kMaxFrameBytes) {
      // Cannot resync a stream after refusing to read the body; reject and
      // drop the connection (before the id bytes, so no id to echo).
      reply_error(*conn, /*binary=*/true, ErrorCode::kFrameTooLarge,
                  "frame exceeds 64 KiB limit");
      return;
    }
    std::uint64_t request_id = 0;
    if (has_id) {
      char id_bytes[kFrameIdBytes];
      if (!read_fully(conn->fd, id_bytes, sizeof id_bytes)) return;
      for (const char byte : id_bytes)
        request_id = (request_id << 8) | static_cast<std::uint8_t>(byte);
    }
    TraceContextWire trace;
    bool trace_ok = true;
    if (has_trace) {
      // The block sits between the id (when present) and the body. Read it
      // even when it turns out invalid — the declared layout is what keeps
      // the stream in sync, so the connection can survive the rejection.
      char block[kFrameTraceBytes];
      if (!read_fully(conn->fd, block, sizeof block)) return;
      trace_ok = has_id &&
                 decode_trace_block(std::string_view(block, sizeof block),
                                    trace);
    }
    std::string body(length, '\0');
    if (!read_fully(conn->fd, body.data(), length)) return;  // mid-frame EOF.
    if (!trace_ok) {
      // Lone trace flag or unknown version: the frame is fully consumed, so
      // answer the error out of band and keep serving this connection.
      reply_error(*conn, /*binary=*/true, ErrorCode::kMalformed,
                  "malformed trace context", has_id, request_id);
      continue;
    }
    admit(conn, std::move(body), /*binary=*/true, has_id, request_id,
          has_trace, trace);
  }
}

void Server::serve_text(const std::shared_ptr<Conn>& conn) {
  std::string buffer;
  char chunk[1024];
  while (conn->open.load(std::memory_order_relaxed)) {
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      if (buffer.size() > kMaxLineBytes) {
        reply_error(*conn, /*binary=*/false, ErrorCode::kMalformed,
                    "line exceeds 1 KiB limit");
        return;
      }
      const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
      if (n <= 0) return;
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank lines are keep-alive no-ops.
    // Peek the "#<id>" token (the dispatcher consumes and echoes it on the
    // normal path) so a shed response can still carry the client's id.
    std::string_view peek{line};
    std::uint64_t request_id = 0;
    const bool has_id = strip_text_request_id(peek, request_id);
    admit(conn, std::move(line), /*binary=*/false, has_id, request_id);
  }
}

void Server::admit(const std::shared_ptr<Conn>& conn, std::string payload,
                   bool binary, bool has_id, std::uint64_t request_id,
                   bool has_trace, TraceContextWire trace) {
  VMP_TRACE_CONTEXT_PARENTED(has_trace ? trace.trace_id : request_id,
                             has_trace ? trace.parent_span : 0);
  VMP_TRACE_SPAN("serve.admission", "serve");
  std::shared_ptr<StageProfile> profile;
  std::uint64_t admit_start_ns = 0;
  if (options_.profiler != nullptr) {
    profile = std::make_shared<StageProfile>();
    profile->request_id = request_id;
    profile->trace_id = has_trace ? trace.trace_id : request_id;
    profile->budget_us = has_trace ? trace.budget_us : 0;
    profile->start_ns = admit_start_ns = profile_now_ns();
  }
  const auto finish_admission = [&] {
    if (profile)
      profile->add(Stage::kAdmission,
                   static_cast<double>(profile_now_ns() - admit_start_ns) *
                       1e-9);
  };
  // Delivery routing is fixed at arrival: id-less requests (and everything
  // in ordered mode) hold an ordered slot, so even their shed errors cannot
  // overtake an earlier slow response.
  const bool ordered = !options_.out_of_order || !has_id;
  const std::uint64_t arrival = conn->arrivals++;
  const std::uint64_t seq = ordered ? conn->ordered_seqs++ : 0;
  admitted_.fetch_add(1, std::memory_order_relaxed);
  admitted_counter_->inc();
  if (!conn->bucket.try_acquire(steady_seconds())) {
    metrics_
        .counter("vmpower_serve_shed_total{reason=\"throttle\"}",
                 "Requests shed by per-client token buckets")
        .inc();
    finish_admission();
    if (profile) profile->error = true;
    std::string shed = error_bytes(binary, ErrorCode::kThrottled,
                                   "client exceeded its request rate", has_id,
                                   request_id);
    deliver(*conn, ordered, seq, arrival, shed, std::move(profile));
    return;
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  // Stamp the enqueue time before the push: once the task is in the queue a
  // worker may read the profile immediately.
  finish_admission();
  if (profile) profile->enqueue_ns = profile_now_ns();
  if (!queue_.try_push(Task{conn, std::move(payload), binary, has_id,
                            request_id, ordered, seq, arrival, has_trace,
                            trace, profile})) {
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    metrics_
        .counter("vmpower_serve_shed_total{reason=\"queue\"}",
                 "Requests shed by the bounded request queue")
        .inc();
    if (profile) profile->error = true;
    std::string shed = error_bytes(binary, ErrorCode::kOverloaded,
                                   "request queue is full", has_id,
                                   request_id);
    deliver(*conn, ordered, seq, arrival, shed, std::move(profile));
    return;
  }
  metrics_
      .gauge("vmpower_serve_queue_high_watermark",
             "Deepest the request queue has ever run")
      .set(static_cast<double>(queue_.high_watermark()));
}

void Server::worker_loop() {
  // One reusable encode buffer per worker, not per connection: out-of-order
  // completion means two workers can encode responses for the same
  // connection concurrently, so a per-connection buffer would race. The
  // per-worker buffer keeps its capacity across requests (deliver only
  // moves from it when a response parks in the reorder buffer), so the
  // steady state is zero encode allocations.
  std::string bytes;
  while (auto task = queue_.pop()) {
    StageProfile* profile = task->profile.get();
    if (profile != nullptr)
      profile->add(Stage::kQueueWait,
                   static_cast<double>(profile_now_ns() - profile->enqueue_ns) *
                       1e-9);
    // Make the profile ambient for the dispatcher and everything below it
    // (engine cache probes, coalesce holds) on this thread.
    StageProfileScope scope(profile);
    if (options_.worker_delay.count() > 0)
      std::this_thread::sleep_for(options_.worker_delay);
    if (options_.cost_query_delay.count() > 0 &&
        is_cost_query(task->payload, task->binary))
      std::this_thread::sleep_for(options_.cost_query_delay);
    bytes.clear();
    if (task->binary) {
      // Single-copy path: the response body is encoded straight into the
      // frame opened here — no intermediate body string.
      const std::size_t start =
          begin_frame(bytes, task->has_id, task->request_id);
      dispatcher_.handle_binary_into(task->payload, bytes, task->request_id,
                                     task->has_trace ? &task->trace : nullptr);
      finish_frame(bytes, start);
    } else {
      // Text ids live in the line itself; the dispatcher echoes them.
      dispatcher_.handle_text_into(task->payload, bytes);
      bytes.push_back('\n');
    }
    deliver(*task->conn, task->ordered, task->seq, task->arrival, bytes,
            std::move(task->profile));
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::deliver(Conn& conn, bool ordered, std::uint64_t seq,
                     std::uint64_t arrival, std::string& bytes,
                     std::shared_ptr<StageProfile> profile) {
  if (profile) profile->ready_ns = profile_now_ns();
  if (!ordered) {
    write_response(conn, arrival, bytes, profile.get());
    return;
  }
  // Reorder buffer: park until this slot's turn, then drain every ready
  // successor too (they were parked waiting on this one). Writes stay under
  // order_mutex so two drains cannot interleave ordered responses. A parked
  // response's profile rides in the buffer, so its write stage honestly
  // includes the reorder hold.
  std::lock_guard lock(conn.order_mutex);
  if (seq != conn.next_ordered) {
    conn.held.emplace(seq, Conn::Held{arrival, std::move(bytes),
                                      std::move(profile)});
    return;
  }
  ++conn.next_ordered;
  auto it = conn.held.begin();
  if (it == conn.held.end() || it->first != conn.next_ordered) {
    // Head of line with no parked successor — the common case writes
    // straight from the caller's buffer.
    write_response(conn, arrival, bytes, profile.get());
    return;
  }
  // This response releases a run of parked successors: flush the whole run
  // as one corked send instead of one syscall per small response.
  std::vector<Conn::Held> batch;
  batch.push_back(Conn::Held{arrival, std::move(bytes), std::move(profile)});
  while (it != conn.held.end() && it->first == conn.next_ordered) {
    batch.push_back(std::move(it->second));
    it = conn.held.erase(it);
    ++conn.next_ordered;
  }
  write_corked(conn, batch);
}

void Server::write_response(Conn& conn, std::uint64_t arrival,
                            std::string_view bytes, StageProfile* profile) {
  answered_.fetch_add(1, std::memory_order_relaxed);
  answered_counter_->inc();
  {
    std::lock_guard lock(conn.write_mutex);
    // Count the overtaker only (arrival newer than the write slot), not the
    // response it displaced — one swap is one reordering.
    if (arrival > conn.written) reordered_counter_->inc();
    ++conn.written;
    if (conn.open.load(std::memory_order_relaxed) &&
        !send_fully(conn.fd, bytes))
      conn.open.store(false, std::memory_order_relaxed);
  }
  if (profile != nullptr && options_.profiler != nullptr) {
    const std::uint64_t now_ns = profile_now_ns();
    profile->add(Stage::kWrite,
                 static_cast<double>(now_ns - profile->ready_ns) * 1e-9);
    profile->total_s =
        static_cast<double>(now_ns - profile->start_ns) * 1e-9;
    options_.profiler->observe(*profile);
  }
}

void Server::write_corked(Conn& conn, std::vector<Conn::Held>& batch) {
  std::size_t total = 0;
  for (const Conn::Held& held : batch) total += held.bytes.size();
  std::string wire;
  wire.reserve(total);
  for (const Conn::Held& held : batch) wire += held.bytes;
  {
    std::lock_guard lock(conn.write_mutex);
    // Per-response accounting is identical to write_response — the batch is
    // still batch-size answers, delivered in one send. All counters (the
    // corked flush included) are bumped before the send so a client that
    // scrapes metrics the moment it reads the responses sees them.
    for (const Conn::Held& held : batch) {
      answered_.fetch_add(1, std::memory_order_relaxed);
      answered_counter_->inc();
      if (held.arrival > conn.written) reordered_counter_->inc();
      ++conn.written;
    }
    corked_counter_->inc();
    if (conn.open.load(std::memory_order_relaxed) &&
        !send_fully(conn.fd, wire))
      conn.open.store(false, std::memory_order_relaxed);
  }
  if (options_.profiler != nullptr) {
    const std::uint64_t now_ns = profile_now_ns();
    for (Conn::Held& held : batch) {
      if (held.profile == nullptr) continue;
      held.profile->add(
          Stage::kWrite,
          static_cast<double>(now_ns - held.profile->ready_ns) * 1e-9);
      held.profile->total_s =
          static_cast<double>(now_ns - held.profile->start_ns) * 1e-9;
      options_.profiler->observe(*held.profile);
    }
  }
}

void Server::reply(Conn& conn, std::string_view bytes) {
  if (!conn.open.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(conn.write_mutex);
  if (!send_fully(conn.fd, bytes))
    conn.open.store(false, std::memory_order_relaxed);
}

std::string Server::error_bytes(bool binary, ErrorCode code,
                                const std::string& message, bool has_id,
                                std::uint64_t request_id) const {
  const Response response = Response::error(code, message);
  std::string out;
  if (binary) {
    const std::size_t start = begin_frame(out, has_id, request_id);
    encode_response_into(response, out);
    finish_frame(out, start);
    return out;
  }
  if (has_id) {
    out += '#';
    out += std::to_string(request_id);
    out += ' ';
  }
  format_response_text_into(response, out);
  out += '\n';
  return out;
}

void Server::reply_error(Conn& conn, bool binary, ErrorCode code,
                         const std::string& message, bool has_id,
                         std::uint64_t request_id) {
  reply(conn, error_bytes(binary, code, message, has_id, request_id));
}

}  // namespace vmp::serve
