// Token-bucket admission control for the query service.
//
// Each client connection gets one bucket: `burst` tokens of depth refilled at
// `tokens_per_s`. A request that finds the bucket empty is rejected up front
// (HTTP would say 429) instead of queueing — overload control belongs at the
// edge, before a request consumes a queue slot or a worker. The bucket is
// driven by an explicit clock value so tests are deterministic and callers
// can share one clock read across checks.
#pragma once

#include <algorithm>
#include <stdexcept>

namespace vmp::serve {

class TokenBucket {
 public:
  /// Throws std::invalid_argument on a non-positive burst or negative rate.
  TokenBucket(double tokens_per_s, double burst)
      : rate_(tokens_per_s), burst_(burst), tokens_(burst) {
    if (!(burst > 0.0))
      throw std::invalid_argument("TokenBucket: burst must be > 0");
    if (tokens_per_s < 0.0)
      throw std::invalid_argument("TokenBucket: negative refill rate");
  }

  /// Takes one token at monotone time `now_s`; returns whether the request
  /// is admitted. Time moving backwards is treated as "no time passed".
  bool try_acquire(double now_s) {
    refill(now_s);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Tokens available at `now_s` (diagnostics).
  [[nodiscard]] double available(double now_s) {
    refill(now_s);
    return tokens_;
  }

 private:
  void refill(double now_s) {
    if (!primed_) {
      primed_ = true;
      last_s_ = now_s;
      return;
    }
    if (now_s > last_s_)
      tokens_ = std::min(burst_, tokens_ + (now_s - last_s_) * rate_);
    last_s_ = std::max(last_s_, now_s);
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_s_ = 0.0;
  bool primed_ = false;
};

}  // namespace vmp::serve
