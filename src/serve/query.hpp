// Query evaluation over snapshots, fronted by an epoch-keyed LRU cache.
//
// Point queries read the latest snapshot; window queries difference
// cumulative energy between the two retained snapshots bracketing [t0, t1]
// (step semantics: the newest snapshot at-or-before each bound), so a window
// always sees one consistent epoch pair even while the engine keeps
// publishing. Cost queries split the window along the time-of-use schedule's
// rate boundaries and difference energy per segment — the segment energies
// telescope to the window total, so the TOU bill prices *when* the energy
// was drawn without ever inventing or losing a joule.
//
// The result cache is keyed by (canonical query, resolved epoch(s)): a new
// publish changes the latest epoch, which invalidates point-query entries by
// construction, while window entries stay valid because their epoch pair —
// and therefore their answer — is unchanged. Window queries carry a second,
// fast key bound to the latest epoch: against an unchanged store the same
// window resolves to the same pair, so repeat hits skip the retention-ring
// searches entirely and only the first hit after a publish re-resolves.
// Capacity 0 disables caching.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/pricing.hpp"
#include "fleet/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"

namespace vmp::serve {

struct QueryEngineOptions {
  std::size_t cache_capacity = 1024;  ///< 0 disables the result cache.
  /// Tariff for kTenantCost; the default is flat at the Table I US rate.
  core::TouRateSchedule tou{};
  /// When set, cache hits/misses/evictions are exported as counters.
  fleet::Metrics* metrics = nullptr;
};

class QueryEngine {
 public:
  /// Validates the TOU schedule (throws std::invalid_argument). The store
  /// must outlive the engine.
  QueryEngine(const SnapshotStore& store, QueryEngineOptions options = {});

  /// Executes one request; never throws on malformed queries — every failure
  /// is an error Response. Thread-safe.
  [[nodiscard]] Response execute(const Request& request);

  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] Response evaluate(const Request& request,
                                  const std::shared_ptr<const Snapshot>& s0,
                                  const std::shared_ptr<const Snapshot>& s1)
      const;

  /// Hit/miss accounting lives in note_hit/note_miss so a window query that
  /// misses its fast key but hits its epoch-pair key counts once.
  Response note_hit(const Response& response);
  void note_miss();
  bool cache_lookup(const std::string& key, Response& out);
  void cache_insert(const std::string& key, const Response& response);

  const SnapshotStore& store_;
  QueryEngineOptions options_;

  // LRU: list front = most recent; map points into the list.
  struct CacheEntry {
    std::string key;
    Response response;
  };
  std::mutex cache_mutex_;
  std::list<CacheEntry> lru_;
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> index_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace vmp::serve
