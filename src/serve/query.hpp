// Query evaluation over snapshots, fronted by a sharded epoch-keyed LRU
// cache with in-flight coalescing.
//
// Point queries read the latest snapshot; window queries difference
// cumulative energy between the two retained snapshots bracketing [t0, t1]
// (step semantics: the newest snapshot at-or-before each bound), so a window
// always sees one consistent epoch pair even while the engine keeps
// publishing. A window bound that slid out of the ring falls through to the
// store's durable ledger (when one is attached): the ledger record carries
// the same cumulative energies bit-for-bit, so a cold answer is
// byte-identical to the ring answer it replaces. Only a bound older than the
// ledger's own oldest record is kOutOfHistory; both window errors carry the
// oldest still-answerable epoch in Response::detail so clients can clamp. Cost queries split the window along the time-of-use schedule's
// rate boundaries and difference energy per segment — the segment energies
// telescope to the window total, so the TOU bill prices *when* the energy
// was drawn without ever inventing or losing a joule.
//
// The result cache is keyed by (canonical query, resolved epoch(s)): a new
// publish changes the latest epoch, which invalidates point-query entries by
// construction, while window entries stay valid because their epoch pair —
// and therefore their answer — is unchanged. Window queries carry a second,
// fast key bound to the latest epoch: against an unchanged store the same
// window resolves to the same pair, so repeat hits skip the retention-ring
// searches entirely and only the first hit after a publish re-resolves.
// Capacity 0 disables caching.
//
// Two concurrency multipliers sit on the miss path:
//
//  * Sharding: keys hash to one of `cache_shards` independent shards, each
//    with its own mutex + LRU, so a worker pool stops serializing on a
//    single cache lock. Capacity splits evenly across shards (rounded up),
//    which makes eviction per-shard LRU, not global LRU — workloads that
//    assert exact global eviction order should configure one shard.
//
//  * Coalescing: a query whose cache key matches a computation already in
//    flight attaches to it instead of re-evaluating. Followers receive the
//    leader's Response through the shared in-flight slot — never by
//    re-reading the cache — so an entry evicted between the leader's insert
//    and a follower's wakeup cannot cost the follower its answer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pricing.hpp"
#include "fleet/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"

namespace vmp::serve {

/// Anything that can answer a Request. The dispatcher, server, and
/// in-process transport are written against this interface, so the same
/// wire protocol fronts a single-fleet QueryEngine and the multi-fleet
/// federate::FederationFrontend alike.
class QueryHandler {
 public:
  virtual ~QueryHandler() = default;

  /// Executes one request; never throws on malformed queries — every failure
  /// is an error Response. Must be thread-safe (server workers call it
  /// concurrently).
  [[nodiscard]] virtual Response execute(const Request& request) = 0;
};

struct QueryEngineOptions {
  std::size_t cache_capacity = 1024;  ///< total across shards; 0 disables.
  /// Result-cache shard count, clamped to >= 1. Each shard holds
  /// ceil(capacity / shards) entries behind its own lock.
  std::size_t cache_shards = 8;
  /// Attach identical in-flight queries to the running computation instead
  /// of re-evaluating (effective even at capacity 0).
  bool coalesce = true;
  /// Tariff for kTenantCost; the default is flat at the Table I US rate.
  core::TouRateSchedule tou{};
  /// When set, cache hits/misses/evictions, per-shard lookup outcomes and
  /// coalesced attachments are exported as counters.
  fleet::Metrics* metrics = nullptr;
  /// Test hook: runs on the computing (leader) thread after it has claimed
  /// the in-flight slot and before it evaluates, so tests can hold a
  /// computation open while followers attach. Null in production.
  std::function<void()> coalesce_hold;
};

class QueryEngine : public QueryHandler {
 public:
  /// Validates the TOU schedule (throws std::invalid_argument). The store
  /// must outlive the engine.
  QueryEngine(const SnapshotStore& store, QueryEngineOptions options = {});

  /// Executes one request; never throws on malformed queries — every failure
  /// is an error Response. Thread-safe.
  [[nodiscard]] Response execute(const Request& request) override;

  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Queries that attached to an identical in-flight computation. Counted as
  /// neither hit nor miss, so cache_misses() == evaluations actually run.
  [[nodiscard]] std::uint64_t coalesced() const noexcept {
    return coalesced_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  /// One computation in flight. Followers block on `cv` and read `response`
  /// directly — never the cache — so eviction cannot race an attached
  /// waiter out of its answer.
  struct Inflight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Response response;
  };

  // Per-shard LRU: list front = most recent; map points into the list. The
  // in-flight table shares the shard lock so "cache miss, computation
  // already running" is one atomic decision.
  struct CacheEntry {
    std::string key;
    Response response;
  };
  struct Shard {
    std::mutex mutex;
    std::list<CacheEntry> lru;
    std::unordered_map<std::string, std::list<CacheEntry>::iterator> index;
    std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight;
    fleet::Counter* hits = nullptr;    ///< per-shard lookup outcomes; null
    fleet::Counter* misses = nullptr;  ///< without metrics.
  };
  enum class Probe { kHit, kLead, kJoin };

  [[nodiscard]] Response evaluate(const Request& request,
                                  const std::shared_ptr<const Snapshot>& s0,
                                  const std::shared_ptr<const Snapshot>& s1)
      const;

  /// Resolves the newest snapshot at-or-before `t_s`: retention ring first,
  /// then the store's durable ledger, then the genesis zero baseline when
  /// `t_s` predates accounting entirely. Returns nullptr with `error` filled
  /// (kOutOfRetention / kOutOfHistory, detail = oldest reachable epoch) when
  /// the history is genuinely gone.
  [[nodiscard]] std::shared_ptr<const Snapshot> resolve_at_or_before(
      double t_s, Response& error) const;

  /// Hit/miss accounting lives in note_hit/note_miss so a window query that
  /// misses its fast key but hits its epoch-pair key counts once. Per-shard
  /// counters instead record every lookup outcome, which is what a per-shard
  /// hit *rate* needs.
  Response note_hit(const Response& response);
  void note_miss();
  [[nodiscard]] Shard& shard_for(const std::string& key) noexcept;
  bool cache_lookup(const std::string& key, Response& out);
  void cache_insert(const std::string& key, const Response& response);
  /// One locked probe of the final cache key: hit (a leader published since
  /// our unlocked lookup), join an in-flight computation, or claim
  /// leadership of a new one.
  Probe probe(Shard& shard, const std::string& key, Response& out,
              std::shared_ptr<Inflight>& flight);
  /// Shared miss path: coalesce-aware compute + insert. `fast_key`, when
  /// non-null, re-arms the window fast path alongside the durable entry.
  Response compute(const std::string& key, const std::string* fast_key,
                   const std::function<Response()>& eval);

  const SnapshotStore& store_;
  QueryEngineOptions options_;
  std::size_t shard_capacity_ = 0;  ///< per shard; 0 disables caching.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  // Aggregate counters resolved once so the hot path skips the registry.
  fleet::Counter* hits_counter_ = nullptr;
  fleet::Counter* misses_counter_ = nullptr;
  fleet::Counter* evictions_counter_ = nullptr;
  fleet::Counter* coalesced_counter_ = nullptr;
};

}  // namespace vmp::serve
