#include "fleet/host_agent.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"
#include "workload/spec_suite.hpp"

namespace vmp::fleet {

HostAgent::HostAgent(std::uint32_t host_id, const sim::MachineSpec& spec,
                     const std::vector<common::VmConfig>& fleet,
                     const core::OfflineDataset& dataset, std::uint64_t seed,
                     HostAgentOptions options)
    : host_id_(host_id), options_(options), machine_(spec, seed),
      // The full Fig. 8 online path: lookup-first against the offline
      // v(S, C) table, approximation for unobserved states. The estimator's
      // cross-tick memo makes the per-tick lookups cheap.
      estimator_(dataset.universe, dataset.approximation, dataset.table) {
  // Per-host draw decorrelation for the sampled tier: hosts share one fleet
  // seed knob but must not share coalition samples. No thread pool is given
  // to the estimator — sample() itself runs as an engine pool task, and a
  // nested wait would violate util::ThreadPool's nesting contract.
  core::SampledKernelConfig kernel = options_.kernel;
  kernel.sampling.seed += 0x9e3779b97f4a7c15ULL * seed;
  estimator_.set_sampled_kernel(kernel);

  const auto benchmarks = wl::spec_subset();
  vm_ids_.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine_.hypervisor().create_vm(
        fleet[i],
        wl::make_spec_workload(benchmarks[(seed + i) % benchmarks.size()],
                               seed * 31 + i));
    machine_.hypervisor().start_vm(id);
    vm_ids_.push_back(id);
  }
}

void HostAgent::fast_forward_tick() { machine_.step(options_.period_s); }

HostTickResult HostAgent::sample(std::uint64_t tick,
                                 const FaultInjector& injector) {
  VMP_TRACE_SPAN("fleet.collect", "fleet");
  const auto start = std::chrono::steady_clock::now();
  HostTickResult result;
  result.host = host_id_;
  result.tick = tick;
  result.idle_power_w = machine_.idle_power_w();

  // The physical host keeps running whether or not the monitoring plane can
  // see it: the simulation always advances exactly one period per tick.
  const sim::MeterFrame frame = machine_.step(options_.period_s);
  // The true draw is always knowable in the simulator; record it even when
  // the *metering* path below degrades, so the fleet's efficiency-residual
  // invariant can compare billed φ against what the machine actually drew.
  result.measured_adjusted_w =
      std::max(0.0, frame.active_power_w - machine_.idle_power_w());

  const auto degrade = [&] {
    result.degraded = true;
    result.vms = last_vms_;
    result.phi = last_phi_;
    result.adjusted_power_w = last_adjusted_w_;
    ++degraded_ticks_;
  };

  if (dropout_remaining_ == 0 &&
      injector.fires(FaultInjector::Kind::kDropout, host_id_, tick))
    dropout_remaining_ = options_.dropout_ticks;
  if (dropout_remaining_ > 0) {
    --dropout_remaining_;
    degrade();
  } else {
    // Meter read with retry-with-backoff inside the tick. Attempt a is a
    // fresh roll: the transient clears as soon as one attempt succeeds.
    bool meter_ok = false;
    for (std::uint32_t attempt = 0; attempt <= options_.max_retries;
         ++attempt) {
      if (!injector.fires(FaultInjector::Kind::kMeter, host_id_, tick,
                          attempt)) {
        meter_ok = true;
        break;
      }
      if (attempt == options_.max_retries) break;  // budget exhausted.
      ++result.retries;
      if (options_.retry_backoff_base.count() > 0)
        std::this_thread::sleep_for(options_.retry_backoff_base * (1u << attempt));
    }

    if (!meter_ok) {
      degrade();
    } else {
      const double adjusted = result.measured_adjusted_w;
      std::vector<core::VmSample> fresh;
      for (const sim::VmObservation& obs :
           machine_.hypervisor().observations())
        fresh.push_back({obs.id, obs.type_id, obs.state});

      result.stale = injector.fires(FaultInjector::Kind::kStale, host_id_,
                                    tick) &&
                     !last_vms_.empty();
      result.vms = result.stale ? last_vms_ : fresh;
      result.adjusted_power_w = adjusted;
      if (!result.vms.empty()) {
        const auto est_start = std::chrono::steady_clock::now();
        result.phi = estimator_.estimate(result.vms, adjusted);
        result.estimate_seconds = std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() -
                                      est_start)
                                      .count();
        result.kernel = estimator_.last_kernel();
        if (result.kernel == "sampled") {
          const core::SampledTickStats& stats = estimator_.last_sampled();
          result.sampled_max_halfwidth_w = stats.max_halfwidth_w;
          result.sampled_sum_halfwidth_w = stats.sum_halfwidth_w;
          result.sampled_gap_w = stats.efficiency_gap_w;
          result.sampled_evals = stats.worth_evaluations;
          result.sampled_stop = stats.stopped_by;
        }
      }

      // Stale ticks are estimates against old telemetry; only a fully fresh
      // tick becomes the carry-forward baseline.
      if (!result.stale) {
        last_vms_ = result.vms;
        last_phi_ = result.phi;
        last_adjusted_w_ = adjusted;
      }
    }
  }

  result.table_hit_rate = estimator_.table_hit_rate();
  result.step_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

void HostAgent::save_state(std::ostream& out) const {
  const auto precision = out.precision(17);
  out << "host " << host_id_ << ' ' << dropout_remaining_ << ' '
      << degraded_ticks_ << ' ' << last_adjusted_w_ << ' ' << last_vms_.size()
      << '\n';
  for (std::size_t i = 0; i < last_vms_.size(); ++i) {
    out << last_vms_[i].vm_id << ' '
        << static_cast<std::uint32_t>(last_vms_[i].type);
    for (const double v : last_vms_[i].state.values()) out << ' ' << v;
    out << ' ' << last_phi_[i] << '\n';
  }
  out.precision(precision);
}

void HostAgent::load_state(std::istream& in) {
  std::string tag;
  std::uint32_t host = 0;
  std::size_t count = 0;
  if (!(in >> tag >> host >> dropout_remaining_ >> degraded_ticks_ >>
        last_adjusted_w_ >> count) ||
      tag != "host")
    throw std::runtime_error("HostAgent: malformed carry-state block");
  if (host != host_id_)
    throw std::runtime_error("HostAgent: carry-state host id mismatch");
  last_vms_.assign(count, {});
  last_phi_.assign(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t type = 0;
    if (!(in >> last_vms_[i].vm_id >> type))
      throw std::runtime_error("HostAgent: truncated carry-state row");
    last_vms_[i].type = static_cast<common::VmTypeId>(type);
    for (std::size_t c = 0; c < common::kNumComponents; ++c) {
      double v = 0.0;
      if (!(in >> v))
        throw std::runtime_error("HostAgent: truncated carry-state row");
      last_vms_[i].state[static_cast<common::Component>(c)] = v;
    }
    if (!(in >> last_phi_[i]))
      throw std::runtime_error("HostAgent: truncated carry-state row");
  }
}

}  // namespace vmp::fleet
