// One fleet host's metering worker: simulator + estimator + fault handling.
//
// A HostAgent owns everything host-local — the simulated PhysicalMachine,
// its ShapleyVhcEstimator, and the carry-forward state used for graceful
// degradation — so the engine can run one agent per pool task with no shared
// mutable state between hosts. Faults follow the engine contract: a meter
// failure is retried with exponential backoff within the tick; an
// unrecoverable tick (retries exhausted, or the host in dropout) is served
// from the last good estimate and *flagged*, never silently zeroed; stale
// telemetry re-estimates from the previous tick's VM states against the
// current measurement.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "fleet/faults.hpp"
#include "sim/physical_machine.hpp"

namespace vmp::fleet {

/// What one host produced for one tick; queued to the aggregation thread.
struct HostTickResult {
  std::uint32_t host = 0;
  std::uint64_t tick = 0;
  std::vector<core::VmSample> vms;  ///< telemetry the estimate used.
  std::vector<double> phi;          ///< per-VM watts, parallel to vms.
  double adjusted_power_w = 0.0;    ///< what billing used (carried if degraded).
  /// The simulator's true adjusted draw this tick, knowable even when the
  /// metering path degraded. The fleet's efficiency-residual invariant is
  /// |Σφ − measured|: ~0 on fresh ticks (the estimator anchors to the
  /// measurement), genuinely nonzero when faults forced billing from a
  /// carried estimate.
  double measured_adjusted_w = 0.0;
  double idle_power_w = 0.0;
  bool degraded = false;  ///< served from the last good estimate.
  bool stale = false;     ///< estimated from previous-tick telemetry.
  std::uint32_t retries = 0;
  double step_seconds = 0.0;  ///< wall time of the host's step (metrics only).
  /// Wall time of the estimator call alone (0 on degraded/empty ticks);
  /// feeds the fleet's estimator-latency histogram.
  double estimate_seconds = 0.0;
  /// Cumulative estimator table hit rate after this tick (0 without a
  /// table); exported as a per-host gauge.
  double table_hit_rate = 0.0;
  /// Estimator kernel the tick dispatched to ("collapsed"/"sweep"/
  /// "sampled"/"legacy", always a literal; empty when no estimate ran).
  /// Feeds the fleet's fast-path selection counters.
  std::string_view kernel;
  // Sampled-tier diagnostics, populated only when kernel == "sampled"
  // (sampled_stop is empty otherwise): CI half-widths, the
  // pre-normalization efficiency gap the invariant monitor checks against
  // the CI, and the tick's worth-evaluation count.
  double sampled_max_halfwidth_w = 0.0;
  double sampled_sum_halfwidth_w = 0.0;
  double sampled_gap_w = 0.0;
  std::size_t sampled_evals = 0;
  std::string_view sampled_stop;  ///< stop-rule literal, e.g. "max_samples".
};

struct HostAgentOptions {
  double period_s = 1.0;
  std::uint32_t max_retries = 3;
  /// First retry sleeps this long, doubling per attempt (0 disables
  /// sleeping; the retry accounting is unaffected).
  std::chrono::microseconds retry_backoff_base{100};
  std::uint64_t dropout_ticks = 3;  ///< monitoring blackout length.
  /// Kernel selection + sampled-tier options for the host's estimator. The
  /// agent mixes its host seed into sampling.seed so hosts draw distinct
  /// coalition streams from one fleet seed.
  core::SampledKernelConfig kernel;
};

class HostAgent {
 public:
  /// Boots `fleet` on a fresh machine; VM v runs a SPEC-like workload chosen
  /// deterministically from (seed, v). The trained dataset is copied so
  /// agents share no state.
  HostAgent(std::uint32_t host_id, const sim::MachineSpec& spec,
            const std::vector<common::VmConfig>& fleet,
            const core::OfflineDataset& dataset, std::uint64_t seed,
            HostAgentOptions options);

  /// Advances the host one sampling period and returns the tick's result,
  /// applying the injector's fault schedule. Not thread-safe; the engine
  /// guarantees one in-flight call per agent.
  HostTickResult sample(std::uint64_t tick, const FaultInjector& injector);

  /// Advances the simulation one period with no estimation — checkpoint
  /// restore fast-forwards through already-billed ticks with this.
  void fast_forward_tick();

  [[nodiscard]] std::uint32_t host_id() const noexcept { return host_id_; }
  /// Ids of the VMs booted on this host, in creation order.
  [[nodiscard]] const std::vector<sim::VmId>& vm_ids() const noexcept {
    return vm_ids_;
  }
  [[nodiscard]] std::uint64_t degraded_ticks() const noexcept {
    return degraded_ticks_;
  }

  /// Writes the carry-forward/fault state (one text block) so a restored
  /// engine resumes the exact degradation trajectory, faults included.
  void save_state(std::ostream& out) const;
  /// Reads a block written by save_state; throws std::runtime_error on
  /// malformed input or a host id mismatch.
  void load_state(std::istream& in);

 private:
  std::uint32_t host_id_;
  HostAgentOptions options_;
  sim::PhysicalMachine machine_;
  core::ShapleyVhcEstimator estimator_;
  std::vector<sim::VmId> vm_ids_;

  // Carry-forward state for degradation and staleness.
  std::vector<core::VmSample> last_vms_;
  std::vector<double> last_phi_;
  double last_adjusted_w_ = 0.0;
  std::uint64_t dropout_remaining_ = 0;
  std::uint64_t degraded_ticks_ = 0;
};

}  // namespace vmp::fleet
