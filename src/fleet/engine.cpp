#include "fleet/engine.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/serialization.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace vmp::fleet {

namespace {

constexpr const char* kCheckpointMagic = "vmpower-fleet-ckpt v1";

std::uint64_t header_u64(const std::string& token, const std::string& key) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0)
    throw std::runtime_error("fleet checkpoint: expected '" + key +
                             "=...' in header, got '" + token + "'");
  return std::stoull(token.substr(prefix.size()));
}

}  // namespace

void FleetOptions::validate() const {
  if (hosts == 0)
    throw std::invalid_argument("FleetOptions: need at least one host");
  if (threads == 0)
    throw std::invalid_argument("FleetOptions: need at least one thread");
  if (tenants == 0)
    throw std::invalid_argument("FleetOptions: need at least one tenant");
  if (fleet_per_host.empty())
    throw std::invalid_argument("FleetOptions: fleet_per_host is empty");
  if (!(period_s > 0.0))
    throw std::invalid_argument("FleetOptions: period must be > 0");
  faults.validate();
}

FleetEngine::FleetEngine(FleetOptions options,
                         const core::OfflineDataset& dataset)
    : options_((options.validate(), std::move(options))),
      injector_(options_.faults, options_.seed),
      queue_(options_.queue_capacity == 0 ? options_.hosts
                                          : options_.queue_capacity,
             options_.backpressure),
      pool_(options_.threads), monitor_(metrics_, options_.invariants) {
  HostAgentOptions agent_options;
  agent_options.period_s = options_.period_s;
  agent_options.max_retries = options_.max_retries;
  agent_options.retry_backoff_base = options_.retry_backoff_base;
  agent_options.dropout_ticks = options_.dropout_ticks;
  agent_options.kernel = options_.kernel;

  agents_.reserve(options_.hosts);
  host_ledgers_.reserve(options_.hosts);
  for (std::size_t h = 0; h < options_.hosts; ++h) {
    agents_.push_back(std::make_unique<HostAgent>(
        static_cast<std::uint32_t>(h), options_.spec, options_.fleet_per_host,
        dataset, options_.seed + h, agent_options));
    host_ledgers_.push_back(
        std::make_unique<core::EnergyAccountant>(options_.idle_policy));
    // VM v of every host belongs to tenant v % tenants + 1 — the fleet-wide
    // tenancy layout the CLI and tests share.
    const auto& ids = agents_.back()->vm_ids();
    for (std::size_t v = 0; v < ids.size(); ++v)
      tenants_.bind(static_cast<core::HostId>(h), ids[v],
                    static_cast<core::TenantId>(v % options_.tenants + 1));
  }
}

FleetEngine::~FleetEngine() { queue_.close(); }

std::uint64_t FleetEngine::samples_dropped() const noexcept {
  return dropped_base_ + queue_.dropped();
}

void FleetEngine::aggregate(const HostTickResult& result) {
  ++processed_;
  if (result.degraded) ++degraded_;
  if (result.stale) ++stale_;
  retries_ += result.retries;

  if (!result.phi.empty()) {
    host_ledgers_[result.host]->add_sample(result.vms, result.phi,
                                           result.idle_power_w,
                                           options_.period_s);
    tenants_.add_host_sample(static_cast<core::HostId>(result.host),
                             result.vms, result.phi, options_.period_s);
  } else if (result.degraded) {
    VMP_LOG_DEBUG("fleet: host %u tick %llu degraded with no prior estimate",
                  result.host,
                  static_cast<unsigned long long>(result.tick));
  }

  // Observability: the estimate error gauge is the efficiency gap |ΣΦ − P|;
  // zero on fresh ticks (the estimator anchors to the measurement) and the
  // carried estimate's drift on degraded ones.
  double phi_sum = 0.0;
  for (const double p : result.phi) phi_sum += p;
  const std::string host_label = std::to_string(result.host);
  metrics_
      .gauge("vmpower_fleet_host_estimate_error_w{host=\"" + host_label +
                 "\"}",
             "Absolute gap between the host's allocated and measured power")
      .set(std::abs(phi_sum - result.adjusted_power_w));
  metrics_
      .gauge("vmpower_fleet_host_degraded{host=\"" + host_label + "\"}",
             "1 when the host's last tick was served from a carried estimate")
      .set(result.degraded ? 1.0 : 0.0);
  // The hit-rate gauge routes through the invariant monitor so the sample is
  // stamped with the tick epoch it belongs to (and threshold-checked).
  monitor_.observe_table_hit_rate(result.tick, result.host,
                                  result.table_hit_rate);
  metrics_
      .histogram("vmpower_fleet_tick_latency_seconds",
                 "Wall time of one host metering step", 0.0, 0.05, 25)
      .observe(result.step_seconds);
  if (!result.phi.empty() && !result.degraded)
    metrics_
        .histogram("vmpower_fleet_estimator_latency_seconds",
                   "Wall time of the Shapley estimator call alone", 0.0, 0.002,
                   25)
        .observe(result.estimate_seconds);
  if (!result.kernel.empty())
    metrics_
        .counter("vmpower_fleet_kernel_selected_total{kernel=\"" +
                     std::string(result.kernel) + "\"}",
                 "Host ticks dispatched to each Shapley kernel fast path")
        .inc();
  if (!result.sampled_stop.empty()) {
    metrics_
        .counter("vmpower_shapley_sampled_ticks_total",
                 "Host ticks answered by the sampled Shapley tier")
        .inc();
    metrics_
        .counter("vmpower_shapley_sampled_stop_total{reason=\"" +
                     std::string(result.sampled_stop) + "\"}",
                 "Sampled-tier ticks by anytime stop rule")
        .inc();
    metrics_
        .histogram("vmpower_shapley_sampled_halfwidth_w",
                   "Per-tick max per-VM confidence half-width (W)", 0.0, 0.5,
                   25)
        .observe(result.sampled_max_halfwidth_w);
    metrics_
        .histogram("vmpower_shapley_sampled_evals",
                   "Worth evaluations per sampled tick", 0.0, 4096.0, 25)
        .observe(static_cast<double>(result.sampled_evals));
    // The sampled tier's own efficiency check: the pre-normalization gap
    // must sit inside the reported confidence bound.
    monitor_.observe_sampled_ci(result.tick, result.host, result.sampled_gap_w,
                                result.sampled_sum_halfwidth_w,
                                result.sampled_max_halfwidth_w,
                                result.sampled_evals);
  }
}

void FleetEngine::run(std::uint64_t ticks) {
  Counter& ticks_total = metrics_.counter(
      "vmpower_fleet_ticks_total", "Fleet-wide sampling periods completed");
  Counter& samples_total =
      metrics_.counter("vmpower_fleet_samples_processed_total",
                       "Host tick results aggregated into the ledgers");
  Counter& drops_total =
      metrics_.counter("vmpower_fleet_sample_drops_total",
                       "Host tick results shed by the bounded queue");
  Counter& retries_total = metrics_.counter(
      "vmpower_fleet_meter_retries_total", "Meter read retry attempts");
  Counter& degraded_total =
      metrics_.counter("vmpower_fleet_degraded_ticks_total",
                       "Host ticks served from a carried estimate");
  Counter& stale_total =
      metrics_.counter("vmpower_fleet_stale_ticks_total",
                       "Host ticks estimated from previous-tick telemetry");
  Gauge& depth_watermark =
      metrics_.gauge("vmpower_fleet_queue_high_watermark",
                     "Deepest the sample queue has ever run");
  // Register the sampled-tier tick counter up front so scrapes expose the
  // family (at zero) even while every host still answers exactly; the
  // labeled counters and invariant gauges appear with the first sampled
  // tick.
  metrics_.counter("vmpower_shapley_sampled_ticks_total",
                   "Host ticks answered by the sampled Shapley tier");

  std::vector<HostTickResult> results;
  results.reserve(options_.hosts);
  for (std::uint64_t k = 0; k < ticks; ++k) {
    const std::uint64_t now = tick_++;
    // Trace id of everything this tick does, on the engine thread and in the
    // worker tasks alike (tick+1: trace id 0 means "unset").
    VMP_TRACE_CONTEXT(now + 1);
    VMP_TRACE_SPAN("fleet.tick", "fleet");
    const std::uint64_t drops_before = queue_.dropped();
    const std::uint64_t retries_before = retries_;
    const std::uint64_t degraded_before = degraded_;
    const std::uint64_t stale_before = stale_;

    for (const auto& agent : agents_) {
      HostAgent* raw = agent.get();
      pool_.submit([this, raw, now] {
        // Adopt the tick's trace id on the worker thread so the collect /
        // estimate spans group under the same trace as the engine's.
        VMP_TRACE_CONTEXT(now + 1);
        queue_.push(raw->sample(now, injector_));
      });
    }

    results.clear();
    if (options_.backpressure == BackpressurePolicy::kBlock) {
      // Every sample arrives; popping while workers run is what bounds the
      // queue without deadlock.
      for (std::size_t h = 0; h < options_.hosts; ++h) {
        auto result = queue_.pop();
        if (!result) break;  // closed mid-run (shutdown).
        results.push_back(std::move(*result));
      }
    } else {
      // Drop-oldest pushes never block, so the tick barrier is the pool.
      pool_.wait_idle();
      while (auto result = queue_.try_pop())
        results.push_back(std::move(*result));
    }

    // Deterministic roll-up: aggregation order is host order, regardless of
    // completion order — this is what makes thread count invisible in the
    // ledgers.
    std::sort(results.begin(), results.end(),
              [](const HostTickResult& a, const HostTickResult& b) {
                return a.host < b.host;
              });
    {
      VMP_TRACE_SPAN("fleet.aggregate", "fleet");
      for (const HostTickResult& result : results) aggregate(result);
    }

    // Efficiency invariant, fleet-wide per tick: what the hosts billed (Σφ)
    // against what their meters actually measured. Fault-free this is
    // floating-point noise (the estimator anchors the grand coalition to the
    // measurement); meter faults open a genuine gap because billing carried
    // the last good estimate while the machine kept drawing.
    double residual_w = 0.0;
    for (const HostTickResult& result : results) {
      double phi_sum = 0.0;
      for (const double p : result.phi) phi_sum += p;
      residual_w += std::abs(phi_sum - result.measured_adjusted_w);
    }
    last_residual_w_ = residual_w;
    monitor_.observe_efficiency(now, residual_w);
    monitor_.observe_queue(
        "fleet_samples", now, queue_.high_watermark(), queue_.capacity(),
        samples_dropped(),
        options_.backpressure == BackpressurePolicy::kDropOldest);

    if (observer_) observer_(*this, now, results);

    ticks_total.inc();
    samples_total.inc(results.size());
    drops_total.inc(queue_.dropped() - drops_before);
    retries_total.inc(retries_ - retries_before);
    degraded_total.inc(degraded_ - degraded_before);
    stale_total.inc(stale_ - stale_before);
    depth_watermark.set(static_cast<double>(queue_.high_watermark()));
  }
}

void FleetEngine::save_checkpoint(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("fleet checkpoint: cannot open for write: " +
                             path.string());
  out << kCheckpointMagic << " hosts=" << options_.hosts << " tick=" << tick_
      << " processed=" << processed_ << " degraded=" << degraded_
      << " retries=" << retries_ << " stale=" << stale_
      << " drops=" << samples_dropped() << '\n';
  for (const auto& ledger : host_ledgers_) core::write_accountant(out, *ledger);
  core::write_multi_host(out, tenants_);
  for (const auto& agent : agents_) agent->save_state(out);
  if (!out)
    throw std::runtime_error("fleet checkpoint: write failed: " +
                             path.string());
}

void FleetEngine::restore_checkpoint(const std::filesystem::path& path) {
  if (tick_ != 0)
    throw std::logic_error(
        "FleetEngine::restore_checkpoint: engine already advanced");
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("fleet checkpoint: cannot open for read: " +
                             path.string());
  std::string magic_a, magic_b, hosts_token, tick_token, processed_token,
      degraded_token, retries_token, stale_token, drops_token;
  in >> magic_a >> magic_b >> hosts_token >> tick_token >> processed_token >>
      degraded_token >> retries_token >> stale_token >> drops_token;
  if (magic_a + " " + magic_b != kCheckpointMagic)
    throw std::runtime_error("fleet checkpoint: bad magic in " +
                             path.string());
  if (header_u64(hosts_token, "hosts") != options_.hosts)
    throw std::runtime_error(
        "fleet checkpoint: host count mismatch (checkpointed engine had " +
        hosts_token.substr(6) + " hosts)");
  const std::uint64_t target_tick = header_u64(tick_token, "tick");
  processed_ = header_u64(processed_token, "processed");
  degraded_ = header_u64(degraded_token, "degraded");
  retries_ = header_u64(retries_token, "retries");
  stale_ = header_u64(stale_token, "stale");
  dropped_base_ = header_u64(drops_token, "drops");

  for (auto& ledger : host_ledgers_)
    ledger = std::make_unique<core::EnergyAccountant>(
        core::read_accountant(in));
  core::read_multi_host(in, tenants_);
  for (const auto& agent : agents_) agent->load_state(in);

  // The simulators are deterministic in (seed, tick); replaying the billed
  // interval without accounting re-synchronizes machine state so the next
  // run() continues the exact trajectory — and no joule is billed twice.
  for (std::uint64_t t = 0; t < target_tick; ++t)
    for (const auto& agent : agents_) agent->fast_forward_tick();
  tick_ = target_tick;
  VMP_LOG_INFO("fleet: restored checkpoint %s at tick %llu",
               path.string().c_str(),
               static_cast<unsigned long long>(tick_));
}

}  // namespace vmp::fleet
