#include "fleet/metrics.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vmp::fleet {

namespace {

/// Family name = metric name with any label set stripped.
std::string family_of(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

void write_double(std::ostream& out, double value) {
  std::ostringstream text;
  text.precision(12);
  text << value;
  out << text.str();
}

}  // namespace

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : histogram_(lo, hi, bins) {}

void HistogramMetric::observe(double value) {
  std::lock_guard lock(mutex_);
  histogram_.add(value);
  sum_ += value;
}

std::uint64_t HistogramMetric::count() const {
  std::lock_guard lock(mutex_);
  return histogram_.count();
}

double HistogramMetric::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

util::Histogram HistogramMetric::snapshot() const {
  std::lock_guard lock(mutex_);
  return histogram_;
}

Metrics::Entry& Metrics::entry_for(const std::string& name,
                                   const std::string& help) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) it->second.help = help;
  return it->second;
}

Counter& Metrics::counter(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& entry = entry_for(name, help);
  if (entry.gauge || entry.histogram)
    throw std::invalid_argument("Metrics: '" + name +
                                "' already registered as another kind");
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Metrics::gauge(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& entry = entry_for(name, help);
  if (entry.counter || entry.histogram)
    throw std::invalid_argument("Metrics: '" + name +
                                "' already registered as another kind");
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

HistogramMetric& Metrics::histogram(const std::string& name,
                                    const std::string& help, double lo,
                                    double hi, std::size_t bins) {
  if (name.find('{') != std::string::npos)
    throw std::invalid_argument(
        "Metrics: histogram names cannot carry labels (the 'le' label is "
        "reserved): " +
        name);
  std::lock_guard lock(mutex_);
  Entry& entry = entry_for(name, help);
  if (entry.counter || entry.gauge)
    throw std::invalid_argument("Metrics: '" + name +
                                "' already registered as another kind");
  if (!entry.histogram)
    entry.histogram = std::make_unique<HistogramMetric>(lo, hi, bins);
  return *entry.histogram;
}

std::string Metrics::to_prometheus() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  std::string last_family;
  for (const auto& [name, entry] : entries_) {
    const std::string family = family_of(name);
    if (family != last_family) {
      const char* kind = entry.counter     ? "counter"
                         : entry.gauge     ? "gauge"
                         : entry.histogram ? "histogram"
                                           : "untyped";
      out << "# HELP " << family << ' ' << entry.help << '\n';
      out << "# TYPE " << family << ' ' << kind << '\n';
      last_family = family;
    }
    if (entry.counter) {
      out << name << ' ' << entry.counter->value() << '\n';
    } else if (entry.gauge) {
      out << name << ' ';
      write_double(out, entry.gauge->value());
      out << '\n';
    } else if (entry.histogram) {
      const util::Histogram histogram = entry.histogram->snapshot();
      std::size_t cumulative = 0;
      for (std::size_t i = 0; i < histogram.bin_count(); ++i) {
        cumulative += histogram.bin(i);
        out << name << "_bucket{le=\"";
        write_double(out, histogram.bin_hi(i));
        out << "\"} " << cumulative << '\n';
      }
      out << name << "_bucket{le=\"+Inf\"} " << histogram.count() << '\n';
      out << name << "_sum ";
      write_double(out, entry.histogram->sum());
      out << '\n';
      out << name << "_count " << histogram.count() << '\n';
    }
  }
  return out.str();
}

void Metrics::write_prometheus(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("Metrics: cannot open for write: " +
                             path.string());
  out << to_prometheus();
  if (!out) throw std::runtime_error("Metrics: write failed: " + path.string());
}

}  // namespace vmp::fleet
