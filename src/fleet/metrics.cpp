#include "fleet/metrics.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vmp::fleet {

namespace {

/// Family name = metric name with any label set stripped.
std::string family_of(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Inner label body of a metric name ("a=\"b\",c=\"d\"") or "" when plain.
std::string labels_of(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return "";
  auto body = name.substr(brace + 1);
  if (!body.empty() && body.back() == '}') body.pop_back();
  return body;
}

/// "fam_sum{labels}" / "fam_sum" — suffixed series name that keeps the label
/// set attached to the family, as Prometheus requires for histograms.
std::string suffixed(const std::string& family, const std::string& labels,
                     const char* suffix) {
  std::string out = family + suffix;
  if (!labels.empty()) out += "{" + labels + "}";
  return out;
}

void write_double(std::ostream& out, double value) {
  std::ostringstream text;
  text.precision(12);
  text << value;
  out << text.str();
}

}  // namespace

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : histogram_(lo, hi, bins) {}

void HistogramMetric::observe(double value) {
  std::lock_guard lock(mutex_);
  histogram_.add(value);
  sum_ += value;
}

std::uint64_t HistogramMetric::count() const {
  std::lock_guard lock(mutex_);
  return histogram_.count();
}

double HistogramMetric::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

util::Histogram HistogramMetric::snapshot() const {
  std::lock_guard lock(mutex_);
  return histogram_;
}

Metrics::Entry& Metrics::entry_for(const std::string& name,
                                   const std::string& help) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) it->second.help = help;
  return it->second;
}

Counter& Metrics::counter(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& entry = entry_for(name, help);
  if (entry.gauge || entry.histogram)
    throw std::invalid_argument("Metrics: '" + name +
                                "' already registered as another kind");
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Metrics::gauge(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& entry = entry_for(name, help);
  if (entry.counter || entry.histogram)
    throw std::invalid_argument("Metrics: '" + name +
                                "' already registered as another kind");
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

HistogramMetric& Metrics::histogram(const std::string& name,
                                    const std::string& help, double lo,
                                    double hi, std::size_t bins) {
  // Labelled histogram names are allowed; the exporter merges the reserved
  // 'le' label into the series' own label set. A literal le= in the name
  // would collide with that merge, so only that label is rejected.
  if (labels_of(name).find("le=") != std::string::npos)
    throw std::invalid_argument(
        "Metrics: histogram labels cannot include the reserved 'le' label: " +
        name);
  std::lock_guard lock(mutex_);
  Entry& entry = entry_for(name, help);
  if (entry.counter || entry.gauge)
    throw std::invalid_argument("Metrics: '" + name +
                                "' already registered as another kind");
  if (!entry.histogram)
    entry.histogram = std::make_unique<HistogramMetric>(lo, hi, bins);
  return *entry.histogram;
}

std::string Metrics::to_prometheus() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  std::string last_family;
  for (const auto& [name, entry] : entries_) {
    const std::string family = family_of(name);
    if (family != last_family) {
      const char* kind = entry.counter     ? "counter"
                         : entry.gauge     ? "gauge"
                         : entry.histogram ? "histogram"
                                           : "untyped";
      out << "# HELP " << family << ' ' << entry.help << '\n';
      out << "# TYPE " << family << ' ' << kind << '\n';
      last_family = family;
    }
    if (entry.counter) {
      out << name << ' ' << entry.counter->value() << '\n';
    } else if (entry.gauge) {
      out << name << ' ';
      write_double(out, entry.gauge->value());
      out << '\n';
    } else if (entry.histogram) {
      // The _bucket/_sum/_count suffixes attach to the family name, and the
      // series' own labels merge ahead of the reserved 'le' bucket label.
      const std::string labels = labels_of(name);
      const std::string le_prefix = labels.empty() ? "" : labels + ",";
      const util::Histogram histogram = entry.histogram->snapshot();
      std::size_t cumulative = 0;
      for (std::size_t i = 0; i < histogram.bin_count(); ++i) {
        cumulative += histogram.bin(i);
        out << family << "_bucket{" << le_prefix << "le=\"";
        write_double(out, histogram.bin_hi(i));
        out << "\"} " << cumulative << '\n';
      }
      out << family << "_bucket{" << le_prefix << "le=\"+Inf\"} "
          << histogram.count() << '\n';
      out << suffixed(family, labels, "_sum") << ' ';
      write_double(out, entry.histogram->sum());
      out << '\n';
      out << suffixed(family, labels, "_count") << ' ' << histogram.count()
          << '\n';
    }
  }
  return out.str();
}

void Metrics::write_prometheus(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("Metrics: cannot open for write: " +
                             path.string());
  out << to_prometheus();
  if (!out) throw std::runtime_error("Metrics: write failed: " + path.string());
}

}  // namespace vmp::fleet
