// FleetEngine: concurrent multi-host metering with tenant roll-up,
// observability, fault tolerance, and checkpoint/restore.
//
// The Shapley value's Additivity axiom (paper Sec. IV-C) makes the per-host
// disaggregation games independent, so a fleet of N hosts is embarrassingly
// parallel: each tick the engine fans one HostAgent task per host onto its
// ThreadPool, workers publish HostTickResults through the bounded MPSC
// queue, and the engine aggregates the tick on its own thread *in host-id
// order* — which is why the tenant ledgers are byte-identical to a serial
// run at any thread count (under the kBlock backpressure policy; kDropOldest
// trades that guarantee for liveness and surfaces every shed sample in the
// drop counter).
//
// Fault tolerance (see fleet/faults.hpp and fleet/host_agent.hpp): degraded
// host-ticks are billed at the host's last good estimate and flagged in the
// metrics — an unmonitored host keeps drawing power, so carrying the
// estimate is strictly more honest than zeroing it. Checkpoints persist the
// engine's tick plus every accountant through core::serialization; restore
// fast-forwards the deterministic simulators through already-billed ticks so
// a resumed engine never double-counts a joule.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <vector>

#include "core/accountant.hpp"
#include "core/collector.hpp"
#include "core/multi_host.hpp"
#include "fleet/faults.hpp"
#include "fleet/host_agent.hpp"
#include "fleet/metrics.hpp"
#include "fleet/queue.hpp"
#include "util/thread_pool.hpp"
#include "obs/invariants.hpp"
#include "sim/machine_spec.hpp"

namespace vmp::fleet {

struct FleetOptions {
  std::size_t hosts = 4;
  std::size_t threads = 2;
  /// Every host boots this fleet (VM v on host h belongs to tenant
  /// v % tenants + 1).
  std::vector<common::VmConfig> fleet_per_host;
  std::size_t tenants = 3;
  sim::MachineSpec spec = sim::xeon_prototype();
  double period_s = 1.0;
  std::uint64_t seed = 1;
  core::IdleAttribution idle_policy = core::IdleAttribution::kNone;

  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  std::size_t queue_capacity = 0;  ///< 0 => one slot per host.

  FaultSpec faults;
  std::uint32_t max_retries = 3;
  std::chrono::microseconds retry_backoff_base{100};
  std::uint64_t dropout_ticks = 3;

  /// Shapley kernel selection + sampled-tier knobs, applied to every host's
  /// estimator (each host mixes its own seed into the sampling streams).
  core::SampledKernelConfig kernel;

  /// Warn thresholds for the runtime invariant monitors (efficiency
  /// residual, table hit rate, queue occupancy).
  obs::InvariantOptions invariants;

  /// Throws std::invalid_argument on zero hosts/threads/tenants, an empty
  /// fleet, or a non-positive period.
  void validate() const;
};

class FleetEngine {
 public:
  /// Boots `options.hosts` agents sharing the trained `dataset` artifacts
  /// (host h is seeded with seed + h, so hosts are distinct but the whole
  /// fleet is reproducible from one seed).
  FleetEngine(FleetOptions options, const core::OfflineDataset& dataset);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Advances the whole fleet by `ticks` sampling periods.
  void run(std::uint64_t ticks);

  /// Called on the engine thread at the end of every tick, after the ledgers
  /// were updated, with the tick's results sorted by host id. The ledgers
  /// are safe to read from inside the callback (same thread); this is how
  /// serve::SnapshotStore publishes immutable query snapshots without ever
  /// blocking the metering loop on readers.
  using TickObserver = std::function<void(
      const FleetEngine&, std::uint64_t tick,
      const std::vector<HostTickResult>& results)>;
  void set_tick_observer(TickObserver observer) {
    observer_ = std::move(observer);
  }

  [[nodiscard]] std::uint64_t tick() const noexcept { return tick_; }
  [[nodiscard]] const FleetOptions& options() const noexcept {
    return options_;
  }

  /// Cross-host tenant ledger (the Additivity roll-up).
  [[nodiscard]] const core::MultiHostAccountant& tenant_ledger()
      const noexcept {
    return tenants_;
  }
  /// Per-host VM-level energy ledger.
  [[nodiscard]] const core::EnergyAccountant& host_ledger(
      std::size_t host) const {
    return *host_ledgers_.at(host);
  }

  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// The runtime invariant monitors feeding metrics() (efficiency residual,
  /// table hit rate, queue occupancy — see obs/invariants.hpp). The mutable
  /// overload lets co-located components (the serve snapshot store) feed
  /// their own invariant samples into the same monitor.
  [[nodiscard]] obs::InvariantMonitor& invariants() noexcept {
    return monitor_;
  }
  [[nodiscard]] const obs::InvariantMonitor& invariants() const noexcept {
    return monitor_;
  }
  /// Most recent per-tick fleet efficiency residual Σ_h |Σφ − measured| (W).
  [[nodiscard]] double efficiency_residual_w() const noexcept {
    return last_residual_w_;
  }

  /// Aggregated fault/backpressure tallies (also exported via metrics()).
  [[nodiscard]] std::uint64_t samples_processed() const noexcept {
    return processed_;
  }
  [[nodiscard]] std::uint64_t samples_dropped() const noexcept;
  [[nodiscard]] std::uint64_t degraded_ticks() const noexcept {
    return degraded_;
  }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::uint64_t stale_ticks() const noexcept { return stale_; }

  /// Persists tick + all ledgers; throws std::runtime_error on I/O failure.
  void save_checkpoint(const std::filesystem::path& path) const;

  /// Restores a checkpoint written by save_checkpoint into this engine.
  /// Must be called before any run(); the configuration (host count, fleet,
  /// seed) must match the checkpointed engine's, host count is verified.
  /// Fast-forwards every host's simulator through the checkpointed ticks so
  /// subsequent run() calls continue exactly where the saved engine stopped.
  /// Throws std::runtime_error on malformed input or std::logic_error when
  /// the engine already advanced.
  void restore_checkpoint(const std::filesystem::path& path);

 private:
  void aggregate(const HostTickResult& result);

  FleetOptions options_;
  FaultInjector injector_;
  std::vector<std::unique_ptr<HostAgent>> agents_;
  std::vector<std::unique_ptr<core::EnergyAccountant>> host_ledgers_;
  core::MultiHostAccountant tenants_;
  BoundedQueue<HostTickResult> queue_;
  util::ThreadPool pool_;
  Metrics metrics_;
  obs::InvariantMonitor monitor_;  ///< must follow metrics_ (init order).
  TickObserver observer_;

  double last_residual_w_ = 0.0;
  std::uint64_t tick_ = 0;
  std::uint64_t dropped_base_ = 0;  ///< drops carried in from a checkpoint.
  std::uint64_t processed_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t stale_ = 0;
};

}  // namespace vmp::fleet
