// Fleet observability: counters, gauges, and histograms with a Prometheus
// text-format exporter.
//
// A production metering service is judged by what it can prove about itself:
// how long ticks take, how deep the sample queue runs, how many samples were
// shed, how often hosts needed retries. Metrics is a small thread-safe
// registry of the three classic instrument kinds; histograms reuse
// util::Histogram for binning. Metric names may carry Prometheus labels
// inline ("...{host=\"3\"}") on every kind, histograms included — the
// exporter attaches the _bucket/_sum/_count suffixes to the family name and
// merges the series' labels ahead of the reserved 'le' bucket label. It
// groups HELP/TYPE per family and emits everything in sorted order so dumps
// are diffable.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/histogram.hpp"

namespace vmp::fleet {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution metric over fixed-width bins (a util::Histogram plus the
/// sum/count Prometheus expects).
class HistogramMetric {
 public:
  /// Bin layout as in util::Histogram: [lo, hi) split into `bins`.
  HistogramMetric(double lo, double hi, std::size_t bins);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  /// Snapshot of the underlying bins (copy; safe to render).
  [[nodiscard]] util::Histogram snapshot() const;

 private:
  mutable std::mutex mutex_;
  util::Histogram histogram_;
  double sum_ = 0.0;
};

/// Thread-safe metric registry. Registration returns a stable reference;
/// re-registering the same name returns the existing instrument (the help
/// text of the first registration wins). A name already registered as a
/// different kind throws std::invalid_argument.
class Metrics {
 public:
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  HistogramMetric& histogram(const std::string& name, const std::string& help,
                             double lo, double hi, std::size_t bins);

  /// Prometheus text exposition format, families sorted by name.
  [[nodiscard]] std::string to_prometheus() const;

  /// Writes to_prometheus() to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_prometheus(const std::filesystem::path& path) const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry& entry_for(const std::string& name, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // ordered => deterministic dumps.
};

}  // namespace vmp::fleet
