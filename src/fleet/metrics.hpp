// Compatibility shim: the fleet metrics registry moved to src/obs as the
// process-wide unified MetricsRegistry (one exposition writer serves core,
// fleet, and serve families alike; see obs/metrics.hpp). Fleet call sites
// and tests keep their spelling through these aliases.
#pragma once

#include "obs/metrics.hpp"

namespace vmp::fleet {

using Counter = obs::Counter;
using Gauge = obs::Gauge;
using HistogramMetric = obs::HistogramMetric;
using Metrics = obs::MetricsRegistry;

}  // namespace vmp::fleet
