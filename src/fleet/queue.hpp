// Bounded MPSC sample queue for the fleet engine.
//
// Host workers (many producers) publish per-tick metering results; the
// engine's aggregation thread (single consumer) drains them. The queue is
// bounded so a slow consumer exerts explicit backpressure instead of letting
// memory grow with fleet size; the policy choice is the classic streaming
// trade-off: kBlock favours completeness (and keeps the engine's determinism
// guarantee), kDropOldest favours liveness under overload and makes every
// shed sample observable through the drop counter.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

namespace vmp::fleet {

/// What a producer does when the queue is full.
enum class BackpressurePolicy {
  kBlock,       ///< wait for the consumer; nothing is ever lost.
  kDropOldest,  ///< evict the oldest queued element and count the drop.
};

[[nodiscard]] constexpr const char* to_string(BackpressurePolicy p) noexcept {
  return p == BackpressurePolicy::kBlock ? "block" : "drop-oldest";
}

/// Bounded multi-producer single-consumer FIFO. All members are safe to call
/// from any thread; `pop` is intended for the single consumer.
template <typename T>
class BoundedQueue {
 public:
  /// Throws std::invalid_argument when capacity is 0.
  explicit BoundedQueue(std::size_t capacity,
                        BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : capacity_(capacity), policy_(policy) {
    if (capacity == 0)
      throw std::invalid_argument("BoundedQueue: capacity must be >= 1");
  }

  /// Enqueues `value`. Under kBlock, waits until space frees up (or the
  /// queue is closed, in which case the value is discarded and false is
  /// returned). Under kDropOldest, evicts the front element when full.
  /// Returns true iff the value was enqueued without shedding anything.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    if (policy_ == BackpressurePolicy::kBlock) {
      space_cv_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
    }
    bool clean = true;
    if (items_.size() == capacity_) {  // only reachable under kDropOldest.
      items_.pop_front();
      ++dropped_;
      clean = false;
    }
    items_.push_back(std::move(value));
    high_watermark_ = std::max(high_watermark_, items_.size());
    lock.unlock();
    item_cv_.notify_one();
    return clean;
  }

  /// Blocks until an element is available and returns it, or returns
  /// std::nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    item_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return value;
  }

  /// Non-blocking push regardless of policy: enqueues and returns true, or
  /// returns false when the queue is full or closed (nothing is evicted and
  /// the drop counter is untouched — the caller owns the shed accounting).
  bool try_push(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      high_watermark_ = std::max(high_watermark_, items_.size());
    }
    item_cv_.notify_one();
    return true;
  }

  /// Non-blocking pop; std::nullopt when empty.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return value;
  }

  /// Wakes every blocked producer/consumer; subsequent pushes are discarded.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] BackpressurePolicy policy() const noexcept { return policy_; }

  /// Total elements evicted by kDropOldest since construction.
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard lock(mutex_);
    return dropped_;
  }

  /// Deepest the queue has ever been (backpressure diagnostics).
  [[nodiscard]] std::size_t high_watermark() const {
    std::lock_guard lock(mutex_);
    return high_watermark_;
  }

 private:
  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable item_cv_;
  std::condition_variable space_cv_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t dropped_ = 0;
  std::size_t high_watermark_ = 0;
};

}  // namespace vmp::fleet
