// Fixed-size worker pool driving the per-host metering games.
//
// The Shapley value's Additivity axiom (paper Sec. IV-C) makes per-host
// games independent, so the fleet engine fans one task per host per tick
// onto this pool. The pool is deliberately minimal: FIFO submission, no
// futures (results travel through the fleet::BoundedQueue), and a wait_idle
// barrier the engine uses to close each tick deterministically.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vmp::fleet {

class ThreadPool {
 public:
  /// Spawns `threads` workers. Throws std::invalid_argument when 0.
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing (queue empty
  /// and no task in flight).
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;  ///< queued + currently running.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace vmp::fleet
