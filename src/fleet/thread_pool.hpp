// Compatibility shim: the pool moved to util/thread_pool.hpp so the core
// Shapley kernels (core/shapley_fast.hpp) can share it without a core ->
// fleet dependency cycle. Fleet code keeps spelling fleet::ThreadPool.
#pragma once

#include "util/thread_pool.hpp"

namespace vmp::fleet {

using util::ThreadPool;

}  // namespace vmp::fleet
