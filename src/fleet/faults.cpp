#include "fleet/faults.hpp"

#include <stdexcept>

#include "util/cli.hpp"
#include "util/rng.hpp"

namespace vmp::fleet {

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(std::string("FaultSpec: ") + what +
                                " probability must be in [0, 1]");
}

}  // namespace

void FaultSpec::validate() const {
  check_probability(meter_failure, "meter");
  check_probability(dropout, "dropout");
  check_probability(stale_telemetry, "stale");
}

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  for (const std::string& part : util::split_csv(text)) {
    const auto colon = part.find(':');
    if (colon == std::string::npos)
      throw std::invalid_argument("fault spec: expected key:prob, got '" +
                                  part + "'");
    const std::string key = part.substr(0, colon);
    double prob = 0.0;
    try {
      std::size_t used = 0;
      prob = std::stod(part.substr(colon + 1), &used);
      if (used != part.size() - colon - 1) throw std::invalid_argument(part);
    } catch (const std::exception&) {
      throw std::invalid_argument("fault spec: bad probability in '" + part +
                                  "'");
    }
    if (key == "meter") spec.meter_failure = prob;
    else if (key == "dropout") spec.dropout = prob;
    else if (key == "stale") spec.stale_telemetry = prob;
    else
      throw std::invalid_argument(
          "fault spec: unknown kind '" + key +
          "' (expected meter, dropout, or stale)");
  }
  spec.validate();
  return spec;
}

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(spec), seed_(seed) {
  spec_.validate();
}

bool FaultInjector::fires(Kind kind, std::uint32_t host, std::uint64_t tick,
                          std::uint32_t attempt) const noexcept {
  double probability = 0.0;
  switch (kind) {
    case Kind::kMeter: probability = spec_.meter_failure; break;
    case Kind::kDropout: probability = spec_.dropout; break;
    case Kind::kStale: probability = spec_.stale_telemetry; break;
  }
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  // SplitMix64 over a mixed key; the uniform is the top 53 bits, the same
  // construction util::Rng uses for its uniform().
  std::uint64_t key = seed_;
  key ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(kind) + 1);
  key ^= 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(host) + 1);
  key ^= 0x94d049bb133111ebULL * (tick + 1);
  key ^= 0xd6e8feb86659fd93ULL * (static_cast<std::uint64_t>(attempt) + 1);
  const std::uint64_t bits = util::splitmix64(key);
  const double uniform =
      static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1).
  return uniform < probability;
}

}  // namespace vmp::fleet
