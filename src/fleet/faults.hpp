// Deterministic fault injection for the fleet engine.
//
// Real fleets lose meter reads, drop whole hosts, and serve stale telemetry;
// the engine must degrade gracefully through all three. Faults are rolled
// from a counter-based hash of (seed, host, tick, attempt) rather than a
// shared RNG stream, so the schedule of failures is a pure function of the
// configuration — independent of thread count and interleaving, which is
// what lets the determinism tests run with fault injection enabled.
#pragma once

#include <cstdint>
#include <string>

namespace vmp::fleet {

/// Per-tick fault probabilities, all in [0, 1].
struct FaultSpec {
  double meter_failure = 0.0;  ///< a meter read attempt fails.
  double dropout = 0.0;        ///< the host's monitoring plane goes dark.
  double stale_telemetry = 0.0;  ///< VM states arrive one tick late.

  [[nodiscard]] bool any() const noexcept {
    return meter_failure > 0.0 || dropout > 0.0 || stale_telemetry > 0.0;
  }

  /// Throws std::invalid_argument when a probability is outside [0, 1].
  void validate() const;
};

/// Parses "meter:P,dropout:P,stale:P" (any subset, any order) into a spec.
/// Throws std::invalid_argument on unknown keys or malformed probabilities.
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& text);

/// Stateless deterministic roller: same (seed, kind, host, tick, attempt)
/// always yields the same outcome.
class FaultInjector {
 public:
  enum class Kind : std::uint64_t {
    kMeter = 1,
    kDropout = 2,
    kStale = 3,
  };

  FaultInjector(FaultSpec spec, std::uint64_t seed);

  /// True when the fault of `kind` fires for this (host, tick, attempt).
  [[nodiscard]] bool fires(Kind kind, std::uint32_t host, std::uint64_t tick,
                           std::uint32_t attempt = 0) const noexcept;

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

 private:
  FaultSpec spec_;
  std::uint64_t seed_;
};

}  // namespace vmp::fleet
