// Scatter-gather query frontend over fleet shards.
//
// One FederationFrontend fronts N independent fleets, each running its own
// metering engine, snapshot store, and serve::Server. It implements
// serve::QueryHandler, so the existing dispatcher/server/transport stack
// serves the federated tier over the exact same wire protocol a single
// fleet speaks — a client cannot tell (and need not care) whether "tenant 2
// energy over [10, 50]" was answered by one fleet or rolled up across five.
//
// The roll-up is licensed by the Shapley value's Additivity axiom: each
// shard's attribution game is independent (its own hosts, its own measured
// power), so a tenant's cross-fleet energy is exactly the sum of its
// per-fleet energies, and TOU cost — linear in per-segment energy — sums the
// same way. No approximation enters at this layer; the only thing federation
// can lose is *availability*, never correctness.
//
// Fan-out mechanics per query:
//   * every mapped shard admitted by the health tracker is queried on its
//     own thread over a fresh connection, under a per-shard deadline
//     (serve::Client::set_timeout);
//   * a failed attempt (timeout / transport error) is retried up to
//     `retries` times with doubling backoff;
//   * optionally, a hedged second request races a replica endpoint after
//     `hedge_delay` — first success wins, the loser is discarded;
//   * consecutive-failure ejection takes a dead shard out of the hot path,
//     and periodic probes re-admit it when it answers again.
//
// Partial failure degrades instead of erroring: the roll-up of the shards
// that did answer is returned with complete=false and the missing fleet ids
// listed (Response::partial — status byte 2 on the wire, a trailing
// "missing=" token in text). Only when *no* shard answers does the client
// see an error (kUnavailable). Shards report their answers at their own
// snapshot epochs; the frontend rolls up at the *minimum* epoch and exports
// the spread, or rejects past `max_epoch_skew` when the policy demands
// bounded staleness (kEpochSkew).
//
// On every complete fan-out the frontend feeds the federated total and the
// shard-sum into InvariantMonitor::observe_federation — Additivity, watched
// at runtime rather than assumed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "federate/health.hpp"
#include "federate/pool.hpp"
#include "federate/shard_map.hpp"
#include "fleet/metrics.hpp"
#include "obs/invariants.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/query.hpp"
#include "util/thread_pool.hpp"

namespace vmp::federate {

/// What to do when shard snapshot epochs disagree on a fan-out.
enum class SkewPolicy : std::uint8_t {
  kAccept,  ///< roll up at the minimum epoch; export the spread (default).
  kReject,  ///< error kEpochSkew when the spread exceeds max_epoch_skew.
};

struct FrontendOptions {
  /// Per-shard, per-attempt deadline. Zero blocks forever (not recommended
  /// — one hung shard then stalls every fan-out).
  std::chrono::milliseconds deadline{250};
  /// Additional attempts after the first failure, each against the primary
  /// endpoint over a fresh connection.
  std::uint32_t retries = 1;
  /// Backoff before retry k (0-based) is `backoff << k`.
  std::chrono::milliseconds backoff{10};
  /// Race a hedged request against the shard's replica endpoint when the
  /// primary has not answered within hedge_delay. No-op for shards without
  /// replicas.
  bool hedge = false;
  std::chrono::milliseconds hedge_delay{50};
  SkewPolicy skew_policy = SkewPolicy::kAccept;
  /// Largest tolerated (max - min) shard epoch spread under kReject.
  std::uint64_t max_epoch_skew = 1;
  /// Pooled transport (the default): shard connections are reused across
  /// queries through a ConnectionPool and the fan-out runs on a persistent
  /// dispatch pool instead of a thread per shard per query. False restores
  /// the legacy connection-per-attempt, thread-per-query fan-out — the
  /// unpooled baseline arm for benchmarks. Roll-ups are byte-identical
  /// either way.
  bool pooled = true;
  /// Dispatch pool size when pooled; 0 sizes it to shards x 2, clamped to
  /// [1, 64]. Ignored when pooled is false.
  std::size_t workers = 0;
  /// Idle connections kept per shard endpoint when pooled.
  std::size_t max_idle_per_endpoint = 2;
  HealthOptions health{};
  /// vmpower_fed_* instrumentation; optional.
  fleet::Metrics* metrics = nullptr;
  /// Additivity cross-check on complete fan-outs; optional.
  obs::InvariantMonitor* monitor = nullptr;

  /// Throws std::invalid_argument on a negative deadline/backoff/hedge
  /// delay.
  void validate() const;
};

class FederationFrontend : public serve::QueryHandler {
 public:
  /// Throws std::invalid_argument on an empty shard map or bad options.
  FederationFrontend(ShardMap map, FrontendOptions options = {});
  /// Joins every stray hedge loser still in flight (bounded by the
  /// per-shard deadline).
  ~FederationFrontend() override;

  FederationFrontend(const FederationFrontend&) = delete;
  FederationFrontend& operator=(const FederationFrontend&) = delete;

  /// One federated query: scatter to every admitted shard, gather under the
  /// per-shard deadlines, roll up by Additivity. Thread-safe.
  [[nodiscard]] serve::Response execute(const serve::Request& request) override;

  [[nodiscard]] const ShardMap& map() const noexcept { return map_; }
  [[nodiscard]] ShardHealthTracker& health() noexcept { return health_; }
  /// The connection pool behind pooled fan-outs; null when pooled is off.
  [[nodiscard]] ConnectionPool* pool() noexcept { return pool_.get(); }
  /// Dispatch workers backing pooled fan-outs; 0 when pooled is off.
  [[nodiscard]] std::size_t dispatch_workers() const noexcept {
    return dispatch_ ? dispatch_->thread_count() : 0;
  }

 private:
  /// Result of one shard's fan-out leg. `answered` is transport-level:
  /// false means every attempt (retries and hedge included) timed out or
  /// failed to connect, and the shard goes in the missing list.
  struct ShardResult {
    std::uint32_t fleet = 0;
    bool answered = false;
    serve::Response response;  ///< valid only when answered.
  };

  /// One attempt against one endpoint; nullopt on timeout/transport error.
  /// Pooled mode checks a connection out of pool_ and reconnects once when
  /// a reused connection turns out stale (peer restarted while it idled)
  /// before giving up — so a single shard restart costs one reconnect, not
  /// one health-tracker failure. Unpooled mode dials a fresh connection.
  [[nodiscard]] std::optional<serve::Response> attempt(
      std::uint16_t port, const serve::Request& request);
  /// Sends `request` over an established connection; throws on
  /// timeout/transport failure. When a trace is ambient (armed tracer +
  /// trace context), the request is sent as a traced frame: the shard joins
  /// this frontend's trace with the calling attempt span as remote parent
  /// and the per-attempt deadline as its declared budget.
  [[nodiscard]] serve::Response send_on(serve::Client& client,
                                        const serve::Request& request);
  /// The full per-shard leg: deadline + retries + optional hedge.
  [[nodiscard]] ShardResult query_shard(const FleetShard& shard,
                                        const serve::Request& request);
  /// Additivity roll-up of the gathered legs.
  [[nodiscard]] serve::Response gather(const serve::Request& request,
                                       std::vector<ShardResult> results,
                                       std::vector<std::uint32_t> skipped);

  /// A hedge loser still blocked in its request when the winner returned.
  /// Its own deadline bounds how long it can linger; `done` flips when its
  /// leg finishes, after which the next reap joins it for free.
  struct Stray {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  void park_stray(std::thread thread,
                  std::shared_ptr<std::atomic<bool>> done);
  /// Joins finished strays; `final` blocks on the unfinished ones too.
  void reap_strays(bool final);

  ShardMap map_;
  FrontendOptions options_;
  ShardHealthTracker health_;
  /// pool_ before dispatch_: the dispatcher (whose tasks hold pool leases)
  /// is destroyed first.
  std::unique_ptr<ConnectionPool> pool_;
  std::unique_ptr<util::ThreadPool> dispatch_;
  std::mutex strays_mutex_;
  std::vector<Stray> strays_;
  /// Request ids stamped on traced shard requests (correlation only; unique
  /// per frontend, not globally).
  std::atomic<std::uint64_t> next_request_id_{0};

  // Hot-path instruments, resolved once (null without metrics).
  fleet::Counter* fanouts_ = nullptr;
  fleet::Counter* partials_ = nullptr;
  fleet::Counter* unavailable_ = nullptr;
  fleet::Counter* retries_counter_ = nullptr;
  fleet::Counter* hedges_ = nullptr;
  fleet::Counter* hedge_wins_ = nullptr;
  fleet::Gauge* skew_gauge_ = nullptr;
  fleet::HistogramMetric* fanout_latency_ = nullptr;
};

}  // namespace vmp::federate
