#include "federate/shard_map.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace vmp::federate {

namespace {

std::uint64_t parse_number(std::string_view token, const char* what,
                           std::uint64_t max) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() || value > max)
    throw std::invalid_argument(std::string("shard map: bad ") + what + " '" +
                                std::string(token) + "'");
  return value;
}

std::uint16_t parse_endpoint(std::string_view token) {
  const std::size_t colon = token.rfind(':');
  if (colon != std::string_view::npos) {
    const std::string_view host = token.substr(0, colon);
    if (host != "127.0.0.1" && host != "localhost")
      throw std::invalid_argument(
          "shard map: non-loopback endpoint host '" + std::string(host) +
          "' (the serve tier binds 127.0.0.1 only)");
    token = token.substr(colon + 1);
  }
  const std::uint64_t port = parse_number(token, "endpoint port", 0xffff);
  if (port == 0)
    throw std::invalid_argument("shard map: endpoint port must be non-zero");
  return static_cast<std::uint16_t>(port);
}

}  // namespace

ShardMap::ShardMap(std::vector<FleetShard> shards)
    : shards_(std::move(shards)) {
  std::sort(shards_.begin(), shards_.end(),
            [](const FleetShard& a, const FleetShard& b) {
              return a.fleet < b.fleet;
            });
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].endpoints.empty())
      throw std::invalid_argument("shard map: fleet " +
                                  std::to_string(shards_[i].fleet) +
                                  " has no endpoints");
    if (i > 0 && shards_[i].fleet == shards_[i - 1].fleet)
      throw std::invalid_argument("shard map: duplicate fleet id " +
                                  std::to_string(shards_[i].fleet));
  }
}

ShardMap ShardMap::parse(std::string_view spec) {
  std::vector<FleetShard> shards;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) {
      if (end == spec.size()) break;
      continue;  // tolerate a trailing/duplicated separator.
    }
    const std::size_t equals = entry.find('=');
    if (equals == std::string_view::npos)
      throw std::invalid_argument("shard map: entry '" + std::string(entry) +
                                  "' is not fleet=endpoints");
    FleetShard shard;
    shard.fleet = static_cast<std::uint32_t>(
        parse_number(entry.substr(0, equals), "fleet id", 0xffffffffu));
    std::string_view endpoints = entry.substr(equals + 1);
    std::size_t ep_start = 0;
    while (ep_start <= endpoints.size()) {
      std::size_t ep_end = endpoints.find(',', ep_start);
      if (ep_end == std::string_view::npos) ep_end = endpoints.size();
      const std::string_view token =
          endpoints.substr(ep_start, ep_end - ep_start);
      if (token.empty())
        throw std::invalid_argument("shard map: empty endpoint for fleet " +
                                    std::to_string(shard.fleet));
      shard.endpoints.push_back(parse_endpoint(token));
      if (ep_end == endpoints.size()) break;
      ep_start = ep_end + 1;
    }
    shards.push_back(std::move(shard));
    if (end == spec.size()) break;
  }
  if (shards.empty())
    throw std::invalid_argument("shard map: no shards in spec");
  return ShardMap(std::move(shards));
}

const FleetShard* ShardMap::find(std::uint32_t fleet) const noexcept {
  const auto it = std::lower_bound(
      shards_.begin(), shards_.end(), fleet,
      [](const FleetShard& shard, std::uint32_t id) {
        return shard.fleet < id;
      });
  return it != shards_.end() && it->fleet == fleet ? &*it : nullptr;
}

std::string ShardMap::spec() const {
  std::string out;
  for (const FleetShard& shard : shards_) {
    if (!out.empty()) out += ';';
    out += std::to_string(shard.fleet);
    out += '=';
    for (std::size_t i = 0; i < shard.endpoints.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(shard.endpoints[i]);
    }
  }
  return out;
}

}  // namespace vmp::federate
