#include "federate/frontend.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "obs/trace.hpp"
#include "serve/client.hpp"

namespace vmp::federate {

namespace {

constexpr double kFanoutLatencyLoS = 0.0;
constexpr double kFanoutLatencyHiS = 0.5;
constexpr std::size_t kFanoutLatencyBins = 50;

// Snapshot stats layout (QueryKind::kStats): indexes into Response::values.
constexpr std::size_t kStatsTick = 0;
constexpr std::size_t kStatsTime = 1;
constexpr std::size_t kStatsVms = 2;
constexpr std::size_t kStatsTenants = 3;
constexpr std::size_t kStatsValueCount = 7;

std::string fleet_label(std::uint32_t fleet) {
  return obs::labeled("vmpower_fed_shard_attempts_total",
                      {{"fleet", std::to_string(fleet)}});
}

}  // namespace

void FrontendOptions::validate() const {
  if (deadline.count() < 0 || backoff.count() < 0 || hedge_delay.count() < 0)
    throw std::invalid_argument(
        "federation: negative deadline/backoff/hedge delay");
}

FederationFrontend::FederationFrontend(ShardMap map, FrontendOptions options)
    : map_(std::move(map)),
      options_(options),
      health_(options_.health, options_.metrics) {
  options_.validate();
  if (map_.empty())
    throw std::invalid_argument("federation: empty shard map");
  if (options_.pooled) {
    PoolOptions pool_options;
    pool_options.max_idle_per_endpoint = options_.max_idle_per_endpoint;
    pool_options.metrics = options_.metrics;
    pool_ = std::make_unique<ConnectionPool>(pool_options);
    // Sized for a couple of concurrent fan-outs by default; hedge legs run
    // on their own threads, so a worker is one shard leg.
    std::size_t workers = options_.workers;
    if (workers == 0)
      workers = std::clamp<std::size_t>(map_.size() * 2, 1, 64);
    dispatch_ = std::make_unique<util::ThreadPool>(workers);
  }
  if (fleet::Metrics* m = options_.metrics) {
    fanouts_ = &m->counter("vmpower_fed_fanouts_total",
                           "Federated queries fanned out to the shards");
    partials_ = &m->counter(
        "vmpower_fed_partial_total",
        "Federated responses returned incomplete (some shard missing)");
    unavailable_ = &m->counter(
        "vmpower_fed_unavailable_total",
        "Federated queries answered by no shard at all");
    retries_counter_ = &m->counter("vmpower_fed_retries_total",
                                   "Per-shard attempts beyond the first");
    hedges_ = &m->counter("vmpower_fed_hedges_total",
                          "Hedged second requests launched against replicas");
    hedge_wins_ = &m->counter(
        "vmpower_fed_hedge_wins_total",
        "Hedged requests that beat the primary to a successful answer");
    skew_gauge_ = &m->gauge(
        "vmpower_fed_epoch_skew",
        "max - min shard snapshot epoch on the last federated roll-up");
    fanout_latency_ = &m->histogram(
        "vmpower_fed_fanout_latency_seconds",
        "End-to-end federated fan-out latency (scatter to roll-up)",
        kFanoutLatencyLoS, kFanoutLatencyHiS, kFanoutLatencyBins);
    m->gauge("vmpower_fed_shards", "Fleet shards in the federation map")
        .set(static_cast<double>(map_.size()));
  }
}

serve::Response FederationFrontend::send_on(serve::Client& client,
                                            const serve::Request& request) {
  // Propagate the trace across the process boundary: the shard's server
  // adopts this attempt's span as its remote parent, so the stitched tree
  // shows the shard's execute nested under exactly the attempt (first try,
  // retry, or hedge) that carried it. Only when a trace is actually armed
  // and ambient — untraced fan-outs stay on the plain id-less frame.
  const std::uint64_t trace_id = obs::Tracer::global().enabled()
                                     ? obs::TraceContext::current_trace()
                                     : 0;
  if (trace_id != 0) {
    serve::TraceContextWire wire;
    wire.trace_id = trace_id;
    wire.parent_span = obs::current_span();
    wire.budget_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            options_.deadline)
            .count());
    const std::uint64_t request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    return client.query_with_trace(request, request_id, wire);
  }
  return client.query(request);
}

std::optional<serve::Response> FederationFrontend::attempt(
    std::uint16_t port, const serve::Request& request) {
  if (!pool_) {
    // Legacy unpooled transport: one fresh connection per attempt.
    try {
      serve::Client client(port);
      client.set_timeout(options_.deadline);
      return send_on(client, request);
    } catch (const serve::TimeoutError&) {
      return std::nullopt;
    } catch (const std::runtime_error&) {
      return std::nullopt;
    }
  }
  ConnectionPool::Lease lease;
  try {
    lease = pool_->checkout(port, options_.deadline);
  } catch (const std::runtime_error&) {
    return std::nullopt;  // endpoint unreachable; counts toward ejection.
  }
  while (true) {
    try {
      serve::Response response = send_on(*lease.client, request);
      pool_->checkin(std::move(lease));
      return response;
    } catch (const serve::TimeoutError&) {
      // Slow is not stale: the peer is alive but over deadline, and the
      // socket may be mid-message — discard it, never reconnect-retry.
      pool_->discard(std::move(lease));
      return std::nullopt;
    } catch (const std::runtime_error&) {
      if (!lease.reused) {
        // A fresh connection failing outright is a real shard failure.
        pool_->discard(std::move(lease));
        return std::nullopt;
      }
      // A reused connection dying on first use (EOF/ECONNRESET) usually
      // means the shard restarted while it idled. Reconnect once — the
      // replacement lease is fresh, so a second failure exits above.
      try {
        lease = pool_->reconnect(std::move(lease), options_.deadline);
      } catch (const std::runtime_error&) {
        return std::nullopt;
      }
    }
  }
}

FederationFrontend::ShardResult FederationFrontend::query_shard(
    const FleetShard& shard, const serve::Request& request) {
  VMP_TRACE_NAMED_SPAN(shard_span, "fed.shard", "federate");
  shard_span.note("fleet", shard.fleet);
  ShardResult result;
  result.fleet = shard.fleet;
  if (options_.metrics)
    options_.metrics
        ->counter(fleet_label(shard.fleet),
                  "Connection attempts against this shard (first tries, "
                  "retries, and hedges)")
        .inc();

  const bool hedged = options_.hedge && shard.has_replica();
  const std::uint32_t attempts = options_.retries + 1;
  for (std::uint32_t k = 0; k < attempts; ++k) {
    if (k > 0) {
      if (retries_counter_) retries_counter_->inc();
      std::this_thread::sleep_for(options_.backoff * (1u << (k - 1)));
    }
    std::optional<serve::Response> response;
    if (hedged) {
      // Race the primary against the replica: launch the primary leg on its
      // own thread, give it hedge_delay, then fire the replica. First
      // success wins; a loser still mid-request is parked on the stray list
      // and reaped later, so a hedge win is not re-serialized behind the
      // slow primary's deadline.
      struct Race {
        std::mutex mutex;
        std::condition_variable cv;
        int winner = 0;  ///< 0 undecided, 1 primary, 2 replica.
        int finished = 0;
        std::optional<serve::Response> response;
      };
      auto race = std::make_shared<Race>();
      // Each racing leg runs on its own thread, so the ambient trace must be
      // re-seeded there; the leg's span (fed.attempt / fed.hedge) parents
      // whatever the shard server opens on the far side.
      const std::uint64_t leg_trace = obs::TraceContext::current_trace();
      const std::uint64_t leg_parent = obs::current_span();
      auto leg = [this, race, request, leg_trace, leg_parent,
                  k](int who, std::uint16_t port,
                     std::shared_ptr<std::atomic<bool>> done) {
        VMP_TRACE_CONTEXT_PARENTED(leg_trace, leg_parent);
        std::optional<serve::Response> r;
        {
          VMP_TRACE_NAMED_SPAN(leg_span,
                               who == 1 ? "fed.attempt" : "fed.hedge",
                               "federate");
          leg_span.note("attempt", k);
          r = attempt(port, request);
        }
        {
          std::lock_guard lock(race->mutex);
          ++race->finished;
          if (r && race->winner == 0) {
            race->winner = who;
            race->response = std::move(r);
          }
        }
        done->store(true, std::memory_order_release);
        race->cv.notify_all();
      };
      auto primary_done = std::make_shared<std::atomic<bool>>(false);
      std::thread primary(leg, 1, shard.primary(), primary_done);
      int launched = 1;
      std::thread replica;
      std::shared_ptr<std::atomic<bool>> replica_done;
      {
        std::unique_lock lock(race->mutex);
        if (!race->cv.wait_for(lock, options_.hedge_delay, [&] {
              return race->finished >= 1;
            })) {
          lock.unlock();
          if (hedges_) hedges_->inc();
          replica_done = std::make_shared<std::atomic<bool>>(false);
          replica = std::thread(leg, 2, shard.endpoints[1], replica_done);
          launched = 2;
          lock.lock();
        }
        race->cv.wait(lock, [&] {
          return race->winner != 0 || race->finished >= launched;
        });
        response = race->response;
        if (race->winner == 2 && hedge_wins_) hedge_wins_->inc();
      }
      auto settle = [this](std::thread& thread,
                           const std::shared_ptr<std::atomic<bool>>& done) {
        if (!thread.joinable()) return;
        if (done->load(std::memory_order_acquire))
          thread.join();
        else
          park_stray(std::move(thread), done);
      };
      settle(primary, primary_done);
      settle(replica, replica_done);
    } else {
      VMP_TRACE_NAMED_SPAN(attempt_span, "fed.attempt", "federate");
      attempt_span.note("attempt", k);
      response = attempt(shard.primary(), request);
    }
    if (response) {
      result.answered = true;
      result.response = std::move(*response);
      break;
    }
  }

  if (!result.answered && options_.metrics)
    options_.metrics
        ->counter(obs::labeled("vmpower_fed_shard_failures_total",
                               {{"fleet", std::to_string(shard.fleet)}}),
                  "Shard legs that exhausted every attempt without an answer")
        .inc();
  return result;
}

void FederationFrontend::park_stray(
    std::thread thread, std::shared_ptr<std::atomic<bool>> done) {
  std::lock_guard lock(strays_mutex_);
  strays_.push_back(Stray{std::move(thread), std::move(done)});
}

void FederationFrontend::reap_strays(bool final) {
  std::vector<Stray> to_join;
  {
    std::lock_guard lock(strays_mutex_);
    auto keep = strays_.begin();
    for (auto& stray : strays_) {
      if (final || stray.done->load(std::memory_order_acquire)) {
        to_join.push_back(std::move(stray));
      } else {
        // Self-move-assigning a joinable std::thread terminates; skip when
        // nothing before this stray was reaped.
        if (&*keep != &stray) *keep = std::move(stray);
        ++keep;
      }
    }
    strays_.erase(keep, strays_.end());
  }
  for (Stray& stray : to_join)
    if (stray.thread.joinable()) stray.thread.join();
}

FederationFrontend::~FederationFrontend() {
  // Drain the dispatcher first — its tasks can park new strays — then join
  // every stray hedge loser.
  dispatch_.reset();
  reap_strays(true);
}

serve::Response FederationFrontend::execute(const serve::Request& request) {
  const auto start = std::chrono::steady_clock::now();
  if (fanouts_) fanouts_->inc();
  // Capture the ambient trace before the fan-out: thread-local context does
  // not cross std::thread, so every leg re-seeds it and its fed.shard span
  // becomes a child of the caller's serve.execute span. Disarmed tracing
  // costs exactly this one relaxed load.
  const std::uint64_t trace_id = obs::Tracer::global().enabled()
                                     ? obs::TraceContext::current_trace()
                                     : 0;
  const std::uint64_t parent_span = obs::current_span();

  std::vector<std::uint32_t> skipped;
  std::vector<const FleetShard*> targets;
  targets.reserve(map_.size());
  for (const FleetShard& shard : map_.shards()) {
    if (health_.should_try(shard.fleet))
      targets.push_back(&shard);
    else
      skipped.push_back(shard.fleet);
  }

  std::vector<ShardResult> results(targets.size());
  if (dispatch_ && targets.size() == 1) {
    // Single shard: no parallelism to win; skip the dispatch round trip.
    results[0] = query_shard(*targets[0], request);
  } else if (dispatch_) {
    // Persistent dispatcher: shard legs run as pool tasks with a per-query
    // countdown instead of wait_idle — execute() is thread-safe, so legs of
    // concurrent queries interleave on the same workers, and no leg ever
    // blocks on pool-submitted work (hedge legs keep their own threads), so
    // the pool's no-nested-blocking rule holds.
    struct Join {
      std::mutex mutex;
      std::condition_variable cv;
      std::size_t remaining = 0;
    };
    auto join = std::make_shared<Join>();
    join->remaining = targets.size();
    for (std::size_t i = 0; i < targets.size(); ++i)
      dispatch_->submit([this, &request, &results, i, shard = targets[i],
                         trace_id, parent_span, join] {
        VMP_TRACE_CONTEXT_PARENTED(trace_id, parent_span);
        results[i] = query_shard(*shard, request);
        bool last = false;
        {
          std::lock_guard lock(join->mutex);
          last = --join->remaining == 0;
        }
        if (last) join->cv.notify_all();
      });
    std::unique_lock lock(join->mutex);
    join->cv.wait(lock, [&] { return join->remaining == 0; });
  } else {
    // Legacy fan-out: one thread per shard per query.
    std::vector<std::thread> threads;
    threads.reserve(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i)
      threads.emplace_back([this, &request, &results, i, shard = targets[i],
                            trace_id, parent_span] {
        VMP_TRACE_CONTEXT_PARENTED(trace_id, parent_span);
        results[i] = query_shard(*shard, request);
      });
    for (std::thread& thread : threads) thread.join();
  }
  reap_strays(false);

  for (const ShardResult& result : results) {
    if (result.answered)
      health_.record_success(result.fleet);
    else
      health_.record_failure(result.fleet);
  }

  serve::Response response =
      gather(request, std::move(results), std::move(skipped));
  if (fanout_latency_)
    fanout_latency_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  return response;
}

serve::Response FederationFrontend::gather(
    const serve::Request& request, std::vector<ShardResult> results,
    std::vector<std::uint32_t> skipped) {
  using serve::ErrorCode;
  using serve::QueryKind;
  using serve::Response;

  std::vector<std::uint32_t> missing = std::move(skipped);
  std::vector<const ShardResult*> contributors;
  const Response* first_error = nullptr;
  std::size_t unknown_entity = 0;
  for (const ShardResult& result : results) {
    if (!result.answered) {
      missing.push_back(result.fleet);
    } else if (result.response.ok) {
      contributors.push_back(&result);
    } else if (result.response.code == ErrorCode::kUnknownEntity) {
      // Known-zero contribution: the entity simply does not live on this
      // shard. Not a failure, not missing data.
      ++unknown_entity;
    } else {
      // The shard answered but could not serve (no snapshot, window out of
      // its history, ...): its contribution is absent, which degrades the
      // roll-up the same way an unreachable shard does.
      missing.push_back(result.fleet);
      if (!first_error) first_error = &result.response;
    }
  }
  std::sort(missing.begin(), missing.end());

  if (contributors.empty()) {
    if (unavailable_ && unknown_entity == 0) unavailable_->inc();
    if (first_error)
      return Response::error(first_error->code, first_error->message,
                             first_error->detail);
    if (unknown_entity > 0) {
      std::string message = "entity unknown on every reachable shard";
      if (!missing.empty())
        message += " (" + std::to_string(missing.size()) +
                   " shard(s) unreachable)";
      return Response::error(ErrorCode::kUnknownEntity, std::move(message));
    }
    return Response::error(ErrorCode::kUnavailable,
                           "no federation shard answered");
  }

  std::uint64_t min_epoch = contributors.front()->response.epoch;
  std::uint64_t max_epoch = min_epoch;
  for (const ShardResult* contributor : contributors) {
    min_epoch = std::min(min_epoch, contributor->response.epoch);
    max_epoch = std::max(max_epoch, contributor->response.epoch);
  }
  const std::uint64_t skew = max_epoch - min_epoch;
  if (skew_gauge_) skew_gauge_->set(static_cast<double>(skew));
  if (options_.skew_policy == SkewPolicy::kReject &&
      skew > options_.max_epoch_skew)
    return Response::error(
        ErrorCode::kEpochSkew,
        "shard epochs spread " + std::to_string(skew) +
            " exceeds the skew budget " +
            std::to_string(options_.max_epoch_skew),
        skew);

  // Additivity roll-up. Energies, powers, and TOU costs across independent
  // shard games sum exactly; the stats verb merges per-field (counts sum,
  // clocks take the most conservative value).
  std::vector<double> merged;
  if (request.kind == QueryKind::kStats) {
    merged.assign(kStatsValueCount, 0.0);
    bool first = true;
    for (const ShardResult* contributor : contributors) {
      const std::vector<double>& values = contributor->response.values;
      if (values.size() != kStatsValueCount) continue;  // foreign layout.
      for (std::size_t i = 0; i < kStatsValueCount; ++i) {
        if (i == kStatsTick || i == kStatsTime)
          merged[i] = first ? values[i] : std::min(merged[i], values[i]);
        else if (i == kStatsTenants)
          merged[i] = first ? values[i] : std::max(merged[i], values[i]);
        else
          merged[i] += values[i];
      }
      first = false;
    }
  } else {
    for (const ShardResult* contributor : contributors) {
      const std::vector<double>& values = contributor->response.values;
      if (merged.size() < values.size()) merged.resize(values.size(), 0.0);
      for (std::size_t i = 0; i < values.size(); ++i) merged[i] += values[i];
    }
  }

  if (missing.empty()) {
    if (options_.monitor && request.kind != QueryKind::kStats &&
        !merged.empty()) {
      // Re-walk the contributions in the same order the roll-up summed them:
      // a non-zero residual can only come from a dropped or double-counted
      // shard, never from reassociation.
      double shard_sum = 0.0;
      for (const ShardResult* contributor : contributors)
        if (!contributor->response.values.empty())
          shard_sum += contributor->response.values.front();
      options_.monitor->observe_federation(min_epoch, merged.front(),
                                           shard_sum, contributors.size());
    }
    return Response::success(min_epoch, std::move(merged));
  }
  if (partials_) partials_->inc();
  return Response::partial(min_epoch, std::move(merged), std::move(missing));
}

}  // namespace vmp::federate
