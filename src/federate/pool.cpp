#include "federate/pool.hpp"

#include <utility>

namespace vmp::federate {

ConnectionPool::ConnectionPool(PoolOptions options) : options_(options) {
  if (fleet::Metrics* m = options_.metrics) {
    hits_counter_ =
        &m->counter("vmpower_fed_pool_hits_total",
                    "Shard requests served over a reused pooled connection");
    misses_counter_ =
        &m->counter("vmpower_fed_pool_misses_total",
                    "Shard requests that had to dial a new connection");
    reconnects_counter_ = &m->counter(
        "vmpower_fed_pool_reconnects_total",
        "Stale pooled connections replaced after a first-use failure");
    evictions_counter_ = &m->counter(
        "vmpower_fed_pool_evictions_total",
        "Pooled connections closed instead of parked (idle bound, discards, "
        "and stale flushes)");
  }
}

ConnectionPool::Lease ConnectionPool::dial(std::uint16_t port,
                                           std::chrono::milliseconds timeout) {
  // Connect outside mutex_ — a slow or dead endpoint must not serialize
  // checkouts against healthy ones.
  Lease lease;
  lease.client = std::make_unique<serve::Client>(port);
  lease.client->set_timeout(timeout);
  lease.port = port;
  lease.reused = false;
  return lease;
}

ConnectionPool::Lease ConnectionPool::checkout(
    std::uint16_t port, std::chrono::milliseconds timeout) {
  Lease lease;
  {
    std::lock_guard lock(mutex_);
    auto it = idle_.find(port);
    if (it != idle_.end() && !it->second.empty()) {
      lease.client = std::move(it->second.back());
      it->second.pop_back();
      lease.port = port;
      lease.reused = true;
    }
  }
  if (lease.client) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hits_counter_) hits_counter_->inc();
    lease.client->set_timeout(timeout);
    return lease;
  }
  lease = dial(port, timeout);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (misses_counter_) misses_counter_->inc();
  return lease;
}

void ConnectionPool::checkin(Lease lease) {
  if (!lease.client) return;
  {
    std::lock_guard lock(mutex_);
    std::vector<std::unique_ptr<serve::Client>>& parked = idle_[lease.port];
    if (parked.size() < options_.max_idle_per_endpoint) {
      parked.push_back(std::move(lease.client));
      return;
    }
  }
  // Idle list full: the connection closes with the lease.
  count_eviction(1);
}

void ConnectionPool::discard(Lease lease) {
  if (!lease.client) return;
  lease.client.reset();
  count_eviction(1);
}

ConnectionPool::Lease ConnectionPool::reconnect(
    Lease stale, std::chrono::milliseconds timeout) {
  const std::uint16_t port = stale.port;
  std::uint64_t flushed = 0;
  if (stale.client) {
    stale.client.reset();
    ++flushed;
  }
  {
    // Every connection idling toward this endpoint predates the same peer
    // restart the stale lease just discovered; flush them all rather than
    // letting each future checkout trip over its own stale socket.
    std::lock_guard lock(mutex_);
    auto it = idle_.find(port);
    if (it != idle_.end()) {
      flushed += it->second.size();
      it->second.clear();
    }
  }
  count_eviction(flushed);
  Lease lease = dial(port, timeout);
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  if (reconnects_counter_) reconnects_counter_->inc();
  return lease;
}

std::size_t ConnectionPool::idle(std::uint16_t port) const {
  std::lock_guard lock(mutex_);
  const auto it = idle_.find(port);
  return it == idle_.end() ? 0 : it->second.size();
}

void ConnectionPool::count_eviction(std::uint64_t n) {
  if (n == 0) return;
  evictions_.fetch_add(n, std::memory_order_relaxed);
  if (evictions_counter_) evictions_counter_->inc(n);
}

}  // namespace vmp::federate
