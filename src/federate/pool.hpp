// Per-endpoint cache of live serve::Client connections.
//
// The federation frontend used to open a fresh TCP connection per shard per
// attempt; at 8 shards that makes connection setup — not Shapley math — the
// dominant cost of a fan-out. The pool keeps a bounded number of idle
// connections per endpoint (loopback-only, so an endpoint is just a port)
// and hands them out as Leases:
//
//   * checkout() reuses an idle connection (hit) or dials a new one (miss);
//     concurrent checkouts always receive distinct connections, which is
//     what lets hedged legs race without sharing a socket;
//   * checkin() parks a healthy connection for the next query, evicting when
//     the endpoint's idle list is full;
//   * discard() drops a connection whose state is no longer trustworthy —
//     after a timeout the socket may be mid-message (see
//     serve::Client::set_timeout), so it must never be reused;
//   * reconnect() handles the stale-socket case: a pooled connection whose
//     peer restarted fails its first send/recv with EOF/ECONNRESET. The
//     caller swaps the stale lease for a fresh connection and retries once
//     before letting the failure count toward health ejection. Every idle
//     connection to that endpoint predates the same restart, so the whole
//     idle list is flushed along with the stale lease.
//
// Counted exactly once per event: vmpower_fed_pool_hits_total,
// _misses_total, _reconnects_total, _evictions_total (evictions cover both
// idle-bound overflow and discarded/stale connections — every pooled socket
// that is closed rather than parked).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fleet/metrics.hpp"
#include "serve/client.hpp"

namespace vmp::federate {

struct PoolOptions {
  /// Idle connections kept per endpoint. Checked-out connections are not
  /// bounded — the bound is on what waits around between queries.
  std::size_t max_idle_per_endpoint = 2;
  /// vmpower_fed_pool_* instrumentation; optional.
  fleet::Metrics* metrics = nullptr;
};

class ConnectionPool {
 public:
  /// A checked-out connection. Exactly one of checkin / discard / reconnect
  /// must consume it; letting it die closes the connection silently (safe,
  /// but uncounted — destructors of abandoned legs).
  struct Lease {
    std::unique_ptr<serve::Client> client;
    std::uint16_t port = 0;
    /// True when the connection came from the idle cache — it may have
    /// gone stale while parked, so its first failure warrants reconnect()
    /// rather than an immediate verdict against the shard.
    bool reused = false;
  };

  explicit ConnectionPool(PoolOptions options = {});

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  /// An idle connection to `port`, or a freshly dialed one. Applies
  /// `timeout` (serve::Client::set_timeout) either way. Throws
  /// std::runtime_error when a fresh connection cannot be established.
  [[nodiscard]] Lease checkout(std::uint16_t port,
                               std::chrono::milliseconds timeout);

  /// Returns a healthy connection to the idle cache (or evicts it when the
  /// endpoint's idle list is full).
  void checkin(Lease lease);

  /// Closes a connection that must not be reused (post-timeout sockets are
  /// mid-message indeterminate; fresh connections that failed outright).
  void discard(Lease lease);

  /// Swaps a stale reused lease for a fresh connection to the same
  /// endpoint, flushing every idle connection to it (they all predate the
  /// same restart). Counts a reconnect, not a miss. Throws
  /// std::runtime_error when the endpoint stays unreachable.
  [[nodiscard]] Lease reconnect(Lease stale, std::chrono::milliseconds timeout);

  /// Idle connections currently parked for `port` (tests / introspection).
  [[nodiscard]] std::size_t idle(std::uint16_t port) const;

  // Exact-once event counts, independent of the metrics wiring.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] Lease dial(std::uint16_t port,
                           std::chrono::milliseconds timeout);
  void count_eviction(std::uint64_t n);

  PoolOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint16_t,
                     std::vector<std::unique_ptr<serve::Client>>>
      idle_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> evictions_{0};
  fleet::Counter* hits_counter_ = nullptr;
  fleet::Counter* misses_counter_ = nullptr;
  fleet::Counter* reconnects_counter_ = nullptr;
  fleet::Counter* evictions_counter_ = nullptr;
};

}  // namespace vmp::federate
