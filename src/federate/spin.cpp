#include "federate/spin.hpp"

#include <utility>

namespace vmp::federate {

InProcessShard::InProcessShard(InProcessShardOptions options)
    : options_(std::move(options)), store_(options_.retention) {
  serve::QueryEngineOptions engine_options = options_.engine;
  engine_options.metrics = &metrics_;
  engine_ = std::make_unique<serve::QueryEngine>(store_, engine_options);
  server_ =
      std::make_unique<serve::Server>(*engine_, metrics_, options_.server);
  if (options_.replica)
    replica_ =
        std::make_unique<serve::Server>(*engine_, metrics_, *options_.replica);
}

void InProcessShard::stop() {
  if (server_) server_->stop();
  if (replica_) replica_->stop();
}

}  // namespace vmp::federate
