// Static shard topology of a federated deployment: which fleet shards
// exist and where each one's query service listens.
//
// Every shard is one fleet engine + snapshot store + serve::Server, all on
// loopback (the serve tier binds 127.0.0.1 only, so an endpoint is just a
// port). A shard may list replica endpoints after its primary — additional
// servers fronting the same snapshot store — which is what the frontend's
// hedged second requests race against when the primary runs slow.
//
// The map is parsed once from a spec string and then immutable; shard
// *liveness* is runtime state and lives in ShardHealthTracker, not here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vmp::federate {

/// One fleet shard: a stable fleet id plus the loopback ports of the
/// servers fronting it. endpoints[0] is the primary; any further entries
/// are replicas eligible for hedged requests.
struct FleetShard {
  std::uint32_t fleet = 0;
  std::vector<std::uint16_t> endpoints;

  [[nodiscard]] std::uint16_t primary() const noexcept {
    return endpoints.empty() ? 0 : endpoints.front();
  }
  [[nodiscard]] bool has_replica() const noexcept {
    return endpoints.size() > 1;
  }
};

/// Immutable fleet-id -> endpoints map.
class ShardMap {
 public:
  ShardMap() = default;
  /// Throws std::invalid_argument on duplicate fleet ids or empty endpoint
  /// lists.
  explicit ShardMap(std::vector<FleetShard> shards);

  /// Parses "fleet=port[,port...][;fleet=port...]", e.g.
  /// "1=7001;2=7002,7012;3=7003". An endpoint may also be spelled
  /// "127.0.0.1:port" or "localhost:port" (any other host is rejected —
  /// the serve tier is loopback-only). Throws std::invalid_argument on
  /// malformed specs.
  [[nodiscard]] static ShardMap parse(std::string_view spec);

  [[nodiscard]] const std::vector<FleetShard>& shards() const noexcept {
    return shards_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }
  [[nodiscard]] bool empty() const noexcept { return shards_.empty(); }

  /// nullptr when the fleet id is not in the map.
  [[nodiscard]] const FleetShard* find(std::uint32_t fleet) const noexcept;

  /// Canonical "fleet=port,port;..." spelling (fleet-id ascending); parses
  /// back to an equal map.
  [[nodiscard]] std::string spec() const;

 private:
  std::vector<FleetShard> shards_;  ///< sorted by fleet id.
};

}  // namespace vmp::federate
