// In-process fleet shard: one snapshot store + query engine + TCP server,
// bundled so tests, benches, and `vmpower federate --spin` can stand up an
// N-shard federation inside a single process.
//
// The shard serves whatever its SnapshotStore holds — callers publish
// snapshots themselves (synthetic trajectories in tests, FleetEngine ticks
// in the CLI). An optional *replica* server fronts the same store/engine on
// a second port; giving the replica different ServerOptions (e.g. a
// worker_delay on the primary, none on the replica) is how the hedging
// tests and bench_federation build a deterministically slow primary with a
// fast hedge target.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "fleet/metrics.hpp"
#include "serve/query.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"

namespace vmp::federate {

struct InProcessShardOptions {
  std::uint32_t fleet = 0;
  std::size_t retention = 512;
  serve::QueryEngineOptions engine{};  ///< engine.metrics is wired in.
  serve::ServerOptions server{};       ///< port 0 picks an ephemeral port.
  /// When set, a second server on the same engine (the hedge target).
  std::optional<serve::ServerOptions> replica;
};

class InProcessShard {
 public:
  explicit InProcessShard(InProcessShardOptions options = {});

  [[nodiscard]] std::uint32_t fleet() const noexcept {
    return options_.fleet;
  }
  [[nodiscard]] std::uint16_t port() const noexcept {
    return server_->port();
  }
  [[nodiscard]] bool has_replica() const noexcept {
    return replica_ != nullptr;
  }
  [[nodiscard]] std::uint16_t replica_port() const noexcept {
    return replica_ ? replica_->port() : 0;
  }

  [[nodiscard]] serve::SnapshotStore& store() noexcept { return store_; }
  [[nodiscard]] const serve::SnapshotStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] serve::QueryEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] fleet::Metrics& metrics() noexcept { return metrics_; }

  /// Stops the server(s); the store and engine stay queryable in process.
  /// Idempotent. A stopped shard's ports refuse connections, which is how
  /// tests kill one shard mid-run.
  void stop();

 private:
  InProcessShardOptions options_;
  fleet::Metrics metrics_;
  serve::SnapshotStore store_;
  std::unique_ptr<serve::QueryEngine> engine_;
  std::unique_ptr<serve::Server> server_;
  std::unique_ptr<serve::Server> replica_;
};

}  // namespace vmp::federate
