// Per-shard health tracking for the federation frontend.
//
// A shard that fails `eject_after` consecutive fan-outs is *ejected*: the
// frontend stops burning its per-shard deadline on it every query and counts
// the shard straight into the response's missing list. While ejected, every
// `probe_interval`-th fan-out still sends one probe request; a probe that
// succeeds re-admits the shard immediately (and a probe that fails keeps it
// out). One success resets the consecutive-failure count wherever it stands,
// so a flapping shard must fail `eject_after` times in a row again before
// the next ejection.
//
// Thread-safe: server workers drive concurrent fan-outs through one tracker.
// Ejections/re-admissions/probes are exported as vmpower_fed_* counters and
// a per-shard health gauge when a registry is attached.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "fleet/metrics.hpp"

namespace vmp::federate {

struct HealthOptions {
  /// Consecutive failures before a shard is ejected; 0 disables ejection
  /// (every shard is always tried).
  std::uint32_t eject_after = 3;
  /// While ejected, every Nth fan-out sends a probe (clamped to >= 1).
  std::uint32_t probe_interval = 4;
};

class ShardHealthTracker {
 public:
  explicit ShardHealthTracker(HealthOptions options = {},
                              fleet::Metrics* metrics = nullptr);

  /// Admission decision for this fan-out: true when the shard is healthy or
  /// this is its probe turn. False — the caller skips the shard and reports
  /// it missing — only while ejected between probes.
  [[nodiscard]] bool should_try(std::uint32_t fleet);

  /// Outcome of an attempted shard query (count once per fan-out, after
  /// retries/hedges resolved). A success on an ejected shard re-admits it.
  void record_success(std::uint32_t fleet);
  void record_failure(std::uint32_t fleet);

  [[nodiscard]] bool ejected(std::uint32_t fleet) const;
  [[nodiscard]] std::uint64_t ejections() const;
  [[nodiscard]] std::uint64_t readmissions() const;

 private:
  struct State {
    std::uint32_t consecutive_failures = 0;
    bool ejected = false;
    std::uint32_t skipped = 0;  ///< fan-outs skipped since the last probe.
  };

  void export_health(std::uint32_t fleet, const State& state);

  HealthOptions options_;
  fleet::Metrics* metrics_;
  mutable std::mutex mutex_;
  std::map<std::uint32_t, State> states_;
  std::uint64_t ejections_ = 0;
  std::uint64_t readmissions_ = 0;
};

}  // namespace vmp::federate
