#include "federate/health.hpp"

namespace vmp::federate {

ShardHealthTracker::ShardHealthTracker(HealthOptions options,
                                       fleet::Metrics* metrics)
    : options_(options), metrics_(metrics) {
  if (options_.probe_interval == 0) options_.probe_interval = 1;
}

bool ShardHealthTracker::should_try(std::uint32_t fleet) {
  std::lock_guard lock(mutex_);
  State& state = states_[fleet];
  if (!state.ejected) return true;
  if (++state.skipped >= options_.probe_interval) {
    state.skipped = 0;
    if (metrics_)
      metrics_
          ->counter(obs::labeled("vmpower_fed_probes_total",
                                 {{"fleet", std::to_string(fleet)}}),
                    "Probe requests sent to ejected shards")
          .inc();
    return true;
  }
  return false;
}

void ShardHealthTracker::record_success(std::uint32_t fleet) {
  std::lock_guard lock(mutex_);
  State& state = states_[fleet];
  state.consecutive_failures = 0;
  if (state.ejected) {
    state.ejected = false;
    state.skipped = 0;
    ++readmissions_;
    if (metrics_)
      metrics_
          ->counter(obs::labeled("vmpower_fed_readmissions_total",
                                 {{"fleet", std::to_string(fleet)}}),
                    "Ejected shards re-admitted after a successful probe")
          .inc();
  }
  export_health(fleet, state);
}

void ShardHealthTracker::record_failure(std::uint32_t fleet) {
  std::lock_guard lock(mutex_);
  State& state = states_[fleet];
  ++state.consecutive_failures;
  if (!state.ejected && options_.eject_after > 0 &&
      state.consecutive_failures >= options_.eject_after) {
    state.ejected = true;
    state.skipped = 0;
    ++ejections_;
    if (metrics_)
      metrics_
          ->counter(obs::labeled("vmpower_fed_ejections_total",
                                 {{"fleet", std::to_string(fleet)}}),
                    "Shards ejected after consecutive fan-out failures")
          .inc();
  }
  export_health(fleet, state);
}

bool ShardHealthTracker::ejected(std::uint32_t fleet) const {
  std::lock_guard lock(mutex_);
  const auto it = states_.find(fleet);
  return it != states_.end() && it->second.ejected;
}

std::uint64_t ShardHealthTracker::ejections() const {
  std::lock_guard lock(mutex_);
  return ejections_;
}

std::uint64_t ShardHealthTracker::readmissions() const {
  std::lock_guard lock(mutex_);
  return readmissions_;
}

void ShardHealthTracker::export_health(std::uint32_t fleet,
                                       const State& state) {
  if (!metrics_) return;
  metrics_
      ->gauge(obs::labeled("vmpower_fed_shard_healthy",
                           {{"fleet", std::to_string(fleet)}}),
              "1 while the shard is admitted to fan-outs, 0 while ejected")
      .set(state.ejected ? 0.0 : 1.0);
}

}  // namespace vmp::federate
