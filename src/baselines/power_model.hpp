// Power-model-based per-VM estimation (the SFU baseline of the paper's
// Secs. II-B / III-C): Φ_i = model_{type(i)}(c_i), independent of every other
// VM and of the measured machine power.
//
// This estimator is *fair* (identical VMs in identical states get identical
// shares) but violates Efficiency: under co-location the summed estimates
// exceed the measured power by up to the SMT contention factor (the paper's
// 25.22 % / 46.15 % errors and Fig. 11's 56.43 % aggregate gap).
#pragma once

#include <vector>

#include "baselines/trainer.hpp"
#include "core/estimator.hpp"

namespace vmp::base {

class PowerModelEstimator final : public core::PowerEstimator {
 public:
  /// Throws std::invalid_argument on an empty model set.
  explicit PowerModelEstimator(std::vector<VmPowerModel> models);

  /// Ignores adjusted_power_w by design (pure model readout).
  [[nodiscard]] std::vector<double> estimate(
      std::span<const core::VmSample> vms, double adjusted_power_w) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "power-model";
  }

  [[nodiscard]] const std::vector<VmPowerModel>& models() const noexcept {
    return models_;
  }

 private:
  std::vector<VmPowerModel> models_;
};

}  // namespace vmp::base
