#include "baselines/integrated_model.hpp"

#include <stdexcept>

#include "sim/physical_machine.hpp"
#include "util/least_squares.hpp"
#include "util/stats.hpp"
#include "workload/synthetic.hpp"

namespace vmp::base {

namespace {

double summed_cpu(const sim::DstatRecord& record) {
  double sum = 0.0;
  for (const sim::VmObservation& obs : record.observations)
    sum += obs.state.cpu();
  return sum;
}

}  // namespace

IntegratedModel train_integrated_model(const sim::MachineSpec& spec,
                                       const common::VmConfig& config,
                                       std::size_t vm_count,
                                       const IntegratedTrainingOptions& options) {
  if (vm_count == 0)
    throw std::invalid_argument("train_integrated_model: vm_count must be >= 1");
  if (!(options.duration_s > 0.0) || !(options.period_s > 0.0))
    throw std::invalid_argument("train_integrated_model: bad durations");

  sim::PhysicalMachine machine(spec, options.seed);
  for (std::size_t i = 0; i < vm_count; ++i) {
    const sim::VmId id = machine.hypervisor().create_vm(
        config, std::make_unique<wl::SyntheticRandomCpu>(options.seed + 31 * i));
    machine.hypervisor().start_vm(id);
  }
  const sim::ScenarioTrace trace =
      sim::run_scenario(machine, options.duration_s, options.period_s);

  // Regress measured power on [u', 1].
  util::Matrix design(trace.size(), 2);
  std::vector<double> target(trace.size());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    design(k, 0) = summed_cpu(trace.states.records()[k]);
    design(k, 1) = 1.0;
    target[k] = trace.measured_power[k];
  }
  const util::LeastSquaresResult fit = util::solve_least_squares(design, target);

  IntegratedModel model;
  model.slope_w = fit.coefficients[0];
  model.idle_w = fit.coefficients[1];
  return model;
}

double integrated_model_error(const IntegratedModel& model,
                              const sim::ScenarioTrace& trace) {
  if (trace.size() == 0)
    throw std::invalid_argument("integrated_model_error: empty trace");
  std::vector<double> errors;
  errors.reserve(trace.size());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const double predicted =
        model.predict_total(summed_cpu(trace.states.records()[k]));
    errors.push_back(util::relative_error(predicted, trace.measured_power[k]));
  }
  return util::mean(errors);
}

}  // namespace vmp::base
