#include "baselines/resource_usage.hpp"

#include <stdexcept>

namespace vmp::base {

ResourceUsageEstimator::ResourceUsageEstimator(std::vector<VmPowerModel> models)
    : models_(std::move(models)) {
  if (models_.empty())
    throw std::invalid_argument("ResourceUsageEstimator: need at least one model");
}

std::vector<double> ResourceUsageEstimator::estimate(
    std::span<const core::VmSample> vms, double adjusted_power_w) {
  if (vms.empty())
    throw std::invalid_argument("ResourceUsageEstimator: need at least one VM");
  if (adjusted_power_w < 0.0)
    throw std::invalid_argument(
        "ResourceUsageEstimator: adjusted power must be >= 0");

  std::vector<double> usage;
  usage.reserve(vms.size());
  double total = 0.0;
  for (const core::VmSample& vm : vms) {
    const double u = model_for(models_, vm.type).predict(vm.state);
    usage.push_back(u);
    total += u;
  }

  std::vector<double> phi(vms.size(), 0.0);
  if (total <= 0.0) {
    // All VMs idle: split the (normally ~zero) residual equally.
    const double share = adjusted_power_w / static_cast<double>(vms.size());
    for (double& p : phi) p = share;
    return phi;
  }
  for (std::size_t i = 0; i < vms.size(); ++i)
    phi[i] = adjusted_power_w * usage[i] / total;
  return phi;
}

}  // namespace vmp::base
