// Isolation training of per-VM-type power models (paper Sec. III-C, Eq. 2;
// Table IV).
//
// Prior work trains a VM type's power model from its *marginal power
// contribution*: run one VM of the type alone on the otherwise-idle machine,
// record (VM state, machine power - idle), and regress. The paper shows this
// procedure is exactly what breaks under co-location; we reproduce it
// faithfully because it is both the baseline (Figs. 4/11/12) and the source
// of Table IV's coefficients.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/state_vector.hpp"
#include "common/vm_config.hpp"
#include "sim/machine_spec.hpp"

namespace vmp::base {

/// A linear per-type model p = w · c (no intercept: an idle VM draws nothing
/// above the machine floor, paper Remark 1).
struct VmPowerModel {
  common::VmTypeId type = 0;
  std::string type_name;
  std::array<double, common::kNumComponents> weights{};

  /// Predicted VM power for a state.
  [[nodiscard]] double predict(const common::StateVector& state) const;
  /// The headline Table IV coefficient (CPU weight).
  [[nodiscard]] double cpu_coefficient() const noexcept {
    return weights[static_cast<std::size_t>(common::Component::kCpu)];
  }
};

struct TrainingOptions {
  double duration_s = 600.0;
  double period_s = 1.0;
  std::uint64_t seed = 1;
  /// false: CPU-only synthetic load (the paper's setup); true: all components.
  bool exercise_all_components = false;

  void validate() const;
};

/// Trains one type's model by running a single VM of that type alone on the
/// machine under synthetic load and regressing the adjusted measured power on
/// the VM state.
[[nodiscard]] VmPowerModel train_isolation_model(const sim::MachineSpec& spec,
                                                 const common::VmConfig& config,
                                                 const TrainingOptions& options);

/// Trains every type in the catalogue (Table IV's "Power model" column).
[[nodiscard]] std::vector<VmPowerModel> train_catalogue_models(
    const sim::MachineSpec& spec, const std::vector<common::VmConfig>& catalogue,
    const TrainingOptions& options);

/// Finds the model for a type; throws std::out_of_range if absent.
[[nodiscard]] const VmPowerModel& model_for(
    const std::vector<VmPowerModel>& models, common::VmTypeId type);

}  // namespace vmp::base
