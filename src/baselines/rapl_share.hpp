// RAPL-proportional attribution — the modern practitioner's baseline.
//
// Host agents (scaphandre-style) commonly split the RAPL package energy
// across processes/VMs in proportion to their CPU time. In this codebase's
// terms: Φ_i = P · (vcpus_i · u_i) / Σ_j (vcpus_j · u_j). Efficient by
// construction (like resource-usage allocation) but blind to VM types'
// different watt-per-core profiles and to contention structure: it charges a
// vCPU-second the same no matter whose it is. Included as the Sec. II-A
// related-work comparator the paper positions itself against.
#pragma once

#include <map>

#include "common/vm_config.hpp"
#include "core/estimator.hpp"

namespace vmp::base {

class RaplShareEstimator final : public core::PowerEstimator {
 public:
  /// Needs each type's vCPU count to weight utilizations; built from the
  /// host's catalogue. Throws std::invalid_argument on an empty catalogue.
  explicit RaplShareEstimator(const std::vector<common::VmConfig>& catalogue);

  [[nodiscard]] std::vector<double> estimate(
      std::span<const core::VmSample> vms, double adjusted_power_w) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rapl-proportional";
  }

 private:
  std::map<common::VmTypeId, unsigned> vcpus_by_type_;
};

}  // namespace vmp::base
