// Marginal-contribution allocation (Table III, row 1).
//
// Given an arrival order, each VM is charged the power increase it caused
// when it joined the machine: Φ_i = v(prefix ∪ {i}, C) − v(prefix, C). This
// is efficient (the telescoping sum equals v(N, C)) but order-dependent and
// therefore unfair: of two identical VMs, the late joiner pays only the
// contended 7 W while the early one pays 13 W. Shapley value is precisely the
// average of this rule over all n! orders.
#pragma once

#include <vector>

#include "core/estimator.hpp"
#include "sim/coalition_probe.hpp"

namespace vmp::base {

class MarginalContributionEstimator final : public core::PowerEstimator {
 public:
  /// `order` is the arrival order as player indices (a permutation of
  /// 0..fleet-1); empty means arrival in index order. The probe supplies the
  /// coalition worths an operator would have measured at start/stop times.
  /// Throws std::invalid_argument if order is not a permutation.
  explicit MarginalContributionEstimator(const sim::CoalitionProbe& probe,
                                         std::vector<std::size_t> order = {});

  [[nodiscard]] std::vector<double> estimate(
      std::span<const core::VmSample> vms, double adjusted_power_w) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "marginal-contribution";
  }

 private:
  const sim::CoalitionProbe& probe_;
  std::vector<std::size_t> order_;
};

}  // namespace vmp::base
