// Resource-usage-based allocation (paper Sec. IV-B, Figs. 7/12): rescale the
// measured adjusted power across VMs in proportion to their modelled
// resource usage.
//
// Efficient by construction (shares sum to the measurement), and — as the
// paper observes for Fig. 12 — with exactly the same *proportions* as the
// power-model baseline. Its unfairness shows in competition scenarios
// (Fig. 7): a VM that contributes no power decline still absorbs part of
// everyone else's decline.
#pragma once

#include <vector>

#include "baselines/trainer.hpp"
#include "core/estimator.hpp"

namespace vmp::base {

class ResourceUsageEstimator final : public core::PowerEstimator {
 public:
  /// Throws std::invalid_argument on an empty model set.
  explicit ResourceUsageEstimator(std::vector<VmPowerModel> models);

  [[nodiscard]] std::vector<double> estimate(
      std::span<const core::VmSample> vms, double adjusted_power_w) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "resource-usage";
  }

 private:
  std::vector<VmPowerModel> models_;
};

}  // namespace vmp::base
