#include "baselines/trainer.hpp"

#include <stdexcept>

#include "sim/physical_machine.hpp"
#include "sim/runner.hpp"
#include "util/least_squares.hpp"
#include "workload/synthetic.hpp"

namespace vmp::base {

double VmPowerModel::predict(const common::StateVector& state) const {
  return state.dot(weights);
}

void TrainingOptions::validate() const {
  if (!(duration_s > 0.0))
    throw std::invalid_argument("TrainingOptions: duration must be > 0");
  if (!(period_s > 0.0))
    throw std::invalid_argument("TrainingOptions: period must be > 0");
}

VmPowerModel train_isolation_model(const sim::MachineSpec& spec,
                                   const common::VmConfig& config,
                                   const TrainingOptions& options) {
  options.validate();

  sim::PhysicalMachine machine(spec, options.seed ^ (config.type_id * 2654435761ULL));
  wl::WorkloadPtr workload;
  if (options.exercise_all_components) {
    workload = std::make_unique<wl::SyntheticRandomState>(options.seed + 17);
  } else {
    workload = std::make_unique<wl::SyntheticRandomCpu>(options.seed + 17);
  }
  const sim::VmId id = machine.hypervisor().create_vm(config, std::move(workload));
  machine.hypervisor().start_vm(id);

  const sim::ScenarioTrace trace =
      sim::run_scenario(machine, options.duration_s, options.period_s);

  util::Matrix design(trace.size(), common::kNumComponents);
  std::vector<double> target(trace.size());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const auto& observations = trace.states.records()[k].observations;
    common::StateVector state{};
    if (!observations.empty()) state = observations.front().state;
    const auto values = state.values();
    for (std::size_t c = 0; c < common::kNumComponents; ++c)
      design(k, c) = values[c];
    target[k] = std::max(0.0, trace.measured_power[k] - spec.idle_power_w);
  }

  const util::LeastSquaresResult fit = util::solve_ridge(design, target, 1e-9);

  VmPowerModel model;
  model.type = config.type_id;
  model.type_name = config.type_name;
  for (std::size_t c = 0; c < common::kNumComponents; ++c)
    model.weights[c] = fit.coefficients[c];
  return model;
}

std::vector<VmPowerModel> train_catalogue_models(
    const sim::MachineSpec& spec, const std::vector<common::VmConfig>& catalogue,
    const TrainingOptions& options) {
  std::vector<VmPowerModel> models;
  models.reserve(catalogue.size());
  for (const common::VmConfig& config : catalogue)
    models.push_back(train_isolation_model(spec, config, options));
  return models;
}

const VmPowerModel& model_for(const std::vector<VmPowerModel>& models,
                              common::VmTypeId type) {
  for (const VmPowerModel& model : models)
    if (model.type == type) return model;
  throw std::out_of_range("model_for: no model trained for this VM type");
}

}  // namespace vmp::base
