// Whole-machine (integrated) power model (paper Sec. III-B, Eq. 1):
//
//     p' = slope * u' + idle
//
// where u' is the summed CPU utilization of all VMs. The paper shows this
// model is accurate at machine level (2.07 % error) even though the same
// training procedure fails at per-VM level — Fig. 3 vs Fig. 4.
#pragma once

#include <cstdint>

#include "common/vm_config.hpp"
#include "sim/machine_spec.hpp"
#include "sim/runner.hpp"

namespace vmp::base {

struct IntegratedModel {
  double slope_w = 0.0;  ///< watts per unit summed CPU utilization.
  double idle_w = 0.0;   ///< fitted intercept (the machine's idle floor).

  /// Predicted machine power (including idle) for a summed utilization.
  [[nodiscard]] double predict_total(double summed_cpu_util) const noexcept {
    return slope_w * summed_cpu_util + idle_w;
  }
};

struct IntegratedTrainingOptions {
  double duration_s = 600.0;
  double period_s = 1.0;
  std::uint64_t seed = 1;
};

/// Trains Eq. 1 by running `vm_count` VMs of `config` under synthetic random
/// CPU load and regressing measured machine power on summed utilization
/// (with intercept). Throws on non-positive durations or zero vm_count.
[[nodiscard]] IntegratedModel train_integrated_model(
    const sim::MachineSpec& spec, const common::VmConfig& config,
    std::size_t vm_count, const IntegratedTrainingOptions& options);

/// Mean relative error of the model against a trace's measured power, where
/// the summed utilization is taken from the trace's dstat records — the
/// Fig. 3 statistic.
[[nodiscard]] double integrated_model_error(const IntegratedModel& model,
                                            const sim::ScenarioTrace& trace);

}  // namespace vmp::base
