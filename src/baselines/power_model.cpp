#include "baselines/power_model.hpp"

#include <stdexcept>

namespace vmp::base {

PowerModelEstimator::PowerModelEstimator(std::vector<VmPowerModel> models)
    : models_(std::move(models)) {
  if (models_.empty())
    throw std::invalid_argument("PowerModelEstimator: need at least one model");
}

std::vector<double> PowerModelEstimator::estimate(
    std::span<const core::VmSample> vms, double adjusted_power_w) {
  if (vms.empty())
    throw std::invalid_argument("PowerModelEstimator: need at least one VM");
  (void)adjusted_power_w;  // deliberately unused: the baseline has no feedback.
  std::vector<double> phi;
  phi.reserve(vms.size());
  for (const core::VmSample& vm : vms)
    phi.push_back(model_for(models_, vm.type).predict(vm.state));
  return phi;
}

}  // namespace vmp::base
