#include "baselines/marginal.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace vmp::base {

MarginalContributionEstimator::MarginalContributionEstimator(
    const sim::CoalitionProbe& probe, std::vector<std::size_t> order)
    : probe_(probe), order_(std::move(order)) {
  if (order_.empty()) {
    order_.resize(probe.fleet_size());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
  }
  if (order_.size() != probe.fleet_size())
    throw std::invalid_argument(
        "MarginalContributionEstimator: order size != fleet size");
  std::vector<std::size_t> sorted = order_;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i)
    if (sorted[i] != i)
      throw std::invalid_argument(
          "MarginalContributionEstimator: order is not a permutation");
}

std::vector<double> MarginalContributionEstimator::estimate(
    std::span<const core::VmSample> vms, double adjusted_power_w) {
  (void)adjusted_power_w;  // efficiency holds by telescoping on the oracle.
  if (vms.size() != probe_.fleet_size())
    throw std::invalid_argument(
        "MarginalContributionEstimator: sample count != fleet size");

  std::vector<common::StateVector> states;
  states.reserve(vms.size());
  for (const core::VmSample& vm : vms) states.push_back(vm.state);

  std::vector<double> phi(vms.size(), 0.0);
  sim::CoalitionMask prefix = 0;
  double prev = 0.0;
  for (std::size_t player : order_) {
    prefix |= sim::CoalitionMask{1} << player;
    const double curr = probe_.worth(prefix, states);
    phi[player] = curr - prev;
    prev = curr;
  }
  return phi;
}

}  // namespace vmp::base
