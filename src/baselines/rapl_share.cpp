#include "baselines/rapl_share.hpp"

#include <stdexcept>

namespace vmp::base {

RaplShareEstimator::RaplShareEstimator(
    const std::vector<common::VmConfig>& catalogue) {
  if (catalogue.empty())
    throw std::invalid_argument("RaplShareEstimator: empty catalogue");
  for (const common::VmConfig& config : catalogue) {
    config.validate();
    vcpus_by_type_[config.type_id] = config.vcpus;
  }
}

std::vector<double> RaplShareEstimator::estimate(
    std::span<const core::VmSample> vms, double adjusted_power_w) {
  if (vms.empty())
    throw std::invalid_argument("RaplShareEstimator: need at least one VM");
  if (adjusted_power_w < 0.0)
    throw std::invalid_argument(
        "RaplShareEstimator: adjusted power must be >= 0");

  std::vector<double> cpu_seconds;
  cpu_seconds.reserve(vms.size());
  double total = 0.0;
  for (const core::VmSample& vm : vms) {
    const auto it = vcpus_by_type_.find(vm.type);
    if (it == vcpus_by_type_.end())
      throw std::out_of_range("RaplShareEstimator: unknown VM type");
    const double weighted = vm.state.cpu() * static_cast<double>(it->second);
    cpu_seconds.push_back(weighted);
    total += weighted;
  }

  std::vector<double> phi(vms.size(), 0.0);
  if (total <= 0.0) {
    const double share = adjusted_power_w / static_cast<double>(vms.size());
    for (double& p : phi) p = share;
    return phi;
  }
  for (std::size_t i = 0; i < vms.size(); ++i)
    phi[i] = adjusted_power_w * cpu_seconds[i] / total;
  return phi;
}

}  // namespace vmp::base
