// Unified metrics registry: counters, gauges, and labeled histograms behind
// one Prometheus text-format exposition writer.
//
// Every subsystem (core estimator selection, fleet engine, query service,
// invariant monitors) registers into one MetricsRegistry, so a single
// scrape — the serve METRICS command, or the --metrics file dump — covers
// the whole process. Registration returns a stable typed handle; metric
// names may carry Prometheus labels inline ("...{host=\"3\"}") on every
// kind. Use labeled() to build such names: it escapes label values per the
// exposition-format grammar, which hand-built names would get wrong.
//
// Exposition guarantees (audited against the Prometheus text-format spec,
// and machine-checked by tools/validate_prom.py in CI):
//   * # HELP / # TYPE exactly once per family, emitted before the family's
//     first sample, even when an unrelated name sorts between two series of
//     the same family ("fam_other" between "fam" and "fam{a=...}");
//   * HELP text escapes backslash and newline; label values escape
//     backslash, double-quote, and newline;
//   * histogram buckets are cumulative with ascending le, always closed by
//     +Inf whose count equals _count, with the series' own labels merged
//     ahead of the reserved le label;
//   * one kind per family — registering "f{a=\"1\"}" as a counter and
//     "f{b=\"2\"}" as a gauge throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "util/histogram.hpp"

namespace vmp::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution metric over fixed-width bins (a util::Histogram plus the
/// sum/count Prometheus expects).
class HistogramMetric {
 public:
  /// Bin layout as in util::Histogram: [lo, hi) split into `bins`.
  HistogramMetric(double lo, double hi, std::size_t bins);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  /// Snapshot of the underlying bins (copy; safe to render).
  [[nodiscard]] util::Histogram snapshot() const;

 private:
  mutable std::mutex mutex_;
  util::Histogram histogram_;
  double sum_ = 0.0;
};

/// Escapes a label value per the exposition grammar: backslash, double
/// quote, and newline.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Builds "family{k1=\"v1\",k2=\"v2\"}" with the values escaped. An empty
/// label list returns the bare family name.
[[nodiscard]] std::string labeled(
    std::string_view family,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Thread-safe metric registry. Registration returns a stable reference;
/// re-registering the same name returns the existing instrument (the help
/// text of the first registration wins). A name or family already
/// registered as a different kind throws std::invalid_argument.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  HistogramMetric& histogram(const std::string& name, const std::string& help,
                             double lo, double hi, std::size_t bins);

  /// Prometheus text exposition format, families sorted by name.
  [[nodiscard]] std::string to_prometheus() const;

  /// Writes to_prometheus() to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_prometheus(const std::filesystem::path& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  /// Registration guts: name-level and family-level kind checks, then the
  /// entry (created on first sight). Caller holds the mutex.
  Entry& entry_for(const std::string& name, const std::string& help,
                   Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;       // ordered => diffable dumps.
  std::map<std::string, Kind> family_kinds_;   // one kind per family.
};

}  // namespace vmp::obs
