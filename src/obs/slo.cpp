#include "obs/slo.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>

namespace vmp::obs {

namespace {

std::uint64_t steady_seconds() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void SloTracker::Ring::record(std::uint64_t now_s, bool slow, bool error) {
  const std::uint64_t stamp = now_s / width_s;
  Slot& slot = slots[stamp % kSlots];
  if (slot.stamp != stamp) slot = Slot{.stamp = stamp};
  ++slot.total;
  if (slow) ++slot.slow;
  if (error) ++slot.errors;
}

void SloTracker::Ring::sum(std::uint64_t now_s, std::uint64_t& total,
                           std::uint64_t& slow, std::uint64_t& errors) const {
  const std::uint64_t stamp = now_s / width_s;
  // Slots with stamp in (stamp - kSlots, stamp] are current; anything older
  // is a leftover from a previous lap of the ring.
  const std::uint64_t oldest = stamp >= kSlots ? stamp - kSlots + 1 : 0;
  total = slow = errors = 0;
  for (const Slot& slot : slots) {
    if (slot.stamp < oldest || slot.stamp > stamp || slot.total == 0) continue;
    total += slot.total;
    slow += slot.slow;
    errors += slot.errors;
  }
}

SloTracker::SloTracker(SloOptions options) : options_(std::move(options)) {
  if (options_.fast_window_s == 0 || options_.slow_window_s == 0)
    throw std::invalid_argument("SloTracker: windows must be positive");
  if (options_.latency_objective < 0.0 || options_.latency_objective >= 1.0 ||
      options_.availability_objective < 0.0 ||
      options_.availability_objective >= 1.0)
    throw std::invalid_argument(
        "SloTracker: objectives must lie in [0, 1) — an objective of 1.0 "
        "leaves no error budget to burn against");
  if (!options_.clock) options_.clock = steady_seconds;
  // Slot width rounds the window up to a multiple of kSlots; the effective
  // window is width * kSlots, which equals the requested window whenever it
  // is a multiple of kSlots (both defaults are).
  fast_.width_s = (options_.fast_window_s + kSlots - 1) / kSlots;
  slow_.width_s = (options_.slow_window_s + kSlots - 1) / kSlots;

  if (options_.metrics != nullptr) {
    MetricsRegistry& m = *options_.metrics;
    requests_ = &m.counter("vmpower_slo_requests_total",
                           "Queries observed by the SLO tracker.");
    latency_breaches_ =
        &m.counter("vmpower_slo_latency_breaches_total",
                   "Queries at or over the SLO latency threshold.");
    errors_ = &m.counter("vmpower_slo_errors_total",
                         "Errored queries observed by the SLO tracker.");
    static constexpr const char* kObjectives[2] = {"latency", "availability"};
    static constexpr const char* kWindows[2] = {"fast", "slow"};
    std::size_t slot = 0;
    for (const char* objective : kObjectives) {
      for (const char* window : kWindows) {
        gauges_[slot++] = &m.gauge(
            labeled("vmpower_slo_compliance",
                    {{"objective", objective}, {"window", window}}),
            "Good fraction over the rolling window (1.0 when empty).");
        gauges_[slot++] = &m.gauge(
            labeled("vmpower_slo_burn_rate",
                    {{"objective", objective}, {"window", window}}),
            "Bad fraction over the error budget; 1.0 burns the budget "
            "exactly as provisioned.");
      }
    }
  }
}

void SloTracker::record(double latency_s, bool error) {
  const bool slow = latency_s >= options_.latency_threshold_s;
  {
    std::lock_guard lock(mutex_);
    const std::uint64_t now_s = options_.clock();
    fast_.record(now_s, slow, error);
    slow_.record(now_s, slow, error);
    ++recorded_;
  }
  if (requests_ != nullptr) requests_->inc();
  if (slow && latency_breaches_ != nullptr) latency_breaches_->inc();
  if (error && errors_ != nullptr) errors_->inc();
}

SloTracker::WindowHealth SloTracker::cell(std::uint64_t total,
                                          std::uint64_t bad,
                                          double objective) {
  WindowHealth health;
  health.total = total;
  health.bad = bad;
  if (total == 0) return health;  // empty window: compliant, zero burn.
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  health.compliance = 1.0 - bad_fraction;
  const double budget = 1.0 - objective;
  health.burn_rate = budget > 0.0 ? bad_fraction / budget : 0.0;
  return health;
}

SloTracker::Health SloTracker::health_locked() const {
  const std::uint64_t now_s = options_.clock();
  Health health;
  health.recorded = recorded_;
  std::uint64_t total = 0, slow_count = 0, errors = 0;
  fast_.sum(now_s, total, slow_count, errors);
  health.latency_fast = cell(total, slow_count, options_.latency_objective);
  health.availability_fast =
      cell(total, errors, options_.availability_objective);
  slow_.sum(now_s, total, slow_count, errors);
  health.latency_slow = cell(total, slow_count, options_.latency_objective);
  health.availability_slow =
      cell(total, errors, options_.availability_objective);
  return health;
}

SloTracker::Health SloTracker::health() const {
  std::lock_guard lock(mutex_);
  return health_locked();
}

void SloTracker::publish() {
  Health health;
  {
    std::lock_guard lock(mutex_);
    health = health_locked();
  }
  if (gauges_[0] == nullptr) return;
  const WindowHealth* cells[4] = {&health.latency_fast, &health.latency_slow,
                                  &health.availability_fast,
                                  &health.availability_slow};
  for (std::size_t i = 0; i < 4; ++i) {
    gauges_[2 * i]->set(cells[i]->compliance);
    gauges_[2 * i + 1]->set(cells[i]->burn_rate);
  }
}

std::string SloTracker::to_text() const {
  const Health health = this->health();
  const struct {
    const char* objective;
    const char* window;
    double target;
    const WindowHealth* cell;
  } rows[4] = {
      {"latency", "fast", options_.latency_objective, &health.latency_fast},
      {"latency", "slow", options_.latency_objective, &health.latency_slow},
      {"availability", "fast", options_.availability_objective,
       &health.availability_fast},
      {"availability", "slow", options_.availability_objective,
       &health.availability_slow},
  };
  std::string out;
  char line[192];
  for (const auto& row : rows) {
    std::snprintf(line, sizeof line,
                  "slo %s window=%s objective=%.4f total=%llu bad=%llu "
                  "compliance=%.6f burn=%.6f\n",
                  row.objective, row.window, row.target,
                  static_cast<unsigned long long>(row.cell->total),
                  static_cast<unsigned long long>(row.cell->bad),
                  row.cell->compliance, row.cell->burn_rate);
    out += line;
  }
  return out;
}

}  // namespace vmp::obs
