// End-to-end tracing: RAII spans over the metering and serve pipelines.
//
// A Span measures one named phase (collect, worth lookup, Shapley kernel,
// aggregate, snapshot publish, parse, admission, ...) and records a
// completed event into the process-wide Tracer's bounded in-memory ring.
// Spans carry explicit ids: a *trace id* groups every span of one logical
// unit of work (a fleet tick, or one query — stamped from the client's
// request id when the wire framing carries one), a *span id* names the span
// itself, and a *parent id* links nested spans, maintained through a
// thread-local context so instrumentation sites never thread ids by hand.
// TraceContext carries the trace id across explicit boundaries (the engine
// sets it inside each worker-pool task, the dispatcher per request).
//
// The ring exports Chrome trace-event JSONL — one complete-event ("ph":"X")
// object per line, loadable by chrome://tracing and Perfetto — via
// `vmpower trace`, the serve text-protocol TRACE command, or
// Tracer::write_chrome_jsonl.
//
// Cost model: tracing is OFF at runtime by default; a disarmed span is one
// relaxed atomic load. Configuring with -DVMPOWER_TRACING=OFF compiles the
// macros down to nothing, for the zero-cost proof in EXPERIMENTS.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#ifndef VMPOWER_TRACING_COMPILED
#define VMPOWER_TRACING_COMPILED 1
#endif

namespace vmp::obs {

/// One completed span. `name` and `category` must be string literals (the
/// instrumentation sites all use them; events never outlive the binary).
struct SpanEvent {
  const char* name = "";
  const char* category = "";
  std::uint64_t trace_id = 0;   ///< logical unit of work (tick / request id).
  std::uint64_t span_id = 0;    ///< unique per recorded span.
  std::uint64_t parent_id = 0;  ///< enclosing span on the same thread, or 0.
  std::uint32_t thread = 0;     ///< small per-thread ordinal, stable per run.
  std::uint64_t start_us = 0;   ///< microseconds since tracer construction.
  std::uint64_t duration_us = 0;
};

/// Thread-safe bounded ring of completed spans. When full, the oldest event
/// is overwritten and counted in dropped() — tracing never grows unbounded
/// and never blocks the pipeline on an exporter.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 32768);

  /// The process-wide tracer every span records into.
  [[nodiscard]] static Tracer& global();

  /// Runtime arm/disarm; a disarmed tracer makes spans free apart from one
  /// relaxed load. Also reachable via the VMPOWER_TRACING environment
  /// variable ("1"/"ON" arms the global tracer at first use).
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(const SpanEvent& event);
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Small stable ordinal for the calling thread (Chrome's tid field).
  [[nodiscard]] std::uint32_t thread_ordinal();

  /// Copy of the ring, oldest first.
  [[nodiscard]] std::vector<SpanEvent> snapshot() const;
  void clear();
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Microseconds since tracer construction (the event clock).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Chrome trace-event JSONL: one {"ph":"X",...} object per line.
  [[nodiscard]] std::string to_chrome_jsonl() const;
  /// Writes to_chrome_jsonl() to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_chrome_jsonl(const std::filesystem::path& path) const;

 private:
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_span_id_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint32_t> next_thread_{0};
  std::uint64_t epoch_ns_;  ///< steady_clock at construction.
  mutable std::mutex mutex_;
  std::vector<SpanEvent> ring_;  ///< circular; head_ is the oldest slot.
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Formats one event as a Chrome trace-event JSON object (no newline).
[[nodiscard]] std::string to_chrome_json(const SpanEvent& event);

namespace detail {
/// Thread-local ambient ids spans inherit; exposed for the Span/TraceContext
/// implementations only.
struct ThreadTraceState {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};
[[nodiscard]] ThreadTraceState& thread_trace_state() noexcept;
}  // namespace detail

/// Scoped trace id: every span opened on this thread inside the scope
/// belongs to `trace_id` (unless it overrides explicitly). Nest-safe.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t trace_id) noexcept
      : saved_(detail::thread_trace_state()) {
    detail::thread_trace_state().trace_id = trace_id;
    detail::thread_trace_state().parent_span = 0;
  }
  ~TraceContext() { detail::thread_trace_state() = saved_; }

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  [[nodiscard]] static std::uint64_t current_trace() noexcept {
    return detail::thread_trace_state().trace_id;
  }

 private:
  detail::ThreadTraceState saved_;
};

/// RAII span: armed only when the global tracer is enabled; records one
/// SpanEvent on destruction. Name/category must be string literals.
class Span {
 public:
  Span(const char* name, const char* category) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool armed_ = false;
  std::uint64_t span_id_ = 0;
  std::uint64_t saved_parent_ = 0;
  std::uint64_t start_us_ = 0;
};

}  // namespace vmp::obs

// Span macros: compiled out entirely under -DVMPOWER_TRACING=OFF so the
// tracing-off build carries zero instrumentation cost.
#if VMPOWER_TRACING_COMPILED
#define VMP_TRACE_CONCAT_INNER(a, b) a##b
#define VMP_TRACE_CONCAT(a, b) VMP_TRACE_CONCAT_INNER(a, b)
#define VMP_TRACE_SPAN(name, category) \
  ::vmp::obs::Span VMP_TRACE_CONCAT(vmp_span_, __LINE__) { name, category }
#define VMP_TRACE_CONTEXT(trace_id) \
  ::vmp::obs::TraceContext VMP_TRACE_CONCAT(vmp_trace_ctx_, __LINE__) { \
    trace_id \
  }
#else
#define VMP_TRACE_SPAN(name, category) ((void)0)
// Evaluate the id expression so an argument that only feeds tracing does not
// become an unused-variable warning in the tracing-off build.
#define VMP_TRACE_CONTEXT(trace_id) ((void)(trace_id))
#endif
