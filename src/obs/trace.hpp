// End-to-end tracing: RAII spans over the metering, serve, and federation
// pipelines.
//
// A Span measures one named phase (collect, worth lookup, Shapley kernel,
// aggregate, snapshot publish, parse, admission, shard fan-out, ...) and
// records a completed event into the process-wide Tracer's bounded in-memory
// ring. Spans carry explicit ids: a *trace id* groups every span of one
// logical unit of work (a fleet tick, or one query — stamped from the
// client's request id when the wire framing carries one), a *span id* names
// the span itself, and a *parent id* links nested spans, maintained through
// a thread-local context so instrumentation sites never thread ids by hand.
// TraceContext carries the trace id across explicit boundaries (the engine
// sets it inside each worker-pool task, the dispatcher per request); the
// two-argument form additionally seeds the *parent span*, which is how a
// remote parent — a federation frontend's per-shard attempt span, carried
// over the wire as serve::TraceContextWire — adopts the spans a shard server
// opens on its behalf. current_span() exposes the innermost open span id so
// a caller can hand it to a downstream process as that parent.
//
// Clock model: span timestamps are *steady-clock* offsets from the tracer's
// construction, so a wall-clock adjustment (NTP step, manual set) can never
// reorder or negate exported durations. Export adds a fixed *wall-clock
// anchor* sampled once at construction (overridable via set_anchor), which
// places every process's spans on the shared wall-clock axis: two processes
// tracing one federated query emit directly overlayable timestamps, and the
// child spans of a fan-out share the parent's anchor axis by construction.
//
// The ring exports Chrome trace-event JSONL — one complete-event ("ph":"X")
// object per line, loadable by chrome://tracing and Perfetto — via
// `vmpower trace`, the serve text-protocol TRACE command, or
// Tracer::write_chrome_jsonl.
//
// Cost model: tracing is OFF at runtime by default; a disarmed span is one
// relaxed atomic load. Configuring with -DVMPOWER_TRACING=OFF compiles the
// macros down to nothing, for the zero-cost proof in EXPERIMENTS.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#ifndef VMPOWER_TRACING_COMPILED
#define VMPOWER_TRACING_COMPILED 1
#endif

namespace vmp::obs {

/// One completed span. `name` and `category` must be string literals (the
/// instrumentation sites all use them; events never outlive the binary).
struct SpanEvent {
  const char* name = "";
  const char* category = "";
  std::uint64_t trace_id = 0;   ///< logical unit of work (tick / request id).
  std::uint64_t span_id = 0;    ///< unique per recorded span.
  std::uint64_t parent_id = 0;  ///< enclosing span (same thread or remote).
  std::uint32_t thread = 0;     ///< small per-thread ordinal, stable per run.
  std::uint64_t start_us = 0;   ///< steady microseconds since construction.
  std::uint64_t duration_us = 0;
  /// Optional single numeric annotation ("fleet"=3, "attempt"=1, ...);
  /// `detail_key` must be a string literal, null when unused.
  const char* detail_key = nullptr;
  std::uint64_t detail = 0;
};

/// Thread-safe bounded ring of completed spans. When full, the oldest event
/// is overwritten and counted in dropped() — tracing never grows unbounded
/// and never blocks the pipeline on an exporter.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 32768);

  /// The process-wide tracer every span records into.
  [[nodiscard]] static Tracer& global();

  /// Runtime arm/disarm; a disarmed tracer makes spans free apart from one
  /// relaxed load. Also reachable via the VMPOWER_TRACING environment
  /// variable ("1"/"ON" arms the global tracer at first use).
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(const SpanEvent& event);
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Small stable ordinal for the calling thread (Chrome's tid field).
  [[nodiscard]] std::uint32_t thread_ordinal();

  /// Copy of the ring, oldest first.
  [[nodiscard]] std::vector<SpanEvent> snapshot() const;
  void clear();
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Steady microseconds since tracer construction (the event clock). Immune
  /// to wall-clock adjustment, so recorded spans are always monotone.
  [[nodiscard]] std::uint64_t now_us() const;

  /// Wall-clock microseconds (Unix epoch) corresponding to event time 0.
  /// Sampled once at construction; exported timestamps are
  /// anchor_us() + start_us, which keeps them monotone (the anchor never
  /// moves) while placing them on the shared cross-process wall axis.
  [[nodiscard]] std::uint64_t anchor_us() const noexcept {
    return anchor_us_.load(std::memory_order_relaxed);
  }
  /// Rebases the export anchor (tests pin it; a federation driver may copy
  /// the parent process's anchor so stitched trees share one axis exactly).
  void set_anchor(std::uint64_t wall_us) noexcept {
    anchor_us_.store(wall_us, std::memory_order_relaxed);
  }

  /// Chrome trace-event JSONL: one {"ph":"X",...} object per line, with
  /// ts = anchor_us() + start_us.
  [[nodiscard]] std::string to_chrome_jsonl() const;
  /// Writes to_chrome_jsonl() to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_chrome_jsonl(const std::filesystem::path& path) const;

 private:
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_span_id_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint32_t> next_thread_{0};
  std::uint64_t epoch_ns_;  ///< steady_clock at construction.
  std::atomic<std::uint64_t> anchor_us_{0};  ///< wall clock at construction.
  mutable std::mutex mutex_;
  std::vector<SpanEvent> ring_;  ///< circular; head_ is the oldest slot.
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Formats one event as a Chrome trace-event JSON object (no newline);
/// `anchor_us` shifts the exported ts onto the wall-clock axis.
[[nodiscard]] std::string to_chrome_json(const SpanEvent& event,
                                         std::uint64_t anchor_us = 0);

namespace detail {
/// Thread-local ambient ids spans inherit; exposed for the Span/TraceContext
/// implementations only.
struct ThreadTraceState {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};
[[nodiscard]] ThreadTraceState& thread_trace_state() noexcept;
}  // namespace detail

/// Scoped trace id: every span opened on this thread inside the scope
/// belongs to `trace_id` (unless it overrides explicitly). The optional
/// `parent_span` seeds the ambient parent, so the scope's first spans become
/// children of a span owned elsewhere — another thread, or another process
/// that shipped its span id over the wire. Nest-safe.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t trace_id,
                        std::uint64_t parent_span = 0) noexcept
      : saved_(detail::thread_trace_state()) {
    detail::thread_trace_state().trace_id = trace_id;
    detail::thread_trace_state().parent_span = parent_span;
  }
  ~TraceContext() { detail::thread_trace_state() = saved_; }

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  [[nodiscard]] static std::uint64_t current_trace() noexcept {
    return detail::thread_trace_state().trace_id;
  }

 private:
  detail::ThreadTraceState saved_;
};

/// The innermost open span on this thread (0 outside any span). This is the
/// id to hand a downstream process as its remote parent.
[[nodiscard]] inline std::uint64_t current_span() noexcept {
  return detail::thread_trace_state().parent_span;
}

/// RAII span: armed only when the global tracer is enabled; records one
/// SpanEvent on destruction. Name/category must be string literals.
class Span {
 public:
  Span(const char* name, const char* category) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches one numeric annotation exported in the Chrome args object
  /// ("fleet": 3). `key` must be a string literal; no-op when disarmed.
  void note(const char* key, std::uint64_t value) noexcept {
    if (!armed_) return;
    detail_key_ = key;
    detail_ = value;
  }

 private:
  const char* name_;
  const char* category_;
  bool armed_ = false;
  std::uint64_t span_id_ = 0;
  std::uint64_t saved_parent_ = 0;
  std::uint64_t start_us_ = 0;
  const char* detail_key_ = nullptr;
  std::uint64_t detail_ = 0;
};

/// No-op stand-in for Span, declared by the compiled-out expansion of
/// VMP_TRACE_NAMED_SPAN so call sites can keep their .note() calls.
struct NullSpan {
  void note(const char*, std::uint64_t) noexcept {}
};

}  // namespace vmp::obs

// Span macros: compiled out entirely under -DVMPOWER_TRACING=OFF so the
// tracing-off build carries zero instrumentation cost.
#if VMPOWER_TRACING_COMPILED
#define VMP_TRACE_CONCAT_INNER(a, b) a##b
#define VMP_TRACE_CONCAT(a, b) VMP_TRACE_CONCAT_INNER(a, b)
#define VMP_TRACE_SPAN(name, category) \
  ::vmp::obs::Span VMP_TRACE_CONCAT(vmp_span_, __LINE__) { name, category }
// Named span for sites that annotate (span.note("fleet", 3)).
#define VMP_TRACE_NAMED_SPAN(var, name, category) \
  ::vmp::obs::Span var { name, category }
#define VMP_TRACE_CONTEXT(trace_id) \
  ::vmp::obs::TraceContext VMP_TRACE_CONCAT(vmp_trace_ctx_, __LINE__) { \
    trace_id \
  }
#define VMP_TRACE_CONTEXT_PARENTED(trace_id, parent_span) \
  ::vmp::obs::TraceContext VMP_TRACE_CONCAT(vmp_trace_ctx_, __LINE__) { \
    trace_id, parent_span \
  }
#else
#define VMP_TRACE_SPAN(name, category) ((void)0)
#define VMP_TRACE_NAMED_SPAN(var, name, category) ::vmp::obs::NullSpan var {}
// Evaluate the id expressions so arguments that only feed tracing do not
// become unused-variable warnings in the tracing-off build.
#define VMP_TRACE_CONTEXT(trace_id) ((void)(trace_id))
#define VMP_TRACE_CONTEXT_PARENTED(trace_id, parent_span) \
  ((void)(trace_id), (void)(parent_span))
#endif
