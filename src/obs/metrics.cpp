#include "obs/metrics.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace vmp::obs {

namespace {

/// Family name = metric name with any label set stripped.
std::string family_of(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Inner label body of a metric name ("a=\"b\",c=\"d\"") or "" when plain.
std::string labels_of(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return "";
  auto body = name.substr(brace + 1);
  if (!body.empty() && body.back() == '}') body.pop_back();
  return body;
}

/// "fam_sum{labels}" / "fam_sum" — suffixed series name that keeps the label
/// set attached to the family, as Prometheus requires for histograms.
std::string suffixed(const std::string& family, const std::string& labels,
                     const char* suffix) {
  std::string out = family + suffix;
  if (!labels.empty()) out += "{" + labels + "}";
  return out;
}

void write_double(std::ostream& out, double value) {
  std::ostringstream text;
  text.precision(12);
  text << value;
  out << text.str();
}

/// HELP text escaping per the exposition grammar: backslash and newline.
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string labeled(
    std::string_view family,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(family);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  out += '}';
  return out;
}

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : histogram_(lo, hi, bins) {}

void HistogramMetric::observe(double value) {
  std::lock_guard lock(mutex_);
  histogram_.add(value);
  sum_ += value;
}

std::uint64_t HistogramMetric::count() const {
  std::lock_guard lock(mutex_);
  return histogram_.count();
}

double HistogramMetric::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

util::Histogram HistogramMetric::snapshot() const {
  std::lock_guard lock(mutex_);
  return histogram_;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(const std::string& name,
                                                   const std::string& help,
                                                   Kind kind) {
  const auto [family_it, family_inserted] =
      family_kinds_.try_emplace(family_of(name), kind);
  if (!family_inserted && family_it->second != kind)
    throw std::invalid_argument(
        "MetricsRegistry: family '" + family_it->first +
        "' already registered as another kind");
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) it->second.help = help;
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& entry = entry_for(name, help, Kind::kCounter);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& entry = entry_for(name, help, Kind::kGauge);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            const std::string& help, double lo,
                                            double hi, std::size_t bins) {
  // Labelled histogram names are allowed; the exporter merges the reserved
  // 'le' label into the series' own label set. A literal le= in the name
  // would collide with that merge, so only that label is rejected.
  if (labels_of(name).find("le=") != std::string::npos)
    throw std::invalid_argument(
        "MetricsRegistry: histogram labels cannot include the reserved 'le' "
        "label: " +
        name);
  std::lock_guard lock(mutex_);
  Entry& entry = entry_for(name, help, Kind::kHistogram);
  if (!entry.histogram)
    entry.histogram = std::make_unique<HistogramMetric>(lo, hi, bins);
  return *entry.histogram;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard lock(mutex_);
  // Group series under their family first: entries_ is name-sorted, but an
  // unrelated name can sort between a family's plain and labeled series
  // ('_' < '{'), and HELP/TYPE must appear exactly once per family, before
  // its first sample.
  std::map<std::string, std::vector<std::pair<const std::string*,
                                              const Entry*>>>
      families;
  for (const auto& [name, entry] : entries_)
    families[family_of(name)].emplace_back(&name, &entry);

  std::ostringstream out;
  for (const auto& [family, series] : families) {
    const Entry& first = *series.front().second;
    const char* kind = first.counter     ? "counter"
                       : first.gauge     ? "gauge"
                       : first.histogram ? "histogram"
                                         : "untyped";
    out << "# HELP " << family << ' ' << escape_help(first.help) << '\n';
    out << "# TYPE " << family << ' ' << kind << '\n';
    for (const auto& [name_ptr, entry_ptr] : series) {
      const std::string& name = *name_ptr;
      const Entry& entry = *entry_ptr;
      if (entry.counter) {
        out << name << ' ' << entry.counter->value() << '\n';
      } else if (entry.gauge) {
        out << name << ' ';
        write_double(out, entry.gauge->value());
        out << '\n';
      } else if (entry.histogram) {
        // The _bucket/_sum/_count suffixes attach to the family name, and
        // the series' own labels merge ahead of the reserved 'le' bucket
        // label.
        const std::string labels = labels_of(name);
        const std::string le_prefix = labels.empty() ? "" : labels + ",";
        const util::Histogram histogram = entry.histogram->snapshot();
        std::size_t cumulative = 0;
        for (std::size_t i = 0; i < histogram.bin_count(); ++i) {
          cumulative += histogram.bin(i);
          out << family << "_bucket{" << le_prefix << "le=\"";
          write_double(out, histogram.bin_hi(i));
          out << "\"} " << cumulative << '\n';
        }
        out << family << "_bucket{" << le_prefix << "le=\"+Inf\"} "
            << histogram.count() << '\n';
        out << suffixed(family, labels, "_sum") << ' ';
        write_double(out, entry.histogram->sum());
        out << '\n';
        out << suffixed(family, labels, "_count") << ' ' << histogram.count()
            << '\n';
      }
    }
  }
  return out.str();
}

void MetricsRegistry::write_prometheus(
    const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("MetricsRegistry: cannot open for write: " +
                             path.string());
  out << to_prometheus();
  if (!out)
    throw std::runtime_error("MetricsRegistry: write failed: " +
                             path.string());
}

}  // namespace vmp::obs
