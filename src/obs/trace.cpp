#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace vmp::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t wall_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

bool env_requests_tracing() {
  const char* value = std::getenv("VMPOWER_TRACING");
  if (value == nullptr) return false;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "ON") == 0 ||
         std::strcmp(value, "on") == 0;
}

thread_local std::uint32_t t_thread_ordinal = 0;  // 0 = unassigned.

}  // namespace

namespace detail {

ThreadTraceState& thread_trace_state() noexcept {
  thread_local ThreadTraceState state;
  return state;
}

}  // namespace detail

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_ns_(steady_ns()) {
  // The anchor is the only place the wall clock is ever consulted; events
  // themselves are timed against the steady epoch captured just above, so a
  // later wall adjustment shifts nothing and reorders nothing.
  anchor_us_.store(wall_us(), std::memory_order_relaxed);
  ring_.reserve(capacity_);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  static const bool armed_from_env = [] {
    if (env_requests_tracing()) tracer.set_enabled(true);
    return true;
  }();
  (void)armed_from_env;
  return tracer;
}

std::uint64_t Tracer::now_us() const {
  return (steady_ns() - epoch_ns_) / 1000;
}

std::uint32_t Tracer::thread_ordinal() {
  if (t_thread_ordinal == 0)
    t_thread_ordinal = next_thread_.fetch_add(1, std::memory_order_relaxed) + 1;
  return t_thread_ordinal;
}

void Tracer::record(const SpanEvent& event) {
  if (!enabled()) return;  // a disarmed tracer records nothing, ever.
  std::lock_guard lock(mutex_);
  if (count_ < capacity_) {
    if (ring_.size() < capacity_) ring_.push_back(event);
    else ring_[(head_ + count_) % capacity_] = event;
    ++count_;
  } else {
    ring_[head_] = event;  // overwrite the oldest.
    head_ = (head_ + 1) % capacity_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SpanEvent> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanEvent> events;
  events.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i)
    events.push_back(ring_[(head_ + i) % capacity_]);
  return events;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  head_ = 0;
  count_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return count_;
}

std::string to_chrome_json(const SpanEvent& event, std::uint64_t anchor_us) {
  // Names/categories/detail keys are instrumentation literals (no quotes or
  // control characters), so no JSON string escaping is needed here.
  char buffer[320];
  int written = std::snprintf(
      buffer, sizeof buffer,
      "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%llu,"
      "\"dur\":%llu,\"pid\":1,\"tid\":%u,\"args\":{\"trace\":%llu,"
      "\"span\":%llu,\"parent\":%llu",
      event.name, event.category,
      static_cast<unsigned long long>(anchor_us + event.start_us),
      static_cast<unsigned long long>(event.duration_us), event.thread,
      static_cast<unsigned long long>(event.trace_id),
      static_cast<unsigned long long>(event.span_id),
      static_cast<unsigned long long>(event.parent_id));
  if (written < 0) return "{}";
  std::size_t used = static_cast<std::size_t>(written);
  if (event.detail_key != nullptr && used < sizeof buffer) {
    written = std::snprintf(buffer + used, sizeof buffer - used,
                            ",\"%s\":%llu", event.detail_key,
                            static_cast<unsigned long long>(event.detail));
    if (written > 0) used += static_cast<std::size_t>(written);
  }
  if (used < sizeof buffer)
    std::snprintf(buffer + used, sizeof buffer - used, "}}");
  return buffer;
}

std::string Tracer::to_chrome_jsonl() const {
  const std::uint64_t anchor = anchor_us();
  std::string out;
  for (const SpanEvent& event : snapshot()) {
    out += to_chrome_json(event, anchor);
    out += '\n';
  }
  return out;
}

void Tracer::write_chrome_jsonl(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("Tracer: cannot open for write: " + path.string());
  out << to_chrome_jsonl();
  if (!out) throw std::runtime_error("Tracer: write failed: " + path.string());
}

Span::Span(const char* name, const char* category) noexcept
    : name_(name), category_(category) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  armed_ = true;
  span_id_ = tracer.next_span_id();
  auto& state = detail::thread_trace_state();
  saved_parent_ = state.parent_span;
  state.parent_span = span_id_;
  start_us_ = tracer.now_us();
}

Span::~Span() {
  if (!armed_) return;
  Tracer& tracer = Tracer::global();
  auto& state = detail::thread_trace_state();
  state.parent_span = saved_parent_;
  SpanEvent event;
  event.name = name_;
  event.category = category_;
  event.trace_id = state.trace_id;
  event.span_id = span_id_;
  event.parent_id = saved_parent_;
  event.thread = tracer.thread_ordinal();
  event.start_us = start_us_;
  const std::uint64_t end_us = tracer.now_us();
  event.duration_us = end_us > start_us_ ? end_us - start_us_ : 0;
  event.detail_key = detail_key_;
  event.detail = detail_;
  tracer.record(event);
}

}  // namespace vmp::obs
