// Runtime invariant monitors: the paper's accountability claims, watched
// continuously in the serving stack instead of proven once offline.
//
// The headline properties — Efficiency (Σφᵢ equals measured adjusted power,
// Fig. 11) and approximation accuracy tracked through the VHC table hit
// rate (Fig. 10) — degrade silently in production: a fault-injected meter
// bills from carried estimates, a cold table forces every worth query
// through the regression, a saturated queue sheds samples. Each monitor
// turns one such property into a gauge/counter with a configurable warn
// threshold; a breach emits a structured key=value log event stamped with
// the tick epoch so dashboards and logs correlate on the same axis, and is
// counted in vmpower_invariant_breaches_total{invariant="..."}.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace vmp::obs {

struct InvariantOptions {
  /// Warn when the per-tick fleet efficiency residual Σ_h |Σφ − measured|
  /// exceeds this many watts. Fault-free ticks sit at floating-point noise
  /// (~1e-13 W); any real breach means power was billed that no meter saw.
  double efficiency_residual_warn_w = 1e-3;
  /// Warn when a host's cumulative VHC table hit rate drops below this
  /// fraction; negative disables (hit rate 0 is legitimate without a table).
  double table_hit_rate_warn = -1.0;
  /// Warn when a bounded queue's high watermark reaches this fraction of
  /// its capacity.
  double queue_occupancy_warn = 0.9;
  /// Minimum epochs between two warn logs of the same invariant, so a
  /// persistent breach cannot flood the sink (the breach counter still
  /// counts every occurrence).
  std::uint64_t warn_log_interval = 16;
};

/// Feeds invariant samples into a MetricsRegistry and emits structured warn
/// events on threshold breaches. Observations for one invariant must come
/// from one thread (the engine tick / publish path does); the exported
/// instruments are as thread-safe as the registry.
class InvariantMonitor {
 public:
  explicit InvariantMonitor(MetricsRegistry& registry,
                            InvariantOptions options = {});

  /// Per-tick fleet efficiency residual (W), stamped with the tick epoch.
  void observe_efficiency(std::uint64_t epoch, double residual_w);

  /// One host's cumulative table hit rate after a tick.
  void observe_table_hit_rate(std::uint64_t epoch, std::uint32_t host,
                              double rate);

  /// A bounded queue's state: `queue` labels the series ("fleet_samples",
  /// "serve_requests"), watermark is the deepest occupancy seen, shed the
  /// cumulative drop count. `lossy` marks a queue whose overflow drops work
  /// (drop-oldest / shedding); only those warn on deep occupancy — a full
  /// blocking queue is flow control, not impending loss.
  void observe_queue(const char* queue, std::uint64_t epoch,
                     std::uint64_t watermark, std::uint64_t capacity,
                     std::uint64_t shed_total, bool lossy = true);

  /// Snapshot-ring state from the store's publish path.
  void observe_ring(std::uint64_t epoch, std::uint64_t occupancy,
                    std::uint64_t retention, std::uint64_t evictions_total);

  /// Serve-layer exactly-once response accounting (Server::admitted() /
  /// answered() / outstanding()): every request read off a connection —
  /// sheds, ordered holds and out-of-order completions alike — must produce
  /// exactly one response. Any response surplus, or a deficit while nothing
  /// is in flight, means a request id was answered twice or dropped. A
  /// deficit *with* outstanding work is normal pipelining and only exported,
  /// never warned.
  void observe_serve_accounting(std::uint64_t epoch, std::uint64_t admitted,
                                std::uint64_t answered,
                                std::uint64_t outstanding);

  /// Durable-ledger tail freshness, sampled on the publish path right after
  /// the snapshot's record is appended. The ledger append happens on the
  /// same thread as the publish, so any lag (snapshot_epoch != tail_epoch)
  /// means an append was skipped or failed — durable history has a hole.
  void observe_ledger(std::uint64_t snapshot_epoch,
                      std::uint64_t ledger_tail_epoch);

  /// Checkpoint-restore cross-check: the energies replayed from the ledger
  /// record at the checkpointed epoch must equal the restored accountant's
  /// totals bit-for-bit (both came from the same deterministic history). A
  /// mismatch means the ledger and the checkpoint diverged.
  void observe_ledger_replay(std::uint64_t epoch, double replayed_total_j,
                             double accountant_total_j);

  /// Federation Additivity cross-check: on a fault-free fan-out (every shard
  /// answered) the federated total must equal the sum of the shard answers
  /// exactly — the roll-up is pure IEEE summation of the shard doubles, so
  /// any residual at all means a shard was double-counted or dropped. Only
  /// call with `complete` fan-outs; partial results legitimately under-count
  /// and are tracked by the frontend's own vmpower_fed_partial_total.
  void observe_federation(std::uint64_t epoch, double federated_total,
                          double shard_sum_total, std::uint64_t shards);

  /// Sampled Shapley tier self-consistency: the pre-normalization
  /// efficiency gap |Σφ̂_raw − measured| of a sampled tick must sit inside
  /// the tick's own reported confidence bound (the sum of per-VM CI
  /// half-widths) — a gap outside the CI means the estimator's error bars
  /// are lying. Exports the gap and bound as per-host gauges and the max
  /// half-width fleet-wide; breaches as "sampled_ci". Ticks with zero
  /// evaluations (nothing sampled) are exported but never warned.
  void observe_sampled_ci(std::uint64_t epoch, std::uint32_t host,
                          double gap_w, double ci_bound_w,
                          double max_halfwidth_w, std::uint64_t evaluations);

  /// Total threshold breaches across all invariants (the sum of the
  /// vmpower_invariant_breaches_total series).
  [[nodiscard]] std::uint64_t breaches() const noexcept;

 private:
  enum Which : std::size_t {
    kEfficiency = 0,
    kTableHitRate,
    kQueue,
    kRing,
    kServeAccounting,
    kLedgerTail,
    kLedgerReplay,
    kFederation,
    kSampledCi,
    kWhichCount,
  };

  /// Counts the breach and, rate-limited per invariant, logs one structured
  /// event: "invariant=<name> epoch=<e> <detail>".
  void breach(Which which, const char* invariant, std::uint64_t epoch,
              const std::string& detail);

  MetricsRegistry& registry_;
  InvariantOptions options_;

  struct Throttle {
    bool warned = false;
    std::uint64_t last_epoch = 0;
  };
  Throttle throttle_[kWhichCount];
  std::map<std::string, std::uint64_t> shed_seen_;  ///< per-queue baseline.
};

}  // namespace vmp::obs
