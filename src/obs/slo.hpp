// Rolling-window SLO tracking for the serve/federation tiers.
//
// An SLO here is an objective over a rolling window: "99% of queries finish
// under 50 ms over the last hour", "99.9% of queries succeed". SloTracker
// accepts one record(latency, error) call per finished query and maintains
// two windows per objective — a *fast* window that reacts to incidents in
// minutes and a *slow* window that reflects sustained compliance — using
// slotted rings (fixed slot count, constant memory, O(1) record) rather
// than storing per-query samples.
//
// The exported signal is the *burn rate*: the ratio of the observed
// bad-event fraction to the error budget (1 - objective). Burn 1.0 means
// the budget is being consumed exactly as provisioned; burn 10 on the fast
// window plus burn >1 on the slow window is the classic page condition.
// Gauges land in the shared MetricsRegistry as
//   vmpower_slo_compliance{objective=...,window=...}
//   vmpower_slo_burn_rate{objective=...,window=...}
// and the same numbers render as text for the HEALTH scrape command.
//
// The clock is injectable (seconds granularity) so tests can step time
// deterministically across slot and window boundaries.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"

namespace vmp::obs {

struct SloOptions {
  /// A query at or above this latency breaches the latency objective.
  double latency_threshold_s = 0.050;
  /// Target fraction of queries under the threshold (error budget 1%).
  double latency_objective = 0.99;
  /// Target fraction of queries that do not fail (error budget 0.1%).
  double availability_objective = 0.999;
  /// Rolling windows, seconds. Fast reacts to incidents, slow reflects
  /// sustained health; both must be positive.
  std::uint64_t fast_window_s = 300;
  std::uint64_t slow_window_s = 3600;
  /// Seconds-granularity clock; defaults to the steady clock. Injectable
  /// for deterministic tests.
  std::function<std::uint64_t()> clock;
  /// Optional registry for the vmpower_slo_* gauges/counters.
  MetricsRegistry* metrics = nullptr;
};

class SloTracker {
 public:
  explicit SloTracker(SloOptions options);

  /// One finished query. An errored query burns the availability budget;
  /// its latency still counts against the latency objective (a timeout is
  /// both slow and failed, and hiding it from the latency SLO would flatter
  /// the tail exactly when it matters).
  void record(double latency_s, bool error);

  /// Point-in-time view of one (objective, window) cell.
  struct WindowHealth {
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
    double compliance = 1.0;  ///< good / total; 1.0 when the window is empty.
    double burn_rate = 0.0;   ///< bad fraction / (1 - objective).
  };
  struct Health {
    WindowHealth latency_fast, latency_slow;
    WindowHealth availability_fast, availability_slow;
    std::uint64_t recorded = 0;  ///< lifetime record() calls.
  };
  [[nodiscard]] Health health() const;

  /// Recomputes health and pushes it into the registry gauges (no-op
  /// without a registry). Called on scrape, not per query.
  void publish();

  /// Plain-text rendering for the HEALTH command, one cell per line:
  ///   slo latency window=fast objective=0.990 total=812 bad=3
  ///       compliance=0.996305 burn=0.369458
  [[nodiscard]] std::string to_text() const;

  [[nodiscard]] const SloOptions& options() const noexcept { return options_; }

 private:
  static constexpr std::size_t kSlots = 60;

  /// Slotted ring: slot i covers seconds [stamp*width, (stamp+1)*width).
  /// A slot whose stamp is stale is zeroed on first touch, so memory stays
  /// constant no matter how long the tracker lives.
  struct Ring {
    std::uint64_t width_s = 1;
    struct Slot {
      std::uint64_t stamp = 0;  ///< now_s / width_s when last written.
      std::uint64_t total = 0;
      std::uint64_t slow = 0;
      std::uint64_t errors = 0;
    };
    Slot slots[kSlots];

    void record(std::uint64_t now_s, bool slow, bool error);
    /// Sums slots still inside the window ending now.
    void sum(std::uint64_t now_s, std::uint64_t& total, std::uint64_t& slow,
             std::uint64_t& errors) const;
  };

  [[nodiscard]] static WindowHealth cell(std::uint64_t total,
                                         std::uint64_t bad, double objective);
  [[nodiscard]] Health health_locked() const;

  SloOptions options_;
  mutable std::mutex mutex_;
  Ring fast_;
  Ring slow_;
  std::uint64_t recorded_ = 0;

  Counter* requests_ = nullptr;
  Counter* latency_breaches_ = nullptr;
  Counter* errors_ = nullptr;
  Gauge* gauges_[8] = {};  ///< compliance+burn × objective × window.
};

}  // namespace vmp::obs
