#include "obs/invariants.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace vmp::obs {

namespace {

std::string format_watts(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6e", value);
  return buffer;
}

}  // namespace

InvariantMonitor::InvariantMonitor(MetricsRegistry& registry,
                                   InvariantOptions options)
    : registry_(registry), options_(options) {}

std::uint64_t InvariantMonitor::breaches() const noexcept {
  std::uint64_t total = 0;
  for (const char* invariant :
       {"efficiency", "table_hit_rate", "queue", "ring", "serve_exactly_once",
        "ledger_tail", "ledger_replay", "federation", "sampled_ci"})
    total += registry_
                 .counter(labeled("vmpower_invariant_breaches_total",
                                  {{"invariant", invariant}}),
                          "Invariant threshold breaches")
                 .value();
  return total;
}

void InvariantMonitor::breach(Which which, const char* invariant,
                              std::uint64_t epoch,
                              const std::string& detail) {
  registry_
      .counter(labeled("vmpower_invariant_breaches_total",
                       {{"invariant", invariant}}),
               "Invariant threshold breaches")
      .inc();
  Throttle& throttle = throttle_[which];
  if (throttle.warned &&
      epoch < throttle.last_epoch + options_.warn_log_interval)
    return;
  throttle.warned = true;
  throttle.last_epoch = epoch;
  VMP_LOG_WARN("invariant=%s epoch=%llu %s", invariant,
               static_cast<unsigned long long>(epoch), detail.c_str());
}

void InvariantMonitor::observe_efficiency(std::uint64_t epoch,
                                          double residual_w) {
  registry_
      .gauge("vmpower_invariant_efficiency_residual_w",
             "Per-tick fleet efficiency residual: sum over hosts of "
             "|sum(phi) - measured adjusted power|")
      .set(residual_w);
  registry_
      .gauge("vmpower_invariant_epoch",
             "Tick epoch of the latest invariant samples")
      .set(static_cast<double>(epoch));
  if (residual_w > options_.efficiency_residual_warn_w)
    breach(kEfficiency, "efficiency", epoch,
           "residual_w=" + format_watts(residual_w) +
               " threshold_w=" +
               format_watts(options_.efficiency_residual_warn_w));
}

void InvariantMonitor::observe_table_hit_rate(std::uint64_t epoch,
                                              std::uint32_t host,
                                              double rate) {
  registry_
      .gauge(labeled("vmpower_fleet_table_hit_rate",
                     {{"host", std::to_string(host)}}),
             "Fraction of the host estimator's worth queries answered from "
             "the offline v(S,C) table")
      .set(rate);
  if (options_.table_hit_rate_warn >= 0.0 &&
      rate < options_.table_hit_rate_warn)
    breach(kTableHitRate, "table_hit_rate", epoch,
           "host=" + std::to_string(host) + " rate=" + format_watts(rate) +
               " threshold=" + format_watts(options_.table_hit_rate_warn));
}

void InvariantMonitor::observe_queue(const char* queue, std::uint64_t epoch,
                                     std::uint64_t watermark,
                                     std::uint64_t capacity,
                                     std::uint64_t shed_total, bool lossy) {
  registry_
      .gauge(labeled("vmpower_queue_high_watermark", {{"queue", queue}}),
             "Deepest the bounded queue has ever run")
      .set(static_cast<double>(watermark));
  registry_
      .gauge(labeled("vmpower_queue_capacity", {{"queue", queue}}),
             "Configured capacity of the bounded queue")
      .set(static_cast<double>(capacity));
  const std::uint64_t newly_shed = shed_total - shed_seen_[queue];
  shed_seen_[queue] = shed_total;
  registry_
      .counter(labeled("vmpower_queue_shed_observed_total",
                       {{"queue", queue}}),
               "Samples/requests shed from the bounded queue, as seen by "
               "the invariant monitor")
      .inc(newly_shed);

  const bool deep =
      lossy && capacity > 0 &&
      static_cast<double>(watermark) >=
          options_.queue_occupancy_warn * static_cast<double>(capacity);
  if (newly_shed > 0 || deep)
    breach(kQueue, "queue", epoch,
           std::string("queue=") + queue +
               " watermark=" + std::to_string(watermark) +
               " capacity=" + std::to_string(capacity) +
               " newly_shed=" + std::to_string(newly_shed));
}

void InvariantMonitor::observe_serve_accounting(std::uint64_t epoch,
                                                std::uint64_t admitted,
                                                std::uint64_t answered,
                                                std::uint64_t outstanding) {
  registry_
      .gauge("vmpower_serve_outstanding",
             "Admitted requests not yet answered (queued or on a worker)")
      .set(static_cast<double>(outstanding));
  const std::string detail = "admitted=" + std::to_string(admitted) +
                             " answered=" + std::to_string(answered) +
                             " outstanding=" + std::to_string(outstanding);
  if (answered > admitted)
    breach(kServeAccounting, "serve_exactly_once", epoch,
           detail + " (a request was answered more than once)");
  else if (outstanding == 0 && answered < admitted)
    breach(kServeAccounting, "serve_exactly_once", epoch,
           detail + " (a request was admitted but never answered)");
}

void InvariantMonitor::observe_ledger(std::uint64_t snapshot_epoch,
                                      std::uint64_t ledger_tail_epoch) {
  const std::uint64_t lag = snapshot_epoch >= ledger_tail_epoch
                                ? snapshot_epoch - ledger_tail_epoch
                                : ledger_tail_epoch - snapshot_epoch;
  registry_
      .gauge("vmpower_ledger_tail_lag",
             "Absolute gap between the newest snapshot epoch and the "
             "durable ledger's tail epoch (0 when every publish landed)")
      .set(static_cast<double>(lag));
  if (lag != 0)
    breach(kLedgerTail, "ledger_tail", snapshot_epoch,
           "tail_epoch=" + std::to_string(ledger_tail_epoch) +
               " snapshot_epoch=" + std::to_string(snapshot_epoch) +
               " (a publish missed the durable ledger)");
}

void InvariantMonitor::observe_ledger_replay(std::uint64_t epoch,
                                             double replayed_total_j,
                                             double accountant_total_j) {
  // Bit-for-bit: the record stores the accountant's totals verbatim, so any
  // difference at all is divergence, not rounding.
  if (replayed_total_j != accountant_total_j)
    breach(kLedgerReplay, "ledger_replay", epoch,
           "replayed_total_j=" + format_watts(replayed_total_j) +
               " accountant_total_j=" + format_watts(accountant_total_j) +
               " (ledger history and checkpoint diverged)");
}

void InvariantMonitor::observe_federation(std::uint64_t epoch,
                                          double federated_total,
                                          double shard_sum_total,
                                          std::uint64_t shards) {
  const double residual = federated_total - shard_sum_total;
  registry_
      .gauge("vmpower_fed_additivity_residual",
             "Federated roll-up total minus the sum of the shard answers on "
             "the last complete fan-out (must be exactly zero)")
      .set(residual);
  registry_
      .gauge("vmpower_fed_rollup_shards",
             "Shards that contributed to the last complete fan-out")
      .set(static_cast<double>(shards));
  // Exact comparison on purpose: the roll-up *is* the sum of those doubles,
  // so even one ulp of residual is an accounting bug, not rounding.
  if (residual != 0.0)
    breach(kFederation, "federation", epoch,
           "federated_total=" + format_watts(federated_total) +
               " shard_sum_total=" + format_watts(shard_sum_total) +
               " shards=" + std::to_string(shards) +
               " (federated total diverged from the shard sum)");
}

void InvariantMonitor::observe_sampled_ci(std::uint64_t epoch,
                                          std::uint32_t host, double gap_w,
                                          double ci_bound_w,
                                          double max_halfwidth_w,
                                          std::uint64_t evaluations) {
  const std::string host_label = std::to_string(host);
  registry_
      .gauge(labeled("vmpower_shapley_sampled_gap_w", {{"host", host_label}}),
             "Pre-normalization efficiency gap of the host's last sampled "
             "tick: |sum(phi_raw) - measured adjusted power|")
      .set(gap_w);
  registry_
      .gauge(labeled("vmpower_shapley_sampled_ci_w", {{"host", host_label}}),
             "Confidence bound of the host's last sampled tick: sum of the "
             "per-VM CI half-widths")
      .set(ci_bound_w);
  registry_
      .gauge("vmpower_shapley_sampled_max_halfwidth_w",
             "Largest per-VM confidence half-width of the latest sampled "
             "tick, fleet-wide")
      .set(max_halfwidth_w);
  // evaluations == 0 means the tick never sampled (warm-up-only or exact);
  // its CI is degenerate, so a gap there is not an error-bar violation. The
  // 1e-9 W slack keeps warm-up-exact ticks (CI exactly 0, gap at summation
  // rounding noise ~1e-13 W) from breaching on floating point alone.
  if (evaluations > 0 && gap_w > ci_bound_w + 1e-9)
    breach(kSampledCi, "sampled_ci", epoch,
           "host=" + host_label + " gap_w=" + format_watts(gap_w) +
               " ci_bound_w=" + format_watts(ci_bound_w) +
               " evaluations=" + std::to_string(evaluations) +
               " (sampled efficiency gap escaped its confidence bound)");
}

void InvariantMonitor::observe_ring(std::uint64_t epoch,
                                    std::uint64_t occupancy,
                                    std::uint64_t retention,
                                    std::uint64_t evictions_total) {
  registry_
      .gauge("vmpower_serve_snapshot_ring_occupancy",
             "Snapshots currently retained for window queries")
      .set(static_cast<double>(occupancy));
  registry_
      .gauge("vmpower_serve_snapshot_ring_retention",
             "Configured snapshot retention ring capacity")
      .set(static_cast<double>(retention));
  // Evictions are by design once the ring fills; export the count, no warn.
  Counter& evictions = registry_.counter(
      "vmpower_serve_snapshot_evictions_total",
      "Snapshots evicted from the retention ring");
  if (evictions_total > evictions.value())
    evictions.inc(evictions_total - evictions.value());
  registry_
      .gauge("vmpower_serve_snapshot_epoch",
             "Epoch of the most recently published snapshot")
      .set(static_cast<double>(epoch));
}

}  // namespace vmp::obs
