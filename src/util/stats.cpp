#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace vmp::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum_sq = 0.0;
  for (double x : xs) sum_sq += (x - m) * (x - m);
  return sum_sq / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double relative_error(double estimate, double truth, double floor) noexcept {
  const double denom = std::max(std::abs(truth), std::abs(floor));
  return std::abs(estimate - truth) / denom;
}

double ecdf(std::span<const double> xs, double x) noexcept {
  if (xs.empty()) return 0.0;
  std::size_t below_or_equal = 0;
  for (double v : xs)
    if (v <= x) ++below_or_equal;
  return static_cast<double>(below_or_equal) / static_cast<double>(xs.size());
}

double fraction_below(std::span<const double> xs, double threshold) noexcept {
  if (xs.empty()) return 0.0;
  std::size_t below = 0;
  for (double v : xs)
    if (v < threshold) ++below;
  return static_cast<double>(below) / static_cast<double>(xs.size());
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

std::string Summary::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.4f std=%.4f min=%.4f p50=%.4f p90=%.4f "
                "p95=%.4f max=%.4f",
                count, mean, stddev, min, p50, p90, p95, max);
  return buf;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.p50 = percentile(xs, 50.0);
  s.p90 = percentile(xs, 90.0);
  s.p95 = percentile(xs, 95.0);
  return s;
}

}  // namespace vmp::util
