// Leveled logging for long-running simulations and the estimation daemon
// examples. Intentionally tiny: a global level, printf-style sinks to stderr,
// no allocation on the fast (filtered-out) path.
#pragma once

#include <functional>
#include <string_view>

namespace vmp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets / reads the process-wide log level (default kWarn so tests stay quiet).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// Receives each fully formatted log line (prefix included, no newline).
/// Lines are complete when delivered — emitters format into a private buffer
/// first, so a sink never sees interleaved fragments from other threads.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the stderr sink; an empty function restores the default. The
/// sink runs under the logging mutex — keep it fast and never log from it.
void set_log_sink(LogSink sink);

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
}  // namespace detail

}  // namespace vmp::util

#define VMP_LOG_DEBUG(...) ::vmp::util::detail::vlog(::vmp::util::LogLevel::kDebug, __VA_ARGS__)
#define VMP_LOG_INFO(...)  ::vmp::util::detail::vlog(::vmp::util::LogLevel::kInfo, __VA_ARGS__)
#define VMP_LOG_WARN(...)  ::vmp::util::detail::vlog(::vmp::util::LogLevel::kWarn, __VA_ARGS__)
#define VMP_LOG_ERROR(...) ::vmp::util::detail::vlog(::vmp::util::LogLevel::kError, __VA_ARGS__)
