#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>

namespace vmp::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// One mutex around sink dispatch: concurrent fleet hosts emit whole lines,
// never interleaved fragments. The filtered-out fast path stays lock-free.
std::mutex g_sink_mutex;
LogSink& sink_slot() {
  static LogSink sink;  // empty = default stderr sink.
  return sink;
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard lock(g_sink_mutex);
  sink_slot() = std::move(sink);
}

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void vlog(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;

  // Format the complete line into a private buffer before taking the sink
  // mutex, so the line is indivisible by construction whatever the sink does.
  std::string line = "[vmpower ";
  line += to_string(level);
  line += "] ";
  va_list args;
  va_start(args, fmt);
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  if (needed > 0) {
    const std::size_t prefix = line.size();
    line.resize(prefix + static_cast<std::size_t>(needed));
    std::vsnprintf(line.data() + prefix,
                   static_cast<std::size_t>(needed) + 1, fmt, args);
  }
  va_end(args);

  std::lock_guard lock(g_sink_mutex);
  if (sink_slot()) {
    sink_slot()(level, line);
  } else {
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace detail

}  // namespace vmp::util
