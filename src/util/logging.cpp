#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace vmp::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void vlog(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // One mutex around the sink writes: concurrent fleet hosts emit whole
  // lines, never interleaved fragments. The filtered-out fast path above
  // stays lock-free.
  static std::mutex sink_mutex;
  std::lock_guard lock(sink_mutex);
  std::fprintf(stderr, "[vmpower %s] ", to_string(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace detail

}  // namespace vmp::util
