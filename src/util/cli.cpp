#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmp::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

CliArgs::CliArgs(const std::vector<std::string>& tokens) { parse(tokens); }

void CliArgs::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (key.empty()) throw std::invalid_argument("CliArgs: bare '--'");
      const bool next_is_value =
          i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0;
      if (next_is_value) {
        options_[key] = tokens[++i];
      } else {
        options_[key] = "";  // flag
      }
    } else {
      positionals_.push_back(token);
    }
  }
}

std::string CliArgs::command() const {
  return positionals_.empty() ? std::string{} : positionals_.front();
}

bool CliArgs::has(const std::string& key) const noexcept {
  return options_.contains(key);
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = options_.find(key);
  return it != options_.end() ? it->second : fallback;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("CliArgs: --" + key +
                                " expects a number, got '" + it->second + "'");
  }
}

long CliArgs::get_long(const std::string& key, long fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const long value = std::stol(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("CliArgs: --" + key +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

std::string CliArgs::require(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty())
    throw std::invalid_argument("CliArgs: missing required option --" + key);
  return it->second;
}

std::vector<std::string> CliArgs::unknown_keys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [key, _] : options_)
    if (std::find(known.begin(), known.end(), key) == known.end())
      out.push_back(key);
  return out;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size() && !text.empty()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace vmp::util
