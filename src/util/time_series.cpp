#include "util/time_series.hpp"

#include <cmath>
#include <stdexcept>

namespace vmp::util {

TimeSeries::TimeSeries(double start_s, double period_s)
    : start_s_(start_s), period_s_(period_s) {
  if (!(period_s > 0.0))
    throw std::invalid_argument("TimeSeries: period must be positive");
}

void TimeSeries::push(double value) { values_.push_back(value); }

double TimeSeries::time_at(std::size_t i) const {
  if (i >= values_.size()) throw std::out_of_range("TimeSeries::time_at");
  return start_s_ + period_s_ * static_cast<double>(i);
}

double TimeSeries::value_at(std::size_t i) const {
  if (i >= values_.size()) throw std::out_of_range("TimeSeries::value_at");
  return values_[i];
}

double TimeSeries::sample_at(double t) const {
  if (values_.empty()) throw std::out_of_range("TimeSeries::sample_at: empty");
  if (t < start_s_)
    throw std::out_of_range("TimeSeries::sample_at: before first sample");
  auto idx = static_cast<std::size_t>(std::floor((t - start_s_) / period_s_));
  if (idx >= values_.size()) idx = values_.size() - 1;
  return values_[idx];
}

double TimeSeries::integrate() const noexcept {
  if (values_.size() < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 1; i < values_.size(); ++i)
    sum += 0.5 * (values_[i - 1] + values_[i]) * period_s_;
  return sum;
}

TimeSeries TimeSeries::operator-(const TimeSeries& other) const {
  if (period_s_ != other.period_s_)
    throw std::invalid_argument("TimeSeries subtract: period mismatch");
  TimeSeries out(start_s_, period_s_);
  const std::size_t n = std::min(values_.size(), other.values_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push(values_[i] - other.values_[i]);
  return out;
}

TimeSeries TimeSeries::shifted(double offset) const {
  TimeSeries out(start_s_, period_s_);
  out.reserve(values_.size());
  for (double v : values_) out.push(v + offset);
  return out;
}

}  // namespace vmp::util
