// Uniformly-sampled time series (the 1 Hz traces of the prototype).
//
// Both the power meter and the dstat-style VM telemetry produce fixed-rate
// samples; TimeSeries keeps the start time and period explicit so series from
// different sources can be aligned sample-by-sample the way the prototype's
// estimation loop pairs "VM states at second t" with "meter reading at t".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vmp::util {

/// Uniformly sampled scalar time series.
class TimeSeries {
 public:
  /// period_s must be > 0; throws std::invalid_argument otherwise.
  explicit TimeSeries(double start_s = 0.0, double period_s = 1.0);

  void push(double value);
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double start() const noexcept { return start_s_; }
  [[nodiscard]] double period() const noexcept { return period_s_; }

  /// Timestamp of sample i (start + i * period); throws std::out_of_range.
  [[nodiscard]] double time_at(std::size_t i) const;
  [[nodiscard]] double value_at(std::size_t i) const;
  [[nodiscard]] double operator[](std::size_t i) const noexcept {
    return values_[i];
  }

  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

  /// Value at an arbitrary time via zero-order hold (last sample at or before
  /// t); throws std::out_of_range if t precedes the first sample or the
  /// series is empty.
  [[nodiscard]] double sample_at(double t) const;

  /// Trapezoidal integral of the series over its whole span, in value*seconds.
  /// For a power series in watts this is energy in joules.
  [[nodiscard]] double integrate() const noexcept;

  /// Element-wise difference (this - other), truncated to the shorter length;
  /// requires equal periods (throws std::invalid_argument otherwise).
  [[nodiscard]] TimeSeries operator-(const TimeSeries& other) const;

  /// Returns a copy with `offset` added to every sample (e.g. idle-power
  /// adjustment).
  [[nodiscard]] TimeSeries shifted(double offset) const;

 private:
  double start_s_;
  double period_s_;
  std::vector<double> values_;
};

}  // namespace vmp::util
