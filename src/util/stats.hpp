// Descriptive statistics used throughout the evaluation harness.
//
// The paper reports average relative errors, maximum relative errors and the
// CDF of relative errors (Fig. 10(c)); this header provides those primitives
// plus incremental (Welford) accumulation for streaming series.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vmp::util {

/// Arithmetic mean; returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 for fewer than two samples.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);

/// Linear-interpolation percentile; p in [0, 100]. Throws std::invalid_argument
/// on empty input or p outside [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);
[[nodiscard]] inline double median(std::span<const double> xs) {
  return percentile(xs, 50.0);
}

/// |estimate - truth| / |truth|, with a guard: when |truth| < floor the error
/// is computed against the floor so near-zero truths do not explode the
/// statistic (the paper's relative errors are against multi-watt powers; the
/// floor only matters for idle corner cases).
[[nodiscard]] double relative_error(double estimate, double truth,
                                    double floor = 1e-9) noexcept;

/// Empirical CDF evaluated at x: fraction of samples <= x.
[[nodiscard]] double ecdf(std::span<const double> xs, double x) noexcept;

/// Fraction of samples strictly below the threshold.
[[nodiscard]] double fraction_below(std::span<const double> xs,
                                    double threshold) noexcept;

/// Streaming mean/variance accumulator (Welford's algorithm); numerically
/// stable for long 1 Hz power traces.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-line summary of a sample (count/mean/std/min/p50/p90/p95/max); used by
/// the bench binaries when printing error distributions.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double max = 0.0;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace vmp::util
