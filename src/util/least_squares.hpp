// Linear least squares for the VHC power-mapping fit (paper Sec. V-C).
//
// The approximation step of the paper fits, per VHC combination, a set of
// power-mapping vectors w_j minimizing  Σ || v(S,C) − Σ_j w_j·v_j ||  over the
// partially-measured coalition powers. Stacking the per-sample aggregated VHC
// state vectors row-wise gives an ordinary least-squares problem  min ||Aw−b||.
// We solve it with Householder QR (numerically robust for the well-conditioned
// tall systems that arise here) and offer an optional ridge term for
// ill-conditioned fits (e.g. when two VHCs' states are collinear because they
// ran in lock-step during offline collection).
#pragma once

#include <span>
#include <vector>

#include "util/matrix.hpp"

namespace vmp::util {

struct LeastSquaresResult {
  std::vector<double> coefficients;
  double residual_norm = 0.0;  ///< ||A x - b||_2 at the solution.
  bool rank_deficient = false; ///< True if a tiny pivot was regularized away.
};

/// Solves min_x ||A x - b||_2 via Householder QR.
///
/// Requires A.rows() >= A.cols() and b.size() == A.rows(); throws
/// std::invalid_argument otherwise. Rank-deficient columns receive a zero
/// coefficient and the result is flagged.
[[nodiscard]] LeastSquaresResult solve_least_squares(const Matrix& a,
                                                     std::span<const double> b);

/// Ridge regression: min_x ||A x - b||^2 + lambda ||x||^2, solved through the
/// augmented QR system. lambda must be >= 0.
[[nodiscard]] LeastSquaresResult solve_ridge(const Matrix& a,
                                             std::span<const double> b,
                                             double lambda);

}  // namespace vmp::util
