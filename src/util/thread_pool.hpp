// Fixed-size worker pool.
//
// Originally fleet-only (one task per host per metering tick), the pool now
// also drives the thread-parallel Shapley mask sweep in core (see
// core/shapley_fast.hpp), so it lives in util where both layers can reach
// it. The pool is deliberately minimal: FIFO submission, no futures (callers
// coordinate through their own queues or counters), and a wait_idle barrier
// the fleet engine uses to close each tick deterministically.
//
// Nesting caveat: a task running on the pool must not block on work it
// submitted to the *same* pool (wait_idle from a worker deadlocks, and a
// blocked worker can starve a single-thread pool). Parallel kernels that
// share a pool therefore wait on their own completion counters and are only
// invoked from threads outside the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vmp::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers. Throws std::invalid_argument when 0.
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing (queue empty
  /// and no task in flight).
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;  ///< queued + currently running.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace vmp::util
