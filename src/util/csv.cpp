#include "util/csv.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vmp::util {

CsvWriter::CsvWriter(const std::filesystem::path& path,
                     std::vector<std::string> columns)
    : path_(path), columns_(columns.size()) {
  if (columns.empty())
    throw std::invalid_argument("CsvWriter: need at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) buffer_ += ',';
    buffer_ += columns[i];
  }
  buffer_ += '\n';
}

CsvWriter::~CsvWriter() {
  // Flush on destruction; failures here cannot throw (dtor), so report once
  // to stderr. Callers needing hard guarantees should keep files small and
  // check rows_written().
  std::ofstream out(path_, std::ios::trunc);
  if (!out || !(out << buffer_)) {
    std::fprintf(stderr, "vmpower: failed to write CSV %s\n",
                 path_.string().c_str());
  }
}

void CsvWriter::write_row(std::span<const double> values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  char cell[64];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) buffer_ += ',';
    std::snprintf(cell, sizeof cell, "%.12g", values[i]);
    buffer_ += cell;
  }
  buffer_ += '\n';
  ++rows_;
}

CsvData read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path.string());
  CsvData data;
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("read_csv: empty file " + path.string());
  std::stringstream header(line);
  std::string cell;
  while (std::getline(header, cell, ',')) data.columns.push_back(cell);

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    row.reserve(data.columns.size());
    std::stringstream fields(line);
    while (std::getline(fields, cell, ',')) {
      double value = 0.0;
      const auto [ptr, ec] =
          std::from_chars(cell.data(), cell.data() + cell.size(), value);
      if (ec != std::errc{} || ptr != cell.data() + cell.size())
        throw std::runtime_error("read_csv: non-numeric cell '" + cell + "'");
      row.push_back(value);
    }
    if (row.size() != data.columns.size())
      throw std::runtime_error("read_csv: ragged row in " + path.string());
    data.rows.push_back(std::move(row));
  }
  return data;
}

}  // namespace vmp::util
