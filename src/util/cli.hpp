// Minimal command-line argument parsing for the tools/ binaries.
//
// Supports the conventional subcommand shape
//     vmpower <command> --key value --flag positional...
// with typed accessors and defaults. Unknown keys are detectable so tools
// can reject typos instead of silently ignoring them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vmp::util {

class CliArgs {
 public:
  /// Parses argv[1..). Tokens beginning with "--" are options; an option is
  /// a flag when the next token is absent or also an option, otherwise it
  /// consumes the next token as its value. Everything else is positional.
  CliArgs(int argc, const char* const* argv);
  explicit CliArgs(const std::vector<std::string>& tokens);

  /// First positional argument (the subcommand), empty if none.
  [[nodiscard]] std::string command() const;
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  [[nodiscard]] bool has(const std::string& key) const noexcept;
  /// String option, or `fallback` when absent. A flag (no value) returns "".
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  /// Numeric options; throw std::invalid_argument when present but
  /// unparseable.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long get_long(const std::string& key, long fallback) const;

  /// Required option: throws std::invalid_argument with a usage-style
  /// message when absent or empty.
  [[nodiscard]] std::string require(const std::string& key) const;

  /// Keys that were provided but are not in `known` — for typo detection.
  [[nodiscard]] std::vector<std::string> unknown_keys(
      const std::vector<std::string>& known) const;

 private:
  void parse(const std::vector<std::string>& tokens);

  std::map<std::string, std::string> options_;
  std::vector<std::string> positionals_;
};

/// Splits "a,b,c" into {"a","b","c"}; empty input gives an empty vector.
[[nodiscard]] std::vector<std::string> split_csv(const std::string& text);

}  // namespace vmp::util
