// Deterministic pseudo-random number generation.
//
// All stochastic parts of the simulator (meter noise, synthetic workloads,
// Monte-Carlo Shapley sampling) draw from vmp::util::Rng so that every
// experiment in this repository is reproducible from a single seed. The
// engine is xoshiro256++ seeded through SplitMix64, which is the standard
// recipe recommended by the xoshiro authors: SplitMix64 decorrelates
// low-entropy seeds before they reach the main state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vmp::util {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ deterministic random number generator.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be used
/// with <random> distributions, but the convenience members below are
/// preferred inside this codebase (they are stable across standard library
/// implementations, whereas std::normal_distribution et al. are not).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds yield uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean, double sigma) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Exponential variate with the given rate (> 0).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform_u64(i)]);
    }
  }

  /// Forks an independent stream (for per-VM / per-component sub-generators).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace vmp::util
