// Streaming quantile sketch with relative-error guarantees (DDSketch-style).
//
// The serve tier needs honest tail latencies per pipeline stage without
// pre-declaring histogram buckets: stage durations span sub-microsecond
// cache probes to multi-second coalesce holds, so any fixed bucket layout
// is wrong for most stages most of the time. This sketch maps each value to
// the logarithmic bucket i = ceil(log_gamma(x)) with gamma = (1+alpha)/
// (1-alpha), which guarantees every reported quantile q satisfies
// |q_est - q_true| <= alpha * q_true — a *relative* accuracy bound that is
// equally tight at 800 ns and at 8 s. Buckets are allocated lazily in a
// sparse ordered map, so an idle stage costs nothing and a hot one costs
// O(log range) entries.
//
// Merging two sketches of equal alpha adds bucket counts; because bucket
// indices are value-determined (not data-order-determined), merge is exact:
// associative, commutative, and byte-equivalent to having fed one sketch —
// the property the per-worker → per-scrape roll-up and the federation
// roll-up rely on, and which tests pin down.
//
// Values below `kMinTrackable` (including zero — a cache probe can take
// less than a nanosecond tick) land in a dedicated zero bucket counted at
// rank but reported as 0. Negative values are clamped to the zero bucket
// too: stage durations cannot be negative, and a defensive clamp beats
// silently corrupting log-space.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace vmp::util {

class QuantileSketch {
 public:
  /// Values at or below this are recorded in the zero bucket.
  static constexpr double kMinTrackable = 1e-9;

  /// `alpha` is the relative-accuracy target (default 1%); must lie in
  /// (0, 1). Two sketches merge only if their alphas match exactly.
  explicit QuantileSketch(double alpha = 0.01);

  void record(double value);
  /// Adds `other`'s counts into this sketch. Exact (no re-bucketing) and
  /// associative. Throws std::invalid_argument on alpha mismatch.
  void merge(const QuantileSketch& other);

  /// Quantile estimate for q in [0, 1]; 0.0 when empty. Guaranteed within
  /// alpha relative error of the true quantile of the recorded stream.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  /// Sum of recorded values (zero-bucket values contribute 0), for mean
  /// reporting alongside the quantiles.
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  /// Number of materialised log buckets (zero bucket excluded).
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

  void clear();

 private:
  double alpha_;
  double gamma_;      ///< (1 + alpha) / (1 - alpha).
  double log_gamma_;  ///< ln(gamma), cached for the hot record() path.
  std::uint64_t count_ = 0;
  std::uint64_t zero_count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  /// Sparse log-space buckets, ordered by index so quantile() walks values
  /// ascending deterministically.
  std::map<std::int32_t, std::uint64_t> buckets_;
};

}  // namespace vmp::util
