#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vmp::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

std::size_t Histogram::bin(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_hi");
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::cumulative_fraction(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::cumulative_fraction");
  if (total_ == 0) return 0.0;
  std::size_t cum = 0;
  for (std::size_t b = 0; b <= i; ++b) cum += counts_[b];
  return static_cast<double>(cum) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t bar_width) const {
  std::string out;
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char head[96];
    std::snprintf(head, sizeof head, "[%8.4f, %8.4f) %6zu ", bin_lo(i), bin_hi(i),
                  counts_[i]);
    out += head;
    const std::size_t len =
        peak == 0 ? 0 : counts_[i] * bar_width / std::max<std::size_t>(peak, 1);
    out.append(len, '#');
    char tail[48];
    std::snprintf(tail, sizeof tail, "  cdf=%.3f\n", cumulative_fraction(i));
    out += tail;
  }
  return out;
}

}  // namespace vmp::util
