#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace vmp::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("TablePrinter: need at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TablePrinter: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::pct(double ratio, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string rule = "+";
  for (std::size_t w : widths) {
    rule.append(w + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out = rule + render_row(headers_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

void print_banner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace vmp::util
