// Fixed-width histogram with ASCII rendering.
//
// Used by the bench binaries to print error distributions and CDFs the way
// the paper plots Fig. 10(c), in a form readable on a terminal.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vmp::util {

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples are clamped
/// into the first/last bin so totals are preserved.
class Histogram {
 public:
  /// Throws std::invalid_argument unless lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  [[nodiscard]] std::size_t bin(std::size_t i) const;
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Fraction of all samples at or below the upper edge of bin i.
  [[nodiscard]] double cumulative_fraction(std::size_t i) const;

  /// Multi-line ASCII rendering: one row per bin with a proportional bar and
  /// the cumulative fraction (an on-terminal CDF).
  [[nodiscard]] std::string render(std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vmp::util
