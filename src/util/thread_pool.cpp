#include "util/thread_pool.hpp"

#include <stdexcept>

namespace vmp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    throw std::invalid_argument("ThreadPool: need at least one thread");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained.
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace vmp::util
