#include "util/quantile_sketch.hpp"

#include <cmath>
#include <stdexcept>

namespace vmp::util {

QuantileSketch::QuantileSketch(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || !(alpha < 1.0))
    throw std::invalid_argument("QuantileSketch: alpha must be in (0, 1)");
  gamma_ = (1.0 + alpha) / (1.0 - alpha);
  log_gamma_ = std::log(gamma_);
}

void QuantileSketch::record(double value) {
  ++count_;
  if (!(value > kMinTrackable)) {  // catches <=, NaN, and negatives.
    ++zero_count_;
    return;
  }
  sum_ += value;
  if (value > max_) max_ = value;
  const auto index =
      static_cast<std::int32_t>(std::ceil(std::log(value) / log_gamma_));
  ++buckets_[index];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.alpha_ != alpha_)
    throw std::invalid_argument("QuantileSketch: merge with mismatched alpha");
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
  for (const auto& [index, bucket_count] : other.buckets_)
    buckets_[index] += bucket_count;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile among all recorded values, zero bucket
  // first (its values are the smallest by construction).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  if (rank < zero_count_) return 0.0;
  std::uint64_t cumulative = zero_count_;
  for (const auto& [index, bucket_count] : buckets_) {
    cumulative += bucket_count;
    if (cumulative > rank) {
      // Midpoint of the bucket (gamma^(i-1), gamma^i] in log space:
      // 2 * gamma^i / (gamma + 1) — the canonical DDSketch estimate whose
      // worst-case relative error is alpha at either bucket edge.
      return 2.0 * std::pow(gamma_, static_cast<double>(index)) /
             (gamma_ + 1.0);
    }
  }
  return max_;  // unreachable unless rounding starves the walk; cap at max.
}

void QuantileSketch::clear() {
  count_ = 0;
  zero_count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
  buckets_.clear();
}

}  // namespace vmp::util
