// Small dense matrix used by the VHC linear approximation.
//
// The regression problems in this codebase are tiny (design matrices of a few
// thousand rows by at most ~20 columns: r VHCs x k component states), so a
// straightforward row-major dense matrix with Householder QR is both simpler
// and faster than pulling in a linear-algebra dependency.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace vmp::util {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// From nested initializer list; throws std::invalid_argument on ragged rows.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Unchecked element access (hot path); bounds are asserted in debug.
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept;
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept;

  /// Checked element access; throws std::out_of_range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> operator*(std::span<const double> v) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s) noexcept;

  /// Max-abs-element norm, used by tests.
  [[nodiscard]] double max_abs() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; throws std::invalid_argument on size mismatch.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

}  // namespace vmp::util
