// ASCII table rendering for the bench binaries.
//
// Every reproduction bench prints the same rows the paper's table/figure
// reports; TablePrinter keeps that output aligned and consistent.
#pragma once

#include <string>
#include <vector>

namespace vmp::util {

/// Builds a right-padded ASCII table with a header rule. Cells are strings;
/// numeric helpers format with fixed precision.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; throws std::invalid_argument on width mismatch.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given number of decimals.
  [[nodiscard]] static std::string num(double value, int decimals = 2);
  /// Formats a ratio as a percentage string, e.g. 0.4615 -> "46.15%".
  [[nodiscard]] static std::string pct(double ratio, int decimals = 2);

  [[nodiscard]] std::string render() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used between experiment blocks.
void print_banner(const std::string& title);

}  // namespace vmp::util
