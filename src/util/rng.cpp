#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace vmp::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // All-zero state is the one forbidden state of xoshiro; SplitMix64 cannot
  // produce four zero outputs in a row, but keep the guard explicit.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  VMP_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  VMP_ASSERT(n > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  VMP_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) noexcept {
  VMP_ASSERT(sigma >= 0.0);
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) noexcept {
  VMP_ASSERT(rate > 0.0);
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::fork() noexcept {
  return Rng{(*this)()};
}

}  // namespace vmp::util
