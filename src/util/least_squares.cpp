#include "util/least_squares.hpp"

#include <cmath>
#include <stdexcept>

namespace vmp::util {

namespace {

/// In-place Householder QR on the augmented matrix [A | b]; returns the
/// solution of the triangular system and the residual norm.
LeastSquaresResult qr_solve(Matrix work, std::size_t n_cols) {
  const std::size_t m = work.rows();
  const std::size_t n = n_cols;          // unknowns; last column of work is b.
  LeastSquaresResult result;
  result.coefficients.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Householder reflection to zero out column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += work(i, k) * work(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;  // zero column: rank deficient, handled later.
    // The reflector is numerically stable only when norm carries the sign of
    // the diagonal entry (so the division below lands in (0, 1]).
    if (work(k, k) < 0.0) norm = -norm;
    for (std::size_t i = k; i < m; ++i) work(i, k) /= norm;
    work(k, k) += 1.0;
    for (std::size_t j = k + 1; j <= n; ++j) {  // includes augmented b column
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += work(i, k) * work(i, j);
      s = -s / work(k, k);
      for (std::size_t i = k; i < m; ++i) work(i, j) += s * work(i, k);
    }
    work(k, k) = -norm;  // R's diagonal (JAMA convention)
  }

  // Back-substitution on R x = Q^T b (upper triangle now lives above/on the
  // diagonal with the diagonal stashed in work(k,k)).
  const double tiny = 1e-12;
  for (std::size_t kk = n; kk-- > 0;) {
    double diag = work(kk, kk);
    if (std::abs(diag) < tiny) {
      result.rank_deficient = true;
      result.coefficients[kk] = 0.0;
      continue;
    }
    double s = work(kk, n);
    for (std::size_t j = kk + 1; j < n; ++j)
      s -= work(kk, j) * result.coefficients[j];
    result.coefficients[kk] = s / diag;
  }

  // Residual: remaining entries of Q^T b below row n.
  double res = 0.0;
  for (std::size_t i = n; i < m; ++i) res += work(i, n) * work(i, n);
  result.residual_norm = std::sqrt(res);
  return result;
}

}  // namespace

LeastSquaresResult solve_least_squares(const Matrix& a, std::span<const double> b) {
  if (a.rows() == 0 || a.cols() == 0)
    throw std::invalid_argument("solve_least_squares: empty system");
  if (a.rows() < a.cols())
    throw std::invalid_argument(
        "solve_least_squares: underdetermined system (rows < cols)");
  if (b.size() != a.rows())
    throw std::invalid_argument("solve_least_squares: b size mismatch");

  Matrix work(a.rows(), a.cols() + 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) work(r, c) = a(r, c);
    work(r, a.cols()) = b[r];
  }
  return qr_solve(std::move(work), a.cols());
}

LeastSquaresResult solve_ridge(const Matrix& a, std::span<const double> b,
                               double lambda) {
  if (lambda < 0.0) throw std::invalid_argument("solve_ridge: lambda < 0");
  if (lambda == 0.0) return solve_least_squares(a, b);
  if (b.size() != a.rows())
    throw std::invalid_argument("solve_ridge: b size mismatch");

  // Augment with sqrt(lambda) * I rows and zero targets.
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix work(m + n, n + 1);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) work(r, c) = a(r, c);
    work(r, n) = b[r];
  }
  const double s = std::sqrt(lambda);
  for (std::size_t i = 0; i < n; ++i) work(m + i, i) = s;
  return qr_solve(std::move(work), n);
}

}  // namespace vmp::util
