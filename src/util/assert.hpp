// Internal invariant checking for the vmpower libraries.
//
// VMP_ASSERT guards *internal* invariants (bugs in this library); violations
// abort with a diagnostic. API misuse by callers is reported with exceptions
// (std::invalid_argument / std::out_of_range) at the public boundary instead —
// see the C++ Core Guidelines I.5/I.6 split between preconditions on callers
// and internal consistency checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace vmp::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "vmpower: invariant violated: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace vmp::util

#define VMP_ASSERT(expr)                                                \
  ((expr) ? static_cast<void>(0)                                        \
          : ::vmp::util::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define VMP_ASSERT_MSG(expr, msg)                                    \
  ((expr) ? static_cast<void>(0)                                     \
          : ::vmp::util::assert_fail(#expr, __FILE__, __LINE__, msg))
