// Minimal CSV reading/writing for experiment artifacts.
//
// Bench binaries dump raw series (power traces, per-sample errors) next to
// their printed tables so the figures can be re-plotted externally. The
// format is deliberately plain: comma separator, no quoting of numeric data,
// header row of column names.
#pragma once

#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace vmp::util {

/// Streams rows of doubles (plus a header) into a CSV file. Throws
/// std::runtime_error if the file cannot be opened/written.
class CsvWriter {
 public:
  CsvWriter(const std::filesystem::path& path, std::vector<std::string> columns);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; throws std::invalid_argument if the width differs from
  /// the header.
  void write_row(std::span<const double> values);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::string buffer_;
  std::filesystem::path path_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

struct CsvData {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;
};

/// Reads a numeric CSV written by CsvWriter. Throws std::runtime_error on I/O
/// failure or non-numeric cells.
[[nodiscard]] CsvData read_csv(const std::filesystem::path& path);

}  // namespace vmp::util
