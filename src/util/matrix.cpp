#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace vmp::util {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) noexcept {
  VMP_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const noexcept {
  VMP_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix multiply: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  if (cols_ != v.size())
    throw std::invalid_argument("Matrix-vector multiply: dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = dot(row(r), v);
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix add: dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix subtract: dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace vmp::util
