// VM component-state vectors (paper Eq. 5).
//
// The paper describes each VM i by a state vector c_i = [c_i^1 ... c_i^k]
// covering the components whose state the hypervisor can observe (CPU
// utilization, memory usage, disk I/O, ...). We fix k = 4 observable
// components; the evaluation — like the paper's — is driven almost entirely
// by the CPU coordinate, but every algorithm below is written against the
// full vector.
//
// Conventions: every coordinate is a normalized fraction. CPU utilization is
// the mean across the VM's vCPUs, memory is resident-fraction of the VM's
// allocation, disk/net are throughput relative to a nominal device maximum.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

namespace vmp::common {

/// Index of an observable VM component.
enum class Component : std::size_t {
  kCpu = 0,
  kMemory = 1,
  kDiskIo = 2,
  kNetIo = 3,
};

inline constexpr std::size_t kNumComponents = 4;

[[nodiscard]] const char* to_string(Component c) noexcept;

/// The per-VM component state vector c_i (paper Eq. 5). Also used for the
/// per-VHC aggregated vectors v_j = sum of c_i (paper Eq. 8), whose entries
/// may exceed 1 after summation.
class StateVector {
 public:
  constexpr StateVector() noexcept : values_{} {}

  /// Convenience: CPU-only state with other components zero.
  [[nodiscard]] static StateVector cpu_only(double cpu_util) noexcept;

  [[nodiscard]] static constexpr StateVector zero() noexcept { return {}; }

  [[nodiscard]] constexpr double operator[](Component c) const noexcept {
    return values_[static_cast<std::size_t>(c)];
  }
  constexpr double& operator[](Component c) noexcept {
    return values_[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] double cpu() const noexcept { return (*this)[Component::kCpu]; }
  [[nodiscard]] double memory() const noexcept {
    return (*this)[Component::kMemory];
  }
  [[nodiscard]] double disk_io() const noexcept {
    return (*this)[Component::kDiskIo];
  }
  [[nodiscard]] double net_io() const noexcept {
    return (*this)[Component::kNetIo];
  }

  [[nodiscard]] std::span<const double, kNumComponents> values() const noexcept {
    return values_;
  }

  StateVector& operator+=(const StateVector& rhs) noexcept;
  StateVector& operator-=(const StateVector& rhs) noexcept;
  StateVector& operator*=(double s) noexcept;
  [[nodiscard]] friend StateVector operator+(StateVector a,
                                             const StateVector& b) noexcept {
    return a += b;
  }
  [[nodiscard]] friend StateVector operator-(StateVector a,
                                             const StateVector& b) noexcept {
    return a -= b;
  }
  [[nodiscard]] friend StateVector operator*(StateVector a, double s) noexcept {
    return a *= s;
  }

  [[nodiscard]] bool operator==(const StateVector&) const noexcept = default;

  /// Dot product with a power-mapping vector w_j (paper Eq. 9).
  [[nodiscard]] double dot(std::span<const double> weights) const;

  /// True if every coordinate is a valid fraction in [0, 1] (per-VM states;
  /// aggregated VHC states may legitimately exceed 1).
  [[nodiscard]] bool is_normalized() const noexcept;

  /// Clamps each coordinate into [0, 1].
  [[nodiscard]] StateVector clamped() const noexcept;

  /// Rounds each coordinate to a multiple of `resolution` — the paper's table
  /// normalization (Sec. VII-A uses resolution 0.01). resolution must be > 0.
  [[nodiscard]] StateVector quantized(double resolution) const;

  /// Largest absolute coordinate difference; used for nearest-entry lookups.
  [[nodiscard]] double max_abs_diff(const StateVector& other) const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  std::array<double, kNumComponents> values_;
};

}  // namespace vmp::common
