// Unit conventions and conversion helpers.
//
// The codebase uses plain doubles with documented units rather than strong
// types: power in watts, energy in joules, time in seconds, utilization as a
// dimensionless fraction in [0, 1]. These helpers centralize the conversions
// the pricing/billing code needs (Table I, Fig. 1).
#pragma once

namespace vmp::common {

inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kHoursPerYear = 8760.0;
inline constexpr double kJoulesPerKwh = 3.6e6;

/// Joules -> kilowatt-hours.
[[nodiscard]] constexpr double joules_to_kwh(double joules) noexcept {
  return joules / kJoulesPerKwh;
}

/// Average watts sustained for a duration -> kilowatt-hours.
[[nodiscard]] constexpr double watts_to_kwh(double watts, double seconds) noexcept {
  return joules_to_kwh(watts * seconds);
}

/// Yearly energy (kWh) of a device drawing `watts` continuously.
[[nodiscard]] constexpr double yearly_kwh(double watts) noexcept {
  return watts * kHoursPerYear / 1000.0;
}

}  // namespace vmp::common
