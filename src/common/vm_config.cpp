#include "common/vm_config.hpp"

#include <stdexcept>

namespace vmp::common {

void VmConfig::validate() const {
  if (vcpus == 0) throw std::invalid_argument("VmConfig: vcpus must be >= 1");
  if (memory_mb == 0)
    throw std::invalid_argument("VmConfig: memory_mb must be >= 1");
}

std::vector<VmConfig> paper_vm_catalogue() {
  return {
      VmConfig{.type_name = "VM1", .type_id = 0, .vcpus = 1, .memory_mb = 2048,
               .disk_gb = 20},
      VmConfig{.type_name = "VM2", .type_id = 1, .vcpus = 2, .memory_mb = 4096,
               .disk_gb = 40},
      VmConfig{.type_name = "VM3", .type_id = 2, .vcpus = 4, .memory_mb = 8192,
               .disk_gb = 80},
      VmConfig{.type_name = "VM4", .type_id = 3, .vcpus = 8, .memory_mb = 14336,
               .disk_gb = 100},
  };
}

VmConfig paper_vm_type(unsigned index) {
  auto catalogue = paper_vm_catalogue();
  if (index < 1 || index > catalogue.size())
    throw std::out_of_range("paper_vm_type: index must be in [1, 4]");
  return catalogue[index - 1];
}

VmConfig demo_c_vm() {
  return VmConfig{.type_name = "C_VM", .type_id = 0, .vcpus = 1,
                  .memory_mb = 512, .disk_gb = 8};
}

}  // namespace vmp::common
