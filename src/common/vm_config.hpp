// VM configurations and the paper's fixed instance types (Table IV).
//
// Datacenters offer a small catalogue of fixed VM shapes; the paper's VHC
// construction (Sec. V-C) leans on exactly this: VMs of the same type form a
// Virtual Homogeneous Coalition. VmTypeId identifies the catalogue entry and
// doubles as the VHC key.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vmp::common {

/// Index into the VM-type catalogue; equal type => same VHC.
using VmTypeId = std::uint32_t;

/// Static shape of a VM instance type.
struct VmConfig {
  std::string type_name;   ///< e.g. "VM1".
  VmTypeId type_id = 0;    ///< catalogue index / VHC key.
  unsigned vcpus = 1;      ///< number of virtual CPUs.
  unsigned memory_mb = 512;
  unsigned disk_gb = 8;

  /// Throws std::invalid_argument on a degenerate shape (0 vCPUs / 0 memory).
  void validate() const;
};

/// The four instance types of the paper's evaluation (Table IV):
///   VM1: 1 vCPU / 2 GB / 20 GB      VM2: 2 vCPU / 4 GB / 40 GB
///   VM3: 4 vCPU / 8 GB / 80 GB      VM4: 8 vCPU / 14 GB / 100 GB
[[nodiscard]] std::vector<VmConfig> paper_vm_catalogue();

/// Catalogue entry by 1-based paper index (1..4); throws std::out_of_range.
[[nodiscard]] VmConfig paper_vm_type(unsigned index);

/// The Sec. III demonstration VM (C_VM): 1 vCPU / 512 MB / 8 GB.
[[nodiscard]] VmConfig demo_c_vm();

}  // namespace vmp::common
