#include "common/state_vector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vmp::common {

const char* to_string(Component c) noexcept {
  switch (c) {
    case Component::kCpu: return "cpu";
    case Component::kMemory: return "memory";
    case Component::kDiskIo: return "disk_io";
    case Component::kNetIo: return "net_io";
  }
  return "?";
}

StateVector StateVector::cpu_only(double cpu_util) noexcept {
  StateVector s;
  s[Component::kCpu] = cpu_util;
  return s;
}

StateVector& StateVector::operator+=(const StateVector& rhs) noexcept {
  for (std::size_t i = 0; i < kNumComponents; ++i) values_[i] += rhs.values_[i];
  return *this;
}

StateVector& StateVector::operator-=(const StateVector& rhs) noexcept {
  for (std::size_t i = 0; i < kNumComponents; ++i) values_[i] -= rhs.values_[i];
  return *this;
}

StateVector& StateVector::operator*=(double s) noexcept {
  for (double& v : values_) v *= s;
  return *this;
}

double StateVector::dot(std::span<const double> weights) const {
  if (weights.size() != kNumComponents)
    throw std::invalid_argument("StateVector::dot: weight vector size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < kNumComponents; ++i) sum += values_[i] * weights[i];
  return sum;
}

bool StateVector::is_normalized() const noexcept {
  return std::all_of(values_.begin(), values_.end(),
                     [](double v) { return v >= 0.0 && v <= 1.0; });
}

StateVector StateVector::clamped() const noexcept {
  StateVector out = *this;
  for (double& v : out.values_) v = std::clamp(v, 0.0, 1.0);
  return out;
}

StateVector StateVector::quantized(double resolution) const {
  if (!(resolution > 0.0))
    throw std::invalid_argument("StateVector::quantized: resolution must be > 0");
  StateVector out = *this;
  for (double& v : out.values_) v = std::round(v / resolution) * resolution;
  return out;
}

double StateVector::max_abs_diff(const StateVector& other) const noexcept {
  double m = 0.0;
  for (std::size_t i = 0; i < kNumComponents; ++i)
    m = std::max(m, std::abs(values_[i] - other.values_[i]));
  return m;
}

std::string StateVector::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "[cpu=%.3f mem=%.3f disk=%.3f net=%.3f]",
                values_[0], values_[1], values_[2], values_[3]);
  return buf;
}

}  // namespace vmp::common
