#include "core/estimator.hpp"

#include <stdexcept>

namespace vmp::core {

namespace {

std::vector<common::StateVector> states_of(std::span<const VmSample> vms) {
  std::vector<common::StateVector> states;
  states.reserve(vms.size());
  for (const VmSample& vm : vms) states.push_back(vm.state);
  return states;
}

void require_input(std::span<const VmSample> vms, double adjusted_power_w) {
  if (vms.empty())
    throw std::invalid_argument("PowerEstimator: need at least one VM");
  if (vms.size() > kMaxPlayers)
    throw std::invalid_argument("PowerEstimator: too many VMs");
  if (adjusted_power_w < 0.0)
    throw std::invalid_argument("PowerEstimator: adjusted power must be >= 0");
}

}  // namespace

ShapleyVhcEstimator::ShapleyVhcEstimator(VhcUniverse universe,
                                         VhcLinearApprox approx, bool anchor)
    : universe_(std::move(universe)), approx_(std::move(approx)),
      anchor_(anchor) {
  if (approx_.num_vhcs() != universe_.size())
    throw std::invalid_argument(
        "ShapleyVhcEstimator: approximation VHC count != universe size");
}

ShapleyVhcEstimator::ShapleyVhcEstimator(VhcUniverse universe,
                                         VhcLinearApprox approx, VscTable table,
                                         bool anchor)
    : ShapleyVhcEstimator(std::move(universe), std::move(approx), anchor) {
  if (table.num_vhcs() != universe_.size())
    throw std::invalid_argument(
        "ShapleyVhcEstimator: table VHC count != universe size");
  table_.emplace(std::move(table));
}

double ShapleyVhcEstimator::table_hit_rate() const noexcept {
  return worth_queries_ > 0
             ? static_cast<double>(table_hits_) /
                   static_cast<double>(worth_queries_)
             : 0.0;
}

std::vector<double> ShapleyVhcEstimator::estimate(std::span<const VmSample> vms,
                                                  double adjusted_power_w) {
  require_input(vms, adjusted_power_w);

  std::vector<common::VmTypeId> types;
  types.reserve(vms.size());
  for (const VmSample& vm : vms) types.push_back(vm.type);
  const VhcPartition partition(universe_, std::move(types));

  const auto states = states_of(vms);
  const Coalition grand = Coalition::grand(vms.size());

  const StateWorthFn worth = [&](Coalition s,
                                 std::span<const common::StateVector> c) {
    if (s.is_empty()) return 0.0;
    if (anchor_ && s == grand) return adjusted_power_w;
    // Idle members add no power (paper Remark 1), so they must not steer the
    // VHC-combination choice either: v({busy, idle}) has to equal v({busy})
    // exactly, or the Dummy axiom breaks through weight differences between
    // combinations.
    Coalition active = s;
    for (Player i : s.members())
      if (c[i] == common::StateVector::zero()) active = active.without(i);
    if (active.is_empty()) return 0.0;
    const auto aggregated = partition.aggregate(active, c);
    const VhcComboMask combo = partition.combo_of(active);
    ++worth_queries_;
    if (table_.has_value()) {
      // Fig. 8's lookup-first path: a directly-measured state beats the
      // regression.
      if (const auto hit = table_->lookup(combo, aggregated)) {
        ++table_hits_;
        return *hit;
      }
    }
    return approx_.predict(combo, aggregated);
  };

  return nondet_shapley_values(states, worth);
}

OracleShapleyEstimator::OracleShapleyEstimator(const sim::CoalitionProbe& probe,
                                               bool anchor)
    : probe_(probe), anchor_(anchor) {}

std::vector<double> OracleShapleyEstimator::estimate(
    std::span<const VmSample> vms, double adjusted_power_w) {
  require_input(vms, adjusted_power_w);
  if (vms.size() != probe_.fleet_size())
    throw std::invalid_argument(
        "OracleShapleyEstimator: sample count != probe fleet size");
  for (std::size_t i = 0; i < vms.size(); ++i)
    if (vms[i].type != probe_.configs()[i].type_id)
      throw std::invalid_argument(
          "OracleShapleyEstimator: VM order does not match probe fleet");

  const auto states = states_of(vms);
  const Coalition grand = Coalition::grand(vms.size());
  const StateWorthFn worth = [&](Coalition s,
                                 std::span<const common::StateVector> c) {
    if (s.is_empty()) return 0.0;
    if (anchor_ && s == grand) return adjusted_power_w;
    return probe_.worth(s.mask(), c);
  };
  return nondet_shapley_values(states, worth);
}

}  // namespace vmp::core
