#include "core/estimator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/trace.hpp"

namespace vmp::core {

namespace {

/// Known-miss memo entries are cheap; bound the map anyway so a pathological
/// state stream cannot grow it without limit (clearing only costs re-probing
/// the table once per live state).
constexpr std::size_t kTableMemoLimit = std::size_t{1} << 20;

std::vector<common::StateVector> states_of(std::span<const VmSample> vms) {
  std::vector<common::StateVector> states;
  states.reserve(vms.size());
  for (const VmSample& vm : vms) states.push_back(vm.state);
  return states;
}

void require_input(std::span<const VmSample> vms, double adjusted_power_w) {
  if (vms.empty())
    throw std::invalid_argument("PowerEstimator: need at least one VM");
  // The sampled tier meters up to kMaxSampledPlayers; exact kernels enforce
  // their own kMaxPlayers bound at dispatch.
  if (vms.size() > kMaxSampledPlayers)
    throw std::invalid_argument("PowerEstimator: too many VMs");
  if (adjusted_power_w < 0.0)
    throw std::invalid_argument("PowerEstimator: adjusted power must be >= 0");
}

void append_raw(std::string& out, const void* data, std::size_t bytes) {
  out.append(static_cast<const char*>(data), bytes);
}

}  // namespace

ShapleyVhcEstimator::ShapleyVhcEstimator(VhcUniverse universe,
                                         VhcLinearApprox approx, bool anchor)
    : universe_(std::move(universe)), approx_(std::move(approx)),
      anchor_(anchor) {
  if (approx_.num_vhcs() != universe_.size())
    throw std::invalid_argument(
        "ShapleyVhcEstimator: approximation VHC count != universe size");
}

ShapleyVhcEstimator::ShapleyVhcEstimator(VhcUniverse universe,
                                         VhcLinearApprox approx, VscTable table,
                                         bool anchor)
    : ShapleyVhcEstimator(std::move(universe), std::move(approx), anchor) {
  if (table.num_vhcs() != universe_.size())
    throw std::invalid_argument(
        "ShapleyVhcEstimator: table VHC count != universe size");
  table_.emplace(std::move(table));
}

double ShapleyVhcEstimator::table_hit_rate() const noexcept {
  return worth_queries_ > 0
             ? static_cast<double>(table_hits_) /
                   static_cast<double>(worth_queries_)
             : 0.0;
}

VhcComboMask ShapleyVhcEstimator::prepare_tick(std::span<const VmSample> vms) {
  const std::size_t n = vms.size();

  // The partition survives across ticks: a host's VM type list is stable, so
  // rebuilding it (and its allocations) every sampling period is pure waste.
  types_scratch_.clear();
  for (const VmSample& vm : vms) types_scratch_.push_back(vm.type);
  if (!partition_.has_value() || types_scratch_ != cached_types_) {
    partition_.emplace(universe_, types_scratch_);
    cached_types_ = types_scratch_;
  }

  states_.resize(n);
  player_bit_.resize(n);
  player_vhc_.resize(n);
  player_key_.resize(n);
  VhcComboMask full_combo = 0;
  for (std::size_t i = 0; i < n; ++i) {
    states_[i] = vms[i].state;
    const std::size_t vhc = partition_->vhc_of(i);
    player_vhc_[i] = vhc;
    // Idle members add no power (paper Remark 1): they are dropped from
    // every coalition's combo/aggregate, and — since the worth then ignores
    // them entirely — all idle players are mutually symmetric regardless of
    // type (sentinel key past every real VHC index).
    const bool idle = states_[i] == common::StateVector::zero();
    player_bit_[i] = idle ? 0u : (std::uint32_t{1} << vhc);
    player_key_[i] = idle ? universe_.size() : vhc;
    full_combo |= player_bit_[i];
  }

  if (weights_n_ != n) {
    fill_shapley_weights(n, weights_);
    weights_n_ = n;
  }
  return full_combo;
}

double ShapleyVhcEstimator::worth_from(
    VhcComboMask combo, std::span<const common::StateVector> aggregated) {
  CompEntry ignored;
  return worth_recorded(combo, aggregated, ignored);
}

double ShapleyVhcEstimator::worth_recorded(
    VhcComboMask combo, std::span<const common::StateVector> aggregated,
    CompEntry& entry) {
  ++worth_queries_;
  entry.status = kCompMiss;
  if (table_.has_value()) {
    // Fig. 8's lookup-first path, memoized across ticks: the table's answer
    // is a pure function of (combo, quantized aggregate), so identical
    // quantized states skip the sample scan entirely.
    memo_key_.clear();
    append_raw(memo_key_, &combo, sizeof(combo));
    const double resolution = table_->resolution();
    for (const auto& state : aggregated) {
      const common::StateVector q = state.quantized(resolution);
      const auto values = q.values();
      append_raw(memo_key_, values.data(), values.size_bytes());
    }
    auto it = table_memo_.find(std::string_view{memo_key_});
    if (it == table_memo_.end()) {
      if (table_memo_.size() >= kTableMemoLimit) table_memo_.clear();
      TableOutcome outcome;
      if (const auto hit = table_->lookup(combo, aggregated)) {
        outcome.hit = true;
        outcome.value = *hit;
      }
      it = table_memo_.emplace(memo_key_, outcome).first;
    }
    if (it->second.hit) {
      ++table_hits_;
      entry.status = kCompHit;
      entry.value = it->second.value;
      return it->second.value;
    }
    // Known miss: fall through to the approximation on the exact states.
  }
  return combo_weights_.predict(combo, aggregated);
}

std::vector<double> ShapleyVhcEstimator::estimate(std::span<const VmSample> vms,
                                                  double adjusted_power_w) {
  VMP_TRACE_SPAN("core.estimate", "core");
  require_input(vms, adjusted_power_w);

  // bind() is a no-op when already bound; re-binding here (rather than in
  // the constructors) keeps the cache coherent even if the estimator object
  // was moved since the last call.
  combo_weights_.bind(&approx_);
  if (!combo_weights_.usable()) {
    last_kernel_ = "legacy";
    VMP_TRACE_SPAN("core.shapley_kernel", "core");
    return estimate_legacy(vms, adjusted_power_w);
  }

  const VhcComboMask full_combo = prepare_tick(vms);
  detect_symmetry_into(player_key_, states_, groups_);

  // Kernel selection, three tiers: any repeated (type, state) pair shrinks
  // the composition space below 2^n, so collapse wins whenever it applies;
  // the batched sweep covers fully distinguishable fleets; and once the
  // composition count exceeds the configured threshold (a fully
  // heterogeneous host) exactness is traded for the bounded-time sampled
  // tier with confidence intervals.
  VMP_TRACE_SPAN("core.shapley_kernel", "core");
  using Kernel = SampledKernelConfig::Kernel;
  const Kernel forced = sampled_config_.kernel;
  if (forced == Kernel::kSampled ||
      (forced == Kernel::kAuto &&
       groups_.composition_count() > sampled_config_.composition_threshold)) {
    last_kernel_ = "sampled";
    return estimate_sampled(adjusted_power_w, full_combo);
  }
  // Collapsed enumerates compositions, not masks, so it has no kMaxPlayers
  // bound: 64 VMs of a few types stay exact. Only the 2^n sweep does.
  if (forced == Kernel::kCollapsed ||
      (forced == Kernel::kAuto && groups_.group_count() < vms.size())) {
    last_kernel_ = "collapsed";
    return estimate_collapsed(adjusted_power_w);
  }
  if (vms.size() > kMaxPlayers)
    throw std::invalid_argument(
        "PowerEstimator: too many VMs for the mask-sweep kernel");
  last_kernel_ = "sweep";
  return estimate_sweep(adjusted_power_w, full_combo);
}

std::vector<double> ShapleyVhcEstimator::estimate_collapsed(
    double adjusted_power_w) {
  const std::size_t n = groups_.player_count();
  const std::size_t r = groups_.group_count();
  const std::size_t num_vhcs = universe_.size();

  // Per-group metadata and mixed-radix strides over compositions
  // k = (k_0 .. k_{r-1}), k_g <= g_size.
  gsize_.resize(r);
  gstride_.resize(r);
  gvhc_.resize(r);
  gbit_.resize(r);
  gstate_.resize(r);
  std::size_t comps = 1;
  for (std::size_t g = 0; g < r; ++g) {
    const Player rep = groups_.members[g].front();
    gsize_[g] = groups_.members[g].size();
    gstride_[g] = comps;
    comps *= gsize_[g] + 1;
    gvhc_[g] = player_vhc_[rep];
    gbit_[g] = player_bit_[rep];
    gstate_[g] = states_[rep];
  }

  // Per-composition memo validity: the table outcome of every composition
  // is fixed by (group sizes, VHCs, idle bits, exact representative
  // states), so a matching signature lets this tick replay last tick's
  // outcomes by index instead of re-probing the quantized-key map.
  const bool use_memo = table_.has_value();
  bool memo_valid = false;
  if (use_memo) {
    comp_sig_scratch_.clear();
    append_raw(comp_sig_scratch_, &r, sizeof(r));
    for (std::size_t g = 0; g < r; ++g) {
      append_raw(comp_sig_scratch_, &gsize_[g], sizeof(gsize_[g]));
      append_raw(comp_sig_scratch_, &gvhc_[g], sizeof(gvhc_[g]));
      append_raw(comp_sig_scratch_, &gbit_[g], sizeof(gbit_[g]));
      const auto values = gstate_[g].values();
      append_raw(comp_sig_scratch_, values.data(), values.size_bytes());
    }
    memo_valid =
        comp_memo_.size() == comps && comp_sig_scratch_ == comp_sig_;
    if (!memo_valid) {
      comp_sig_.swap(comp_sig_scratch_);
      comp_memo_.assign(comps, CompEntry{});
    }
  }

  // One worth evaluation per composition — Π (g_size + 1) instead of 2^n.
  worth_.resize(comps);
  agg_.resize(num_vhcs);
  comp_k_.assign(r, 0);
  for (std::size_t idx = 0; idx < comps; ++idx) {
    if (anchor_ && idx == comps - 1) {
      // The full composition is the grand coalition: anchored to the
      // measurement, never queried (exactly like the mask path).
      worth_[idx] = adjusted_power_w;
    } else if (memo_valid && comp_memo_[idx].status == kCompHit) {
      // Replayed table hit: same counters as a fresh probe, but no
      // aggregate build and no key construction at all.
      ++worth_queries_;
      ++table_hits_;
      worth_[idx] = comp_memo_[idx].value;
    } else if (memo_valid && comp_memo_[idx].status == kCompZero) {
      worth_[idx] = 0.0;  // every included group was idle.
    } else {
      VhcComboMask combo = 0;
      std::fill(agg_.begin(), agg_.end(), common::StateVector::zero());
      for (std::size_t g = 0; g < r; ++g) {
        if (comp_k_[g] == 0 || gbit_[g] == 0) continue;
        combo |= gbit_[g];
        agg_[gvhc_[g]] += gstate_[g] * static_cast<double>(comp_k_[g]);
      }
      if (combo == 0) {
        worth_[idx] = 0.0;
        if (use_memo) comp_memo_[idx].status = kCompZero;
      } else if (memo_valid) {
        // Remembered miss: skip the probe, straight to the approximation
        // (identical states, so the probe could only miss again).
        ++worth_queries_;
        worth_[idx] = combo_weights_.predict(combo, agg_);
      } else if (use_memo) {
        worth_[idx] = worth_recorded(combo, agg_, comp_memo_[idx]);
      } else {
        worth_[idx] = worth_from(combo, agg_);
      }
    }
    for (std::size_t g = 0; g < r; ++g) {
      if (++comp_k_[g] <= gsize_[g]) break;
      comp_k_[g] = 0;
    }
  }

  if (binom_n_ != n) {
    binom_.assign((n + 1) * (n + 1), 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      binom_[i * (n + 1)] = 1.0;
      for (std::size_t j = 1; j <= i; ++j)
        binom_[i * (n + 1) + j] = binom_[(i - 1) * (n + 1) + j - 1] +
                                  (j < i ? binom_[(i - 1) * (n + 1) + j] : 0.0);
    }
    binom_n_ = n;
  }
  const auto binom = [&](std::size_t a, std::size_t b) {
    return binom_[a * (n + 1) + b];
  };

  // Φ_{i in group j} = Σ_k C(g_j−1, k_j) Π_{t≠j} C(g_t, k_t) w(|k|)
  //                        [V(k+e_j) − V(k)],
  // with the coefficient factored as [Π_t C(g_t, k_t)] (g_j − k_j) / g_j.
  phi_group_.assign(r, 0.0);
  comp_k_.assign(r, 0);
  for (std::size_t idx = 0; idx < comps; ++idx) {
    std::size_t s = 0;
    double prod = 1.0;
    for (std::size_t g = 0; g < r; ++g) {
      s += comp_k_[g];
      prod *= binom(gsize_[g], comp_k_[g]);
    }
    if (s < n) {
      const double w = weights_[s];
      const double base = worth_[idx];
      for (std::size_t j = 0; j < r; ++j) {
        if (comp_k_[j] == gsize_[j]) continue;
        const double coeff = prod *
                             static_cast<double>(gsize_[j] - comp_k_[j]) /
                             static_cast<double>(gsize_[j]);
        phi_group_[j] += coeff * w * (worth_[idx + gstride_[j]] - base);
      }
    }
    for (std::size_t g = 0; g < r; ++g) {
      if (++comp_k_[g] <= gsize_[g]) break;
      comp_k_[g] = 0;
    }
  }

  std::vector<double> phi(n, 0.0);
  for (std::size_t j = 0; j < r; ++j)
    for (const Player p : groups_.members[j]) phi[p] = phi_group_[j];
  return phi;
}

void ShapleyVhcEstimator::build_contribution_table(VhcComboMask full_combo) {
  const std::size_t n = states_.size();
  const std::size_t combo_count = std::size_t{1} << universe_.size();
  p_.assign(n * combo_count, 0.0);
  for (VhcComboMask c = full_combo;; c = (c - 1) & full_combo) {
    if (c != 0) {
      const auto w = combo_weights_.effective_weights(c);
      for (std::size_t i = 0; i < n; ++i) {
        if (player_bit_[i] == 0 || (player_bit_[i] & c) == 0) continue;
        p_[i * combo_count + c] = states_[i].dot(w.subspan(
            player_vhc_[i] * common::kNumComponents, common::kNumComponents));
      }
    }
    if (c == 0) break;
  }
}

std::vector<double> ShapleyVhcEstimator::estimate_sampled(
    double adjusted_power_w, VhcComboMask full_combo) {
  const std::size_t n = states_.size();
  const std::size_t combo_count = std::size_t{1} << universe_.size();

  // Same batched worth backend as the table-less sweep: build P once
  // (serial), then every worth query is a read-only gather — safe for the
  // kernel's parallel batches. The VscTable is bypassed on this tier (its
  // probes would serialize the batch); the tier is approximation-only and
  // the measurement anchor still pins Σφ.
  build_contribution_table(full_combo);
  const SampledWorthFn worth = [&](std::uint64_t members) {
    VhcComboMask combo = 0;
    for (std::uint64_t m = members; m != 0; m &= m - 1)
      combo |= player_bit_[static_cast<std::size_t>(std::countr_zero(m))];
    if (combo == 0) return 0.0;  // all members idle.
    double sum = 0.0;
    for (std::uint64_t m = members; m != 0; m &= m - 1)
      sum += p_[static_cast<std::size_t>(std::countr_zero(m)) * combo_count +
                combo];
    return sum;
  };
  const std::uint64_t grand_mask =
      n == 64 ? ~0ULL : ((std::uint64_t{1} << n) - 1);
  const double grand = anchor_ ? adjusted_power_w : worth(grand_mask);

  SampledShapleyOptions options = sampled_config_.sampling;
  // Decorrelate consecutive ticks: mix a per-estimator call counter into the
  // seed so ticks do not reuse draws, while a fixed (config, call order)
  // still replays byte-identically at any thread count.
  options.seed += 0x632be59bd9b4e019ULL * static_cast<std::uint64_t>(
                                              ++estimate_calls_);
  sampler_.set_thread_pool(n >= pool_min_players_ ? pool_ : nullptr);
  SampledShapleyResult result = sampler_.run(n, worth, grand, options);

  worth_queries_ += result.worth_evaluations;
  last_sampled_ = SampledTickStats{
      result.max_halfwidth_w,    result.sum_halfwidth_w,
      result.efficiency_gap_w,   result.worth_evaluations,
      result.rounds,             result.unseen_strata,
      to_string(result.stopped_by)};
  return std::move(result.phi);
}

std::vector<double> ShapleyVhcEstimator::estimate_sweep(
    double adjusted_power_w, VhcComboMask full_combo) {
  const std::size_t n = states_.size();
  const std::size_t n_masks = std::size_t{1} << n;
  const std::size_t num_vhcs = universe_.size();
  worth_.resize(n_masks);
  worth_[0] = 0.0;

  if (!table_.has_value()) {
    // Batched arithmetic path: every coalition worth is Σ_{i in S} P[i][c]
    // where c is the coalition's combo and P[i][c] = c_i · w_c[vhc_i] — one
    // contiguous multiply-add pass, no dispatch, no allocation.
    const std::size_t combo_count = std::size_t{1} << num_vhcs;
    build_contribution_table(full_combo);

    for (std::size_t mask = 1; mask < n_masks; ++mask) {
      if (anchor_ && mask == n_masks - 1) {
        worth_[mask] = adjusted_power_w;
        continue;
      }
      VhcComboMask combo = 0;
      for (std::size_t m = mask; m != 0; m &= m - 1)
        combo |= player_bit_[std::countr_zero(m)];
      if (combo == 0) {  // all members idle
        worth_[mask] = 0.0;
        continue;
      }
      ++worth_queries_;
      double sum = 0.0;
      for (std::size_t m = mask; m != 0; m &= m - 1)
        sum += p_[std::countr_zero(m) * combo_count + combo];
      worth_[mask] = sum;
    }
  } else {
    // Lookup-first path: serial (the memo map is not thread-safe), but the
    // aggregate scratch and memoized probes keep it allocation-free.
    agg_.resize(num_vhcs);
    for (std::size_t mask = 1; mask < n_masks; ++mask) {
      if (anchor_ && mask == n_masks - 1) {
        worth_[mask] = adjusted_power_w;
        continue;
      }
      VhcComboMask combo = 0;
      std::fill(agg_.begin(), agg_.end(), common::StateVector::zero());
      for (std::size_t m = mask; m != 0; m &= m - 1) {
        const std::size_t i = static_cast<std::size_t>(std::countr_zero(m));
        if (player_bit_[i] == 0) continue;
        combo |= player_bit_[i];
        agg_[player_vhc_[i]] += states_[i];
      }
      worth_[mask] = combo == 0 ? 0.0 : worth_from(combo, agg_);
    }
  }

  std::vector<double> phi(n, 0.0);
  const std::span<const double> worth{worth_.data(), n_masks};
  if (pool_ != nullptr && !table_.has_value() && n >= pool_min_players_)
    accumulate_shapley_phi_parallel(n, worth, weights_, phi, *pool_);
  else
    accumulate_shapley_phi(n, worth, weights_, phi);
  return phi;
}

std::vector<double> ShapleyVhcEstimator::estimate_legacy(
    std::span<const VmSample> vms, double adjusted_power_w) {
  std::vector<common::VmTypeId> types;
  types.reserve(vms.size());
  for (const VmSample& vm : vms) types.push_back(vm.type);
  const VhcPartition partition(universe_, std::move(types));

  const auto states = states_of(vms);
  const Coalition grand = Coalition::grand(vms.size());

  const StateWorthFn worth = [&](Coalition s,
                                 std::span<const common::StateVector> c) {
    if (s.is_empty()) return 0.0;
    if (anchor_ && s == grand) return adjusted_power_w;
    // Idle members add no power (paper Remark 1), so they must not steer the
    // VHC-combination choice either: v({busy, idle}) has to equal v({busy})
    // exactly, or the Dummy axiom breaks through weight differences between
    // combinations.
    Coalition active = s;
    for (Player i : s.members())
      if (c[i] == common::StateVector::zero()) active = active.without(i);
    if (active.is_empty()) return 0.0;
    const auto aggregated = partition.aggregate(active, c);
    const VhcComboMask combo = partition.combo_of(active);
    ++worth_queries_;
    if (table_.has_value()) {
      // Fig. 8's lookup-first path: a directly-measured state beats the
      // regression.
      if (const auto hit = table_->lookup(combo, aggregated)) {
        ++table_hits_;
        return *hit;
      }
    }
    return approx_.predict(combo, aggregated);
  };

  return nondet_shapley_values(states, worth);
}

OracleShapleyEstimator::OracleShapleyEstimator(const sim::CoalitionProbe& probe,
                                               bool anchor)
    : probe_(probe), anchor_(anchor) {}

std::vector<double> OracleShapleyEstimator::estimate(
    std::span<const VmSample> vms, double adjusted_power_w) {
  require_input(vms, adjusted_power_w);
  if (vms.size() != probe_.fleet_size())
    throw std::invalid_argument(
        "OracleShapleyEstimator: sample count != probe fleet size");
  for (std::size_t i = 0; i < vms.size(); ++i)
    if (vms[i].type != probe_.configs()[i].type_id)
      throw std::invalid_argument(
          "OracleShapleyEstimator: VM order does not match probe fleet");

  const auto states = states_of(vms);
  const Coalition grand = Coalition::grand(vms.size());
  const StateWorthFn worth = [&](Coalition s,
                                 std::span<const common::StateVector> c) {
    if (s.is_empty()) return 0.0;
    if (anchor_ && s == grand) return adjusted_power_w;
    return probe_.worth(s.mask(), c);
  };
  return nondet_shapley_values(states, worth);
}

}  // namespace vmp::core
