// Electricity vs IT-cost economics behind the paper's Table I and Fig. 1.
//
// Table I compares the yearly electricity cost of the CPU powering a
// mid-level (16 vCPU) AWS instance against its amortized hardware cost, for
// 2015 retail electricity prices in the USA and Germany. We reconstruct the
// table from first principles: cost = TDP_kW x 8760 h x tariff.
#pragma once

#include <string>
#include <vector>

namespace vmp::core {

/// 2015 retail electricity tariffs used by Table I (USD per kWh).
inline constexpr double kUsTariffUsdPerKwh = 0.10;
inline constexpr double kGermanyTariffUsdPerKwh = 0.1921;

/// Time-of-use electricity tariff: one peak window per day billed at the
/// peak rate, everything else at the off-peak rate. Utilities price exactly
/// this way, and a per-VM attribution service must price the *time* energy
/// was drawn, not just the amount — the same kWh costs more at 18:00 than at
/// 03:00. `seconds_per_hour` compresses the day for tests and benches (a
/// "day" of 24 x 10 s makes TOU boundaries reachable in short runs).
struct TouRateSchedule {
  double offpeak_usd_per_kwh = kUsTariffUsdPerKwh;
  double peak_usd_per_kwh = kUsTariffUsdPerKwh;
  double peak_start_hour = 17.0;     ///< in [0, 24).
  double peak_end_hour = 21.0;       ///< in [0, 24); < start wraps midnight.
  double seconds_per_hour = 3600.0;  ///< > 0; compressible for tests.

  /// Throws std::invalid_argument on negative rates, hours outside [0, 24),
  /// or a non-positive hour length.
  void validate() const;

  /// True when peak and off-peak rates coincide or the peak window is empty
  /// (the schedule degenerates to a flat tariff).
  [[nodiscard]] bool is_flat() const noexcept;

  [[nodiscard]] double day_seconds() const noexcept {
    return 24.0 * seconds_per_hour;
  }

  /// Rate in force at absolute time `t_s` (seconds since accounting start).
  [[nodiscard]] double rate_at(double t_s) const noexcept;

  /// Earliest rate-change boundary strictly after `t_s` (t_s + one day for a
  /// flat schedule, so iteration always terminates).
  [[nodiscard]] double next_boundary_after(double t_s) const noexcept;
};

/// Maximal constant-rate interval of a schedule.
struct TouSegment {
  double t0 = 0.0;
  double t1 = 0.0;
  double usd_per_kwh = 0.0;
};

/// Splits [t0, t1) into maximal constant-rate segments, in time order.
/// Throws std::invalid_argument when t1 < t0 or the schedule is invalid.
[[nodiscard]] std::vector<TouSegment> tou_segments(
    const TouRateSchedule& schedule, double t0, double t1);

/// Cost of `energy_j` joules drawn at constant power over [t0, t1) under the
/// schedule (each segment is billed its time-proportional energy share).
/// A zero-length window is billed at rate_at(t0).
[[nodiscard]] double tou_cost_usd(const TouRateSchedule& schedule, double t0,
                                  double t1, double energy_j);

/// Yearly electricity cost in USD of a device drawing `watts` continuously.
[[nodiscard]] double yearly_electricity_cost_usd(double watts,
                                                 double usd_per_kwh);

/// One row of Table I.
struct InstanceCostRow {
  std::string instance_type;
  double cpu_tdp_w = 0.0;       ///< designed power of the backing Xeon CPU.
  double electricity_usa = 0.0; ///< USD / year at the US tariff.
  double electricity_germany = 0.0;
  double cpu_cost = 0.0;        ///< amortized yearly IT hardware cost, USD.
  double ram_cost = 0.0;
  double ssd_cost = 0.0;
};

/// The reconstructed Table I (electricity columns computed, hardware columns
/// from the paper's sourcing).
[[nodiscard]] std::vector<InstanceCostRow> aws_instance_cost_table();

}  // namespace vmp::core
