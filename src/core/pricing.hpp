// Electricity vs IT-cost economics behind the paper's Table I and Fig. 1.
//
// Table I compares the yearly electricity cost of the CPU powering a
// mid-level (16 vCPU) AWS instance against its amortized hardware cost, for
// 2015 retail electricity prices in the USA and Germany. We reconstruct the
// table from first principles: cost = TDP_kW x 8760 h x tariff.
#pragma once

#include <string>
#include <vector>

namespace vmp::core {

/// 2015 retail electricity tariffs used by Table I (USD per kWh).
inline constexpr double kUsTariffUsdPerKwh = 0.10;
inline constexpr double kGermanyTariffUsdPerKwh = 0.1921;

/// Yearly electricity cost in USD of a device drawing `watts` continuously.
[[nodiscard]] double yearly_electricity_cost_usd(double watts,
                                                 double usd_per_kwh);

/// One row of Table I.
struct InstanceCostRow {
  std::string instance_type;
  double cpu_tdp_w = 0.0;       ///< designed power of the backing Xeon CPU.
  double electricity_usa = 0.0; ///< USD / year at the US tariff.
  double electricity_germany = 0.0;
  double cpu_cost = 0.0;        ///< amortized yearly IT hardware cost, USD.
  double ram_cost = 0.0;
  double ssd_cost = 0.0;
};

/// The reconstructed Table I (electricity columns computed, hardware columns
/// from the paper's sourcing).
[[nodiscard]] std::vector<InstanceCostRow> aws_instance_cost_table();

}  // namespace vmp::core
