// Checkers for the four Shapley axioms (paper Sec. IV-B, Axioms 1-4).
//
// These are used two ways: as property tests over random games, and by the
// fairness benches to demonstrate which axioms each baseline estimator
// violates (Table III's "macro-level accuracy" is exactly Efficiency; its
// "fairness" column is Symmetry).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/coalition.hpp"

namespace vmp::core {

/// Axiom 1 (Efficiency): Σ_i Φ_i == v(N) within tol.
[[nodiscard]] bool check_efficiency(std::span<const double> values,
                                    double grand_worth, double tol = 1e-9);

/// Signed efficiency gap Σ_i Φ_i − v(N).
[[nodiscard]] double efficiency_gap(std::span<const double> values,
                                    double grand_worth);

/// True if players i and j are symmetric in the game: for every S with
/// i, j ∉ S, v(S ∪ {i}) == v(S ∪ {j}) within tol. O(2^n) worth evaluations.
[[nodiscard]] bool players_symmetric(std::size_t n, const WorthFn& v, Player i,
                                     Player j, double tol = 1e-9);

/// All symmetric pairs of the game.
[[nodiscard]] std::vector<std::pair<Player, Player>> symmetric_pairs(
    std::size_t n, const WorthFn& v, double tol = 1e-9);

/// Axiom 2 (Symmetry): every symmetric pair receives equal payoff within tol.
[[nodiscard]] bool check_symmetry(std::size_t n, const WorthFn& v,
                                  std::span<const double> values,
                                  double tol = 1e-9);

/// True if player i is a dummy: v(S ∪ {i}) − v(S) == 0 for all S, within tol.
[[nodiscard]] bool player_is_dummy(std::size_t n, const WorthFn& v, Player i,
                                   double tol = 1e-9);

/// Axiom 3 (Dummy): every dummy player receives zero payoff within tol.
[[nodiscard]] bool check_dummy(std::size_t n, const WorthFn& v,
                               std::span<const double> values,
                               double tol = 1e-9);

/// Axiom 4 (Additivity): for games u, w over the same players, checks that
/// shapley(u) + shapley(w) == shapley(u + w) element-wise within tol.
[[nodiscard]] bool check_additivity(std::size_t n, const WorthFn& u,
                                    const WorthFn& w, double tol = 1e-9);

/// Report of all four axioms for a given game and allocation, as printed by
/// the fairness benches.
struct AxiomReport {
  bool efficiency = false;
  bool symmetry = false;
  bool dummy = false;
  double efficiency_gap = 0.0;
};

[[nodiscard]] AxiomReport evaluate_axioms(std::size_t n, const WorthFn& v,
                                          std::span<const double> values,
                                          double tol = 1e-6);

}  // namespace vmp::core
