#include "core/shared_weights.hpp"

#include <cmath>
#include <stdexcept>

#include "util/least_squares.hpp"

namespace vmp::core {

using common::kNumComponents;

SharedWeightApprox SharedWeightApprox::fit(const VscTable& table,
                                           double ridge_lambda) {
  if (ridge_lambda < 0.0)
    throw std::invalid_argument("SharedWeightApprox::fit: ridge_lambda < 0");
  if (table.total_samples() == 0)
    throw std::invalid_argument("SharedWeightApprox::fit: empty table");

  const std::size_t r = table.num_vhcs();
  const std::size_t n_cols = r * kNumComponents;

  util::Matrix design(table.total_samples(), n_cols);
  std::vector<double> target;
  target.reserve(table.total_samples());
  std::size_t row = 0;
  for (const VhcComboMask combo : table.combos()) {
    for (const VscSample& sample : table.samples(combo)) {
      for (std::size_t j = 0; j < r; ++j) {
        const auto values = sample.vhc_states[j].values();
        for (std::size_t c = 0; c < kNumComponents; ++c)
          design(row, j * kNumComponents + c) = values[c];
      }
      target.push_back(sample.power_w);
      ++row;
    }
  }

  const util::LeastSquaresResult solution =
      util::solve_ridge(design, target, std::max(ridge_lambda, 1e-12));

  SharedWeightApprox approx(r);
  approx.weights_ = solution.coefficients;
  approx.rmse_ =
      solution.residual_norm / std::sqrt(static_cast<double>(target.size()));
  approx.samples_ = target.size();
  return approx;
}

double SharedWeightApprox::predict(
    std::span<const common::StateVector> states) const {
  if (states.size() != num_vhcs_)
    throw std::invalid_argument("SharedWeightApprox::predict: states size");
  double power = 0.0;
  for (std::size_t j = 0; j < num_vhcs_; ++j) {
    const std::span<const double> wj{weights_.data() + j * kNumComponents,
                                     kNumComponents};
    power += states[j].dot(wj);
  }
  return power;
}

}  // namespace vmp::core
