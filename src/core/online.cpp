#include "core/online.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vmp::core {

MeteringLoop::MeteringLoop(sim::PhysicalMachine& machine,
                           PowerEstimator& estimator, double period_s,
                           EnergyAccountant* accountant)
    : machine_(machine), estimator_(estimator), period_s_(period_s),
      accountant_(accountant) {
  if (!(period_s > 0.0))
    throw std::invalid_argument("MeteringLoop: period must be > 0");
}

MeteringSample MeteringLoop::step() {
  MeteringSample sample;
  const sim::MeterFrame frame = machine_.step(period_s_);
  sample.time_s = machine_.now();
  sample.meter_power_w = frame.active_power_w;
  sample.adjusted_power_w =
      std::max(0.0, frame.active_power_w - machine_.idle_power_w());
  for (const sim::VmObservation& obs : machine_.hypervisor().observations())
    sample.vms.push_back({obs.id, obs.type_id, obs.state});

  if (!sample.vms.empty()) {
    sample.phi = estimator_.estimate(sample.vms, sample.adjusted_power_w);
    if (accountant_ != nullptr)
      accountant_->add_sample(sample.vms, sample.phi,
                              machine_.idle_power_w(), period_s_);
  }
  ++steps_;
  return sample;
}

void MeteringLoop::run(
    double duration_s,
    const std::function<void(const MeteringSample&)>& on_sample) {
  if (!(duration_s > 0.0))
    throw std::invalid_argument("MeteringLoop::run: duration must be > 0");
  const auto count =
      static_cast<std::size_t>(std::round(duration_s / period_s_));
  for (std::size_t k = 0; k < count; ++k) {
    const MeteringSample sample = step();
    if (on_sample) on_sample(sample);
  }
}

}  // namespace vmp::core
