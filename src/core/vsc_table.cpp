#include "core/vsc_table.hpp"

#include <array>
#include <stdexcept>

namespace vmp::core {

VscTable::VscTable(std::size_t num_vhcs, double resolution)
    : num_vhcs_(num_vhcs), resolution_(resolution) {
  if (num_vhcs == 0 || num_vhcs > VhcUniverse::kMaxVhcs)
    throw std::invalid_argument("VscTable: bad VHC count");
  if (!(resolution > 0.0))
    throw std::invalid_argument("VscTable: resolution must be > 0");
}

void VscTable::validate_query(
    VhcComboMask combo, std::span<const common::StateVector> vhc_states) const {
  if (vhc_states.size() != num_vhcs_)
    throw std::invalid_argument("VscTable: vhc_states size != num_vhcs");
  if (num_vhcs_ < 32 && (combo >> num_vhcs_) != 0)
    throw std::invalid_argument("VscTable: combo addresses unknown VHCs");
}

void VscTable::record(VhcComboMask combo,
                      std::span<const common::StateVector> vhc_states,
                      double power_w) {
  validate_query(combo, vhc_states);
  if (power_w < 0.0)
    throw std::invalid_argument("VscTable::record: negative power");
  VscSample sample;
  sample.combo = combo;
  sample.vhc_states.reserve(num_vhcs_);
  for (const auto& state : vhc_states)
    sample.vhc_states.push_back(state.quantized(resolution_));
  sample.power_w = power_w;
  samples_[combo].push_back(std::move(sample));
  ++total_;
}

const std::vector<VscSample>& VscTable::samples(VhcComboMask combo) const {
  static const std::vector<VscSample> kEmpty;
  const auto it = samples_.find(combo);
  return it != samples_.end() ? it->second : kEmpty;
}

std::optional<double> VscTable::lookup(
    VhcComboMask combo, std::span<const common::StateVector> vhc_states) const {
  validate_query(combo, vhc_states);
  const auto it = samples_.find(combo);
  if (it == samples_.end()) return std::nullopt;

  // lookup() runs once per coalition worth in the metering hot path: keep
  // the quantized query on the stack (num_vhcs_ <= kMaxVhcs by construction).
  std::array<common::StateVector, VhcUniverse::kMaxVhcs> query;
  for (std::size_t j = 0; j < num_vhcs_; ++j)
    query[j] = vhc_states[j].quantized(resolution_);

  double sum = 0.0;
  std::size_t hits = 0;
  const double tol = resolution_ / 2.0;
  for (const VscSample& sample : it->second) {
    bool match = true;
    for (std::size_t j = 0; j < num_vhcs_; ++j) {
      if (sample.vhc_states[j].max_abs_diff(query[j]) > tol) {
        match = false;
        break;
      }
    }
    if (match) {
      sum += sample.power_w;
      ++hits;
    }
  }
  if (hits == 0) return std::nullopt;
  return sum / static_cast<double>(hits);
}

std::vector<VhcComboMask> VscTable::combos() const {
  std::vector<VhcComboMask> out;
  out.reserve(samples_.size());
  for (const auto& [combo, _] : samples_) out.push_back(combo);
  return out;
}

}  // namespace vmp::core
