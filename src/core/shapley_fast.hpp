// Fast exact-Shapley kernels for the metering hot path.
//
// Three independent accelerations of core::shapley_values, all exact:
//
// 1. Symmetry collapse (paper Sec. V-B/V-C): datacenter VMs fall into r ≪ n
//    homogeneous types, and same-type VMs holding identical component states
//    are *symmetric players* — any coalition's worth depends only on how
//    many members of each group it contains, never on which ones. The
//    collapsed solver therefore enumerates type-count *compositions*
//    (Π_j (g_j + 1) worth evaluations, e.g. 625 for 4 groups of 4) instead
//    of raw masks (2^n, e.g. 65536), with zero approximation error:
//
//      Φ_{i ∈ group j} = Σ_k  C(g_j−1, k_j) · Π_{t≠j} C(g_t, k_t)
//                             · w(|k|) · [V(k + e_j) − V(k)]
//
//    where V(k) is the worth of any coalition with composition k and w is
//    the per-size Shapley weight.
//
// 2. A batched worth evaluator for the VHC linear approximation
//    (ComboWeightCache): every coalition worth of a VhcLinearApprox is a dot
//    product of the aggregated states with one per-combo weight vector, so
//    materializing all 2^n worths is a cache-friendly arithmetic pass — no
//    std::function dispatch, no per-coalition allocation. The cache also
//    resolves predict()'s disjoint-cover fallback for unfitted combos into
//    an *effective* weight vector once, so the fallback costs nothing per
//    tick afterwards.
//
// 3. A thread-parallel mask sweep for large distinguishable games,
//    partitioning the mask range into fixed chunks over util::ThreadPool
//    with a chunk-ordered deterministic reduction: the result is
//    byte-identical for any pool size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/state_vector.hpp"
#include "core/coalition.hpp"
#include "core/linear_approx.hpp"
#include "core/shapley.hpp"
#include "util/thread_pool.hpp"

namespace vmp::core {

/// A partition of the players into groups of pairwise-symmetric
/// (interchangeable) players, in first-seen order.
struct SymmetryGroups {
  std::vector<std::size_t> group_of;        ///< player -> dense group index.
  std::vector<std::vector<Player>> members; ///< group -> players, ascending.

  [[nodiscard]] std::size_t player_count() const noexcept {
    return group_of.size();
  }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return members.size();
  }
  [[nodiscard]] bool all_distinct() const noexcept {
    return group_count() == player_count();
  }
  /// Π_j (g_j + 1): worth evaluations the collapsed solver performs. Always
  /// <= 2^n, with equality exactly when every player is its own group.
  /// Saturates at SIZE_MAX instead of wrapping (64 distinct players), so the
  /// value stays safe to compare against kernel-selection thresholds.
  [[nodiscard]] std::size_t composition_count() const noexcept;

  void clear() noexcept {
    group_of.clear();
    members.clear();
  }
};

/// Groups players by (key, state) equality: two players are symmetric under
/// any VHC worth function iff they share a key (their VHC index) and hold
/// bit-identical state vectors. keys and states must have equal size.
/// Throws std::invalid_argument on a size mismatch.
[[nodiscard]] SymmetryGroups detect_symmetry(
    std::span<const std::size_t> keys,
    std::span<const common::StateVector> states);

/// In-place variant for hot paths: fills `out`, reusing its storage.
void detect_symmetry_into(std::span<const std::size_t> keys,
                          std::span<const common::StateVector> states,
                          SymmetryGroups& out);

/// Exact Shapley values via symmetry-collapsed composition enumeration.
/// Players in the same group must be interchangeable under v (the solver
/// evaluates v on one representative coalition per composition and
/// broadcasts the per-group value to every member). Falls back gracefully —
/// with all-singleton groups this is the plain mask sweep, just slower than
/// shapley_values, so callers should collapse only when group_count <
/// player_count. Throws std::invalid_argument on 0 players or more than
/// kMaxPlayers.
[[nodiscard]] std::vector<double> shapley_values_grouped(
    const SymmetryGroups& groups, const WorthFn& v);

/// Exact Shapley values via a thread-parallel mask sweep: worth evaluation
/// and marginal accumulation are partitioned into fixed chunks (independent
/// of the pool size) and reduced in chunk order, so the result is
/// byte-identical at any thread count. v must be safe to call concurrently.
/// Must not be called from a task running on `pool` (see util::ThreadPool).
/// Throws std::invalid_argument on n == 0 or n > kMaxPlayers.
[[nodiscard]] std::vector<double> shapley_values_parallel(
    std::size_t n, const WorthFn& v, util::ThreadPool& pool);

/// Chunk-parallel variant of accumulate_shapley_phi over a fully
/// materialized worth table. phi must be zeroed by the caller. Deterministic
/// for any pool size (fixed chunking + chunk-ordered reduction).
void accumulate_shapley_phi_parallel(std::size_t n,
                                     std::span<const double> worth,
                                     std::span<const double> weights,
                                     std::span<double> phi,
                                     util::ThreadPool& pool);

/// Cross-tick cache of per-combo *effective* power-mapping vectors for one
/// VhcLinearApprox: the fitted weights for fitted combos, and the summed
/// disjoint-cover weights for unfitted-but-coverable combos (extracted by
/// probing predict() with basis states, so the decomposition is exactly the
/// one predict() would choose). Entries are built lazily on first use and
/// are valid for the lifetime of the bound approximation, which is
/// immutable once fitted — this is what lets the estimator answer every
/// approximation worth as one dot product, tick after tick.
class ComboWeightCache {
 public:
  /// Dense per-combo storage is 2^num_vhcs vectors; beyond this VHC count
  /// callers should keep the unbatched path (realistic universes have
  /// r <= 5 types).
  static constexpr std::size_t kMaxDenseVhcs = 12;

  ComboWeightCache() = default;

  /// Binds (or re-binds) the approximation. Rebinding to a different object
  /// resets the cache; rebinding to the same pointer is a no-op, so hot
  /// paths may call this unconditionally.
  void bind(const VhcLinearApprox* approx);

  /// True when the bound universe fits the dense layout.
  [[nodiscard]] bool usable() const noexcept {
    return approx_ != nullptr && approx_->num_vhcs() <= kMaxDenseVhcs;
  }

  /// The effective weight vector for `combo` (num_vhcs * kNumComponents
  /// doubles, VHC-major). Throws std::out_of_range when the combo has no
  /// fitted cover (mirroring predict()), std::logic_error when unbound or
  /// over the dense limit. combo 0 yields an all-zero vector.
  [[nodiscard]] std::span<const double> effective_weights(VhcComboMask combo);

  /// predict() through the cache: dot(states, effective_weights(combo)).
  [[nodiscard]] double predict(VhcComboMask combo,
                               std::span<const common::StateVector> states);

 private:
  const VhcLinearApprox* approx_ = nullptr;
  std::size_t stride_ = 0;              ///< num_vhcs * kNumComponents.
  std::vector<double> weights_;         ///< combo-major dense table.
  std::vector<std::uint8_t> status_;    ///< 0 unknown, 1 cached, 2 uncoverable.
};

}  // namespace vmp::core
