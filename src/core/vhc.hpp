// Virtual Homogeneous VM Coalitions (paper Sec. V-C-1).
//
// Datacenter VMs come in a small catalogue of fixed types; the paper groups
// the members of any coalition S by type into VHCs and replaces the per-VM
// states by per-VHC aggregated state vectors v_j = Σ_{i in VHC j} c_i
// (Eq. 8). This cuts the measurement space from 2^n VM subsets to 2^r type
// combinations (r = number of types, typically <= 5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/state_vector.hpp"
#include "common/vm_config.hpp"
#include "core/coalition.hpp"

namespace vmp::core {

/// Bitmask over VHC (type) indices: bit j set => VHC j has members.
using VhcComboMask = std::uint32_t;

/// The fixed set of VM types a host's estimation pipeline is trained for.
/// Types get dense indices 0..r-1 in the order given at construction.
class VhcUniverse {
 public:
  /// Throws std::invalid_argument on an empty list, duplicates, or more than
  /// kMaxVhcs types.
  explicit VhcUniverse(std::vector<common::VmTypeId> types);

  static constexpr std::size_t kMaxVhcs = 16;

  [[nodiscard]] std::size_t size() const noexcept { return types_.size(); }
  /// Dense VHC index of a type; throws std::out_of_range for unknown types.
  [[nodiscard]] std::size_t index_of(common::VmTypeId type) const;
  [[nodiscard]] common::VmTypeId type_at(std::size_t index) const;
  [[nodiscard]] bool knows(common::VmTypeId type) const noexcept;

  /// Number of VHC combinations (2^r), the paper's offline traversal count.
  [[nodiscard]] std::size_t combo_count() const noexcept {
    return std::size_t{1} << types_.size();
  }

  /// Universe from the distinct types appearing in a fleet, in first-seen
  /// order.
  [[nodiscard]] static VhcUniverse from_fleet(
      std::span<const common::VmConfig> fleet);

 private:
  std::vector<common::VmTypeId> types_;
};

/// Maps the players of one concrete game (a set of co-resident VMs) onto the
/// universe's VHCs.
class VhcPartition {
 public:
  /// vm_types[i] is the catalogue type of player i. Throws std::out_of_range
  /// if a type is not in the universe, std::invalid_argument if there are
  /// more than kMaxPlayers VMs.
  VhcPartition(const VhcUniverse& universe,
               std::vector<common::VmTypeId> vm_types);

  [[nodiscard]] std::size_t player_count() const noexcept {
    return groups_.size();
  }
  [[nodiscard]] std::size_t num_vhcs() const noexcept { return num_vhcs_; }
  /// Dense VHC index of player i.
  [[nodiscard]] std::size_t vhc_of(Player i) const;

  /// Which VHCs have at least one member in coalition s.
  [[nodiscard]] VhcComboMask combo_of(Coalition s) const;

  /// Aggregated per-VHC states for coalition s: entry j is
  /// Σ_{i in s, vhc(i)=j} states[i] (Eq. 8); zero for absent VHCs. states
  /// must have player_count() entries.
  [[nodiscard]] std::vector<common::StateVector> aggregate(
      Coalition s, std::span<const common::StateVector> states) const;

 private:
  std::vector<std::size_t> groups_;  // player -> VHC index.
  std::size_t num_vhcs_;
};

}  // namespace vmp::core
