#include "core/shapley_sampled.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "util/rng.hpp"

namespace vmp::core {

namespace {

/// Counter-based RNG: each (seed, stream) pair keys an independent splitmix64
/// walk, so round r of a run can be generated in isolation on any thread and
/// the draw sequence depends only on (seed, r). The stream offset constant is
/// deliberately *not* the splitmix64 gamma — offsetting by a multiple of the
/// gamma would make stream k start exactly where stream 0 is after k steps,
/// overlapping the windows.
class CounterRng {
 public:
  CounterRng(std::uint64_t seed, std::uint64_t stream) noexcept
      : state_(seed) {
    (void)util::splitmix64(state_);
    state_ += stream * 0xbf58476d1ce4e5b9ULL;
    (void)util::splitmix64(state_);
  }

  std::uint64_t next() noexcept { return util::splitmix64(state_); }

  /// Unbiased uniform draw in [0, bound) via Lemire's multiply-shift
  /// rejection. bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept {
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<unsigned __int128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  std::uint64_t state_;
};

inline void welford(std::uint64_t& cnt, double& mean, double& m2,
                    double x) noexcept {
  ++cnt;
  const double d = x - mean;
  mean += d / static_cast<double>(cnt);
  m2 += d * (x - mean);
}

/// Draws and evaluates one independent uniform coalition of each middle size
/// (|S| = 2..n−2) into masks/out[0..n−4]. Each size runs a fresh partial
/// Fisher–Yates over the id array: a partial shuffle of *any* permutation
/// with fresh randomness yields a uniform size-subset, so the per-size draws
/// are mutually independent — which is exactly what makes the per-player
/// stratum-variance sum the true variance of φ̂_i (nested prefixes of one
/// permutation would be positively correlated across sizes and the CI would
/// undercover). Runs on pool threads: touches only the round's own slots,
/// and the RNG state derives from (seed, round) alone.
void eval_round(std::size_t n, std::uint64_t seed, std::uint64_t round,
                const SampledWorthFn& worth, std::uint64_t* masks,
                double* out) {
  CounterRng rng(seed, round);
  std::uint8_t ids[kMaxSampledPlayers];
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint8_t>(i);
  for (std::size_t size = 2; size + 2 <= n; ++size) {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < size; ++i) {
      const std::uint64_t j = i + rng.below(n - i);
      std::swap(ids[i], ids[j]);
      mask |= 1ULL << ids[i];
    }
    masks[size - 2] = mask;
    out[size - 2] = worth(mask);
  }
}

}  // namespace

const char* to_string(SampledStopReason reason) noexcept {
  switch (reason) {
    case SampledStopReason::kExact:
      return "exact";
    case SampledStopReason::kMaxSamples:
      return "max_samples";
    case SampledStopReason::kHalfwidth:
      return "halfwidth";
    case SampledStopReason::kBudget:
      return "budget";
  }
  return "unknown";
}

void SampledShapley::fold_eval(std::size_t n, std::uint64_t members,
                               std::size_t size, double value) {
  const std::size_t stride = n + 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t at = i * stride + size;
    if ((members >> i) & 1ULL) {
      welford(plus_cnt_[at], plus_mean_[at], plus_m2_[at], value);
    } else {
      welford(minus_cnt_[at], minus_mean_[at], minus_m2_[at], value);
    }
  }
  welford(pool_cnt_[size], pool_mean_[size], pool_m2_[size], value);
}

SampledShapleyResult SampledShapley::run(std::size_t n,
                                         const SampledWorthFn& worth,
                                         double grand_worth,
                                         const SampledShapleyOptions& options) {
  if (n == 0 || n > kMaxSampledPlayers) {
    throw std::invalid_argument("SampledShapley: player count out of range");
  }
  if (!worth) throw std::invalid_argument("SampledShapley: null worth");
  if (options.max_samples == 0 && options.target_halfwidth_w <= 0.0 &&
      options.budget_ns == 0) {
    throw std::invalid_argument("SampledShapley: every stop rule disabled");
  }
  const auto start = std::chrono::steady_clock::now();

  const std::size_t stride = n + 1;
  const std::size_t cells = n * stride;
  plus_cnt_.assign(cells, 0);
  minus_cnt_.assign(cells, 0);
  plus_mean_.assign(cells, 0.0);
  minus_mean_.assign(cells, 0.0);
  plus_m2_.assign(cells, 0.0);
  minus_m2_.assign(cells, 0.0);
  pool_cnt_.assign(stride, 0);
  pool_mean_.assign(stride, 0.0);
  pool_m2_.assign(stride, 0.0);
  var_.assign(n, 0.0);

  SampledShapleyResult result;
  result.phi.assign(n, 0.0);
  result.halfwidth_w.assign(n, 0.0);

  const std::uint64_t grand_mask =
      n == 64 ? ~0ULL : ((1ULL << n) - 1ULL);

  // --- Deterministic warm-up: make strata of size 0, 1, n−1, n exact. ---
  fold_eval(n, 0ULL, 0, worth(0ULL));
  ++result.worth_evaluations;
  fold_eval(n, grand_mask, n, grand_worth);  // anchored, not evaluated.
  if (n >= 2) {
    for (std::size_t i = 0; i < n; ++i) {
      fold_eval(n, 1ULL << i, 1, worth(1ULL << i));
      ++result.worth_evaluations;
    }
  }
  if (n >= 3) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t co = grand_mask & ~(1ULL << i);
      fold_eval(n, co, n - 1, worth(co));
      ++result.worth_evaluations;
    }
  }

  // Middle sizes 2..n−2 exist only for n >= 4; below that the warm-up has
  // already covered every stratum and the answer is exact.
  const std::size_t per_round = n >= 4 ? n - 3 : 0;

  // Per-player CI half-width from the current accumulators. Exact strata
  // (sizes 0, 1, n−1, n) contribute zero variance; a middle stratum falls
  // back to the pooled per-size variance when its own side is too thin, and
  // to "unknown" (+inf, blocking a half-width stop) when even the pool has
  // fewer than two draws.
  const auto halfwidths = [&](std::vector<double>& out) {
    const double inv_n2 = 1.0 / (static_cast<double>(n) * n);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t size = 2; size + 2 <= n; ++size) {
        const std::size_t at = i * stride + size;
        double pooled_var = -1.0;
        if (pool_cnt_[size] >= 2) {
          pooled_var = pool_m2_[size] / static_cast<double>(pool_cnt_[size] - 1);
        }
        const auto side = [&](std::uint64_t cnt, double m2) {
          if (cnt >= 2) return m2 / static_cast<double>(cnt - 1) / cnt;
          if (pooled_var >= 0.0)
            return pooled_var / static_cast<double>(std::max<std::uint64_t>(cnt, 1));
          return std::numeric_limits<double>::infinity();
        };
        acc += side(plus_cnt_[at], plus_m2_[at]);
        acc += side(minus_cnt_[at], minus_m2_[at]);
      }
      out[i] = options.confidence_z * std::sqrt(acc * inv_n2);
    }
  };

  // --- Sampling rounds (batched, anytime). ---
  if (per_round > 0) {
    result.stopped_by = SampledStopReason::kMaxSamples;
    for (;;) {
      if (options.budget_ns != 0) {
        const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        if (static_cast<std::uint64_t>(elapsed) >= options.budget_ns) {
          result.stopped_by = SampledStopReason::kBudget;
          break;
        }
      }
      if (options.target_halfwidth_w > 0.0 && result.rounds > 0) {
        halfwidths(var_);
        if (*std::max_element(var_.begin(), var_.end()) <=
            options.target_halfwidth_w) {
          result.stopped_by = SampledStopReason::kHalfwidth;
          break;
        }
      }
      std::size_t rounds = std::max<std::size_t>(options.batch_rounds, 1);
      if (options.max_samples != 0) {
        if (result.worth_evaluations + per_round > options.max_samples) {
          result.stopped_by = SampledStopReason::kMaxSamples;
          break;
        }
        rounds = std::min(
            rounds, (options.max_samples - result.worth_evaluations) / per_round);
      }

      batch_mask_.resize(rounds * per_round);
      batch_worth_.resize(rounds * per_round);
      const auto run_round = [&](std::size_t r) {
        eval_round(n, options.seed, result.rounds + r,
                   worth, batch_mask_.data() + r * per_round,
                   batch_worth_.data() + r * per_round);
      };
      if (pool_ != nullptr && rounds > 1) {
        // Shared pool: wait on this batch's own completion counter, never
        // wait_idle (see run_mask_chunks in shapley_fast.cpp).
        std::mutex mu;
        std::condition_variable done_cv;
        std::size_t done = 0;
        std::exception_ptr first_error;
        for (std::size_t r = 0; r < rounds; ++r) {
          pool_->submit([&, r] {
            try {
              run_round(r);
            } catch (...) {
              const std::lock_guard<std::mutex> lock(mu);
              if (!first_error) first_error = std::current_exception();
            }
            const std::lock_guard<std::mutex> lock(mu);
            ++done;
            done_cv.notify_one();
          });
        }
        std::unique_lock<std::mutex> lock(mu);
        done_cv.wait(lock, [&] { return done == rounds; });
        if (first_error) std::rethrow_exception(first_error);
      } else {
        for (std::size_t r = 0; r < rounds; ++r) run_round(r);
      }

      // Serial fold in round order on the calling thread: the accumulator
      // state after this loop is independent of how the batch was scheduled.
      for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t size = 2; size + 2 <= n; ++size) {
          const std::size_t at = r * per_round + size - 2;
          fold_eval(n, batch_mask_[at], size, batch_worth_[at]);
        }
      }
      result.rounds += rounds;
      result.worth_evaluations += rounds * per_round;
    }
  }

  // --- Finalize: stratum means → φ̂, variances → CI, exact efficiency. ---
  halfwidths(result.halfwidth_w);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(result.halfwidth_w[i])) result.halfwidth_w[i] = 0.0;
  }
  double sum_raw = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double plus_sum = 0.0;
    double minus_sum = 0.0;
    for (std::size_t size = 0; size <= n; ++size) {
      const std::size_t at = i * stride + size;
      double plus = plus_mean_[at];
      double minus = minus_mean_[at];
      const bool middle = size >= 2 && size + 2 <= n;
      if (middle) {
        // Thin-side fallback: pooled per-size mean, then the proportional
        // grand split when not even one middle draw landed (tiny budgets).
        const double pooled =
            pool_cnt_[size] > 0
                ? pool_mean_[size]
                : grand_worth * static_cast<double>(size) / static_cast<double>(n);
        if (plus_cnt_[at] == 0) {
          plus = pooled;
          ++result.unseen_strata;
        }
        if (minus_cnt_[at] == 0) {
          minus = pooled;
          ++result.unseen_strata;
        }
      }
      if (size >= 1) plus_sum += plus;
      if (size <= n - 1) minus_sum += minus;
    }
    const double phi = (plus_sum - minus_sum) / static_cast<double>(n);
    result.phi[i] = phi;
    sum_raw += phi;
    result.max_halfwidth_w =
        std::max(result.max_halfwidth_w, result.halfwidth_w[i]);
    result.sum_halfwidth_w += result.halfwidth_w[i];
  }

  result.efficiency_gap_w = std::abs(grand_worth - sum_raw);
  const double shift = (grand_worth - sum_raw) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) result.phi[i] += shift;
  return result;
}

SampledShapleyResult sampled_shapley_values(std::size_t n,
                                            const SampledWorthFn& worth,
                                            double grand_worth,
                                            const SampledShapleyOptions& options,
                                            util::ThreadPool* pool) {
  SampledShapley solver;
  solver.set_thread_pool(pool);
  return solver.run(n, worth, grand_worth, options);
}

}  // namespace vmp::core
