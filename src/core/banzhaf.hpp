// Banzhaf power index — the classic alternative to the Shapley value.
//
// Where Shapley weights a player's marginal contribution by its arrival
// position (|S|!(n-|S|-1)!/n!), Banzhaf weights every sub-coalition equally
// (1/2^(n-1)):
//
//     β_i = (1 / 2^(n-1)) Σ_{S ⊆ N\{i}} [v(S ∪ {i}) − v(S)]
//
// Banzhaf satisfies Symmetry and Dummy but NOT Efficiency: Σ β_i ≠ v(N) in
// general, so using it for power billing requires rescaling to the
// measurement ("normalized Banzhaf") — which silently forfeits the axiomatic
// uniqueness that motivates the paper's choice of Shapley (Sec. IV-B: the
// Shapley value is the *only* allocation satisfying all four axioms). This
// module exists to make that trade-off measurable.
#pragma once

#include <vector>

#include "core/coalition.hpp"

namespace vmp::core {

/// Raw Banzhaf values β_i of an n-player game (2^n worth evaluations).
/// Throws std::invalid_argument on n == 0 or n > kMaxPlayers.
[[nodiscard]] std::vector<double> banzhaf_values(std::size_t n,
                                                 const WorthFn& v);

/// Banzhaf values rescaled so they sum to `target_total` (e.g. the measured
/// adjusted power). Degenerates to an equal split when all raw values are
/// zero. Throws like banzhaf_values.
[[nodiscard]] std::vector<double> normalized_banzhaf_values(
    std::size_t n, const WorthFn& v, double target_total);

}  // namespace vmp::core
