// Persistence of the offline artifacts (paper Fig. 8: the v(S, C) table is
// built once, stored, and consulted online ever after).
//
// Plain line-oriented text formats with a versioned magic header, so the
// files are diffable, greppable, and stable across library versions:
//
//   vmpower-vsc-table v1 num_vhcs=<r> resolution=<q>
//   <combo> <r x kNumComponents state values> <power_w>      (one per sample)
//
//   vmpower-vhc-approx v1 num_vhcs=<r>
//   <combo> <r x kNumComponents weights> <rmse> <sample_count>
//
// All load functions validate the header and throw std::runtime_error on
// malformed input.
// Billing state uses the same conventions, as *stream* blocks so composite
// checkpoints (the fleet engine's) can embed several accountants in one
// file:
//
//   vmpower-energy-accountant v1 policy=<p> seconds=<s> entries=<k>
//   <vm_id> <joules>                                          (k rows)
//
//   vmpower-multihost v1 entries=<e> unattributed=<j>
//   <tenant> <host> <joules>                                  (e rows)
#pragma once

#include <filesystem>
#include <iosfwd>

#include "core/accountant.hpp"
#include "core/linear_approx.hpp"
#include "core/multi_host.hpp"
#include "core/vsc_table.hpp"

namespace vmp::core {

/// Writes the table; throws std::runtime_error on I/O failure.
void save_table(const VscTable& table, const std::filesystem::path& path);

/// Reads a table written by save_table.
[[nodiscard]] VscTable load_table(const std::filesystem::path& path);

/// Writes the fitted approximation; throws std::runtime_error on I/O failure.
void save_approximation(const VhcLinearApprox& approx,
                        const std::filesystem::path& path);

/// Reads an approximation written by save_approximation.
[[nodiscard]] VhcLinearApprox load_approximation(
    const std::filesystem::path& path);

/// Writes one accountant block to the stream (see format above).
void write_accountant(std::ostream& out, const EnergyAccountant& accountant);

/// Reads a block written by write_accountant; throws std::runtime_error on
/// malformed input.
[[nodiscard]] EnergyAccountant read_accountant(std::istream& in);

/// Writes the cross-host tenant ledger (energies only; bindings are
/// configuration, not ledger state).
void write_multi_host(std::ostream& out,
                      const MultiHostAccountant& accountant);

/// Restores the energies of `accountant` from a block written by
/// write_multi_host; throws std::runtime_error on malformed input.
void read_multi_host(std::istream& in, MultiHostAccountant& accountant);

}  // namespace vmp::core
