// Persistence of the offline artifacts (paper Fig. 8: the v(S, C) table is
// built once, stored, and consulted online ever after).
//
// Plain line-oriented text formats with a versioned magic header, so the
// files are diffable, greppable, and stable across library versions:
//
//   vmpower-vsc-table v1 num_vhcs=<r> resolution=<q>
//   <combo> <r x kNumComponents state values> <power_w>      (one per sample)
//
//   vmpower-vhc-approx v1 num_vhcs=<r>
//   <combo> <r x kNumComponents weights> <rmse> <sample_count>
//
// All load functions validate the header and throw std::runtime_error on
// malformed input.
#pragma once

#include <filesystem>

#include "core/linear_approx.hpp"
#include "core/vsc_table.hpp"

namespace vmp::core {

/// Writes the table; throws std::runtime_error on I/O failure.
void save_table(const VscTable& table, const std::filesystem::path& path);

/// Reads a table written by save_table.
[[nodiscard]] VscTable load_table(const std::filesystem::path& path);

/// Writes the fitted approximation; throws std::runtime_error on I/O failure.
void save_approximation(const VhcLinearApprox& approx,
                        const std::filesystem::path& path);

/// Reads an approximation written by save_approximation.
[[nodiscard]] VhcLinearApprox load_approximation(
    const std::filesystem::path& path);

}  // namespace vmp::core
