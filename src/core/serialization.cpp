#include "core/serialization.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace vmp::core {

namespace {

constexpr const char* kTableMagic = "vmpower-vsc-table v1";
constexpr const char* kApproxMagic = "vmpower-vhc-approx v1";
constexpr const char* kAccountantMagic = "vmpower-energy-accountant v1";
constexpr const char* kMultiHostMagic = "vmpower-multihost v1";

std::ofstream open_out(const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("serialization: cannot open for write: " +
                             path.string());
  out.precision(12);
  return out;
}

std::ifstream open_in(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("serialization: cannot open for read: " +
                             path.string());
  return in;
}

/// Parses "key=value" returning the value; throws on mismatch.
double header_value(const std::string& token, const std::string& key) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0)
    throw std::runtime_error("serialization: expected '" + key +
                             "=...' in header, got '" + token + "'");
  return std::stod(token.substr(prefix.size()));
}

}  // namespace

void save_table(const VscTable& table, const std::filesystem::path& path) {
  std::ofstream out = open_out(path);
  out << kTableMagic << " num_vhcs=" << table.num_vhcs()
      << " resolution=" << table.resolution() << '\n';
  for (const VhcComboMask combo : table.combos()) {
    for (const VscSample& sample : table.samples(combo)) {
      out << combo;
      for (const auto& state : sample.vhc_states)
        for (const double v : state.values()) out << ' ' << v;
      out << ' ' << sample.power_w << '\n';
    }
  }
  if (!out) throw std::runtime_error("save_table: write failed");
}

VscTable load_table(const std::filesystem::path& path) {
  std::ifstream in = open_in(path);
  std::string magic_a, magic_b, vhcs_token, resolution_token;
  in >> magic_a >> magic_b >> vhcs_token >> resolution_token;
  if (magic_a + " " + magic_b != kTableMagic)
    throw std::runtime_error("load_table: bad magic in " + path.string());
  const auto num_vhcs =
      static_cast<std::size_t>(header_value(vhcs_token, "num_vhcs"));
  const double resolution = header_value(resolution_token, "resolution");

  VscTable table(num_vhcs, resolution);
  VhcComboMask combo = 0;
  while (in >> combo) {
    std::vector<common::StateVector> states(num_vhcs);
    for (auto& state : states) {
      for (std::size_t c = 0; c < common::kNumComponents; ++c) {
        double v = 0.0;
        if (!(in >> v))
          throw std::runtime_error("load_table: truncated sample row");
        state[static_cast<common::Component>(c)] = v;
      }
    }
    double power = 0.0;
    if (!(in >> power))
      throw std::runtime_error("load_table: truncated sample row");
    table.record(combo, states, power);
  }
  return table;
}

void save_approximation(const VhcLinearApprox& approx,
                        const std::filesystem::path& path) {
  std::ofstream out = open_out(path);
  out << kApproxMagic << " num_vhcs=" << approx.num_vhcs() << '\n';
  for (const auto& model : approx.export_models()) {
    out << model.combo;
    for (const double w : model.weights) out << ' ' << w;
    out << ' ' << model.rmse << ' ' << model.sample_count << '\n';
  }
  if (!out) throw std::runtime_error("save_approximation: write failed");
}

VhcLinearApprox load_approximation(const std::filesystem::path& path) {
  std::ifstream in = open_in(path);
  std::string magic_a, magic_b, vhcs_token;
  in >> magic_a >> magic_b >> vhcs_token;
  if (magic_a + " " + magic_b != kApproxMagic)
    throw std::runtime_error("load_approximation: bad magic in " +
                             path.string());
  const auto num_vhcs =
      static_cast<std::size_t>(header_value(vhcs_token, "num_vhcs"));

  std::vector<VhcLinearApprox::ComboModelData> models;
  VhcComboMask combo = 0;
  while (in >> combo) {
    VhcLinearApprox::ComboModelData data;
    data.combo = combo;
    data.weights.resize(num_vhcs * common::kNumComponents);
    for (double& w : data.weights)
      if (!(in >> w))
        throw std::runtime_error("load_approximation: truncated weight row");
    if (!(in >> data.rmse >> data.sample_count))
      throw std::runtime_error("load_approximation: truncated weight row");
    models.push_back(std::move(data));
  }
  return VhcLinearApprox::from_models(num_vhcs, models);
}

void write_accountant(std::ostream& out, const EnergyAccountant& accountant) {
  const auto ids = accountant.vm_ids();
  const auto precision = out.precision(17);
  out << kAccountantMagic
      << " policy=" << static_cast<int>(accountant.policy())
      << " seconds=" << accountant.accounted_seconds()
      << " entries=" << ids.size() << '\n';
  for (const std::uint32_t id : ids)
    out << id << ' ' << accountant.energy_j(id) << '\n';
  out.precision(precision);
  if (!out) throw std::runtime_error("write_accountant: write failed");
}

EnergyAccountant read_accountant(std::istream& in) {
  std::string magic_a, magic_b, policy_token, seconds_token, entries_token;
  in >> magic_a >> magic_b >> policy_token >> seconds_token >> entries_token;
  if (magic_a + " " + magic_b != kAccountantMagic)
    throw std::runtime_error("read_accountant: bad magic");
  const int policy = static_cast<int>(header_value(policy_token, "policy"));
  if (policy < 0 || policy > static_cast<int>(IdleAttribution::kProportional))
    throw std::runtime_error("read_accountant: unknown idle policy");
  const double seconds = header_value(seconds_token, "seconds");
  const auto entries =
      static_cast<std::size_t>(header_value(entries_token, "entries"));

  std::vector<std::pair<std::uint32_t, double>> energies(entries);
  for (auto& [vm_id, joules] : energies)
    if (!(in >> vm_id >> joules))
      throw std::runtime_error("read_accountant: truncated entry row");

  EnergyAccountant accountant(static_cast<IdleAttribution>(policy));
  accountant.restore(energies, seconds);
  return accountant;
}

void write_multi_host(std::ostream& out,
                      const MultiHostAccountant& accountant) {
  const auto records = accountant.energy_records();
  const auto precision = out.precision(17);
  out << kMultiHostMagic << " entries=" << records.size()
      << " unattributed=" << accountant.unattributed_energy_j() << '\n';
  for (const auto& record : records)
    out << record.tenant << ' ' << record.host << ' ' << record.joules
        << '\n';
  out.precision(precision);
  if (!out) throw std::runtime_error("write_multi_host: write failed");
}

void read_multi_host(std::istream& in, MultiHostAccountant& accountant) {
  std::string magic_a, magic_b, entries_token, unattributed_token;
  in >> magic_a >> magic_b >> entries_token >> unattributed_token;
  if (magic_a + " " + magic_b != kMultiHostMagic)
    throw std::runtime_error("read_multi_host: bad magic");
  const auto entries =
      static_cast<std::size_t>(header_value(entries_token, "entries"));
  const double unattributed =
      header_value(unattributed_token, "unattributed");

  std::vector<MultiHostAccountant::EnergyRecord> records(entries);
  for (auto& record : records)
    if (!(in >> record.tenant >> record.host >> record.joules))
      throw std::runtime_error("read_multi_host: truncated entry row");
  accountant.restore(records, unattributed);
}

}  // namespace vmp::core
