// Shared-weight approximation of v(S, C) — the Sec. VIII "applicable
// scenario" extension.
//
// The paper's VHC approximation fits a separate weight set per VHC
// *combination*, which needs 2^r offline campaigns. When VMs come in many
// types (arbitrary shapes), 2^r is infeasible; the paper leaves that case
// open. This extension fits a single weight vector per VHC shared across all
// combinations:
//
//     v(S, C) ~= Σ_j  w_j · v_j      (same w_j for every combination)
//
// trading per-combination fidelity (cross-VHC couplings can no longer be
// absorbed into combination-specific weights) for measurement cost that is
// *linear* in the number of types: singleton campaigns suffice, and any
// coalition of known types becomes predictable. bench_ablation_vhc's
// Ablation E quantifies the accuracy price.
#pragma once

#include <span>
#include <vector>

#include "core/vsc_table.hpp"

namespace vmp::core {

class SharedWeightApprox {
 public:
  /// Fits the shared weights over every sample in the table (all combos
  /// pooled). ridge_lambda >= 0. Throws std::invalid_argument on an empty
  /// table.
  [[nodiscard]] static SharedWeightApprox fit(const VscTable& table,
                                              double ridge_lambda = 1e-6);

  [[nodiscard]] std::size_t num_vhcs() const noexcept { return num_vhcs_; }

  /// Flattened weights (num_vhcs x kNumComponents, VHC-major).
  [[nodiscard]] std::span<const double> weights() const noexcept {
    return weights_;
  }

  /// Predicted v(S, C) for aggregated per-VHC states (num_vhcs entries).
  /// Works for *any* combination, measured or not — that is the point.
  [[nodiscard]] double predict(
      std::span<const common::StateVector> states) const;

  /// RMS residual over the training samples, watts.
  [[nodiscard]] double fit_rmse() const noexcept { return rmse_; }
  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }

 private:
  explicit SharedWeightApprox(std::size_t num_vhcs) : num_vhcs_(num_vhcs) {}

  std::size_t num_vhcs_;
  std::vector<double> weights_;
  double rmse_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace vmp::core
