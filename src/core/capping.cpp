#include "core/capping.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmp::core {

void CapPolicy::validate() const {
  if (!(cap_w > 0.0))
    throw std::invalid_argument("CapPolicy: cap must be > 0");
  if (decrease_factor <= 0.0 || decrease_factor >= 1.0)
    throw std::invalid_argument("CapPolicy: decrease_factor must be in (0,1)");
  if (increase_step < 0.0)
    throw std::invalid_argument("CapPolicy: increase_step must be >= 0");
  if (comfort_margin < 0.0 || comfort_margin >= 1.0)
    throw std::invalid_argument("CapPolicy: comfort_margin must be in [0,1)");
  if (min_throttle <= 0.0 || min_throttle > 1.0)
    throw std::invalid_argument("CapPolicy: min_throttle must be in (0,1]");
}

void PowerCapController::set_cap(std::uint32_t vm_id, CapPolicy policy) {
  policy.validate();
  const auto [it, inserted] = states_.emplace(vm_id, State{policy, 1.0, 0});
  if (!inserted)
    throw std::invalid_argument("PowerCapController: VM already capped");
}

bool PowerCapController::has_cap(std::uint32_t vm_id) const noexcept {
  return states_.contains(vm_id);
}

double PowerCapController::throttle(std::uint32_t vm_id) const noexcept {
  const auto it = states_.find(vm_id);
  return it != states_.end() ? it->second.throttle : 1.0;
}

void PowerCapController::observe(std::span<const VmSample> vms,
                                 std::span<const double> phi) {
  if (vms.size() != phi.size())
    throw std::invalid_argument("PowerCapController: vms/phi size mismatch");
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const auto it = states_.find(vms[i].vm_id);
    if (it == states_.end()) continue;
    State& state = it->second;
    if (phi[i] > state.policy.cap_w) {
      ++state.violations;
      state.throttle = std::max(state.policy.min_throttle,
                                state.throttle * state.policy.decrease_factor);
    } else if (phi[i] <
               (1.0 - state.policy.comfort_margin) * state.policy.cap_w) {
      state.throttle =
          std::min(1.0, state.throttle + state.policy.increase_step);
    }
  }
}

std::size_t PowerCapController::violations(std::uint32_t vm_id) const noexcept {
  const auto it = states_.find(vm_id);
  return it != states_.end() ? it->second.violations : 0;
}

}  // namespace vmp::core
