#include "core/monte_carlo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace vmp::core {

MonteCarloResult monte_carlo_shapley(std::size_t n, const WorthFn& v,
                                     const MonteCarloOptions& options) {
  if (n == 0 || n > kMaxPlayers)
    throw std::invalid_argument("monte_carlo_shapley: n out of range");
  if (options.permutations == 0)
    throw std::invalid_argument("monte_carlo_shapley: need >= 1 permutation");

  util::Rng rng(options.seed);

  // Small games get a dense per-mask memo (2^n doubles plus a seen-bitmap —
  // no hashing on the walk's inner loop); larger mask spaces fall back to
  // the hash map, which only ever holds the visited prefixes.
  const bool dense = n <= 20;
  std::vector<double> dense_memo;
  std::vector<std::uint8_t> dense_seen;
  std::unordered_map<Coalition::Mask, double> memo;
  std::size_t evaluations = 0;
  if (dense) {
    dense_memo.assign(std::size_t{1} << n, 0.0);
    dense_seen.assign(std::size_t{1} << n, 0);
  } else {
    memo.reserve(1024);
  }

  auto worth = [&](Coalition s) {
    if (dense) {
      const std::size_t mask = s.mask();
      if (!dense_seen[mask]) {
        dense_seen[mask] = 1;
        dense_memo[mask] = v(s);
        ++evaluations;
      }
      return dense_memo[mask];
    }
    const auto [it, inserted] = memo.try_emplace(s.mask(), 0.0);
    if (inserted) {
      it->second = v(s);
      ++evaluations;
    }
    return it->second;
  };

  // Welford accumulators per player over per-permutation marginals.
  std::vector<double> mean(n, 0.0);
  std::vector<double> m2(n, 0.0);
  std::size_t walks = 0;

  auto walk = [&](const std::vector<Player>& order) {
    ++walks;
    Coalition prefix = Coalition::empty();
    double prev = worth(prefix);
    for (Player p : order) {
      prefix = prefix.with(p);
      const double curr = worth(prefix);
      const double marginal = curr - prev;
      prev = curr;
      const double delta = marginal - mean[p];
      mean[p] += delta / static_cast<double>(walks);
      m2[p] += delta * (marginal - mean[p]);
    }
  };

  std::vector<Player> order(n);
  std::vector<Player> reversed(n);
  std::iota(order.begin(), order.end(), Player{0});
  for (std::size_t k = 0; k < options.permutations; ++k) {
    rng.shuffle(order);
    walk(order);
    if (options.antithetic) {
      std::copy(order.rbegin(), order.rend(), reversed.begin());
      walk(reversed);
    }
  }

  MonteCarloResult result;
  result.values = mean;
  result.std_errors.resize(n, 0.0);
  if (walks > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      const double var = m2[i] / static_cast<double>(walks - 1);
      result.std_errors[i] = std::sqrt(var / static_cast<double>(walks));
    }
  }
  result.worth_evaluations = evaluations;
  result.permutations_used = walks;
  return result;
}

}  // namespace vmp::core
