#include "core/monte_carlo.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace vmp::core {

MonteCarloResult monte_carlo_shapley(std::size_t n, const WorthFn& v,
                                     const MonteCarloOptions& options) {
  if (n == 0 || n > kMaxPlayers)
    throw std::invalid_argument("monte_carlo_shapley: n out of range");
  if (options.permutations == 0)
    throw std::invalid_argument("monte_carlo_shapley: need >= 1 permutation");

  util::Rng rng(options.seed);
  std::unordered_map<Coalition::Mask, double> memo;
  memo.reserve(1024);

  auto worth = [&](Coalition s) {
    const auto [it, inserted] = memo.try_emplace(s.mask(), 0.0);
    if (inserted) it->second = v(s);
    return it->second;
  };

  // Welford accumulators per player over per-permutation marginals.
  std::vector<double> mean(n, 0.0);
  std::vector<double> m2(n, 0.0);
  std::size_t walks = 0;

  auto walk = [&](const std::vector<Player>& order) {
    ++walks;
    Coalition prefix = Coalition::empty();
    double prev = worth(prefix);
    for (Player p : order) {
      prefix = prefix.with(p);
      const double curr = worth(prefix);
      const double marginal = curr - prev;
      prev = curr;
      const double delta = marginal - mean[p];
      mean[p] += delta / static_cast<double>(walks);
      m2[p] += delta * (marginal - mean[p]);
    }
  };

  std::vector<Player> order(n);
  std::iota(order.begin(), order.end(), Player{0});
  for (std::size_t k = 0; k < options.permutations; ++k) {
    rng.shuffle(order);
    walk(order);
    if (options.antithetic) {
      std::vector<Player> reversed(order.rbegin(), order.rend());
      walk(reversed);
    }
  }

  MonteCarloResult result;
  result.values = mean;
  result.std_errors.resize(n, 0.0);
  if (walks > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      const double var = m2[i] / static_cast<double>(walks - 1);
      result.std_errors[i] = std::sqrt(var / static_cast<double>(walks));
    }
  }
  result.worth_evaluations = memo.size();
  result.permutations_used = walks;
  return result;
}

}  // namespace vmp::core
