// Anytime approximate Shapley: a stratified, marginal-free sampling kernel.
//
// The exact kernels in shapley_fast.hpp win whenever symmetry collapses the
// coalition space, but a host where every VM is a distinct (type, state)
// pair degenerates back to 2^n — a 64-VM mixed host never answers. This
// kernel estimates the Shapley vector from shared coalition draws instead,
// in the stratified style of SVARM (Kolpaczki et al.): one worth evaluation
// v(S) updates a welfare accumulator for *every* player — the (i, |S|)
// "plus" stratum for each member i and the (j, |S|) "minus" stratum for
// each non-member j — so no marginal contribution v(S∪{i}) − v(S) is ever
// formed explicitly. The estimate is the per-size difference of stratum
// means:
//
//   φ̂_i = (1/n) [ Σ_{ℓ=1..n} mean⁺(i, ℓ)  −  Σ_{ℓ=0..n−1} mean⁻(i, ℓ) ]
//
// Structure of a run:
//
//  * Deterministic warm-up (~2n evaluations): v(∅) and the anchored
//    grand worth seed the boundary strata; all n singletons and all n
//    co-singletons make every stratum of size 0, 1, n−1, and n *exact* —
//    which also means games with n <= 3 are solved exactly with no
//    sampling at all.
//  * Sampling rounds: round r draws, from a counter-based RNG keyed on
//    (seed, r), one *independent* uniform coalition of each middle size
//    2..n−2 (a fresh partial Fisher–Yates per size), so every stratum mean
//    is unbiased and one round covers every middle size with n−3
//    evaluations. Independence across sizes is deliberate: nested prefixes
//    of a single permutation would correlate a player's strata and make the
//    reported intervals undercover.
//  * Anytime stop rule, checked once per batch of rounds: `max_samples`
//    (worth-evaluation budget), `target_halfwidth_w` (every player's CI
//    half-width at or below the target), `budget_ns` (wall clock) —
//    whichever is hit first wins.
//
// Per-stratum Welford variance tracking yields a per-player confidence
// half-width z·sqrt(Σ_ℓ var⁺/cnt⁺ + var⁻/cnt⁻)/n. For a fixed player the
// strata really are independent — draws of different sizes are independent
// by construction, and at one size each draw lands on exactly one of the
// plus/minus sides — so the variance sum is the variance of φ̂_i, not an
// approximation. The returned vector is normalized by a uniform shift so
// Σφ̂ equals the grand worth exactly as summed; the pre-shift gap is
// reported so callers can check it against the CI (the invariant monitor
// does).
//
// Determinism: every round's draws come from its own counter-derived
// stream, batches evaluate rounds in parallel into pre-assigned slots, and
// the accumulator fold happens on the calling thread in round order — the
// result is byte-identical at any thread count for a fixed seed. (A
// `budget_ns` stop is the one escape hatch: wall-clock stopping points
// depend on machine speed, so only the sample-count and half-width rules
// preserve cross-machine identity.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/coalition.hpp"  // kMaxSampledPlayers
#include "util/thread_pool.hpp"

namespace vmp::core {

/// Worth of the coalition whose members are the set bits of `members`
/// (player i <-> bit i). Must be safe to call concurrently — batches are
/// evaluated on the thread pool.
using SampledWorthFn = std::function<double(std::uint64_t members)>;

struct SampledShapleyOptions {
  /// Base seed of the counter-based draw streams. Runs with equal
  /// (seed, game) are byte-identical at any thread count.
  std::uint64_t seed = 1;
  /// Worth-evaluation budget (warm-up included). The deterministic warm-up
  /// always completes (~2n evaluations), so the effective floor is one
  /// warm-up; 0 means unlimited — then at least one of the other rules must
  /// be set.
  std::size_t max_samples = 60'000;
  /// Stop once every player's CI half-width is at or below this many watts
  /// (0 disables).
  double target_halfwidth_w = 0.0;
  /// Wall-clock budget for the whole run (0 disables). Checked per batch,
  /// so the overshoot is bounded by one batch of rounds.
  std::uint64_t budget_ns = 0;
  /// CI multiplier for the reported half-widths. The 3-sigma default keeps
  /// the *joint* "every player inside its interval" event likely even for
  /// large n, which is what the fleet invariant consumes.
  double confidence_z = 3.0;
  /// Sampling rounds between stop-rule checks (one round = n−3 middle-size
  /// evaluations); also the parallel fan-out unit.
  std::size_t batch_rounds = 16;
};

enum class SampledStopReason : std::uint8_t {
  kExact,       ///< n <= 3: the warm-up already covers every stratum.
  kMaxSamples,  ///< evaluation budget exhausted.
  kHalfwidth,   ///< every player's CI half-width reached the target.
  kBudget,      ///< wall-clock budget elapsed.
};

/// Literal name of a stop reason ("exact", "max_samples", "halfwidth",
/// "budget") — safe to hold as a string_view forever.
[[nodiscard]] const char* to_string(SampledStopReason reason) noexcept;

struct SampledShapleyResult {
  /// Estimated per-player watts, uniformly shifted so the sum equals the
  /// grand worth (up to one floating-point rounding of the shift).
  std::vector<double> phi;
  /// Per-player CI half-width (W) at the configured z.
  std::vector<double> halfwidth_w;
  double max_halfwidth_w = 0.0;
  /// Conservative CI bound on Σφ̂: the sum of the per-player half-widths.
  /// The pre-shift efficiency gap must stay inside it.
  double sum_halfwidth_w = 0.0;
  /// |Σφ̂_raw − grand worth| before the efficiency shift.
  double efficiency_gap_w = 0.0;
  std::size_t worth_evaluations = 0;
  std::size_t rounds = 0;
  /// Middle (player, size) strata that ended with zero draws on one side
  /// and were finalized from the pooled per-size mean instead. Nonzero only
  /// on very short runs (sizes 2 and n−2 cover a given player at rate 2/n
  /// per round).
  std::size_t unseen_strata = 0;
  SampledStopReason stopped_by = SampledStopReason::kExact;
};

/// Reusable solver object: scratch and accumulator storage survive across
/// run() calls, so a per-tick caller (the estimator) allocates only on the
/// first tick. Not thread-safe; the parallelism is internal.
class SampledShapley {
 public:
  /// Opts batch evaluation into `pool` (nullptr = serial). The fold stays
  /// on the calling thread in round order either way, so the pool size
  /// never shows in the result. Must not be called from a task already
  /// running on `pool` (see util::ThreadPool).
  void set_thread_pool(util::ThreadPool* pool) noexcept { pool_ = pool; }

  /// Estimates the Shapley vector of the n-player game `worth` whose grand
  /// coalition worth is `grand_worth` (anchored by the caller — the kernel
  /// never evaluates the full mask). Throws std::invalid_argument on n == 0,
  /// n > kMaxSampledPlayers, or when every stop rule is disabled.
  [[nodiscard]] SampledShapleyResult run(std::size_t n,
                                         const SampledWorthFn& worth,
                                         double grand_worth,
                                         const SampledShapleyOptions& options);

 private:
  void fold_eval(std::size_t n, std::uint64_t members, std::size_t size,
                 double value);

  util::ThreadPool* pool_ = nullptr;

  // Stratum accumulators, player-major by size: index i * (n + 1) + size.
  // plus = strata of coalitions containing the player, minus = not.
  std::vector<std::uint64_t> plus_cnt_, minus_cnt_;
  std::vector<double> plus_mean_, minus_mean_;
  std::vector<double> plus_m2_, minus_m2_;
  // Pooled per-size accumulators over every draw of that size, membership
  // ignored — the fallback mean/variance for thin pair strata.
  std::vector<std::uint64_t> pool_cnt_;
  std::vector<double> pool_mean_, pool_m2_;
  // Batch scratch: per-(round, size) coalition masks and worths, written by
  // the pool tasks into disjoint slots, folded in round order.
  std::vector<std::uint64_t> batch_mask_;
  std::vector<double> batch_worth_;
  std::vector<double> var_;  ///< per-player variance scratch.
};

/// One-shot convenience wrapper around SampledShapley::run.
[[nodiscard]] SampledShapleyResult sampled_shapley_values(
    std::size_t n, const SampledWorthFn& worth, double grand_worth,
    const SampledShapleyOptions& options, util::ThreadPool* pool = nullptr);

}  // namespace vmp::core
