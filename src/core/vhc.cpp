#include "core/vhc.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmp::core {

VhcUniverse::VhcUniverse(std::vector<common::VmTypeId> types)
    : types_(std::move(types)) {
  if (types_.empty())
    throw std::invalid_argument("VhcUniverse: need at least one type");
  if (types_.size() > kMaxVhcs)
    throw std::invalid_argument("VhcUniverse: too many VM types");
  for (std::size_t i = 0; i < types_.size(); ++i)
    for (std::size_t j = i + 1; j < types_.size(); ++j)
      if (types_[i] == types_[j])
        throw std::invalid_argument("VhcUniverse: duplicate type");
}

std::size_t VhcUniverse::index_of(common::VmTypeId type) const {
  const auto it = std::find(types_.begin(), types_.end(), type);
  if (it == types_.end())
    throw std::out_of_range("VhcUniverse::index_of: unknown VM type");
  return static_cast<std::size_t>(it - types_.begin());
}

common::VmTypeId VhcUniverse::type_at(std::size_t index) const {
  if (index >= types_.size())
    throw std::out_of_range("VhcUniverse::type_at: bad index");
  return types_[index];
}

bool VhcUniverse::knows(common::VmTypeId type) const noexcept {
  return std::find(types_.begin(), types_.end(), type) != types_.end();
}

VhcUniverse VhcUniverse::from_fleet(std::span<const common::VmConfig> fleet) {
  std::vector<common::VmTypeId> types;
  for (const auto& config : fleet)
    if (std::find(types.begin(), types.end(), config.type_id) == types.end())
      types.push_back(config.type_id);
  return VhcUniverse(std::move(types));
}

VhcPartition::VhcPartition(const VhcUniverse& universe,
                           std::vector<common::VmTypeId> vm_types)
    : num_vhcs_(universe.size()) {
  // The sampled kernel meters up to kMaxSampledPlayers VMs; only the
  // Coalition-typed lookups below (combo_of, aggregate — legacy/exact paths)
  // stay bounded by kMaxPlayers.
  if (vm_types.size() > kMaxSampledPlayers)
    throw std::invalid_argument("VhcPartition: too many VMs");
  groups_.reserve(vm_types.size());
  for (common::VmTypeId type : vm_types)
    groups_.push_back(universe.index_of(type));
}

std::size_t VhcPartition::vhc_of(Player i) const {
  if (i >= groups_.size())
    throw std::out_of_range("VhcPartition::vhc_of: bad player");
  return groups_[i];
}

VhcComboMask VhcPartition::combo_of(Coalition s) const {
  VhcComboMask combo = 0;
  for (Player i = 0; i < groups_.size(); ++i)
    if (s.contains(i)) combo |= VhcComboMask{1} << groups_[i];
  return combo;
}

std::vector<common::StateVector> VhcPartition::aggregate(
    Coalition s, std::span<const common::StateVector> states) const {
  if (states.size() != groups_.size())
    throw std::invalid_argument("VhcPartition::aggregate: states size mismatch");
  std::vector<common::StateVector> agg(num_vhcs_);
  for (Player i = 0; i < groups_.size(); ++i)
    if (s.contains(i)) agg[groups_[i]] += states[i];
  return agg;
}

}  // namespace vmp::core
