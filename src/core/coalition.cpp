#include "core/coalition.hpp"

#include <bit>
#include <stdexcept>

namespace vmp::core {

Coalition Coalition::grand(std::size_t n) {
  if (n > kMaxPlayers)
    throw std::invalid_argument("Coalition::grand: too many players");
  if (n == 0) return empty();
  return Coalition{static_cast<Mask>((Mask{1} << n) - 1)};
}

Coalition Coalition::single(Player i) {
  if (i >= kMaxPlayers)
    throw std::invalid_argument("Coalition::single: player index too large");
  return Coalition{Mask{1} << i};
}

std::vector<Player> Coalition::members() const {
  std::vector<Player> out;
  out.reserve(size());
  Mask m = mask_;
  while (m != 0) {
    const auto i = static_cast<Player>(std::countr_zero(m));
    out.push_back(i);
    m &= m - 1;
  }
  return out;
}

void for_each_subset(Coalition of, const std::function<void(Coalition)>& fn) {
  const Coalition::Mask m = of.mask();
  // Standard submask enumeration: descends from m to 0, then visits empty.
  Coalition::Mask sub = m;
  while (true) {
    fn(Coalition{sub});
    if (sub == 0) break;
    sub = (sub - 1) & m;
  }
}

std::vector<Coalition> all_subsets(Coalition of) {
  if (of.size() > 24)
    throw std::invalid_argument("all_subsets: coalition too large to enumerate");
  std::vector<Coalition> out;
  out.reserve(std::size_t{1} << of.size());
  for_each_subset(of, [&](Coalition s) { out.push_back(s); });
  return out;
}

}  // namespace vmp::core
