#include "core/axioms.hpp"

#include <cmath>
#include <stdexcept>

#include "core/shapley.hpp"

namespace vmp::core {

namespace {
void require_game(std::size_t n) {
  if (n == 0 || n > kMaxPlayers)
    throw std::invalid_argument("axioms: n must be in [1, kMaxPlayers]");
}
}  // namespace

bool check_efficiency(std::span<const double> values, double grand_worth,
                      double tol) {
  return std::abs(efficiency_gap(values, grand_worth)) <= tol;
}

double efficiency_gap(std::span<const double> values, double grand_worth) {
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum - grand_worth;
}

bool players_symmetric(std::size_t n, const WorthFn& v, Player i, Player j,
                       double tol) {
  require_game(n);
  if (i >= n || j >= n)
    throw std::invalid_argument("players_symmetric: player out of range");
  if (i == j) return true;
  const Coalition rest = Coalition::grand(n).without(i).without(j);
  bool symmetric = true;
  for_each_subset(rest, [&](Coalition s) {
    if (!symmetric) return;
    if (std::abs(v(s.with(i)) - v(s.with(j))) > tol) symmetric = false;
  });
  return symmetric;
}

std::vector<std::pair<Player, Player>> symmetric_pairs(std::size_t n,
                                                       const WorthFn& v,
                                                       double tol) {
  require_game(n);
  std::vector<std::pair<Player, Player>> pairs;
  for (Player i = 0; i < n; ++i)
    for (Player j = i + 1; j < n; ++j)
      if (players_symmetric(n, v, i, j, tol)) pairs.emplace_back(i, j);
  return pairs;
}

bool check_symmetry(std::size_t n, const WorthFn& v,
                    std::span<const double> values, double tol) {
  if (values.size() != n)
    throw std::invalid_argument("check_symmetry: values size != n");
  for (const auto& [i, j] : symmetric_pairs(n, v, tol))
    if (std::abs(values[i] - values[j]) > tol) return false;
  return true;
}

bool player_is_dummy(std::size_t n, const WorthFn& v, Player i, double tol) {
  require_game(n);
  if (i >= n) throw std::invalid_argument("player_is_dummy: player out of range");
  const Coalition rest = Coalition::grand(n).without(i);
  bool dummy = true;
  for_each_subset(rest, [&](Coalition s) {
    if (!dummy) return;
    if (std::abs(v(s.with(i)) - v(s)) > tol) dummy = false;
  });
  return dummy;
}

bool check_dummy(std::size_t n, const WorthFn& v, std::span<const double> values,
                 double tol) {
  if (values.size() != n)
    throw std::invalid_argument("check_dummy: values size != n");
  for (Player i = 0; i < n; ++i)
    if (player_is_dummy(n, v, i, tol) && std::abs(values[i]) > tol) return false;
  return true;
}

bool check_additivity(std::size_t n, const WorthFn& u, const WorthFn& w,
                      double tol) {
  require_game(n);
  const auto phi_u = shapley_values(n, u);
  const auto phi_w = shapley_values(n, w);
  const auto phi_sum =
      shapley_values(n, [&](Coalition s) { return u(s) + w(s); });
  for (Player i = 0; i < n; ++i)
    if (std::abs(phi_u[i] + phi_w[i] - phi_sum[i]) > tol) return false;
  return true;
}

AxiomReport evaluate_axioms(std::size_t n, const WorthFn& v,
                            std::span<const double> values, double tol) {
  AxiomReport report;
  report.efficiency_gap = efficiency_gap(values, v(Coalition::grand(n)));
  report.efficiency = std::abs(report.efficiency_gap) <= tol;
  report.symmetry = check_symmetry(n, v, values, tol);
  report.dummy = check_dummy(n, v, values, tol);
  return report;
}

}  // namespace vmp::core
