// The v(S, C) table of the paper's framework (Fig. 8).
//
// During offline data collection the prototype stores, per VHC combination,
// the partially-measured (aggregated state, adjusted power) pairs at a fixed
// state-normalization resolution (0.01 in the paper's setup). The online path
// looks samples up by quantized state and falls back to the linear
// approximation for unobserved states.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/state_vector.hpp"
#include "core/vhc.hpp"

namespace vmp::core {

/// One offline measurement: coalition combo, aggregated per-VHC states
/// (always num_vhcs entries, zero for absent VHCs), adjusted machine power.
struct VscSample {
  VhcComboMask combo = 0;
  std::vector<common::StateVector> vhc_states;
  double power_w = 0.0;
};

class VscTable {
 public:
  /// num_vhcs: size of the VHC universe; resolution: state quantization step
  /// (> 0, paper uses 0.01). Throws std::invalid_argument on bad parameters.
  explicit VscTable(std::size_t num_vhcs, double resolution = 0.01);

  [[nodiscard]] std::size_t num_vhcs() const noexcept { return num_vhcs_; }
  [[nodiscard]] double resolution() const noexcept { return resolution_; }

  /// Records one measurement. States are quantized on entry. Throws
  /// std::invalid_argument if vhc_states.size() != num_vhcs, the combo
  /// addresses VHCs beyond the universe, or power is negative.
  void record(VhcComboMask combo,
              std::span<const common::StateVector> vhc_states, double power_w);

  /// All samples recorded for a combo (empty vector if none).
  [[nodiscard]] const std::vector<VscSample>& samples(VhcComboMask combo) const;

  /// Mean measured power over samples whose quantized state matches the
  /// query's exactly; nullopt when the state was never observed (the case
  /// the linear approximation exists for).
  [[nodiscard]] std::optional<double> lookup(
      VhcComboMask combo, std::span<const common::StateVector> vhc_states) const;

  [[nodiscard]] std::size_t total_samples() const noexcept { return total_; }
  /// Combos that have at least one sample.
  [[nodiscard]] std::vector<VhcComboMask> combos() const;

 private:
  std::size_t num_vhcs_;
  double resolution_;
  std::unordered_map<VhcComboMask, std::vector<VscSample>> samples_;
  std::size_t total_ = 0;

  void validate_query(VhcComboMask combo,
                      std::span<const common::StateVector> vhc_states) const;
};

}  // namespace vmp::core
