#include "core/collector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/physical_machine.hpp"
#include "sim/runner.hpp"
#include "util/logging.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace vmp::core {

void CollectionOptions::validate() const {
  if (!(duration_s > 0.0))
    throw std::invalid_argument("CollectionOptions: duration must be > 0");
  if (!(period_s > 0.0))
    throw std::invalid_argument("CollectionOptions: period must be > 0");
  if (!(resolution > 0.0))
    throw std::invalid_argument("CollectionOptions: resolution must be > 0");
  if (common_mode_prob < 0.0 || common_mode_prob > 1.0)
    throw std::invalid_argument(
        "CollectionOptions: common_mode_prob must be in [0, 1]");
  if (!(dwell_s > 0.0))
    throw std::invalid_argument("CollectionOptions: dwell must be > 0");
  if (high_band_prob < 0.0 || high_band_prob > 1.0)
    throw std::invalid_argument(
        "CollectionOptions: high_band_prob must be in [0, 1]");
  if (high_band_lo < 0.0 || high_band_lo > 1.0)
    throw std::invalid_argument(
        "CollectionOptions: high_band_lo must be in [0, 1]");
}

namespace {

/// Pre-generates the synthetic campaign traces for one combination run:
/// per dwell epoch, either one common level for every VM or independent
/// levels (see CollectionOptions::common_mode_prob).
std::vector<std::vector<common::StateVector>> make_campaign_traces(
    std::size_t vm_count, const CollectionOptions& options, util::Rng& rng) {
  const auto epochs = static_cast<std::size_t>(
      std::ceil(options.duration_s / options.dwell_s)) + 1;
  std::vector<std::vector<common::StateVector>> traces(vm_count);
  for (auto& trace : traces) trace.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    const bool common_mode = rng.bernoulli(options.common_mode_prob);
    const double lo =
        rng.bernoulli(options.high_band_prob) ? options.high_band_lo : 0.0;
    const double common_level = rng.uniform(lo, 1.0);
    for (std::size_t i = 0; i < vm_count; ++i) {
      common::StateVector state = common::StateVector::cpu_only(
          common_mode ? common_level : rng.uniform(lo, 1.0));
      if (options.exercise_all_components) {
        state[common::Component::kMemory] = rng.uniform();
        state[common::Component::kDiskIo] = rng.uniform(0.0, 0.5);
      }
      traces[i].push_back(state);
    }
  }
  return traces;
}

}  // namespace

OfflineDataset collect_offline_dataset(const sim::MachineSpec& spec,
                                       const std::vector<common::VmConfig>& fleet,
                                       const CollectionOptions& options) {
  options.validate();
  if (fleet.empty())
    throw std::invalid_argument("collect_offline_dataset: empty fleet");

  VhcUniverse universe = VhcUniverse::from_fleet(fleet);
  VscTable table(universe.size(), options.resolution);
  std::vector<common::StateVector> aggregated(universe.size());

  // Traverse the 2^r - 1 non-empty VHC combinations (paper Sec. V-C-1).
  for (VhcComboMask combo = 1; combo < universe.combo_count(); ++combo) {
    sim::PhysicalMachine machine(spec, options.seed * 1315423911ULL + combo);

    // Boot the fleet; start only VMs whose type belongs to the combination.
    util::Rng campaign_rng(options.seed ^ (combo * 0x9E3779B9ULL));
    const auto traces =
        make_campaign_traces(fleet.size(), options, campaign_rng);
    std::vector<sim::VmId> started;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      const common::VmConfig& config = fleet[i];
      const sim::VmId id = machine.hypervisor().create_vm(
          config, std::make_unique<wl::TraceWorkload>(traces[i],
                                                      options.dwell_s));
      const std::size_t vhc = universe.index_of(config.type_id);
      if ((combo & (VhcComboMask{1} << vhc)) != 0) {
        machine.hypervisor().start_vm(id);
        started.push_back(id);
      }
    }

    const sim::ScenarioTrace trace =
        sim::run_scenario(machine, options.duration_s, options.period_s);

    for (std::size_t k = 0; k < trace.size(); ++k) {
      const sim::DstatRecord& record = trace.states.records()[k];
      std::fill(aggregated.begin(), aggregated.end(),
                common::StateVector::zero());
      for (const sim::VmObservation& obs : record.observations)
        aggregated[universe.index_of(obs.type_id)] += obs.state;
      const double adjusted =
          std::max(0.0, trace.measured_power[k] - spec.idle_power_w);
      table.record(combo, aggregated, adjusted);
    }
    VMP_LOG_INFO("offline collection: combo %u -> %zu samples", combo,
                 trace.size());
  }

  VhcLinearApprox approximation = VhcLinearApprox::fit(table);
  return OfflineDataset{std::move(universe), std::move(table),
                        std::move(approximation)};
}

}  // namespace vmp::core
