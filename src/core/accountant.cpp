#include "core/accountant.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/units.hpp"

namespace vmp::core {

const char* to_string(IdleAttribution policy) noexcept {
  switch (policy) {
    case IdleAttribution::kNone: return "none";
    case IdleAttribution::kEqualShare: return "equal-share";
    case IdleAttribution::kProportional: return "proportional";
  }
  return "?";
}

EnergyAccountant::EnergyAccountant(IdleAttribution policy) : policy_(policy) {}

void EnergyAccountant::add_sample(std::span<const VmSample> vms,
                                  std::span<const double> phi,
                                  double idle_power_w, double dt_s) {
  if (vms.size() != phi.size())
    throw std::invalid_argument("EnergyAccountant: vms/phi size mismatch");
  if (!(dt_s > 0.0))
    throw std::invalid_argument("EnergyAccountant: dt must be > 0");
  if (idle_power_w < 0.0)
    throw std::invalid_argument("EnergyAccountant: idle power must be >= 0");

  double phi_total = 0.0;
  for (double p : phi) phi_total += p;

  for (std::size_t i = 0; i < vms.size(); ++i) {
    double watts = phi[i];
    switch (policy_) {
      case IdleAttribution::kNone:
        break;
      case IdleAttribution::kEqualShare:
        watts += idle_power_w / static_cast<double>(vms.size());
        break;
      case IdleAttribution::kProportional:
        // Degenerates to equal share when no VM draws dynamic power.
        watts += phi_total > 0.0
                     ? idle_power_w * phi[i] / phi_total
                     : idle_power_w / static_cast<double>(vms.size());
        break;
    }
    energy_j_[vms[i].vm_id] += watts * dt_s;
  }
  seconds_ += dt_s;
}

double EnergyAccountant::energy_j(std::uint32_t vm_id) const noexcept {
  const auto it = energy_j_.find(vm_id);
  return it != energy_j_.end() ? it->second : 0.0;
}

double EnergyAccountant::total_energy_j() const noexcept {
  double total = 0.0;
  for (const auto& [_, joules] : energy_j_) total += joules;
  return total;
}

double EnergyAccountant::bill_usd(std::uint32_t vm_id,
                                  double usd_per_kwh) const noexcept {
  return common::joules_to_kwh(energy_j(vm_id)) * usd_per_kwh;
}

void EnergyAccountant::restore(
    std::span<const std::pair<std::uint32_t, double>> energies,
    double seconds) {
  if (seconds < 0.0)
    throw std::invalid_argument("EnergyAccountant::restore: seconds < 0");
  std::unordered_map<std::uint32_t, double> restored;
  restored.reserve(energies.size());
  for (const auto& [vm_id, joules] : energies)
    if (!restored.emplace(vm_id, joules).second)
      throw std::invalid_argument(
          "EnergyAccountant::restore: duplicate VM id");
  energy_j_ = std::move(restored);
  seconds_ = seconds;
}

std::vector<std::uint32_t> EnergyAccountant::vm_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(energy_j_.size());
  for (const auto& [id, _] : energy_j_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace vmp::core
