#include "core/pricing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace vmp::core {

namespace {

/// Hour-of-day of an absolute time, in [0, 24).
double hour_of(const TouRateSchedule& schedule, double t_s) {
  double hour = std::fmod(t_s / schedule.seconds_per_hour, 24.0);
  if (hour < 0.0) hour += 24.0;
  return hour;
}

bool in_peak(const TouRateSchedule& schedule, double hour) {
  if (schedule.peak_start_hour <= schedule.peak_end_hour)
    return hour >= schedule.peak_start_hour && hour < schedule.peak_end_hour;
  // Wrap-around window, e.g. 22:00 -> 06:00.
  return hour >= schedule.peak_start_hour || hour < schedule.peak_end_hour;
}

}  // namespace

void TouRateSchedule::validate() const {
  if (offpeak_usd_per_kwh < 0.0 || peak_usd_per_kwh < 0.0)
    throw std::invalid_argument("TouRateSchedule: negative rate");
  if (peak_start_hour < 0.0 || peak_start_hour >= 24.0 ||
      peak_end_hour < 0.0 || peak_end_hour >= 24.0)
    throw std::invalid_argument(
        "TouRateSchedule: peak hours must lie in [0, 24)");
  if (!(seconds_per_hour > 0.0))
    throw std::invalid_argument("TouRateSchedule: seconds_per_hour must be > 0");
}

bool TouRateSchedule::is_flat() const noexcept {
  return peak_usd_per_kwh == offpeak_usd_per_kwh ||
         peak_start_hour == peak_end_hour;
}

double TouRateSchedule::rate_at(double t_s) const noexcept {
  if (is_flat()) return offpeak_usd_per_kwh;
  return in_peak(*this, hour_of(*this, t_s)) ? peak_usd_per_kwh
                                             : offpeak_usd_per_kwh;
}

double TouRateSchedule::next_boundary_after(double t_s) const noexcept {
  if (is_flat()) return t_s + day_seconds();
  const double day_base = std::floor(t_s / day_seconds()) * day_seconds();
  double next = t_s + day_seconds();
  // Candidate boundaries: both peak edges in this day and the next.
  for (const double edge : {peak_start_hour, peak_end_hour})
    for (int day = 0; day <= 1; ++day) {
      const double boundary =
          day_base + (edge + 24.0 * day) * seconds_per_hour;
      if (boundary > t_s) next = std::min(next, boundary);
    }
  return next;
}

std::vector<TouSegment> tou_segments(const TouRateSchedule& schedule,
                                     double t0, double t1) {
  schedule.validate();
  if (t1 < t0)
    throw std::invalid_argument("tou_segments: window end precedes start");
  std::vector<TouSegment> segments;
  if (schedule.is_flat() && t1 > t0)  // maximal segment is the whole window.
    return {{t0, t1, schedule.offpeak_usd_per_kwh}};
  double cursor = t0;
  while (cursor < t1) {
    const double next = std::min(t1, schedule.next_boundary_after(cursor));
    segments.push_back({cursor, next, schedule.rate_at(cursor)});
    cursor = next;
  }
  return segments;
}

double tou_cost_usd(const TouRateSchedule& schedule, double t0, double t1,
                    double energy_j) {
  if (energy_j < 0.0)
    throw std::invalid_argument("tou_cost_usd: negative energy");
  if (t1 <= t0) {
    schedule.validate();
    if (t1 < t0)
      throw std::invalid_argument("tou_cost_usd: window end precedes start");
    return common::joules_to_kwh(energy_j) * schedule.rate_at(t0);
  }
  const double span = t1 - t0;
  double cost = 0.0;
  for (const TouSegment& segment : tou_segments(schedule, t0, t1))
    cost += common::joules_to_kwh(energy_j * (segment.t1 - segment.t0) / span) *
            segment.usd_per_kwh;
  return cost;
}

double yearly_electricity_cost_usd(double watts, double usd_per_kwh) {
  if (watts < 0.0)
    throw std::invalid_argument("yearly_electricity_cost_usd: watts < 0");
  if (usd_per_kwh < 0.0)
    throw std::invalid_argument("yearly_electricity_cost_usd: tariff < 0");
  return common::yearly_kwh(watts) * usd_per_kwh;
}

std::vector<InstanceCostRow> aws_instance_cost_table() {
  // TDPs back-solved from the paper's electricity figures at the 2015
  // tariffs: $100.74 / y at $0.10 per kWh over 8760 h -> 115 W (the E5-2666v3
  // class); Compute Optimized -> 120 W. Hardware costs are the paper's
  // amortized figures (5-year refresh cycle).
  struct Base {
    const char* name;
    double tdp_w;
    double cpu, ram, ssd;
  };
  const Base bases[] = {
      {"General Purpose", 115.0, 310.4, 80.0, 26.0},
      {"Compute Optimized", 120.0, 349.0, 40.0, 26.0},
      {"Memory Optimized", 115.0, 310.4, 160.0, 26.0},
      {"Storage Optimized", 115.0, 310.4, 160.0, 256.0},
  };

  std::vector<InstanceCostRow> rows;
  rows.reserve(std::size(bases));
  for (const Base& base : bases) {
    InstanceCostRow row;
    row.instance_type = base.name;
    row.cpu_tdp_w = base.tdp_w;
    row.electricity_usa =
        yearly_electricity_cost_usd(base.tdp_w, kUsTariffUsdPerKwh);
    row.electricity_germany =
        yearly_electricity_cost_usd(base.tdp_w, kGermanyTariffUsdPerKwh);
    row.cpu_cost = base.cpu;
    row.ram_cost = base.ram;
    row.ssd_cost = base.ssd;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace vmp::core
