#include "core/pricing.hpp"

#include <stdexcept>

#include "common/units.hpp"

namespace vmp::core {

double yearly_electricity_cost_usd(double watts, double usd_per_kwh) {
  if (watts < 0.0)
    throw std::invalid_argument("yearly_electricity_cost_usd: watts < 0");
  if (usd_per_kwh < 0.0)
    throw std::invalid_argument("yearly_electricity_cost_usd: tariff < 0");
  return common::yearly_kwh(watts) * usd_per_kwh;
}

std::vector<InstanceCostRow> aws_instance_cost_table() {
  // TDPs back-solved from the paper's electricity figures at the 2015
  // tariffs: $100.74 / y at $0.10 per kWh over 8760 h -> 115 W (the E5-2666v3
  // class); Compute Optimized -> 120 W. Hardware costs are the paper's
  // amortized figures (5-year refresh cycle).
  struct Base {
    const char* name;
    double tdp_w;
    double cpu, ram, ssd;
  };
  const Base bases[] = {
      {"General Purpose", 115.0, 310.4, 80.0, 26.0},
      {"Compute Optimized", 120.0, 349.0, 40.0, 26.0},
      {"Memory Optimized", 115.0, 310.4, 160.0, 26.0},
      {"Storage Optimized", 115.0, 310.4, 160.0, 256.0},
  };

  std::vector<InstanceCostRow> rows;
  rows.reserve(std::size(bases));
  for (const Base& base : bases) {
    InstanceCostRow row;
    row.instance_type = base.name;
    row.cpu_tdp_w = base.tdp_w;
    row.electricity_usa =
        yearly_electricity_cost_usd(base.tdp_w, kUsTariffUsdPerKwh);
    row.electricity_germany =
        yearly_electricity_cost_usd(base.tdp_w, kGermanyTariffUsdPerKwh);
    row.cpu_cost = base.cpu;
    row.ram_cost = base.ram;
    row.ssd_cost = base.ssd;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace vmp::core
