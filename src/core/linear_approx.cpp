#include "core/linear_approx.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/least_squares.hpp"

namespace vmp::core {

using common::kNumComponents;

VhcLinearApprox VhcLinearApprox::fit(const VscTable& table, double ridge_lambda) {
  if (ridge_lambda < 0.0)
    throw std::invalid_argument("VhcLinearApprox::fit: ridge_lambda < 0");
  if (table.total_samples() == 0)
    throw std::invalid_argument("VhcLinearApprox::fit: empty table");

  VhcLinearApprox approx(table.num_vhcs());
  for (VhcComboMask combo : table.combos()) {
    const auto& samples = table.samples(combo);
    if (samples.empty()) continue;

    // Columns: (VHC j in combo) x component, VHC-major.
    std::vector<std::size_t> present;
    for (std::size_t j = 0; j < table.num_vhcs(); ++j)
      if ((combo & (VhcComboMask{1} << j)) != 0) present.push_back(j);
    const std::size_t n_cols = present.size() * kNumComponents;
    if (samples.size() < n_cols) {
      // Not enough rows for an ordinary solve; ridge still yields a usable
      // (shrunken) fit, which is better than refusing the combo outright.
      // Fall through — solve_ridge's augmented system is always square+.
    }

    util::Matrix design(samples.size(), n_cols);
    std::vector<double> target(samples.size());
    for (std::size_t row = 0; row < samples.size(); ++row) {
      const VscSample& sample = samples[row];
      for (std::size_t p = 0; p < present.size(); ++p) {
        const auto values = sample.vhc_states[present[p]].values();
        for (std::size_t c = 0; c < kNumComponents; ++c)
          design(row, p * kNumComponents + c) = values[c];
      }
      target[row] = sample.power_w;
    }

    const util::LeastSquaresResult solution =
        util::solve_ridge(design, target, std::max(ridge_lambda, 1e-12));

    ComboModel model;
    model.weights.assign(table.num_vhcs() * kNumComponents, 0.0);
    for (std::size_t p = 0; p < present.size(); ++p)
      for (std::size_t c = 0; c < kNumComponents; ++c)
        model.weights[present[p] * kNumComponents + c] =
            solution.coefficients[p * kNumComponents + c];
    model.rmse =
        solution.residual_norm / std::sqrt(static_cast<double>(samples.size()));
    model.sample_count = samples.size();
    approx.models_.emplace(combo, std::move(model));
  }
  return approx;
}

VhcLinearApprox VhcLinearApprox::from_models(
    std::size_t num_vhcs, std::span<const ComboModelData> models) {
  if (num_vhcs == 0 || num_vhcs > VhcUniverse::kMaxVhcs)
    throw std::invalid_argument("VhcLinearApprox::from_models: bad VHC count");
  if (models.empty())
    throw std::invalid_argument("VhcLinearApprox::from_models: no models");
  VhcLinearApprox approx(num_vhcs);
  for (const ComboModelData& data : models) {
    if (data.weights.size() != num_vhcs * kNumComponents)
      throw std::invalid_argument(
          "VhcLinearApprox::from_models: weight vector size mismatch");
    if (num_vhcs < 32 && (data.combo >> num_vhcs) != 0)
      throw std::invalid_argument(
          "VhcLinearApprox::from_models: combo addresses unknown VHCs");
    ComboModel model;
    model.weights = data.weights;
    model.rmse = data.rmse;
    model.sample_count = data.sample_count;
    if (!approx.models_.emplace(data.combo, std::move(model)).second)
      throw std::invalid_argument(
          "VhcLinearApprox::from_models: duplicate combo");
  }
  return approx;
}

std::vector<VhcLinearApprox::ComboModelData> VhcLinearApprox::export_models()
    const {
  std::vector<ComboModelData> out;
  out.reserve(models_.size());
  for (const VhcComboMask combo : fitted_combos()) {
    const ComboModel& model = models_.at(combo);
    out.push_back({combo, model.weights, model.rmse, model.sample_count});
  }
  return out;
}

bool VhcLinearApprox::has_combo(VhcComboMask combo) const noexcept {
  return models_.contains(combo);
}

std::vector<VhcComboMask> VhcLinearApprox::fitted_combos() const {
  std::vector<VhcComboMask> out;
  out.reserve(models_.size());
  for (const auto& [combo, _] : models_) out.push_back(combo);
  std::sort(out.begin(), out.end());
  return out;
}

std::span<const double> VhcLinearApprox::weights(VhcComboMask combo) const {
  const auto it = models_.find(combo);
  if (it == models_.end())
    throw std::out_of_range("VhcLinearApprox::weights: unfitted combo");
  return it->second.weights;
}

double VhcLinearApprox::fit_rmse(VhcComboMask combo) const {
  const auto it = models_.find(combo);
  if (it == models_.end())
    throw std::out_of_range("VhcLinearApprox::fit_rmse: unfitted combo");
  return it->second.rmse;
}

double VhcLinearApprox::predict_fitted(
    VhcComboMask combo, std::span<const common::StateVector> states) const {
  const auto& model = models_.at(combo);
  double power = 0.0;
  for (std::size_t j = 0; j < num_vhcs_; ++j) {
    const std::span<const double> wj{
        model.weights.data() + j * kNumComponents, kNumComponents};
    power += states[j].dot(wj);
  }
  return power;
}

double VhcLinearApprox::predict(
    VhcComboMask combo, std::span<const common::StateVector> states) const {
  if (states.size() != num_vhcs_)
    throw std::invalid_argument("VhcLinearApprox::predict: states size mismatch");
  if (combo == 0) return 0.0;
  if (models_.contains(combo)) return predict_fitted(combo, states);

  // Fallback: cover the query combo with the largest fitted disjoint
  // sub-combos (exact when cross-VHC couplings are negligible).
  std::vector<VhcComboMask> fitted = fitted_combos();
  std::sort(fitted.begin(), fitted.end(), [](VhcComboMask a, VhcComboMask b) {
    return std::popcount(a) > std::popcount(b);
  });
  double power = 0.0;
  VhcComboMask remaining = combo;
  for (VhcComboMask candidate : fitted) {
    if (candidate == 0) continue;
    if ((candidate & remaining) == candidate) {
      power += predict_fitted(candidate, states);
      remaining &= ~candidate;
      if (remaining == 0) return power;
    }
  }
  throw std::out_of_range(
      "VhcLinearApprox::predict: combo not fitted and not coverable by fitted "
      "sub-combos");
}

}  // namespace vmp::core
