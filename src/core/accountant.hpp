// Per-VM energy accounting and billing on top of per-sample power shares.
//
// The paper's motivation is fair *charging*: once Φ_i(t) is known each
// second, a tenant's bill is the integral of Φ_i plus an agreed share of the
// idle floor. Sec. VIII leaves the idle attribution open and names the two
// candidate policies, both implemented here.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/estimator.hpp"

namespace vmp::core {

/// How the machine's idle power is split among running VMs (paper Sec. VIII).
enum class IdleAttribution {
  kNone,          ///< bill dynamic power only.
  kEqualShare,    ///< idle / (number of running VMs) each.
  kProportional,  ///< idle split proportionally to Φ_i.
};

[[nodiscard]] const char* to_string(IdleAttribution policy) noexcept;

class EnergyAccountant {
 public:
  explicit EnergyAccountant(IdleAttribution policy = IdleAttribution::kNone);

  /// Accounts one sampling interval: vms[i] consumed phi[i] watts for dt_s
  /// seconds, plus its share of idle_power_w per the policy. Throws
  /// std::invalid_argument on size mismatch or non-positive dt.
  void add_sample(std::span<const VmSample> vms, std::span<const double> phi,
                  double idle_power_w, double dt_s);

  /// Cumulative attributed energy of a VM in joules (0 for unseen ids).
  [[nodiscard]] double energy_j(std::uint32_t vm_id) const noexcept;
  [[nodiscard]] double total_energy_j() const noexcept;
  /// Seconds of accounted wall time.
  [[nodiscard]] double accounted_seconds() const noexcept { return seconds_; }

  /// Bill for a VM at the given tariff (USD per kWh).
  [[nodiscard]] double bill_usd(std::uint32_t vm_id,
                                double usd_per_kwh) const noexcept;

  [[nodiscard]] IdleAttribution policy() const noexcept { return policy_; }

  /// Ids of all VMs that have accumulated energy, ascending.
  [[nodiscard]] std::vector<std::uint32_t> vm_ids() const;

  /// Replaces the accumulated state wholesale (checkpoint restore; see
  /// core/serialization). Throws std::invalid_argument on negative seconds
  /// or a duplicate VM id.
  void restore(std::span<const std::pair<std::uint32_t, double>> energies,
               double seconds);

 private:
  IdleAttribution policy_;
  std::unordered_map<std::uint32_t, double> energy_j_;
  double seconds_ = 0.0;
};

}  // namespace vmp::core
