// Per-VM power capping on top of Shapley power shares.
//
// The paper's introduction motivates VM power metering with per-VM power
// caps; this module supplies the control half: an AIMD (additive-increase /
// multiplicative-decrease) controller per VM that converts the estimator's
// Φ_i stream into a CPU throttle factor the hypervisor applies. AIMD is the
// natural choice because cap violations must be corrected fast (power
// over-draw trips breakers) while recovery can be gentle.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/estimator.hpp"

namespace vmp::core {

struct CapPolicy {
  double cap_w = 0.0;            ///< the VM's power budget.
  double decrease_factor = 0.90; ///< throttle *= this on violation, in (0,1).
  double increase_step = 0.01;   ///< throttle += this when comfortably under.
  double comfort_margin = 0.05;  ///< "comfortably under" = below (1-margin)*cap.
  double min_throttle = 0.10;    ///< never starve a VM completely.

  /// Throws std::invalid_argument on out-of-domain parameters.
  void validate() const;
};

/// One controller per capped VM; uncapped VMs keep throttle 1.0.
class PowerCapController {
 public:
  /// Registers a cap for a VM. Throws on invalid policy or duplicate VM.
  void set_cap(std::uint32_t vm_id, CapPolicy policy);

  [[nodiscard]] bool has_cap(std::uint32_t vm_id) const noexcept;
  /// Current throttle factor in [min_throttle, 1]; 1.0 for uncapped VMs.
  [[nodiscard]] double throttle(std::uint32_t vm_id) const noexcept;

  /// Feeds one estimation sample; updates each capped VM's throttle. vms and
  /// phi must be parallel (throws std::invalid_argument otherwise).
  void observe(std::span<const VmSample> vms, std::span<const double> phi);

  /// Count of cap violations observed so far for a VM.
  [[nodiscard]] std::size_t violations(std::uint32_t vm_id) const noexcept;

 private:
  struct State {
    CapPolicy policy;
    double throttle = 1.0;
    std::size_t violations = 0;
  };
  std::unordered_map<std::uint32_t, State> states_;
};

}  // namespace vmp::core
