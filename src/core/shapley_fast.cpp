#include "core/shapley_fast.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>

namespace vmp::core {
namespace {

constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

/// Fixed chunk count for the parallel sweep. Independent of the pool size so
/// the chunk boundaries — and therefore the reduction order — never change
/// with --threads.
constexpr std::size_t kParallelChunks = 64;

/// Pascal's triangle up to row n (exact in double for n <= kMaxPlayers).
std::vector<std::vector<double>> binomial_table(std::size_t n) {
  std::vector<std::vector<double>> c(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    c[i].assign(i + 1, 1.0);
    for (std::size_t j = 1; j < i; ++j) c[i][j] = c[i - 1][j - 1] + c[i - 1][j];
  }
  return c;
}

/// Runs fn(chunk, begin, end) over a fixed even partition of [0, n_masks)
/// and blocks until every chunk finished. Waits on its own completion
/// counter rather than ThreadPool::wait_idle so concurrent users of the pool
/// cannot extend the wait (and the nesting caveat stays the pool's only
/// restriction). The first exception thrown by a chunk is rethrown here.
void run_mask_chunks(
    util::ThreadPool& pool, std::size_t n_masks, std::size_t chunk_count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t done = 0;
  std::exception_ptr first_error;

  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t begin = c * n_masks / chunk_count;
    const std::size_t end = (c + 1) * n_masks / chunk_count;
    pool.submit([&, c, begin, end] {
      try {
        fn(c, begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      // Notify while holding the lock: the waiter owns the condvar's stack
      // frame and may destroy it the moment it observes done == chunk_count,
      // so the signal must complete before the mutex is released.
      const std::lock_guard<std::mutex> lock(mu);
      ++done;
      done_cv.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return done == chunk_count; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

std::size_t SymmetryGroups::composition_count() const noexcept {
  // Saturate instead of wrapping: 64 all-distinct players would otherwise
  // multiply 2^64 → 0 and defeat the "too many compositions, go sampled"
  // kernel-selection threshold.
  std::size_t count = 1;
  for (const auto& group : members) {
    const std::size_t factor = group.size() + 1;
    if (count > std::numeric_limits<std::size_t>::max() / factor)
      return std::numeric_limits<std::size_t>::max();
    count *= factor;
  }
  return count;
}

void detect_symmetry_into(std::span<const std::size_t> keys,
                          std::span<const common::StateVector> states,
                          SymmetryGroups& out) {
  if (keys.size() != states.size())
    throw std::invalid_argument("detect_symmetry: keys/states size mismatch");
  const std::size_t n = keys.size();
  out.clear();
  out.group_of.resize(n);
  for (Player i = 0; i < n; ++i) {
    std::size_t g = kNoGroup;
    // Linear probe against each group's representative: n <= kMaxPlayers
    // keeps this O(n^2) scan trivially cheap.
    for (std::size_t j = 0; j < out.members.size(); ++j) {
      const Player rep = out.members[j].front();
      if (keys[rep] == keys[i] && states[rep] == states[i]) {
        g = j;
        break;
      }
    }
    if (g == kNoGroup) {
      g = out.members.size();
      out.members.emplace_back();
    }
    out.members[g].push_back(i);
    out.group_of[i] = g;
  }
}

SymmetryGroups detect_symmetry(std::span<const std::size_t> keys,
                               std::span<const common::StateVector> states) {
  SymmetryGroups out;
  detect_symmetry_into(keys, states, out);
  return out;
}

std::vector<double> shapley_values_grouped(const SymmetryGroups& groups,
                                           const WorthFn& v) {
  const std::size_t n = groups.player_count();
  if (n == 0)
    throw std::invalid_argument("shapley_values_grouped: n must be >= 1");
  if (n > kMaxPlayers)
    throw std::invalid_argument("shapley_values_grouped: n exceeds kMaxPlayers");
  const std::size_t r = groups.group_count();
  std::size_t covered = 0;
  for (const auto& g : groups.members) covered += g.size();
  if (r == 0 || covered != n)
    throw std::invalid_argument(
        "shapley_values_grouped: groups do not partition the players");

  // Per-group sizes, prefix masks (representative coalition for k members of
  // group g = its first k players) and mixed-radix strides.
  std::vector<std::size_t> size(r);
  std::vector<std::vector<Coalition::Mask>> prefix(r);
  std::vector<std::size_t> stride(r);
  std::size_t comps = 1;
  for (std::size_t g = 0; g < r; ++g) {
    size[g] = groups.members[g].size();
    prefix[g].assign(size[g] + 1, 0);
    for (std::size_t k = 0; k < size[g]; ++k)
      prefix[g][k + 1] =
          prefix[g][k] | (Coalition::Mask{1} << groups.members[g][k]);
    stride[g] = comps;
    comps *= size[g] + 1;
  }

  // Evaluate one representative coalition per composition.
  std::vector<double> worth(comps);
  std::vector<std::size_t> k(r, 0);
  for (std::size_t idx = 0; idx < comps; ++idx) {
    Coalition::Mask mask = 0;
    for (std::size_t g = 0; g < r; ++g) mask |= prefix[g][k[g]];
    worth[idx] = v(Coalition{mask});
    for (std::size_t g = 0; g < r; ++g) {
      if (++k[g] <= size[g]) break;
      k[g] = 0;
    }
  }

  std::vector<double> weight;
  fill_shapley_weights(n, weight);
  const auto binom = binomial_table(n);

  // Φ_{i in group j} = Σ_k C(g_j−1, k_j) Π_{t≠j} C(g_t, k_t) w(|k|)
  //                        [V(k+e_j) − V(k)]
  // with the coefficient factored as [Π_t C(g_t, k_t)] · (g_j − k_j) / g_j.
  std::vector<double> phi_group(r, 0.0);
  std::fill(k.begin(), k.end(), 0);
  for (std::size_t idx = 0; idx < comps; ++idx) {
    std::size_t s = 0;
    double prod = 1.0;
    for (std::size_t g = 0; g < r; ++g) {
      s += k[g];
      prod *= binom[size[g]][k[g]];
    }
    if (s < n) {
      const double w = weight[s];
      const double base = worth[idx];
      for (std::size_t j = 0; j < r; ++j) {
        if (k[j] == size[j]) continue;
        const double coeff =
            prod * static_cast<double>(size[j] - k[j]) / static_cast<double>(size[j]);
        phi_group[j] += coeff * w * (worth[idx + stride[j]] - base);
      }
    }
    for (std::size_t g = 0; g < r; ++g) {
      if (++k[g] <= size[g]) break;
      k[g] = 0;
    }
  }

  std::vector<double> phi(n, 0.0);
  for (std::size_t j = 0; j < r; ++j)
    for (const Player p : groups.members[j]) phi[p] = phi_group[j];
  return phi;
}

void accumulate_shapley_phi_parallel(std::size_t n,
                                     std::span<const double> worth,
                                     std::span<const double> weights,
                                     std::span<double> phi,
                                     util::ThreadPool& pool) {
  const std::size_t n_masks = std::size_t{1} << n;
  const std::size_t chunk_count = std::min(kParallelChunks, n_masks);
  std::vector<std::vector<double>> partial(chunk_count);
  run_mask_chunks(pool, n_masks, chunk_count,
                  [&](std::size_t c, std::size_t begin, std::size_t end) {
                    partial[c].assign(n, 0.0);
                    accumulate_shapley_phi_range(n, worth, weights, partial[c],
                                                 begin, end);
                  });
  // Chunk-ordered reduction: the summation order depends only on the fixed
  // chunking, never on which worker ran which chunk.
  for (std::size_t c = 0; c < chunk_count; ++c)
    for (std::size_t i = 0; i < n; ++i) phi[i] += partial[c][i];
}

std::vector<double> shapley_values_parallel(std::size_t n, const WorthFn& v,
                                            util::ThreadPool& pool) {
  if (n == 0)
    throw std::invalid_argument("shapley_values_parallel: n must be >= 1");
  if (n > kMaxPlayers)
    throw std::invalid_argument("shapley_values_parallel: n exceeds kMaxPlayers");

  const std::size_t n_masks = std::size_t{1} << n;
  const std::size_t chunk_count = std::min(kParallelChunks, n_masks);

  std::vector<double> worth(n_masks);
  run_mask_chunks(pool, n_masks, chunk_count,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t mask = begin; mask < end; ++mask)
                      worth[mask] = v(Coalition{static_cast<Coalition::Mask>(mask)});
                  });

  std::vector<double> weight;
  fill_shapley_weights(n, weight);
  std::vector<double> phi(n, 0.0);
  accumulate_shapley_phi_parallel(n, worth, weight, phi, pool);
  return phi;
}

void ComboWeightCache::bind(const VhcLinearApprox* approx) {
  if (approx == approx_) return;
  approx_ = approx;
  weights_.clear();
  status_.clear();
  stride_ = 0;
  if (approx_ == nullptr || approx_->num_vhcs() > kMaxDenseVhcs) return;
  stride_ = approx_->num_vhcs() * common::kNumComponents;
  const std::size_t combos = std::size_t{1} << approx_->num_vhcs();
  weights_.assign(combos * stride_, 0.0);
  status_.assign(combos, 0);
  status_[0] = 1;  // The empty combo predicts 0: all-zero weights.
}

std::span<const double> ComboWeightCache::effective_weights(VhcComboMask combo) {
  if (!usable())
    throw std::logic_error(
        "ComboWeightCache: unbound or universe exceeds kMaxDenseVhcs");
  if (combo >= status_.size())
    throw std::out_of_range("ComboWeightCache: combo out of range");
  double* slot = weights_.data() + std::size_t{combo} * stride_;
  if (status_[combo] == 1) return {slot, stride_};
  if (status_[combo] == 2)
    throw std::out_of_range(
        "VhcLinearApprox::predict: no covering decomposition for combo");

  const std::size_t num_vhcs = approx_->num_vhcs();
  if (approx_->has_combo(combo)) {
    const auto fitted = approx_->weights(combo);
    std::copy(fitted.begin(), fitted.end(), slot);
    status_[combo] = 1;
    return {slot, stride_};
  }

  // predict() is linear in the aggregated states, so probing it with unit
  // basis vectors recovers — element by element — exactly the summed
  // disjoint-cover weights its fallback would apply to any state.
  std::vector<common::StateVector> basis(num_vhcs);
  try {
    for (std::size_t j = 0; j < num_vhcs; ++j) {
      if (((combo >> j) & 1u) == 0) continue;  // absent VHCs carry no weight.
      for (std::size_t c = 0; c < common::kNumComponents; ++c) {
        basis[j][static_cast<common::Component>(c)] = 1.0;
        slot[j * common::kNumComponents + c] = approx_->predict(combo, basis);
        basis[j][static_cast<common::Component>(c)] = 0.0;
      }
    }
  } catch (const std::out_of_range&) {
    std::fill(slot, slot + stride_, 0.0);
    status_[combo] = 2;
    throw;
  }
  status_[combo] = 1;
  return {slot, stride_};
}

double ComboWeightCache::predict(VhcComboMask combo,
                                 std::span<const common::StateVector> states) {
  const auto w = effective_weights(combo);
  if (states.size() * common::kNumComponents != w.size())
    throw std::invalid_argument("ComboWeightCache::predict: bad states size");
  double out = 0.0;
  for (std::size_t j = 0; j < states.size(); ++j)
    out += states[j].dot(w.subspan(j * common::kNumComponents,
                                   common::kNumComponents));
  return out;
}

}  // namespace vmp::core
