// Coalitions of VMs (players) for the cooperative game (paper Sec. IV).
//
// A coalition S ⊆ N is a bitmask over at most kMaxPlayers VMs. The paper's
// complexity analysis (Sec. V-B) bounds real deployments at n <= 16 VMs per
// host; we allow up to 30 so scaling benches can sweep beyond that bound.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

namespace vmp::core {

/// Index of a player (VM) within the game, 0-based.
using Player = std::size_t;

inline constexpr std::size_t kMaxPlayers = 30;

/// Player ceiling of the sampled Shapley tier (shapley_sampled.hpp), which
/// works on std::uint64_t membership masks instead of Coalition and therefore
/// is not bound by Coalition::Mask. Exact kernels stay capped at kMaxPlayers.
inline constexpr std::size_t kMaxSampledPlayers = 64;

/// An immutable set of players, represented as a bitmask.
class Coalition {
 public:
  using Mask = std::uint32_t;

  constexpr Coalition() noexcept = default;
  constexpr explicit Coalition(Mask mask) noexcept : mask_(mask) {}

  /// The empty coalition.
  [[nodiscard]] static constexpr Coalition empty() noexcept { return {}; }
  /// The grand coalition over n players. Throws std::invalid_argument if
  /// n > kMaxPlayers.
  [[nodiscard]] static Coalition grand(std::size_t n);
  /// The singleton {i}. Throws std::invalid_argument if i >= kMaxPlayers.
  [[nodiscard]] static Coalition single(Player i);

  [[nodiscard]] constexpr Mask mask() const noexcept { return mask_; }
  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return static_cast<std::size_t>(std::popcount(mask_));
  }
  [[nodiscard]] constexpr bool is_empty() const noexcept { return mask_ == 0; }

  // contains/with/without sit on the O(2^n · n) Shapley sweep, so they are
  // branch-free on a pre-validated index: i < kMaxPlayers is the caller's
  // contract (asserted in debug builds), not a per-call runtime check.
  [[nodiscard]] constexpr bool contains(Player i) const noexcept {
    assert(i < kMaxPlayers);
    return (mask_ & (Mask{1} << i)) != 0;
  }
  /// S ∪ {i} / S \ {i}.
  [[nodiscard]] constexpr Coalition with(Player i) const noexcept {
    assert(i < kMaxPlayers);
    return Coalition{mask_ | (Mask{1} << i)};
  }
  [[nodiscard]] constexpr Coalition without(Player i) const noexcept {
    assert(i < kMaxPlayers);
    return Coalition{mask_ & static_cast<Mask>(~(Mask{1} << i))};
  }
  [[nodiscard]] constexpr Coalition united(Coalition other) const noexcept {
    return Coalition{mask_ | other.mask_};
  }
  [[nodiscard]] constexpr Coalition intersected(Coalition other) const noexcept {
    return Coalition{mask_ & other.mask_};
  }
  [[nodiscard]] constexpr bool is_subset_of(Coalition other) const noexcept {
    return (mask_ & other.mask_) == mask_;
  }

  /// Members in ascending player order.
  [[nodiscard]] std::vector<Player> members() const;

  [[nodiscard]] constexpr bool operator==(const Coalition&) const noexcept =
      default;

 private:
  Mask mask_ = 0;
};

/// Calls fn(subset) for every subset of `of`, including the empty coalition
/// and `of` itself — 2^|of| invocations in submask order.
void for_each_subset(Coalition of, const std::function<void(Coalition)>& fn);

/// All subsets of `of` as a vector (2^|of| entries). Intended for small
/// coalitions; throws std::invalid_argument if |of| > 24 to prevent
/// accidental multi-hundred-MB allocations.
[[nodiscard]] std::vector<Coalition> all_subsets(Coalition of);

/// The worth function v(S) of a deterministic cooperative game.
using WorthFn = std::function<double(Coalition)>;

}  // namespace vmp::core
