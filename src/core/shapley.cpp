#include "core/shapley.hpp"

#include <bit>
#include <stdexcept>
#include <vector>

namespace vmp::core {

double shapley_weight(std::size_t n, std::size_t s) {
  if (n == 0 || s >= n)
    throw std::invalid_argument("shapley_weight: requires s < n");
  // s! (n-s-1)! / n!  computed as a product of ratios to stay well inside
  // double range for n <= kMaxPlayers.
  double weight = 1.0 / static_cast<double>(n);
  // weight *= s! / (n-1)! restricted appropriately:
  // Π_{j=1..s} j / (n-1 - (j-1))  x  remaining (n-s-1)! cancels.
  for (std::size_t j = 1; j <= s; ++j)
    weight *= static_cast<double>(j) / static_cast<double>(n - j);
  return weight;
}

void fill_shapley_weights(std::size_t n, std::vector<double>& weights) {
  if (n == 0)
    throw std::invalid_argument("fill_shapley_weights: n must be >= 1");
  weights.resize(n);
  for (std::size_t s = 0; s < n; ++s) weights[s] = shapley_weight(n, s);
}

void accumulate_shapley_phi_range(std::size_t n, std::span<const double> worth,
                                  std::span<const double> weights,
                                  std::span<double> phi,
                                  std::size_t mask_begin,
                                  std::size_t mask_end) {
  for (std::size_t mask = mask_begin; mask < mask_end; ++mask) {
    const auto s_size =
        static_cast<std::size_t>(std::popcount(static_cast<std::uint32_t>(mask)));
    if (s_size == n) continue;  // grand coalition: no player is missing.
    const double w = weights[s_size];
    const double base = worth[mask];
    for (Player i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) continue;
      phi[i] += w * (worth[mask | (std::size_t{1} << i)] - base);
    }
  }
}

void accumulate_shapley_phi(std::size_t n, std::span<const double> worth,
                            std::span<const double> weights,
                            std::span<double> phi) {
  accumulate_shapley_phi_range(n, worth, weights, phi, 0, std::size_t{1} << n);
}

std::vector<double> shapley_values(std::size_t n, const WorthFn& v) {
  if (n == 0) throw std::invalid_argument("shapley_values: n must be >= 1");
  if (n > kMaxPlayers)
    throw std::invalid_argument("shapley_values: n exceeds kMaxPlayers");

  const std::size_t n_masks = std::size_t{1} << n;

  // Evaluate the worth of every coalition exactly once.
  std::vector<double> worth(n_masks);
  for (std::size_t mask = 0; mask < n_masks; ++mask)
    worth[mask] = v(Coalition{static_cast<Coalition::Mask>(mask)});

  // Precompute the per-size weights.
  std::vector<double> weight;
  fill_shapley_weights(n, weight);

  std::vector<double> phi(n, 0.0);
  accumulate_shapley_phi(n, worth, weight, phi);
  return phi;
}

std::vector<double> nondet_shapley_values(
    std::span<const common::StateVector> states, const StateWorthFn& v) {
  const std::size_t n = states.size();
  if (n == 0)
    throw std::invalid_argument("nondet_shapley_values: need >= 1 state");
  // With the states C' pinned, Eq. 7 is Eq. 4 with the bound worth function.
  return shapley_values(
      n, [&](Coalition s) { return v(s, states); });
}

}  // namespace vmp::core
