// The online metering loop of Fig. 8, packaged.
//
// Every deployment repeats the same per-second choreography: advance the
// machine, read the meter, deduct the idle floor, snapshot VM telemetry,
// estimate per-VM shares, account energy. MeteringLoop wires those stages
// over any PowerEstimator so applications (and the examples/ binaries)
// consume one call per sampling period.
#pragma once

#include <functional>

#include "core/accountant.hpp"
#include "core/estimator.hpp"
#include "sim/physical_machine.hpp"

namespace vmp::core {

/// One sampling period's outcome.
struct MeteringSample {
  double time_s = 0.0;
  double meter_power_w = 0.0;     ///< wall reading, includes idle.
  double adjusted_power_w = 0.0;  ///< idle-deducted, clamped at 0.
  std::vector<VmSample> vms;      ///< telemetry fed to the estimator.
  std::vector<double> phi;        ///< per-VM shares, parallel to vms.
};

class MeteringLoop {
 public:
  /// The machine and estimator must outlive the loop. period_s must be > 0
  /// (throws std::invalid_argument). The optional accountant accumulates
  /// energy with its idle policy on every step.
  MeteringLoop(sim::PhysicalMachine& machine, PowerEstimator& estimator,
               double period_s = 1.0, EnergyAccountant* accountant = nullptr);

  /// Advances one sampling period and returns the full sample. When no VM is
  /// running, phi is empty and nothing is accounted.
  MeteringSample step();

  /// Runs for `duration_s`, invoking `on_sample` (if set) per period.
  void run(double duration_s,
           const std::function<void(const MeteringSample&)>& on_sample = {});

  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

 private:
  sim::PhysicalMachine& machine_;
  PowerEstimator& estimator_;
  double period_s_;
  EnergyAccountant* accountant_;
  std::size_t steps_ = 0;
};

}  // namespace vmp::core
