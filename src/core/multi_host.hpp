// Multi-host tenant accounting via the Additivity axiom (paper Sec. IV-C and
// Sec. VIII, "accounting other power consumption").
//
// A tenant's footprint often spans several physical machines: the compute VM
// on one host plus a logical disk served by a storage host (disk array). The
// Shapley value's Additivity axiom makes the accounting compositional: run an
// independent power-disaggregation game on each host, then a tenant's total
// power is simply the sum of its shares across the games. MultiHostAccountant
// implements that composition: per-host VM->tenant bindings plus cross-host
// energy aggregation.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/estimator.hpp"

namespace vmp::core {

/// Opaque tenant identifier.
using TenantId = std::uint32_t;

/// Identifies one host's estimation game.
using HostId = std::uint32_t;

class MultiHostAccountant {
 public:
  /// Declares that VM `vm` on host `host` belongs to `tenant`. Rebinding an
  /// existing (host, vm) pair throws std::invalid_argument (energy already
  /// attributed cannot be re-owned retroactively).
  void bind(HostId host, std::uint32_t vm, TenantId tenant);

  /// True if the (host, vm) pair has an owner.
  [[nodiscard]] bool is_bound(HostId host, std::uint32_t vm) const noexcept;
  /// Owner of a (host, vm) pair; throws std::out_of_range if unbound.
  [[nodiscard]] TenantId owner_of(HostId host, std::uint32_t vm) const;

  /// Accounts one estimation sample from a host's game: vms[i] was allocated
  /// phi[i] watts for dt_s seconds. Unbound VMs accumulate under the
  /// `unattributed` bucket (queryable via unattributed_energy_j). Throws
  /// std::invalid_argument on size mismatch or non-positive dt.
  void add_host_sample(HostId host, std::span<const VmSample> vms,
                       std::span<const double> phi, double dt_s);

  /// Tenant's cumulative energy across every host, joules.
  [[nodiscard]] double tenant_energy_j(TenantId tenant) const noexcept;
  /// Tenant's energy restricted to one host (the per-game share whose sum,
  /// by Additivity, is the tenant total).
  [[nodiscard]] double tenant_energy_on_host_j(TenantId tenant,
                                               HostId host) const noexcept;
  /// Energy of VMs that had no tenant binding.
  [[nodiscard]] double unattributed_energy_j() const noexcept {
    return unattributed_j_;
  }
  [[nodiscard]] double total_energy_j() const noexcept;

  /// All tenants with accumulated energy, ascending.
  [[nodiscard]] std::vector<TenantId> tenants() const;

  /// One accumulated (tenant, host) ledger cell, for checkpointing.
  struct EnergyRecord {
    TenantId tenant = 0;
    HostId host = 0;
    double joules = 0.0;
  };

  /// Every ledger cell, ordered by (tenant, host).
  [[nodiscard]] std::vector<EnergyRecord> energy_records() const;

  /// Replaces the accumulated energies wholesale (checkpoint restore; the
  /// bindings are not part of the ledger and are re-declared via bind()).
  /// Throws std::invalid_argument on a duplicate (tenant, host) pair or
  /// negative unattributed energy.
  void restore(std::span<const EnergyRecord> records, double unattributed_j);

 private:
  // (host, vm) -> tenant.
  std::map<std::pair<HostId, std::uint32_t>, TenantId> bindings_;
  // (tenant, host) -> joules.
  std::map<std::pair<TenantId, HostId>, double> energy_j_;
  double unattributed_j_ = 0.0;
};

}  // namespace vmp::core
