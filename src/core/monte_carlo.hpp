// Monte-Carlo Shapley estimation by permutation sampling.
//
// The paper's Sec. V-B complexity analysis notes that exact Shapley needs 2^n
// worth evaluations; for hosts beyond the n <= 16 regime (or when each worth
// evaluation is expensive) the standard randomized estimator samples uniform
// permutations of the players and averages each player's marginal
// contribution over the permutation prefix. The estimate is unbiased and the
// per-player standard error shrinks as O(1/sqrt(#permutations)). Worths are
// memoized by coalition mask, so dense sampling approaches the exact 2^n cost
// from below instead of exceeding it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/coalition.hpp"

namespace vmp::core {

struct MonteCarloOptions {
  std::size_t permutations = 200;  ///< number of sampled permutations (>= 1).
  std::uint64_t seed = 1;
  bool antithetic = true;  ///< also walk each permutation reversed — a cheap
                           ///< variance-reduction pairing.
};

struct MonteCarloResult {
  std::vector<double> values;      ///< Φ estimates per player.
  std::vector<double> std_errors;  ///< standard error of each estimate.
  std::size_t worth_evaluations = 0;  ///< distinct v(S) evaluations performed.
  std::size_t permutations_used = 0;
};

/// Estimates Shapley values of an n-player game by permutation sampling.
/// Throws std::invalid_argument on n == 0, n > kMaxPlayers, or
/// options.permutations == 0.
[[nodiscard]] MonteCarloResult monte_carlo_shapley(std::size_t n, const WorthFn& v,
                                                   const MonteCarloOptions& options);

}  // namespace vmp::core
