// Offline data collection (paper Fig. 8, offline path; Sec. V-C).
//
// For each of the 2^r − 1 non-empty VHC combinations, the collector boots the
// fleet VMs of those types, drives them with the synthetic random-CPU
// benchmark, and records one (aggregated VHC states, adjusted measured power)
// sample per meter period into the v(S, C) table. The VHC linear
// approximation is then fitted from that table. This is the measurement
// campaign that replaces the infeasible traversal of all 2^n VM subsets.
#pragma once

#include <cstdint>
#include <vector>

#include "common/vm_config.hpp"
#include "core/linear_approx.hpp"
#include "core/vhc.hpp"
#include "core/vsc_table.hpp"
#include "sim/machine_spec.hpp"

namespace vmp::core {

struct CollectionOptions {
  double duration_s = 600.0;   ///< measurement time per VHC combination.
  double period_s = 1.0;       ///< meter/dstat sampling period (1 Hz).
  double resolution = 0.01;    ///< state quantization (paper Sec. VII-A).
  std::uint64_t seed = 1;
  /// false (paper setup): synthetic load randomizes CPU only; true: all
  /// components are randomized so the fit covers memory/disk power too.
  bool exercise_all_components = false;

  /// Probability that a dwell epoch drives all VMs at one *common* level
  /// instead of independent levels. Pure independent sampling never visits
  /// the equal-high-utilization diagonal where co-located production
  /// workloads live, so the fitted mapping would be biased there; mixing in
  /// common-mode epochs covers both regimes (the paper's campaign likewise
  /// stresses the coalition jointly to "measure different v(S,C)s").
  double common_mode_prob = 0.4;

  /// Seconds per synthetic dwell epoch.
  double dwell_s = 5.0;

  /// Probability that a dwell epoch samples the high-utilization band
  /// [high_band_lo, 1] instead of the full [0, 1] range. Production hosts
  /// operate mostly loaded, and the fitted mapping must be most accurate
  /// there (the paper's heterogeneous weights sum to the machine's
  /// *saturated* full-load power, showing the same emphasis).
  double high_band_prob = 0.55;
  double high_band_lo = 0.7;

  /// Throws std::invalid_argument on non-positive durations/periods.
  void validate() const;
};

/// The trained offline artifacts.
struct OfflineDataset {
  VhcUniverse universe;
  VscTable table;
  VhcLinearApprox approximation;
};

/// Runs the full offline campaign on a simulated machine hosting `fleet` and
/// returns the fitted dataset. Throws std::invalid_argument on an empty
/// fleet; machine capacity violations surface as std::runtime_error from the
/// hypervisor.
[[nodiscard]] OfflineDataset collect_offline_dataset(
    const sim::MachineSpec& spec, const std::vector<common::VmConfig>& fleet,
    const CollectionOptions& options);

}  // namespace vmp::core
