#include "core/multi_host.hpp"

#include <stdexcept>

namespace vmp::core {

void MultiHostAccountant::bind(HostId host, std::uint32_t vm, TenantId tenant) {
  const auto key = std::make_pair(host, vm);
  const auto [it, inserted] = bindings_.emplace(key, tenant);
  if (!inserted && it->second != tenant)
    throw std::invalid_argument(
        "MultiHostAccountant::bind: (host, vm) already bound to another "
        "tenant");
}

bool MultiHostAccountant::is_bound(HostId host, std::uint32_t vm) const noexcept {
  return bindings_.contains({host, vm});
}

TenantId MultiHostAccountant::owner_of(HostId host, std::uint32_t vm) const {
  const auto it = bindings_.find({host, vm});
  if (it == bindings_.end())
    throw std::out_of_range("MultiHostAccountant::owner_of: unbound VM");
  return it->second;
}

void MultiHostAccountant::add_host_sample(HostId host,
                                          std::span<const VmSample> vms,
                                          std::span<const double> phi,
                                          double dt_s) {
  if (vms.size() != phi.size())
    throw std::invalid_argument(
        "MultiHostAccountant::add_host_sample: vms/phi size mismatch");
  if (!(dt_s > 0.0))
    throw std::invalid_argument(
        "MultiHostAccountant::add_host_sample: dt must be > 0");

  for (std::size_t i = 0; i < vms.size(); ++i) {
    const double joules = phi[i] * dt_s;
    const auto binding = bindings_.find({host, vms[i].vm_id});
    if (binding == bindings_.end()) {
      unattributed_j_ += joules;
    } else {
      energy_j_[{binding->second, host}] += joules;
    }
  }
}

double MultiHostAccountant::tenant_energy_j(TenantId tenant) const noexcept {
  double total = 0.0;
  for (const auto& [key, joules] : energy_j_)
    if (key.first == tenant) total += joules;
  return total;
}

double MultiHostAccountant::tenant_energy_on_host_j(TenantId tenant,
                                                    HostId host) const noexcept {
  const auto it = energy_j_.find({tenant, host});
  return it != energy_j_.end() ? it->second : 0.0;
}

double MultiHostAccountant::total_energy_j() const noexcept {
  double total = unattributed_j_;
  for (const auto& [_, joules] : energy_j_) total += joules;
  return total;
}

std::vector<TenantId> MultiHostAccountant::tenants() const {
  std::vector<TenantId> out;
  for (const auto& [key, _] : energy_j_)
    if (out.empty() || out.back() != key.first) out.push_back(key.first);
  return out;
}

std::vector<MultiHostAccountant::EnergyRecord>
MultiHostAccountant::energy_records() const {
  std::vector<EnergyRecord> records;
  records.reserve(energy_j_.size());
  for (const auto& [key, joules] : energy_j_)
    records.push_back({key.first, key.second, joules});
  return records;
}

void MultiHostAccountant::restore(std::span<const EnergyRecord> records,
                                  double unattributed_j) {
  if (unattributed_j < 0.0)
    throw std::invalid_argument(
        "MultiHostAccountant::restore: unattributed energy < 0");
  std::map<std::pair<TenantId, HostId>, double> restored;
  for (const EnergyRecord& record : records)
    if (!restored.emplace(std::make_pair(record.tenant, record.host),
                          record.joules)
             .second)
      throw std::invalid_argument(
          "MultiHostAccountant::restore: duplicate (tenant, host) record");
  energy_j_ = std::move(restored);
  unattributed_j_ = unattributed_j;
}

}  // namespace vmp::core
