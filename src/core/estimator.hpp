// The per-VM power estimation framework (paper Fig. 8, online path).
//
// An estimator receives, once per sampling period, the telemetry of all
// running VMs plus the machine's measured *adjusted* power (wall reading
// minus the calibrated idle floor, per Remark 1) and returns a per-VM power
// share Φ_i. Implementations:
//
//   * ShapleyVhcEstimator — the paper's method: non-deterministic Shapley
//     over the VHC linear approximation of v(S, C), with the grand
//     coalition's worth anchored to the measured power so Efficiency holds
//     exactly ("Shapley value always satisfies efficiency even [when] the
//     v(S,C)s are not accurate", Sec. VII-C).
//   * OracleShapleyEstimator — exact Shapley with the simulator's coalition
//     oracle as worth function (the paper's exact-Shapley reference).
//
// Baseline estimators (power-model / marginal / resource-usage) live in
// src/baselines.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/state_vector.hpp"
#include "common/vm_config.hpp"
#include "core/linear_approx.hpp"
#include "core/shapley.hpp"
#include "sim/coalition_probe.hpp"

namespace vmp::core {

/// One running VM's telemetry at the estimation instant.
struct VmSample {
  std::uint32_t vm_id = 0;
  common::VmTypeId type = 0;
  common::StateVector state;
};

/// Interface every power-disaggregation policy implements.
class PowerEstimator {
 public:
  virtual ~PowerEstimator() = default;

  /// Returns Φ_i (watts) for each VM in `vms`, disaggregating
  /// adjusted_power_w. adjusted_power_w must be >= 0; implementations throw
  /// std::invalid_argument on malformed input.
  [[nodiscard]] virtual std::vector<double> estimate(
      std::span<const VmSample> vms, double adjusted_power_w) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// The paper's estimator: non-deterministic Shapley over the VHC linear
/// approximation.
class ShapleyVhcEstimator final : public PowerEstimator {
 public:
  /// `universe` must cover every type that will appear in estimate() calls.
  /// When anchor_grand_to_measurement is true (default, the paper's online
  /// configuration) the grand coalition worth is the measured power, making
  /// the allocation exactly efficient; when false, Σ Φ_i equals the
  /// approximation's own v(N, C') instead.
  ShapleyVhcEstimator(VhcUniverse universe, VhcLinearApprox approx,
                      bool anchor_grand_to_measurement = true);

  /// The full Fig. 8 online path: sub-coalition worths are first looked up
  /// in the offline v(S, C) table (a directly-measured state wins over the
  /// regression) and only unobserved states fall through to the linear
  /// approximation. The table's VHC count must match the universe.
  ShapleyVhcEstimator(VhcUniverse universe, VhcLinearApprox approx,
                      VscTable table, bool anchor_grand_to_measurement = true);

  /// Fraction of worth queries answered from the table so far (0 when no
  /// table was supplied). Diagnostic for EXPERIMENTS.md.
  [[nodiscard]] double table_hit_rate() const noexcept;

  [[nodiscard]] std::vector<double> estimate(std::span<const VmSample> vms,
                                             double adjusted_power_w) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "shapley-vhc";
  }

  [[nodiscard]] const VhcLinearApprox& approximation() const noexcept {
    return approx_;
  }
  [[nodiscard]] const VhcUniverse& universe() const noexcept {
    return universe_;
  }

 private:
  VhcUniverse universe_;
  VhcLinearApprox approx_;
  std::optional<VscTable> table_;
  bool anchor_;
  std::size_t table_hits_ = 0;
  std::size_t worth_queries_ = 0;
};

/// Exact Shapley against the simulator's coalition-worth oracle. The probe's
/// fleet order must match the order of the VmSample span (checked by size and
/// type id). This estimator is the evaluation's ground-truth reference; it is
/// unavailable on real hardware, which is the paper's entire premise.
class OracleShapleyEstimator final : public PowerEstimator {
 public:
  explicit OracleShapleyEstimator(const sim::CoalitionProbe& probe,
                                  bool anchor_grand_to_measurement = false);

  [[nodiscard]] std::vector<double> estimate(std::span<const VmSample> vms,
                                             double adjusted_power_w) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "shapley-oracle";
  }

 private:
  const sim::CoalitionProbe& probe_;
  bool anchor_;
};

}  // namespace vmp::core
