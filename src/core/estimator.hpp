// The per-VM power estimation framework (paper Fig. 8, online path).
//
// An estimator receives, once per sampling period, the telemetry of all
// running VMs plus the machine's measured *adjusted* power (wall reading
// minus the calibrated idle floor, per Remark 1) and returns a per-VM power
// share Φ_i. Implementations:
//
//   * ShapleyVhcEstimator — the paper's method: non-deterministic Shapley
//     over the VHC linear approximation of v(S, C), with the grand
//     coalition's worth anchored to the measured power so Efficiency holds
//     exactly ("Shapley value always satisfies efficiency even [when] the
//     v(S,C)s are not accurate", Sec. VII-C).
//   * OracleShapleyEstimator — exact Shapley with the simulator's coalition
//     oracle as worth function (the paper's exact-Shapley reference).
//
// Baseline estimators (power-model / marginal / resource-usage) live in
// src/baselines.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/state_vector.hpp"
#include "common/vm_config.hpp"
#include "core/linear_approx.hpp"
#include "core/shapley.hpp"
#include "core/shapley_fast.hpp"
#include "core/shapley_sampled.hpp"
#include "core/vhc.hpp"
#include "sim/coalition_probe.hpp"

namespace vmp::core {

/// Kernel-selection policy for ShapleyVhcEstimator, plus the sampling
/// options of the approximate tier.
struct SampledKernelConfig {
  enum class Kernel : std::uint8_t {
    kAuto,       ///< pick by symmetry and composition count (default).
    kCollapsed,  ///< force the composition enumeration (exact).
    kSweep,      ///< force the 2^n mask sweep (exact).
    kSampled,    ///< force the stratified sampling tier (approximate).
  };
  Kernel kernel = Kernel::kAuto;
  /// Auto mode falls through to the sampled tier once the exact kernels
  /// would evaluate more than this many compositions — 2^16 keeps every
  /// paper-sized host (n <= 16, Sec. V-B) exact while an all-distinct host
  /// beyond that answers approximately in bounded time.
  std::size_t composition_threshold = std::size_t{1} << 16;
  SampledShapleyOptions sampling;
};

/// Per-tick diagnostics of the sampled tier; meaningful only when the last
/// estimate() reported last_kernel() == "sampled".
struct SampledTickStats {
  double max_halfwidth_w = 0.0;
  double sum_halfwidth_w = 0.0;
  /// |Σφ − anchored grand| before normalization; the invariant monitor
  /// checks it against sum_halfwidth_w.
  double efficiency_gap_w = 0.0;
  std::size_t worth_evaluations = 0;
  std::size_t rounds = 0;
  std::size_t unseen_strata = 0;
  std::string_view stopped_by = "none";  ///< always a literal.
};

/// One running VM's telemetry at the estimation instant.
struct VmSample {
  std::uint32_t vm_id = 0;
  common::VmTypeId type = 0;
  common::StateVector state;
};

/// Interface every power-disaggregation policy implements.
class PowerEstimator {
 public:
  virtual ~PowerEstimator() = default;

  /// Returns Φ_i (watts) for each VM in `vms`, disaggregating
  /// adjusted_power_w. adjusted_power_w must be >= 0; implementations throw
  /// std::invalid_argument on malformed input.
  [[nodiscard]] virtual std::vector<double> estimate(
      std::span<const VmSample> vms, double adjusted_power_w) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// The paper's estimator: non-deterministic Shapley over the VHC linear
/// approximation.
class ShapleyVhcEstimator final : public PowerEstimator {
 public:
  /// `universe` must cover every type that will appear in estimate() calls.
  /// When anchor_grand_to_measurement is true (default, the paper's online
  /// configuration) the grand coalition worth is the measured power, making
  /// the allocation exactly efficient; when false, Σ Φ_i equals the
  /// approximation's own v(N, C') instead.
  ShapleyVhcEstimator(VhcUniverse universe, VhcLinearApprox approx,
                      bool anchor_grand_to_measurement = true);

  /// The full Fig. 8 online path: sub-coalition worths are first looked up
  /// in the offline v(S, C) table (a directly-measured state wins over the
  /// regression) and only unobserved states fall through to the linear
  /// approximation. The table's VHC count must match the universe.
  ShapleyVhcEstimator(VhcUniverse universe, VhcLinearApprox approx,
                      VscTable table, bool anchor_grand_to_measurement = true);

  /// Fraction of worth queries answered from the table so far (0 when no
  /// table was supplied). Diagnostic for EXPERIMENTS.md and the fleet's
  /// per-host metric export.
  [[nodiscard]] double table_hit_rate() const noexcept;

  /// Worth evaluations performed so far. With symmetric players the
  /// collapsed kernel evaluates compositions rather than masks, so this
  /// grows far slower than 2^n per tick — exposed so tests and benchmarks
  /// can observe the collapse.
  [[nodiscard]] std::size_t worth_queries() const noexcept {
    return worth_queries_;
  }

  /// Which kernel the last estimate() call dispatched to: "collapsed",
  /// "sweep", "sampled", "legacy", or "none" before the first call. Feeds
  /// the fleet's fast-path selection counters.
  [[nodiscard]] std::string_view last_kernel() const noexcept {
    return last_kernel_;
  }

  /// Kernel-selection policy and sampling knobs. The sampled tier runs on
  /// the dense combo-weight cache only (<= ComboWeightCache::kMaxDenseVhcs
  /// VHCs) and bypasses the VscTable — it is approximation-only, with the
  /// measurement anchor still pinning Σφ. Consecutive estimate() calls mix a
  /// call counter into the configured seed so ticks do not share draws;
  /// the sequence is still reproducible for a fixed (config, call order).
  void set_sampled_kernel(const SampledKernelConfig& config) noexcept {
    sampled_config_ = config;
  }
  [[nodiscard]] const SampledKernelConfig& sampled_kernel() const noexcept {
    return sampled_config_;
  }

  /// Diagnostics of the most recent sampled-tier tick (CI half-widths,
  /// pre-normalization efficiency gap, evaluation counts, stop reason).
  [[nodiscard]] const SampledTickStats& last_sampled() const noexcept {
    return last_sampled_;
  }

  /// Opts the pure-arithmetic (table-less) mask sweep into thread-parallel
  /// accumulation on `pool` for games with at least `min_players`
  /// distinguishable players. The chunked reduction is deterministic, so the
  /// result is byte-identical for any pool size — but the call must not come
  /// from a task already running on `pool` (see util::ThreadPool). Pass
  /// nullptr to go back to serial.
  void set_thread_pool(util::ThreadPool* pool,
                       std::size_t min_players = 14) noexcept {
    pool_ = pool;
    pool_min_players_ = min_players;
  }

  [[nodiscard]] std::vector<double> estimate(std::span<const VmSample> vms,
                                             double adjusted_power_w) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "shapley-vhc";
  }

  [[nodiscard]] const VhcLinearApprox& approximation() const noexcept {
    return approx_;
  }
  [[nodiscard]] const VhcUniverse& universe() const noexcept {
    return universe_;
  }

 private:
  /// Memoized outcome of one quantized table probe. Only the *table lookup*
  /// is memoized — a known miss still re-evaluates the approximation on the
  /// exact (unquantized) states, so quantization never leaks into the
  /// regression path.
  struct TableOutcome {
    bool hit = false;
    double value = 0.0;
  };
  struct MemoKeyHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
    [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// Per-composition memo for the collapsed table path. A composition's
  /// table outcome is a pure function of the group structure and the exact
  /// representative states, so while those match the previous tick
  /// (comp_sig_) the outcome is replayed by composition index: a remembered
  /// hit skips the aggregate build and the quantized-key probe entirely, a
  /// remembered miss skips the probe and goes straight to the approximation
  /// on the exact states. Keyed on *exact* state bytes — never quantized —
  /// so replay is bit-identical to re-probing, not merely bucket-identical.
  enum : std::uint8_t { kCompZero = 0, kCompHit = 1, kCompMiss = 2 };
  struct CompEntry {
    std::uint8_t status = kCompZero;
    double value = 0.0;  ///< table worth when status == kCompHit.
  };

  /// Refreshes the cached partition / per-player metadata for this tick.
  /// Returns the combo of all non-idle players.
  VhcComboMask prepare_tick(std::span<const VmSample> vms);
  /// Worth of a non-empty combo with the given aggregated states: memoized
  /// table lookup first (Fig. 8), then the batched approximation.
  [[nodiscard]] double worth_from(VhcComboMask combo,
                                  std::span<const common::StateVector> aggregated);
  /// worth_from that additionally reports the table probe's outcome, so the
  /// collapsed kernel can memoize it per composition.
  [[nodiscard]] double worth_recorded(
      VhcComboMask combo, std::span<const common::StateVector> aggregated,
      CompEntry& entry);
  [[nodiscard]] std::vector<double> estimate_collapsed(double adjusted_power_w);
  [[nodiscard]] std::vector<double> estimate_sweep(double adjusted_power_w,
                                                   VhcComboMask full_combo);
  /// Stratified sampling tier (shapley_sampled.hpp) over the same batched
  /// per-player contribution table as the table-less sweep.
  [[nodiscard]] std::vector<double> estimate_sampled(double adjusted_power_w,
                                                     VhcComboMask full_combo);
  /// Fills p_ with P[i][combo] = state_i · w_combo[vhc_i] for every
  /// sub-combo of full_combo — the shared worth backend of the batched
  /// sweep and the sampled tier.
  void build_contribution_table(VhcComboMask full_combo);
  /// Pre-kernel closure path, kept for universes too large for the dense
  /// combo-weight cache.
  [[nodiscard]] std::vector<double> estimate_legacy(
      std::span<const VmSample> vms, double adjusted_power_w);

  VhcUniverse universe_;
  VhcLinearApprox approx_;
  std::optional<VscTable> table_;
  bool anchor_;
  std::size_t table_hits_ = 0;
  std::size_t worth_queries_ = 0;
  std::string_view last_kernel_ = "none";  ///< always a literal.

  // Cross-tick caches and reusable scratch. estimate() mutates these, so a
  // single estimator must not be shared across threads (each fleet host
  // agent owns its own); the opt-in parallel sweep only reads them.
  ComboWeightCache combo_weights_;
  std::optional<VhcPartition> partition_;
  std::vector<common::VmTypeId> cached_types_;
  std::vector<common::VmTypeId> types_scratch_;
  SymmetryGroups groups_;
  std::vector<common::StateVector> states_;
  std::vector<std::uint32_t> player_bit_;   // 1 << vhc, 0 when idle.
  std::vector<std::size_t> player_vhc_;
  std::vector<std::size_t> player_key_;     // symmetry key (idle sentinel).
  std::vector<double> weights_;             // per-size Shapley weights.
  std::size_t weights_n_ = 0;
  std::vector<double> worth_;               // per-mask / per-composition.
  std::vector<double> p_;                   // player x combo contributions.
  std::vector<common::StateVector> agg_;    // aggregate scratch.
  std::vector<std::size_t> gsize_, gstride_, gvhc_, comp_k_;
  std::vector<std::uint32_t> gbit_;
  std::vector<common::StateVector> gstate_;
  std::vector<double> binom_;               // flattened Pascal triangle.
  std::size_t binom_n_ = 0;
  std::vector<double> phi_group_;
  std::string memo_key_;
  std::unordered_map<std::string, TableOutcome, MemoKeyHash, std::equal_to<>>
      table_memo_;
  std::vector<CompEntry> comp_memo_;       // indexed by composition.
  std::string comp_sig_, comp_sig_scratch_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t pool_min_players_ = 14;
  SampledKernelConfig sampled_config_;
  SampledTickStats last_sampled_;
  SampledShapley sampler_;
  std::size_t estimate_calls_ = 0;  ///< sampled-tier seed decorrelation.
};

/// Exact Shapley against the simulator's coalition-worth oracle. The probe's
/// fleet order must match the order of the VmSample span (checked by size and
/// type id). This estimator is the evaluation's ground-truth reference; it is
/// unavailable on real hardware, which is the paper's entire premise.
class OracleShapleyEstimator final : public PowerEstimator {
 public:
  explicit OracleShapleyEstimator(const sim::CoalitionProbe& probe,
                                  bool anchor_grand_to_measurement = false);

  [[nodiscard]] std::vector<double> estimate(std::span<const VmSample> vms,
                                             double adjusted_power_w) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "shapley-oracle";
  }

 private:
  const sim::CoalitionProbe& probe_;
  bool anchor_;
};

}  // namespace vmp::core
