#include "core/banzhaf.hpp"

#include <cmath>
#include <stdexcept>

namespace vmp::core {

std::vector<double> banzhaf_values(std::size_t n, const WorthFn& v) {
  if (n == 0) throw std::invalid_argument("banzhaf_values: n must be >= 1");
  if (n > kMaxPlayers)
    throw std::invalid_argument("banzhaf_values: n exceeds kMaxPlayers");

  const std::size_t n_masks = std::size_t{1} << n;
  std::vector<double> worth(n_masks);
  for (std::size_t mask = 0; mask < n_masks; ++mask)
    worth[mask] = v(Coalition{static_cast<Coalition::Mask>(mask)});

  const double weight = std::ldexp(1.0, -static_cast<int>(n - 1));  // 2^-(n-1)
  std::vector<double> beta(n, 0.0);
  for (std::size_t mask = 0; mask < n_masks; ++mask) {
    for (Player i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) continue;
      beta[i] += weight * (worth[mask | (std::size_t{1} << i)] - worth[mask]);
    }
  }
  return beta;
}

std::vector<double> normalized_banzhaf_values(std::size_t n, const WorthFn& v,
                                              double target_total) {
  std::vector<double> beta = banzhaf_values(n, v);
  double total = 0.0;
  for (double b : beta) total += b;
  if (total == 0.0) {
    for (double& b : beta) b = target_total / static_cast<double>(n);
    return beta;
  }
  const double scale = target_total / total;
  for (double& b : beta) b *= scale;
  return beta;
}

}  // namespace vmp::core
