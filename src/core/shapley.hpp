// Exact Shapley value (paper Sec. IV-B, Eq. 4) and its non-deterministic
// extension (Sec. V-A, Definition 1 / Eq. 7).
//
// For player i in an n-player game with worth v:
//
//   Φ_i = Σ_{S ⊆ N\{i}}  [v(S ∪ {i}) − v(S)] / ((n − |S|) · C(n, |S|))
//
// which equals the classic |S|!(n−|S|−1)!/n! weighting. The non-deterministic
// variant makes v depend on the VMs' component states C; since the states are
// fixed at estimation time, it reduces to the deterministic computation with
// the state-parameterized worth bound to the current C' — but the API keeps
// the distinction so call sites read like the paper.
#pragma once

#include <span>
#include <vector>

#include "common/state_vector.hpp"
#include "core/coalition.hpp"

namespace vmp::core {

/// Exact Shapley values of an n-player game.
///
/// Evaluates v once per coalition (2^n calls) and accumulates weighted
/// marginals in O(2^n · n). Throws std::invalid_argument if n == 0 or
/// n > kMaxPlayers.
[[nodiscard]] std::vector<double> shapley_values(std::size_t n, const WorthFn& v);

/// Shapley weight 1 / ((n − s) · C(n, s)) = s!(n−s−1)!/n! for a sub-coalition
/// of size s in an n-player game. Throws std::invalid_argument unless s < n.
[[nodiscard]] double shapley_weight(std::size_t n, std::size_t s);

/// Fills `weights` (resized to n) with shapley_weight(n, s) for s = 0..n-1.
/// The fast kernels (core/shapley_fast.hpp) reuse one table across ticks.
void fill_shapley_weights(std::size_t n, std::vector<double>& weights);

/// The shared accumulation kernel: given every coalition's worth (2^n
/// entries, indexed by mask) and the per-size weight table (n entries), adds
/// each player's weighted marginals into `phi` (size n, caller-zeroed).
/// Iterates masks ascending, players ascending — the serial solver, the
/// batched estimator path, and every chunk of the parallel sweep use this
/// exact order, which is what keeps their outputs bit-identical.
void accumulate_shapley_phi(std::size_t n, std::span<const double> worth,
                            std::span<const double> weights,
                            std::span<double> phi);

/// Same accumulation restricted to masks in [mask_begin, mask_end) — the
/// parallel sweep partitions the mask range into fixed chunks with this.
void accumulate_shapley_phi_range(std::size_t n, std::span<const double> worth,
                                  std::span<const double> weights,
                                  std::span<double> phi,
                                  std::size_t mask_begin, std::size_t mask_end);

/// State-dependent worth function v(S, C): the coalition's power when its
/// members hold the given per-player states (entries for non-members must be
/// ignored by the implementation).
using StateWorthFn =
    std::function<double(Coalition, std::span<const common::StateVector>)>;

/// Non-deterministic Shapley value (paper Eq. 7): disaggregates v(N, C') into
/// per-VM power Φ_i(C') given the current states C'. states.size() defines n.
[[nodiscard]] std::vector<double> nondet_shapley_values(
    std::span<const common::StateVector> states, const StateWorthFn& v);

}  // namespace vmp::core
