// Exact Shapley value (paper Sec. IV-B, Eq. 4) and its non-deterministic
// extension (Sec. V-A, Definition 1 / Eq. 7).
//
// For player i in an n-player game with worth v:
//
//   Φ_i = Σ_{S ⊆ N\{i}}  [v(S ∪ {i}) − v(S)] / ((n − |S|) · C(n, |S|))
//
// which equals the classic |S|!(n−|S|−1)!/n! weighting. The non-deterministic
// variant makes v depend on the VMs' component states C; since the states are
// fixed at estimation time, it reduces to the deterministic computation with
// the state-parameterized worth bound to the current C' — but the API keeps
// the distinction so call sites read like the paper.
#pragma once

#include <span>
#include <vector>

#include "common/state_vector.hpp"
#include "core/coalition.hpp"

namespace vmp::core {

/// Exact Shapley values of an n-player game.
///
/// Evaluates v once per coalition (2^n calls) and accumulates weighted
/// marginals in O(2^n · n). Throws std::invalid_argument if n == 0 or
/// n > kMaxPlayers.
[[nodiscard]] std::vector<double> shapley_values(std::size_t n, const WorthFn& v);

/// Shapley weight 1 / ((n − s) · C(n, s)) = s!(n−s−1)!/n! for a sub-coalition
/// of size s in an n-player game. Throws std::invalid_argument unless s < n.
[[nodiscard]] double shapley_weight(std::size_t n, std::size_t s);

/// State-dependent worth function v(S, C): the coalition's power when its
/// members hold the given per-player states (entries for non-members must be
/// ignored by the implementation).
using StateWorthFn =
    std::function<double(Coalition, std::span<const common::StateVector>)>;

/// Non-deterministic Shapley value (paper Eq. 7): disaggregates v(N, C') into
/// per-VM power Φ_i(C') given the current states C'. states.size() defines n.
[[nodiscard]] std::vector<double> nondet_shapley_values(
    std::span<const common::StateVector> states, const StateWorthFn& v);

}  // namespace vmp::core
