// VHC-based linear approximation of v(S, C) (paper Definition 2, Eq. 9-10).
//
// For each VHC combination, a set of power-mapping vectors {w_1 ... w_r} maps
// the aggregated per-VHC states to the coalition's power:
//
//     v(S, C) = Σ_j  w_j · v_j
//
// fitted by least squares over the combo's partially-measured samples. The
// weights are stored flattened (r x kNumComponents); VHCs absent from a combo
// keep zero weights, so predict() is a single dot product.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "core/vsc_table.hpp"

namespace vmp::core {

class VhcLinearApprox {
 public:
  /// One combination's fitted model in exportable form (see
  /// core/serialization.hpp).
  struct ComboModelData {
    VhcComboMask combo = 0;
    std::vector<double> weights;  // num_vhcs * kNumComponents, VHC-major.
    double rmse = 0.0;
    std::size_t sample_count = 0;
  };

  /// Fits one weight set per combo present in the table. Combos whose sample
  /// count is below the unknown count fall back to ridge regularization.
  /// ridge_lambda must be >= 0. Throws std::invalid_argument on a table with
  /// no samples.
  [[nodiscard]] static VhcLinearApprox fit(const VscTable& table,
                                           double ridge_lambda = 1e-6);

  /// Reconstructs an approximation from exported models (deserialization).
  /// Throws std::invalid_argument on inconsistent sizes or duplicate combos.
  [[nodiscard]] static VhcLinearApprox from_models(
      std::size_t num_vhcs, std::span<const ComboModelData> models);

  /// Exports every fitted combo, ascending by mask.
  [[nodiscard]] std::vector<ComboModelData> export_models() const;

  [[nodiscard]] std::size_t num_vhcs() const noexcept { return num_vhcs_; }
  [[nodiscard]] bool has_combo(VhcComboMask combo) const noexcept;
  /// Combos with fitted weights.
  [[nodiscard]] std::vector<VhcComboMask> fitted_combos() const;

  /// Flattened weights for a combo (num_vhcs x kNumComponents, VHC-major).
  /// Throws std::out_of_range for an unfitted combo.
  [[nodiscard]] std::span<const double> weights(VhcComboMask combo) const;

  /// Predicted v(S, C) for aggregated states (num_vhcs entries). When the
  /// exact combo was never measured, falls back to the best sub-combo
  /// composition: the prediction sums the largest fitted sub-combos covering
  /// the query (and is exact when VHC couplings are negligible). Throws
  /// std::out_of_range when no covering decomposition exists.
  [[nodiscard]] double predict(VhcComboMask combo,
                               std::span<const common::StateVector> states) const;

  /// Root-mean-square residual of the fit for a combo, in watts (introspection
  /// for EXPERIMENTS.md). Throws std::out_of_range for an unfitted combo.
  [[nodiscard]] double fit_rmse(VhcComboMask combo) const;

 private:
  VhcLinearApprox(std::size_t num_vhcs) : num_vhcs_(num_vhcs) {}

  [[nodiscard]] double predict_fitted(
      VhcComboMask combo, std::span<const common::StateVector> states) const;

  struct ComboModel {
    std::vector<double> weights;  // num_vhcs * kNumComponents
    double rmse = 0.0;
    std::size_t sample_count = 0;
  };

  std::size_t num_vhcs_;
  std::unordered_map<VhcComboMask, ComboModel> models_;
};

}  // namespace vmp::core
