// Fair billing: the paper's Fig. 1 motivation, taken all the way to dollars.
//
// Users A and B rent identical VM instances for the same interval [T0, T5]
// but load them differently; under per-instance-hour pricing both pay the
// same although B consumes ~33 % more energy. This example runs both VMs on
// one host, meters per-VM power with the Shapley estimator every second,
// accumulates energy with the EnergyAccountant (including an idle-power
// share, Sec. VIII) and prints the flat-rate vs energy-based bills.
#include <cstdio>
#include <memory>

#include "common/units.hpp"
#include "common/vm_config.hpp"
#include "core/accountant.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "core/pricing.hpp"
#include "sim/physical_machine.hpp"
#include "workload/user_pattern.hpp"

using namespace vmp;

int main() {
  const sim::MachineSpec spec = sim::xeon_prototype();
  const common::VmConfig instance = common::paper_vm_type(2);  // 2 vCPU class
  const std::vector<common::VmConfig> fleet = {instance, instance};

  std::printf("== training the estimator for the instance type ==\n");
  core::CollectionOptions options;
  options.duration_s = 300.0;
  const core::OfflineDataset dataset =
      core::collect_offline_dataset(spec, fleet, options);

  std::printf("== running user A and user B over [T0, T5] ==\n");
  sim::PhysicalMachine machine(spec, /*seed=*/2026);
  const sim::VmId vm_a =
      machine.hypervisor().create_vm(instance, wl::make_user_a_pattern());
  const sim::VmId vm_b =
      machine.hypervisor().create_vm(instance, wl::make_user_b_pattern());
  machine.hypervisor().start_vm(vm_a);
  machine.hypervisor().start_vm(vm_b);

  core::ShapleyVhcEstimator estimator(dataset.universe, dataset.approximation);
  core::EnergyAccountant dynamic_only(core::IdleAttribution::kNone);
  core::EnergyAccountant with_idle(core::IdleAttribution::kEqualShare);

  const double horizon_s = 5.0 * wl::kUserPatternPhaseSeconds;
  for (double t = 0.0; t < horizon_s; t += 1.0) {
    const sim::MeterFrame frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<core::VmSample> samples;
    for (const sim::VmObservation& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = estimator.estimate(samples, adjusted);
    dynamic_only.add_sample(samples, phi, machine.idle_power_w(), 1.0);
    with_idle.add_sample(samples, phi, machine.idle_power_w(), 1.0);
  }

  const double kwh_a = common::joules_to_kwh(dynamic_only.energy_j(vm_a));
  const double kwh_b = common::joules_to_kwh(dynamic_only.energy_j(vm_b));
  std::printf("\n== results over %.0f minutes ==\n", horizon_s / 60.0);
  std::printf("   user A dynamic energy: %.4f kWh\n", kwh_a);
  std::printf("   user B dynamic energy: %.4f kWh  (%.0f%% more than A)\n",
              kwh_b, 100.0 * (kwh_b / kwh_a - 1.0));

  // Bills at the paper's 2015 US tariff. Flat-rate pricing ignores energy
  // entirely — both tenants pay the same; energy-based pricing charges the
  // metered share (idle split equally, Sec. VIII policy (i)).
  const double tariff = core::kUsTariffUsdPerKwh;
  const double flat = common::joules_to_kwh(with_idle.total_energy_j()) *
                      tariff / 2.0;
  std::printf("\n   flat-rate bill        : A $%.4f   B $%.4f\n", flat, flat);
  std::printf("   energy-metered bill   : A $%.4f   B $%.4f\n",
              with_idle.bill_usd(vm_a, tariff), with_idle.bill_usd(vm_b, tariff));
  std::printf("   (energy-metered: idle attributed per '%s')\n",
              to_string(with_idle.policy()));
  return 0;
}
