// Datacenter-scale billing: a three-host cluster, tenants spread across
// hosts, per-host Shapley disaggregation, cluster-wide tenant bills.
//
// This is the deployment the paper's introduction motivates: every host runs
// its own Fig. 8 pipeline (the games are independent — Additivity composes
// the results), a placement policy spreads tenant VMs across hosts, and the
// operator bills tenants for metered energy instead of flat instance-hours.
#include <cstdio>
#include <map>
#include <memory>

#include "common/units.hpp"
#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "core/multi_host.hpp"
#include "core/pricing.hpp"
#include "sim/cluster.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

using namespace vmp;

int main() {
  const sim::MachineSpec spec = sim::xeon_prototype();
  const auto catalogue = common::paper_vm_catalogue();

  // One offline campaign per host profile; all hosts are identical Xeons, so
  // a single trained dataset serves every host (the artifacts are per
  // machine *type*, not per machine).
  std::printf("== offline: training the shared host profile ==\n");
  core::CollectionOptions options;
  options.duration_s = 300.0;
  const auto dataset = core::collect_offline_dataset(spec, catalogue, options);

  sim::Cluster cluster(sim::PlacementPolicy::kLeastLoaded);
  for (int h = 0; h < 3; ++h) cluster.add_host(spec, 100 + h);

  // Three tenants with mixed fleets; the placement policy decides hosts.
  struct Request {
    core::TenantId tenant;
    unsigned type_index;  // 1-based Table IV index
    wl::SpecBenchmark job;
  };
  const Request requests[] = {
      {1, 4, wl::SpecBenchmark::kNamd},  {1, 2, wl::SpecBenchmark::kGcc},
      {2, 3, wl::SpecBenchmark::kWrf},   {2, 1, wl::SpecBenchmark::kSjeng},
      {2, 1, wl::SpecBenchmark::kGobmk}, {3, 4, wl::SpecBenchmark::kTonto},
      {3, 3, wl::SpecBenchmark::kOmnetpp}};

  core::MultiHostAccountant accountant;
  std::map<core::TenantId, int> vm_counts;
  std::uint64_t seed = 9000;
  for (const Request& request : requests) {
    const auto location =
        cluster.launch(common::paper_vm_type(request.type_index),
                       wl::make_spec_workload(request.job, ++seed));
    accountant.bind(static_cast<core::HostId>(location.host), location.vm,
                    request.tenant);
    ++vm_counts[request.tenant];
    std::printf("   tenant %u: %s running %-8s -> host %zu (vm %u)\n",
                request.tenant,
                common::paper_vm_type(request.type_index).type_name.c_str(),
                to_string(request.job), location.host, location.vm);
  }

  // One estimator per host (they share the trained artifacts).
  std::vector<core::ShapleyVhcEstimator> estimators;
  estimators.reserve(cluster.host_count());
  for (std::size_t h = 0; h < cluster.host_count(); ++h)
    estimators.emplace_back(dataset.universe, dataset.approximation);

  std::printf("== online: metering the cluster for 10 minutes ==\n");
  for (int t = 0; t < 600; ++t) {
    const auto frames = cluster.step(1.0);
    for (std::size_t h = 0; h < cluster.host_count(); ++h) {
      const auto& hypervisor = cluster.host(h).hypervisor();
      if (hypervisor.observations().empty()) continue;
      const double adjusted = std::max(
          0.0, frames[h].active_power_w - cluster.host(h).idle_power_w());
      std::vector<core::VmSample> samples;
      for (const auto& obs : hypervisor.observations())
        samples.push_back({obs.id, obs.type_id, obs.state});
      const auto phi = estimators[h].estimate(samples, adjusted);
      accountant.add_host_sample(static_cast<core::HostId>(h), samples, phi,
                                 1.0);
    }
  }

  util::print_banner("cluster bill (10 minutes, US tariff)");
  util::TablePrinter table({"tenant", "VMs", "energy (kWh)", "cost (USD)"});
  for (const core::TenantId tenant : accountant.tenants()) {
    const double kwh = common::joules_to_kwh(accountant.tenant_energy_j(tenant));
    table.add_row({std::to_string(tenant),
                   std::to_string(vm_counts[tenant]),
                   util::TablePrinter::num(kwh, 5),
                   util::TablePrinter::num(kwh * core::kUsTariffUsdPerKwh, 5)});
  }
  table.print();
  std::printf("total attributed: %.5f kWh across %zu hosts (true cluster draw "
              "%.1f W at t_end)\n",
              common::joules_to_kwh(accountant.total_energy_j()),
              cluster.host_count(), cluster.total_true_power_w());
  return 0;
}
