// Quickstart: disaggregate a machine's power into per-VM shares.
//
// Recreates the paper's Sec. III / Table III scenario end to end: two
// identical 1-vCPU VMs run the same fully-CPU-bound job on a hyper-threaded
// Xeon host. Their power interaction makes naive attributions either unfair
// (marginal contribution: 13 W vs 7 W) or inefficient (per-VM power models:
// 13 W + 13 W > 20 W measured); the Shapley allocation is both fair and
// efficient (10 W / 10 W).
//
// Pipeline shown:
//   1. offline: collect the v(S, C) table and fit the VHC approximation;
//   2. online: each second, feed VM telemetry + the measured power to the
//      ShapleyVhcEstimator.
#include <cstdio>
#include <memory>

#include "baselines/marginal.hpp"
#include "baselines/power_model.hpp"
#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "sim/coalition_probe.hpp"
#include "sim/physical_machine.hpp"
#include "util/stats.hpp"
#include "workload/synthetic.hpp"

using namespace vmp;

int main() {
  const sim::MachineSpec spec = [] {
    sim::MachineSpec s = sim::xeon_prototype();
    s.pack_affinity = 1.0;  // the paper's Fig. 4 machine co-scheduled siblings
    return s;
  }();
  const common::VmConfig c_vm = common::demo_c_vm();
  const std::vector<common::VmConfig> fleet = {c_vm, c_vm};

  std::printf("== offline: collecting v(S,C) table and fitting VHC model ==\n");
  core::CollectionOptions options;
  options.duration_s = 300.0;
  const core::OfflineDataset dataset =
      core::collect_offline_dataset(spec, fleet, options);
  std::printf("   %zu samples across %zu VHC combinations\n",
              dataset.table.total_samples(), dataset.table.combos().size());

  std::printf("== online: both VMs run the bc float loop at 100%% CPU ==\n");
  sim::PhysicalMachine machine(spec, /*seed=*/42);
  const sim::VmId a = machine.hypervisor().create_vm(
      c_vm, std::make_unique<wl::BcFloatLoop>());
  const sim::VmId b = machine.hypervisor().create_vm(
      c_vm, std::make_unique<wl::BcFloatLoop>());
  machine.hypervisor().start_vm(a);
  machine.hypervisor().start_vm(b);

  core::ShapleyVhcEstimator shapley(dataset.universe, dataset.approximation);
  const sim::CoalitionProbe probe(spec, fleet);
  base::MarginalContributionEstimator marginal(probe);

  util::RunningStats phi_a, phi_b, measured;
  for (int second = 0; second < 60; ++second) {
    const sim::MeterFrame frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    measured.add(adjusted);

    std::vector<core::VmSample> samples;
    for (const sim::VmObservation& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});

    const auto phi = shapley.estimate(samples, adjusted);
    phi_a.add(phi[0]);
    phi_b.add(phi[1]);

    if (second < 5) {
      std::printf("   t=%2ds meter=%.1f W (adj %.1f W)  Shapley: C_VM=%.2f W "
                  "C_VM'=%.2f W\n",
                  second + 1, frame.active_power_w, adjusted, phi[0], phi[1]);
    }
  }

  // The order-dependent marginal rule, for contrast (Table III row 1).
  const std::vector<common::StateVector> full_load(
      2, common::StateVector::cpu_only(1.0));
  std::vector<core::VmSample> at_full = {{0, c_vm.type_id, full_load[0]},
                                         {1, c_vm.type_id, full_load[1]}};
  const auto marginal_phi =
      marginal.estimate(at_full, probe.worth(0b11, full_load));

  std::printf("\n== Table III recap (60 s averages) ==\n");
  std::printf("   measured adjusted power : %6.2f W\n", measured.mean());
  std::printf("   Shapley                 : %6.2f W + %6.2f W = %6.2f W "
              "(fair and efficient)\n",
              phi_a.mean(), phi_b.mean(), phi_a.mean() + phi_b.mean());
  std::printf("   marginal contribution   : %6.2f W + %6.2f W  (efficient, "
              "unfair)\n",
              marginal_phi[0], marginal_phi[1]);
  return 0;
}
