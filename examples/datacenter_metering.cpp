// Datacenter metering: the paper's full Sec. VII-C deployment in one binary.
//
// A heterogeneous 5-VM fleet (2x VM1, VM2, VM3, VM4) runs a SPEC CPU2006-like
// mix on the Xeon prototype. The offline phase traverses the 2^4 VHC
// combinations; the online phase meters per-VM power every second with the
// Shapley estimator, cross-checks the meter against the simulated RAPL
// package counter, and prints a per-VM power/energy report.
#include <cstdio>
#include <memory>

#include "common/units.hpp"
#include "common/vm_config.hpp"
#include "core/accountant.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "sim/physical_machine.hpp"
#include "sim/rapl.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

using namespace vmp;

int main() {
  const sim::MachineSpec spec = sim::xeon_prototype();
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {
      catalogue[0], catalogue[0], catalogue[1], catalogue[2], catalogue[3]};
  const wl::SpecBenchmark jobs[] = {
      wl::SpecBenchmark::kGcc, wl::SpecBenchmark::kNamd,
      wl::SpecBenchmark::kSjeng, wl::SpecBenchmark::kOmnetpp,
      wl::SpecBenchmark::kWrf};

  std::printf("== offline phase: 2^4 VHC combinations ==\n");
  core::CollectionOptions options;
  options.duration_s = 400.0;
  const core::OfflineDataset dataset =
      core::collect_offline_dataset(spec, fleet, options);
  std::printf("   table: %zu samples, %zu combos fitted\n",
              dataset.table.total_samples(),
              dataset.approximation.fitted_combos().size());

  std::printf("== online phase: 10 minutes of SPEC mix ==\n");
  sim::PhysicalMachine machine(spec, /*seed=*/7);
  std::vector<sim::VmId> ids;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const sim::VmId id = machine.hypervisor().create_vm(
        fleet[i], wl::make_spec_workload(jobs[i], 5000 + i));
    machine.hypervisor().start_vm(id);
    ids.push_back(id);
  }

  core::ShapleyVhcEstimator estimator(dataset.universe, dataset.approximation);
  core::EnergyAccountant accountant(core::IdleAttribution::kProportional);
  sim::RaplReader rapl(machine.msr());
  util::RunningStats meter_w, rapl_pkg_w;
  std::vector<util::RunningStats> phi_stats(fleet.size());

  const double horizon_s = 600.0;
  for (double t = 0.0; t < horizon_s; t += 1.0) {
    const sim::MeterFrame frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    meter_w.add(frame.active_power_w);
    rapl_pkg_w.add(rapl.average_power_w(sim::RaplDomain::kPackage, 1.0));

    std::vector<core::VmSample> samples;
    for (const sim::VmObservation& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = estimator.estimate(samples, adjusted);
    for (std::size_t i = 0; i < phi.size(); ++i) phi_stats[i].add(phi[i]);
    accountant.add_sample(samples, phi, machine.idle_power_w(), 1.0);
  }

  std::printf("\n   wall meter: %.1f W avg;  RAPL package: %.1f W avg\n",
              meter_w.mean(), rapl_pkg_w.mean());

  util::TablePrinter table(
      {"VM", "type", "job", "avg power (W)", "energy (kWh)", "cost (USD)"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    table.add_row({"vm" + std::to_string(ids[i]), fleet[i].type_name,
                   std::string(to_string(jobs[i])),
                   util::TablePrinter::num(phi_stats[i].mean(), 2),
                   util::TablePrinter::num(
                       common::joules_to_kwh(accountant.energy_j(ids[i])), 5),
                   util::TablePrinter::num(accountant.bill_usd(ids[i], 0.10), 5)});
  }
  table.print();

  double phi_total = 0.0;
  for (const auto& s : phi_stats) phi_total += s.mean();
  std::printf("   efficiency check: sum of shares %.2f W vs adjusted meter "
              "%.2f W\n",
              phi_total, meter_w.mean() - machine.idle_power_w());
  return 0;
}
