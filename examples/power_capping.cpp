// Per-VM power capping — the management use case the paper's introduction
// motivates ("VM power measurement can effectively enable power caps to be
// enforced on a per-VM basis").
//
// A controller meters each VM with the Shapley estimator and, when a VM's
// share exceeds its cap, throttles that VM's CPU allocation (multiplicative
// decrease; gentle additive recovery when under cap) — the same shape as a
// hypervisor cap enforced through scheduler credits. The demo shows the
// aggressive VM being pushed to its cap while the compliant VM is untouched.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "core/capping.hpp"
#include "core/estimator.hpp"
#include "sim/physical_machine.hpp"
#include "workload/spec_suite.hpp"

using namespace vmp;

namespace {

/// Decorator that scales a workload's CPU demand by a controllable factor —
/// the actuation knob of the cap controller.
class ThrottledWorkload final : public wl::Workload {
 public:
  explicit ThrottledWorkload(wl::WorkloadPtr inner, double* factor)
      : inner_(std::move(inner)), factor_(factor) {}

  common::StateVector demand(double t) override {
    common::StateVector s = inner_->demand(t);
    s[common::Component::kCpu] *= std::clamp(*factor_, 0.0, 1.0);
    return s;
  }
  double power_intensity() const noexcept override {
    return inner_->power_intensity();
  }
  std::string_view name() const noexcept override { return "throttled"; }

 private:
  wl::WorkloadPtr inner_;
  double* factor_;  // owned by the controller below; outlives the VM.
};

}  // namespace

int main() {
  const sim::MachineSpec spec = sim::xeon_prototype();
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {catalogue[3], catalogue[2]};

  core::CollectionOptions options;
  options.duration_s = 300.0;
  const core::OfflineDataset dataset =
      core::collect_offline_dataset(spec, fleet, options);

  sim::PhysicalMachine machine(spec, /*seed=*/11);
  // VM0: 8-vCPU instance running a hot fp code; capped at 60 W.
  // VM1: 4-vCPU instance running an int code; capped generously at 60 W.
  static double throttle0 = 1.0;
  static double throttle1 = 1.0;
  const sim::VmId vm0 = machine.hypervisor().create_vm(
      fleet[0], std::make_unique<ThrottledWorkload>(
                    wl::make_spec_workload(wl::SpecBenchmark::kNamd, 1), &throttle0));
  const sim::VmId vm1 = machine.hypervisor().create_vm(
      fleet[1], std::make_unique<ThrottledWorkload>(
                    wl::make_spec_workload(wl::SpecBenchmark::kSjeng, 2), &throttle1));
  machine.hypervisor().start_vm(vm0);
  machine.hypervisor().start_vm(vm1);

  core::PowerCapController controller;
  controller.set_cap(vm0, core::CapPolicy{.cap_w = 60.0});
  controller.set_cap(vm1, core::CapPolicy{.cap_w = 60.0});
  core::ShapleyVhcEstimator estimator(dataset.universe, dataset.approximation);

  std::printf("%5s %10s %10s %10s %10s\n", "t(s)", "phi0 (W)", "thr0",
              "phi1 (W)", "thr1");
  for (int t = 1; t <= 120; ++t) {
    const sim::MeterFrame frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<core::VmSample> samples;
    for (const sim::VmObservation& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = estimator.estimate(samples, adjusted);

    // AIMD cap controller per VM (core/capping); write back the actuation.
    controller.observe(samples, phi);
    throttle0 = controller.throttle(vm0);
    throttle1 = controller.throttle(vm1);
    if (t % 10 == 0)
      std::printf("%5d %10.2f %10.2f %10.2f %10.2f\n", t, phi[0], throttle0,
                  phi[1], throttle1);
  }

  std::printf("\nVM0 (cap 60 W) converged to throttle %.2f after %zu "
              "violations; VM1 (cap 60 W)\nstayed at %.2f with %zu "
              "violations.\n",
              throttle0, controller.violations(vm0), throttle1,
              controller.violations(vm1));
  return 0;
}
