// Multi-host tenant accounting (paper Sec. IV-C Additivity, Sec. VIII).
//
// Tenant 1's VM computes on the Xeon host while its logical disk is served
// by a storage host (disk array); tenant 2 is compute-only. By the Shapley
// value's Additivity axiom, tenant 1's power is the sum of its shares in the
// two independent per-host games — no joint cross-host game is needed. This
// example runs both hosts, meters each with its own Shapley estimator, and
// composes the bills with MultiHostAccountant.
#include <cstdio>
#include <memory>

#include "common/units.hpp"
#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "core/multi_host.hpp"
#include "sim/physical_machine.hpp"
#include "util/table.hpp"
#include "workload/primitives.hpp"
#include "workload/spec_suite.hpp"

using namespace vmp;

namespace {

// A disk-array host: little CPU, lots of spindles.
sim::MachineSpec disk_array_spec() {
  sim::MachineSpec spec = sim::xeon_prototype();
  spec.name = "disk-array";
  spec.topology = sim::CpuTopology{1, 2, 2};
  spec.idle_power_w = 95.0;
  spec.thread_full_power_w = 8.0;
  spec.disk_power_w = 60.0;  // the dominant dynamic component
  spec.memory_power_w = 6.0;
  spec.validate();
  return spec;
}

// The "logical disk" service VM: I/O-heavy, light CPU.
wl::WorkloadPtr disk_service_load(double io_level) {
  common::StateVector state = common::StateVector::cpu_only(0.15);
  state[common::Component::kDiskIo] = io_level;
  return std::make_unique<wl::ConstantWorkload>(state, 1.0, "disk_service");
}

}  // namespace

int main() {
  constexpr core::HostId kCompute = 0;
  constexpr core::HostId kStorage = 1;
  constexpr core::TenantId kTenant1 = 101;
  constexpr core::TenantId kTenant2 = 202;

  // --- compute host: tenant 1's VM3 and tenant 2's VM3 ---
  const sim::MachineSpec compute_spec = sim::xeon_prototype();
  const common::VmConfig compute_vm = common::paper_vm_type(3);
  const std::vector<common::VmConfig> compute_fleet = {compute_vm, compute_vm};
  core::CollectionOptions options;
  options.duration_s = 300.0;
  const auto compute_dataset =
      core::collect_offline_dataset(compute_spec, compute_fleet, options);
  core::ShapleyVhcEstimator compute_estimator(compute_dataset.universe,
                                              compute_dataset.approximation);

  sim::PhysicalMachine compute_host(compute_spec, 21);
  const auto c1 = compute_host.hypervisor().create_vm(
      compute_vm, wl::make_spec_workload(wl::SpecBenchmark::kWrf, 31));
  const auto c2 = compute_host.hypervisor().create_vm(
      compute_vm, wl::make_spec_workload(wl::SpecBenchmark::kSjeng, 32));
  compute_host.hypervisor().start_vm(c1);
  compute_host.hypervisor().start_vm(c2);

  // --- storage host: tenant 1's logical disk plus an unrelated service ---
  const sim::MachineSpec storage_spec = disk_array_spec();
  common::VmConfig disk_vm{.type_name = "LDISK", .type_id = 7, .vcpus = 1,
                           .memory_mb = 1024, .disk_gb = 500};
  const std::vector<common::VmConfig> storage_fleet = {disk_vm, disk_vm};
  core::CollectionOptions storage_options;
  storage_options.duration_s = 300.0;
  storage_options.exercise_all_components = true;  // disk power matters here
  const auto storage_dataset =
      core::collect_offline_dataset(storage_spec, storage_fleet, storage_options);
  core::ShapleyVhcEstimator storage_estimator(storage_dataset.universe,
                                              storage_dataset.approximation);

  sim::PhysicalMachine storage_host(storage_spec, 22);
  const auto d1 =
      storage_host.hypervisor().create_vm(disk_vm, disk_service_load(0.8));
  const auto d2 =
      storage_host.hypervisor().create_vm(disk_vm, disk_service_load(0.3));
  storage_host.hypervisor().start_vm(d1);
  storage_host.hypervisor().start_vm(d2);

  // --- bindings: tenant 1 owns c1 + d1; tenant 2 owns c2; d2 is unowned ---
  core::MultiHostAccountant accountant;
  accountant.bind(kCompute, c1, kTenant1);
  accountant.bind(kStorage, d1, kTenant1);
  accountant.bind(kCompute, c2, kTenant2);

  const auto meter_host = [](sim::PhysicalMachine& machine,
                             core::ShapleyVhcEstimator& estimator,
                             core::HostId host,
                             core::MultiHostAccountant& acc) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<core::VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = estimator.estimate(samples, adjusted);
    acc.add_host_sample(host, samples, phi, 1.0);
  };

  const double horizon_s = 600.0;
  for (double t = 0.0; t < horizon_s; t += 1.0) {
    meter_host(compute_host, compute_estimator, kCompute, accountant);
    meter_host(storage_host, storage_estimator, kStorage, accountant);
  }

  util::print_banner("per-tenant energy across both hosts (10 minutes)");
  util::TablePrinter table({"tenant", "compute host (kWh)",
                            "storage host (kWh)", "total (kWh)"});
  for (const core::TenantId tenant : {kTenant1, kTenant2}) {
    table.add_row(
        {std::to_string(tenant),
         util::TablePrinter::num(common::joules_to_kwh(
             accountant.tenant_energy_on_host_j(tenant, kCompute)), 5),
         util::TablePrinter::num(common::joules_to_kwh(
             accountant.tenant_energy_on_host_j(tenant, kStorage)), 5),
         util::TablePrinter::num(
             common::joules_to_kwh(accountant.tenant_energy_j(tenant)), 5)});
  }
  table.print();
  std::printf("unattributed (unowned VMs): %.5f kWh\n",
              common::joules_to_kwh(accountant.unattributed_energy_j()));
  std::printf("\nAdditivity (Sec. IV-C): tenant 1's total is exactly the sum "
              "of its two\nper-host Shapley shares — composing games needs no "
              "cross-host coordination.\n");
  return 0;
}
