#!/usr/bin/env python3
"""Validate Prometheus text exposition format (version 0.0.4).

Usage: validate_prom.py [FILE]     (reads stdin when FILE is omitted)

Checks the grammar rules the MetricsRegistry exporter promises:
  * metric and label names match the exposition charset;
  * label values escape backslash, double quote, and newline;
  * HELP/TYPE appear at most once per family, before the family's samples,
    and every family's lines are contiguous;
  * sample values parse as floats (including +Inf/-Inf/NaN);
  * counter samples are non-negative;
  * histogram families expose _bucket series with strictly ascending,
    cumulative le boundaries (a repeated bound is rejected) ending in a
    +Inf bucket that equals _count, plus _sum/_count.

Exits 0 when the input is valid, 1 with one message per violation otherwise.
"""

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$"
)
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_labels(body, line_no, errors):
    """Parses the inner label body; returns a list of (name, value) pairs."""
    pairs = []
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq < 0:
            errors.append(f"line {line_no}: label without '=': {body[i:]!r}")
            return pairs
        name = body[i:eq]
        if not LABEL_NAME.match(name):
            errors.append(f"line {line_no}: bad label name {name!r}")
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            errors.append(f"line {line_no}: unquoted value for label {name!r}")
            return pairs
        j = eq + 2
        value = []
        while j < len(body):
            c = body[j]
            if c == "\\":
                if j + 1 >= len(body) or body[j + 1] not in ('\\', '"', "n"):
                    errors.append(
                        f"line {line_no}: invalid escape in label {name!r}")
                    return pairs
                value.append("\n" if body[j + 1] == "n" else body[j + 1])
                j += 2
            elif c == '"':
                break
            elif c == "\n":
                errors.append(
                    f"line {line_no}: raw newline in label {name!r}")
                return pairs
            else:
                value.append(c)
                j += 1
        else:
            errors.append(f"line {line_no}: unterminated label {name!r}")
            return pairs
        pairs.append((name, "".join(value)))
        j += 1  # closing quote.
        if j < len(body) and body[j] == ",":
            j += 1
        elif j < len(body):
            errors.append(
                f"line {line_no}: expected ',' after label {name!r}")
            return pairs
        i = j
    return pairs


def parse_value(text, line_no, errors):
    try:
        return float(text.replace("+Inf", "inf").replace("-Inf", "-inf"))
    except ValueError:
        errors.append(f"line {line_no}: unparseable value {text!r}")
        return None


def family_of(name, kind):
    """Sample-name -> family, folding histogram suffixes onto the family."""
    if kind == "histogram":
        for suffix in HISTOGRAM_SUFFIXES:
            if name.endswith(suffix):
                return name[: -len(suffix)]
    return name


def check_histograms(samples, types, errors):
    """Cross-sample histogram checks, grouped by (family, non-le labels)."""
    groups = {}
    for name, labels, value, line_no in samples:
        family = None
        for suffix in HISTOGRAM_SUFFIXES:
            if name.endswith(suffix) and types.get(name[: -len(suffix)]) == \
                    "histogram":
                family = name[: -len(suffix)]
                part = suffix
                break
        if family is None:
            continue
        rest = tuple(sorted((k, v) for k, v in labels if k != "le"))
        group = groups.setdefault((family, rest), {"buckets": [], "sum": None,
                                                   "count": None})
        if part == "_bucket":
            le = dict(labels).get("le")
            if le is None:
                errors.append(f"line {line_no}: {name} bucket without le")
                continue
            bound = parse_value(le, line_no, errors)
            group["buckets"].append((bound, value, line_no))
        elif part == "_sum":
            group["sum"] = value
        else:
            group["count"] = value

    for (family, rest), group in groups.items():
        where = family + (str(dict(rest)) if rest else "")
        buckets = group["buckets"]
        if not buckets:
            errors.append(f"{where}: histogram without _bucket series")
            continue
        bounds = [b for b, _, _ in buckets]
        if any(b is None for b in bounds):
            continue  # already reported.
        if any(bounds[i] >= bounds[i + 1] for i in range(len(bounds) - 1)):
            errors.append(
                f"{where}: le bounds not strictly ascending: {bounds}")
        if not math.isinf(bounds[-1]):
            errors.append(f"{where}: missing le=\"+Inf\" bucket")
        counts = [c for _, c, _ in buckets]
        if any(counts[i] > counts[i + 1] for i in range(len(counts) - 1)):
            errors.append(f"{where}: bucket counts not cumulative: {counts}")
        if group["count"] is None or group["sum"] is None:
            errors.append(f"{where}: missing _sum or _count")
        elif math.isinf(bounds[-1]) and counts[-1] != group["count"]:
            errors.append(
                f"{where}: +Inf bucket {counts[-1]} != _count "
                f"{group['count']}")


def validate(text):
    errors = []
    helps, types = {}, {}
    finished_families = set()
    current_family = None
    samples = []

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                keyword, family = parts[1], parts[2]
                if not METRIC_NAME.match(family):
                    errors.append(
                        f"line {line_no}: bad family name {family!r}")
                table = helps if keyword == "HELP" else types
                if family in table:
                    errors.append(
                        f"line {line_no}: duplicate # {keyword} for "
                        f"{family}")
                if family in finished_families:
                    errors.append(
                        f"line {line_no}: family {family} reopened after "
                        f"other families' samples")
                table[family] = (parts[3].rstrip()
                                 if keyword == "HELP" and len(parts) > 3
                                 else parts[3].split()[0] if len(parts) > 3
                                 else "")
                if keyword == "TYPE":
                    value = parts[3].split()[0] if len(parts) > 3 else ""
                    if value not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                        errors.append(
                            f"line {line_no}: unknown type {value!r}")
                    types[family] = value
            continue  # other comments are free-form.

        match = SAMPLE.match(line)
        if not match:
            errors.append(f"line {line_no}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        if not METRIC_NAME.match(name):
            errors.append(f"line {line_no}: bad metric name {name!r}")
        labels = (parse_labels(match.group("labels"), line_no, errors)
                  if match.group("labels") is not None else [])
        value = parse_value(match.group("value"), line_no, errors)
        if value is None:
            continue

        kind = None
        family = name
        for candidate, candidate_kind in types.items():
            if family_of(name, candidate_kind) == candidate or \
                    name == candidate:
                if name == candidate or (
                        candidate_kind == "histogram"
                        and name.startswith(candidate)
                        and name[len(candidate):] in HISTOGRAM_SUFFIXES):
                    kind, family = candidate_kind, candidate
                    break
        if kind == "counter" and value < 0:
            errors.append(f"line {line_no}: negative counter {name}={value}")

        if family != current_family:
            if current_family is not None:
                finished_families.add(current_family)
            if family in finished_families:
                errors.append(
                    f"line {line_no}: samples of {family} are not "
                    f"contiguous")
            current_family = family
        samples.append((name, labels, value, line_no))

    check_histograms(samples, types, errors)

    for family, kind in types.items():
        if kind == "histogram":
            if not any(n.startswith(family) for n, _, _, _ in samples):
                errors.append(f"{family}: TYPE histogram but no samples")
    return errors


def main():
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    errors = validate(text)
    for error in errors:
        print(f"validate_prom: {error}", file=sys.stderr)
    if not errors:
        print(f"validate_prom: OK "
              f"({sum(1 for l in text.splitlines() if l and not l.startswith('#'))} samples)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
