// vmpower — command-line front end for the estimation pipeline.
//
// Mirrors how an operator would run the paper's system on a host:
//
//   vmpower collect --fleet VM1,VM1,VM2 --duration 300 --out table.vsc
//       run the offline v(S,C) campaign for the fleet's VHC combinations and
//       persist the table (Fig. 8, offline path);
//
//   vmpower train --table table.vsc --out approx.vhc
//       fit the VHC linear approximation from a stored table;
//
//   vmpower meter --fleet VM1,VM1,VM2 --approx approx.vhc --duration 60
//       simulate the fleet under SPEC-like load and stream per-VM power
//       (Fig. 8, online path); optional --csv out.csv;
//
//   vmpower bill --fleet ... --approx ... --duration 600 --tariff 0.10
//       --idle-policy equal|proportional|none
//       run the meter and print per-VM energy and cost;
//
//   vmpower info --approx approx.vhc
//       dump fitted combinations and weights.
//
//   vmpower fleet --hosts 8 --fleet VM1,VM2 --threads 4 --duration 120
//       meter N simulated hosts concurrently and roll per-VM shares up into
//       tenant ledgers; optional fault injection, Prometheus metrics dump,
//       and checkpoint/resume (see the "Fleet metering service" README
//       section).
//
// Fleet syntax: comma-separated Table IV type names (VM1..VM4). The machine
// is the calibrated Xeon prototype (--machine pentium for the desktop).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "common/vm_config.hpp"
#include "core/accountant.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "core/serialization.hpp"
#include "fleet/engine.hpp"
#include "sim/physical_machine.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

using namespace vmp;

namespace {

constexpr const char* kUsage = R"(usage: vmpower <command> [options]
commands:
  collect --fleet VM1,VM2,...  --out FILE [--duration S] [--seed N] [--machine xeon|pentium]
  train   --table FILE --out FILE [--ridge L]
  meter   --fleet VM1,... --approx FILE [--duration S] [--seed N] [--csv FILE]
  bill    --fleet VM1,... --approx FILE [--duration S] [--tariff $/kWh] [--idle-policy none|equal|proportional]
  info    --approx FILE
  fleet   --fleet VM1,... [--hosts N] [--threads T] [--duration S] [--tenants K]
          [--seed N] [--tariff $/kWh] [--collect-duration S]
          [--inject-faults meter:P,dropout:P,stale:P] [--max-retries N]
          [--backpressure block|drop-oldest] [--queue-capacity N]
          [--checkpoint FILE] [--metrics FILE]
)";

sim::MachineSpec machine_for(const util::CliArgs& args) {
  const std::string name = args.get("machine", "xeon");
  if (name == "xeon") return sim::xeon_prototype();
  if (name == "pentium") return sim::pentium_desktop();
  throw std::invalid_argument("unknown --machine '" + name +
                              "' (expected xeon or pentium)");
}

std::vector<common::VmConfig> fleet_for(const util::CliArgs& args) {
  const auto names = util::split_csv(args.require("fleet"));
  const auto catalogue = common::paper_vm_catalogue();
  std::vector<common::VmConfig> fleet;
  for (const std::string& name : names) {
    bool found = false;
    for (const auto& config : catalogue) {
      if (config.type_name == name) {
        fleet.push_back(config);
        found = true;
        break;
      }
    }
    if (!found)
      throw std::invalid_argument("unknown VM type '" + name +
                                  "' (expected VM1..VM4)");
  }
  if (fleet.empty()) throw std::invalid_argument("--fleet is empty");
  return fleet;
}

/// Boots the fleet under a SPEC-like mix and returns (machine, vm ids).
std::vector<sim::VmId> boot_fleet(sim::PhysicalMachine& machine,
                                  const std::vector<common::VmConfig>& fleet,
                                  std::uint64_t seed) {
  const auto benchmarks = wl::spec_subset();
  std::vector<sim::VmId> ids;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        fleet[i],
        wl::make_spec_workload(benchmarks[(seed + i) % benchmarks.size()],
                               seed * 31 + i));
    machine.hypervisor().start_vm(id);
    ids.push_back(id);
  }
  return ids;
}

int cmd_collect(const util::CliArgs& args) {
  const auto fleet = fleet_for(args);
  core::CollectionOptions options;
  options.duration_s = args.get_double("duration", 300.0);
  options.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  const auto dataset =
      core::collect_offline_dataset(machine_for(args), fleet, options);
  const std::string out = args.require("out");
  core::save_table(dataset.table, out);
  std::printf("collected %zu samples over %zu VHC combinations -> %s\n",
              dataset.table.total_samples(), dataset.table.combos().size(),
              out.c_str());
  return 0;
}

int cmd_train(const util::CliArgs& args) {
  const core::VscTable table = core::load_table(args.require("table"));
  const auto approx =
      core::VhcLinearApprox::fit(table, args.get_double("ridge", 1e-6));
  const std::string out = args.require("out");
  core::save_approximation(approx, out);
  std::printf("fitted %zu combinations from %zu samples -> %s\n",
              approx.fitted_combos().size(), table.total_samples(),
              out.c_str());
  return 0;
}

int cmd_meter(const util::CliArgs& args, bool billing) {
  const auto fleet = fleet_for(args);
  const auto approx = core::load_approximation(args.require("approx"));
  const core::VhcUniverse universe = core::VhcUniverse::from_fleet(fleet);
  core::ShapleyVhcEstimator estimator(universe, approx);

  sim::PhysicalMachine machine(
      machine_for(args), static_cast<std::uint64_t>(args.get_long("seed", 1)));
  const auto ids = boot_fleet(
      machine, fleet, static_cast<std::uint64_t>(args.get_long("seed", 1)));

  std::unique_ptr<util::CsvWriter> csv;
  if (args.has("csv")) {
    std::vector<std::string> columns = {"t", "measured_adjusted"};
    for (const auto id : ids) columns.push_back("vm" + std::to_string(id));
    csv = std::make_unique<util::CsvWriter>(args.require("csv"), columns);
  }

  const auto policy_name = args.get("idle-policy", "none");
  core::IdleAttribution policy = core::IdleAttribution::kNone;
  if (policy_name == "equal") policy = core::IdleAttribution::kEqualShare;
  else if (policy_name == "proportional")
    policy = core::IdleAttribution::kProportional;
  else if (policy_name != "none")
    throw std::invalid_argument("unknown --idle-policy '" + policy_name + "'");
  core::EnergyAccountant accountant(policy);

  const double duration = args.get_double("duration", 60.0);
  for (double t = 1.0; t <= duration; t += 1.0) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<core::VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = estimator.estimate(samples, adjusted);
    accountant.add_sample(samples, phi, machine.idle_power_w(), 1.0);

    if (!billing) {
      std::printf("t=%6.0f adj=%7.2fW ", t, adjusted);
      for (std::size_t i = 0; i < phi.size(); ++i)
        std::printf(" vm%u=%6.2fW", samples[i].vm_id, phi[i]);
      std::printf("\n");
    }
    if (csv) {
      std::vector<double> row = {t, adjusted};
      row.insert(row.end(), phi.begin(), phi.end());
      csv->write_row(row);
    }
  }

  if (billing) {
    const double tariff = args.get_double("tariff", 0.10);
    util::TablePrinter table({"VM", "type", "energy (kWh)", "cost (USD)"});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      table.add_row({"vm" + std::to_string(ids[i]), fleet[i].type_name,
                     util::TablePrinter::num(
                         common::joules_to_kwh(accountant.energy_j(ids[i])), 6),
                     util::TablePrinter::num(
                         accountant.bill_usd(ids[i], tariff), 6)});
    }
    table.print();
    std::printf("idle attribution: %s; tariff $%.4f/kWh; horizon %.0f s\n",
                to_string(accountant.policy()), tariff, duration);
  }
  return 0;
}

int cmd_fleet(const util::CliArgs& args) {
  fleet::FleetOptions options;
  options.fleet_per_host = fleet_for(args);
  options.hosts = static_cast<std::size_t>(args.get_long("hosts", 4));
  options.threads = static_cast<std::size_t>(args.get_long("threads", 2));
  options.tenants = static_cast<std::size_t>(args.get_long("tenants", 3));
  options.spec = machine_for(args);
  options.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  options.max_retries =
      static_cast<std::uint32_t>(args.get_long("max-retries", 3));
  options.queue_capacity =
      static_cast<std::size_t>(args.get_long("queue-capacity", 0));
  if (args.has("inject-faults"))
    options.faults = fleet::parse_fault_spec(args.require("inject-faults"));
  const std::string backpressure = args.get("backpressure", "block");
  if (backpressure == "drop-oldest")
    options.backpressure = fleet::BackpressurePolicy::kDropOldest;
  else if (backpressure != "block")
    throw std::invalid_argument("unknown --backpressure '" + backpressure +
                                "' (expected block or drop-oldest)");
  options.validate();  // fail on bad knobs before the offline campaign runs

  // The offline campaign is shared across hosts (identical machine type, so
  // the artifacts are per type — exactly as in examples/cluster_billing).
  core::CollectionOptions collect;
  collect.duration_s = args.get_double("collect-duration", 120.0);
  collect.seed = options.seed;
  std::printf("offline: training the shared host profile (%.0f s)...\n",
              collect.duration_s);
  const auto dataset =
      core::collect_offline_dataset(options.spec, options.fleet_per_host,
                                    collect);

  fleet::FleetEngine engine(options, dataset);
  const std::string checkpoint = args.get("checkpoint");
  if (!checkpoint.empty() && std::filesystem::exists(checkpoint)) {
    engine.restore_checkpoint(checkpoint);
    std::printf("resumed from checkpoint %s at tick %llu\n",
                checkpoint.c_str(),
                static_cast<unsigned long long>(engine.tick()));
  }

  const auto ticks =
      static_cast<std::uint64_t>(args.get_double("duration", 60.0));
  std::printf("online: metering %zu hosts x %zu VMs on %zu threads for %llu "
              "ticks (%s backpressure)\n",
              options.hosts, options.fleet_per_host.size(), options.threads,
              static_cast<unsigned long long>(ticks),
              to_string(options.backpressure));
  engine.run(ticks);

  const double tariff = args.get_double("tariff", 0.10);
  const auto& ledger = engine.tenant_ledger();
  util::TablePrinter table({"tenant", "VMs", "energy (kWh)", "cost (USD)"});
  for (const core::TenantId tenant : ledger.tenants()) {
    std::size_t vms = 0;
    for (std::size_t h = 0; h < options.hosts; ++h)
      for (std::size_t v = 0; v < options.fleet_per_host.size(); ++v)
        if (v % options.tenants + 1 == tenant) ++vms;
    const double kwh = common::joules_to_kwh(ledger.tenant_energy_j(tenant));
    table.add_row({std::to_string(tenant), std::to_string(vms),
                   util::TablePrinter::num(kwh, 6),
                   util::TablePrinter::num(kwh * tariff, 6)});
  }
  table.print();
  std::printf("ticks %llu | samples %llu | drops %llu | retries %llu | "
              "degraded %llu | stale %llu | unattributed %.3f J\n",
              static_cast<unsigned long long>(engine.tick()),
              static_cast<unsigned long long>(engine.samples_processed()),
              static_cast<unsigned long long>(engine.samples_dropped()),
              static_cast<unsigned long long>(engine.retries()),
              static_cast<unsigned long long>(engine.degraded_ticks()),
              static_cast<unsigned long long>(engine.stale_ticks()),
              ledger.unattributed_energy_j());

  if (!checkpoint.empty()) {
    engine.save_checkpoint(checkpoint);
    std::printf("checkpoint written to %s\n", checkpoint.c_str());
  }
  if (args.has("metrics")) {
    const std::string metrics_path = args.require("metrics");
    engine.metrics().write_prometheus(metrics_path);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

int cmd_info(const util::CliArgs& args) {
  const auto approx = core::load_approximation(args.require("approx"));
  std::printf("VHC linear approximation: %zu VHCs, %zu fitted combinations\n",
              approx.num_vhcs(), approx.fitted_combos().size());
  for (const auto& model : approx.export_models()) {
    std::printf("combo %u (rmse %.3f W, %zu samples): cpu weights [",
                model.combo, model.rmse, model.sample_count);
    for (std::size_t j = 0; j < approx.num_vhcs(); ++j)
      std::printf("%s%.2f", j ? ", " : "",
                  model.weights[j * common::kNumComponents]);
    std::printf("]\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliArgs args(argc, argv);
    const std::string command = args.command();
    if (command == "collect") return cmd_collect(args);
    if (command == "train") return cmd_train(args);
    if (command == "meter") return cmd_meter(args, /*billing=*/false);
    if (command == "bill") return cmd_meter(args, /*billing=*/true);
    if (command == "info") return cmd_info(args);
    if (command == "fleet") return cmd_fleet(args);
    std::fputs(kUsage, command.empty() ? stdout : stderr);
    return command.empty() ? 0 : 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vmpower: %s\n", error.what());
    return 1;
  }
}
