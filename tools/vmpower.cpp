// vmpower — command-line front end for the estimation pipeline.
//
// Mirrors how an operator would run the paper's system on a host:
//
//   vmpower collect --fleet VM1,VM1,VM2 --duration 300 --out table.vsc
//       run the offline v(S,C) campaign for the fleet's VHC combinations and
//       persist the table (Fig. 8, offline path);
//
//   vmpower train --table table.vsc --out approx.vhc
//       fit the VHC linear approximation from a stored table;
//
//   vmpower meter --fleet VM1,VM1,VM2 --approx approx.vhc --duration 60
//       simulate the fleet under SPEC-like load and stream per-VM power
//       (Fig. 8, online path); optional --csv out.csv;
//
//   vmpower bill --fleet ... --approx ... --duration 600 --tariff 0.10
//       --idle-policy equal|proportional|none
//       run the meter and print per-VM energy and cost;
//
//   vmpower info --approx approx.vhc
//       dump fitted combinations and weights.
//
//   vmpower fleet --hosts 8 --fleet VM1,VM2 --threads 4 --duration 120
//       meter N simulated hosts concurrently and roll per-VM shares up into
//       tenant ledgers; optional fault injection, Prometheus metrics dump,
//       and checkpoint/resume (see the "Fleet metering service" README
//       section).
//
//   vmpower serve --fleet VM1,VM2 --hosts 4 --duration 300 --port 7077
//       run the fleet engine with a snapshot store attached and answer
//       point/window/cost queries over loopback TCP while it meters (and for
//       --linger further seconds afterwards); see the "Query service" README
//       section for the protocol.
//
//   vmpower query --port 7077 tenant-energy 1 0 120
//       send one query (binary protocol; --proto text for the line
//       protocol) and print the response line; --timeout-ms bounds how long
//       the client waits before giving up with a clean timeout error.
//
//   vmpower federate --shards 1=7071;2=7072;3=7073 --port 7080
//       front N running fleet shards with a scatter-gather federation
//       frontend speaking the same protocol (see the "Federation" README
//       section); --spin N instead stands the shards up in-process.
//
//   vmpower trace --out trace.jsonl
//       run a short traced fleet + query workload and dump the span ring as
//       Chrome trace-event JSONL (chrome://tracing, Perfetto).
//
//   vmpower scrape --port 7077 [--what metrics|trace|health]
//       pull a Prometheus exposition, trace JSONL, or the HEALTH payload
//       (stage latency quantiles, SLO cells, slow-query log) from a running
//       `vmpower serve` over its text protocol.
//
//   vmpower slo --port 7077
//       print the serving tier's SLO compliance and burn rates.
//
//   vmpower ledger inspect|verify|compact --dir DIR
//       examine or maintain a durable attribution ledger directory (the
//       write-ahead log `vmpower serve --ledger DIR` appends to); see the
//       "Durable history" README section.
//
// Fleet syntax: comma-separated Table IV type names (VM1..VM4). The machine
// is the calibrated Xeon prototype (--machine pentium for the desktop).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "common/units.hpp"
#include "common/vm_config.hpp"
#include "federate/frontend.hpp"
#include "federate/shard_map.hpp"
#include "federate/spin.hpp"
#include "core/accountant.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "core/serialization.hpp"
#include "core/pricing.hpp"
#include "fleet/engine.hpp"
#include "ledger/ledger.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/profile.hpp"
#include "serve/query.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/transport.hpp"
#include "sim/physical_machine.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

using namespace vmp;

namespace {

constexpr const char* kUsage = R"(usage: vmpower <command> [options]
commands:
  collect --fleet VM1,VM2,...  --out FILE [--duration S] [--seed N] [--machine xeon|pentium]
  train   --table FILE --out FILE [--ridge L]
  meter   --fleet VM1,... --approx FILE [--duration S] [--seed N] [--csv FILE]
          [--kernel K] [--samples N] [--halfwidth W] [--budget-ms D]
  bill    --fleet VM1,... --approx FILE [--duration S] [--tariff $/kWh] [--idle-policy none|equal|proportional]
          [--kernel K] [--samples N] [--halfwidth W] [--budget-ms D]
  info    --approx FILE
  fleet   --fleet VM1,... [--hosts N] [--threads T] [--duration S] [--tenants K]
          [--seed N] [--tariff $/kWh] [--collect-duration S]
          [--inject-faults meter:P,dropout:P,stale:P] [--max-retries N]
          [--backpressure block|drop-oldest] [--queue-capacity N]
          [--kernel K] [--samples N] [--halfwidth W] [--budget-ms D]
          [--checkpoint FILE] [--metrics FILE] [--trace] [--trace-out FILE]
          --kernel K       Shapley kernel: auto (default; exact collapsed/
                           sweep below the composition threshold, sampled
                           above), or force collapsed|sweep|sampled
          --samples N      sampled tier: worth-evaluation budget per tick
          --halfwidth W    sampled tier: stop once every VM's confidence
                           half-width is <= W watts
          --budget-ms D    sampled tier: wall-clock budget per tick
                           (first stop rule hit wins; --seed keys the
                           deterministic draw streams)
  serve   --fleet VM1,... [--hosts N] [--threads T] [--duration S] [--tenants K]
          [--port P] [--workers W] [--linger S] [--retention N]
          [--request-queue N] [--tokens-per-s R] [--burst B]
          [--cache N] [--cache-shards K] [--coalesce 0|1] [--ordered]
          [--kernel K] [--samples N] [--halfwidth W] [--budget-ms D]
          [--offpeak-rate $/kWh] [--peak-rate $/kWh] [--peak-hours H0-H1]
          [--seconds-per-hour S] [--seed N] [--collect-duration S]
          [--ledger DIR] [--segment-records N] [--checkpoint FILE]
          [--metrics FILE] [--trace] [--trace-out FILE]
          [--slow-ms D] [--slo-ms D] [--slo-target Q]
          --slow-ms D      total latency at which a query enters the
                           slow-query log (default 50)
          --slo-ms D       SLO latency threshold (default: --slow-ms)
          --slo-target Q   latency objective, fraction of queries that must
                           finish under --slo-ms (default 0.99)
          --ledger DIR     append every published snapshot to a durable
                           write-ahead ledger; window queries older than the
                           retention ring fall through to it
          --checkpoint FILE with --ledger: restore the engine and replay the
                           ledger tail into the ring on start, save on exit
          --cache N        result-cache capacity across shards (0 disables)
          --cache-shards K independent LRU shards (lock striping)
          --coalesce 0|1   attach duplicate in-flight queries to one
                           evaluation (default 1)
          --ordered        force arrival-order responses even for id-stamped
                           requests (default: out-of-order completion; id-less
                           clients always get arrival order)
  query   --port P [--proto binary|text] [--id N] [--timeout-ms D] <verb> [args...]
          verbs: vm-power H V | tenant-power T | fleet-power | stats
                 vm-energy H V T0 T1 | tenant-energy T T0 T1 | tenant-cost T T0 T1
  federate (--shards "F=PORT[,PORT];..." | --spin N) [--port P] [--workers W]
          [--deadline-ms D] [--retries R] [--backoff-ms B]
          [--hedge] [--hedge-delay-ms H] [--skew accept|reject] [--max-skew N]
          [--fed-pool 0|1] [--fed-workers N] [--fed-pool-idle N]
          [--query "verb args"] [--linger S] [--metrics FILE]
          [--trace] [--trace-out FILE]
          [--slow-ms D] [--slo-ms D] [--slo-target Q]
          [--fleet VM1,... --hosts N --tenants K --duration TICKS --seed N
           --collect-duration S]   (shard shape under --spin)
          --shards         fleet-id=endpoint map of running `vmpower serve`
                           shards; extra comma-separated ports per fleet are
                           replicas eligible for hedged requests
          --spin N         stand up N in-process fleet shards instead, meter
                           them, then federate over them
          --deadline-ms D  per-shard per-attempt deadline (default 250)
          --hedge          race a replica when the primary is slow
          --skew reject    error (code 12) when shard epochs spread more
                           than --max-skew instead of rolling up at the min
          --fed-pool 0     disable connection pooling + the persistent
                           dispatcher (legacy thread-per-shard fan-out)
          --fed-workers N  dispatch pool size (default 0 = shards x 2)
          --fed-pool-idle N  idle connections kept per shard endpoint
                           (default 2)
          --query "..."    answer one query through the frontend and exit;
                           otherwise serve on --port for --linger seconds
  trace   [--fleet VM1,...] [--hosts N] [--duration TICKS] [--out FILE]
          [--seed N] [--collect-duration S]
  scrape  --port P [--what metrics|trace|health] [--out FILE]
  slo     --port P [--full]   SLO compliance and burn rates from a running
                              server's HEALTH scrape; --full adds the
                              per-stage latency quantiles and slow-query log
  ledger  inspect --dir DIR   list segments, extent, and recovery findings
          verify  --dir DIR   full-scan integrity check (read-only; exit 1
                              on torn records or epoch gaps)
          compact --dir DIR   compact every sealed WAL segment into an
                              indexed cold segment [--index-stride N]
)";

sim::MachineSpec machine_for(const util::CliArgs& args) {
  const std::string name = args.get("machine", "xeon");
  if (name == "xeon") return sim::xeon_prototype();
  if (name == "pentium") return sim::pentium_desktop();
  throw std::invalid_argument("unknown --machine '" + name +
                              "' (expected xeon or pentium)");
}

std::vector<common::VmConfig> fleet_for(const util::CliArgs& args) {
  const auto names = util::split_csv(args.require("fleet"));
  const auto catalogue = common::paper_vm_catalogue();
  std::vector<common::VmConfig> fleet;
  for (const std::string& name : names) {
    bool found = false;
    for (const auto& config : catalogue) {
      if (config.type_name == name) {
        fleet.push_back(config);
        found = true;
        break;
      }
    }
    if (!found)
      throw std::invalid_argument("unknown VM type '" + name +
                                  "' (expected VM1..VM4)");
  }
  if (fleet.empty()) throw std::invalid_argument("--fleet is empty");
  return fleet;
}

/// Parses the Shapley kernel knobs shared by meter/bill/fleet/serve:
/// --kernel auto|collapsed|sweep|sampled plus the sampled tier's anytime
/// stop rules (--samples, --halfwidth, --budget-ms). --seed doubles as the
/// sampling seed, so sampled runs are reproducible from the CLI.
core::SampledKernelConfig kernel_for(const util::CliArgs& args) {
  core::SampledKernelConfig config;
  using Kernel = core::SampledKernelConfig::Kernel;
  const std::string kernel = args.get("kernel", "auto");
  if (kernel == "collapsed") config.kernel = Kernel::kCollapsed;
  else if (kernel == "sweep") config.kernel = Kernel::kSweep;
  else if (kernel == "sampled") config.kernel = Kernel::kSampled;
  else if (kernel != "auto")
    throw std::invalid_argument(
        "unknown --kernel '" + kernel +
        "' (expected auto, collapsed, sweep, or sampled)");
  config.sampling.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  config.sampling.max_samples =
      static_cast<std::size_t>(args.get_long("samples", 60'000));
  config.sampling.target_halfwidth_w = args.get_double("halfwidth", 0.0);
  const long budget_ms = args.get_long("budget-ms", 0);
  config.sampling.budget_ns =
      budget_ms > 0 ? static_cast<std::uint64_t>(budget_ms) * 1'000'000ULL : 0;
  return config;
}

/// Arms the global tracer when --trace or --trace-out is given; returns
/// whether a dump was requested.
bool arm_tracer(const util::CliArgs& args) {
  const bool armed = args.has("trace") || args.has("trace-out");
  if (armed) obs::Tracer::global().set_enabled(true);
  return args.has("trace-out");
}

void dump_trace(const util::CliArgs& args) {
  const std::string path = args.require("trace-out");
  const obs::Tracer& tracer = obs::Tracer::global();
  tracer.write_chrome_jsonl(path);
  std::printf("trace: %zu spans (%llu overwritten) written to %s\n",
              tracer.size(),
              static_cast<unsigned long long>(tracer.dropped()),
              path.c_str());
}

/// Boots the fleet under a SPEC-like mix and returns (machine, vm ids).
std::vector<sim::VmId> boot_fleet(sim::PhysicalMachine& machine,
                                  const std::vector<common::VmConfig>& fleet,
                                  std::uint64_t seed) {
  const auto benchmarks = wl::spec_subset();
  std::vector<sim::VmId> ids;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        fleet[i],
        wl::make_spec_workload(benchmarks[(seed + i) % benchmarks.size()],
                               seed * 31 + i));
    machine.hypervisor().start_vm(id);
    ids.push_back(id);
  }
  return ids;
}

int cmd_collect(const util::CliArgs& args) {
  const auto fleet = fleet_for(args);
  core::CollectionOptions options;
  options.duration_s = args.get_double("duration", 300.0);
  options.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  const auto dataset =
      core::collect_offline_dataset(machine_for(args), fleet, options);
  const std::string out = args.require("out");
  core::save_table(dataset.table, out);
  std::printf("collected %zu samples over %zu VHC combinations -> %s\n",
              dataset.table.total_samples(), dataset.table.combos().size(),
              out.c_str());
  return 0;
}

int cmd_train(const util::CliArgs& args) {
  const core::VscTable table = core::load_table(args.require("table"));
  const auto approx =
      core::VhcLinearApprox::fit(table, args.get_double("ridge", 1e-6));
  const std::string out = args.require("out");
  core::save_approximation(approx, out);
  std::printf("fitted %zu combinations from %zu samples -> %s\n",
              approx.fitted_combos().size(), table.total_samples(),
              out.c_str());
  return 0;
}

int cmd_meter(const util::CliArgs& args, bool billing) {
  const auto fleet = fleet_for(args);
  const auto approx = core::load_approximation(args.require("approx"));
  const core::VhcUniverse universe = core::VhcUniverse::from_fleet(fleet);
  core::ShapleyVhcEstimator estimator(universe, approx);
  estimator.set_sampled_kernel(kernel_for(args));

  sim::PhysicalMachine machine(
      machine_for(args), static_cast<std::uint64_t>(args.get_long("seed", 1)));
  const auto ids = boot_fleet(
      machine, fleet, static_cast<std::uint64_t>(args.get_long("seed", 1)));

  std::unique_ptr<util::CsvWriter> csv;
  if (args.has("csv")) {
    std::vector<std::string> columns = {"t", "measured_adjusted"};
    for (const auto id : ids) columns.push_back("vm" + std::to_string(id));
    csv = std::make_unique<util::CsvWriter>(args.require("csv"), columns);
  }

  const auto policy_name = args.get("idle-policy", "none");
  core::IdleAttribution policy = core::IdleAttribution::kNone;
  if (policy_name == "equal") policy = core::IdleAttribution::kEqualShare;
  else if (policy_name == "proportional")
    policy = core::IdleAttribution::kProportional;
  else if (policy_name != "none")
    throw std::invalid_argument("unknown --idle-policy '" + policy_name + "'");
  core::EnergyAccountant accountant(policy);

  const double duration = args.get_double("duration", 60.0);
  for (double t = 1.0; t <= duration; t += 1.0) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<core::VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = estimator.estimate(samples, adjusted);
    accountant.add_sample(samples, phi, machine.idle_power_w(), 1.0);

    if (!billing) {
      std::printf("t=%6.0f adj=%7.2fW ", t, adjusted);
      for (std::size_t i = 0; i < phi.size(); ++i)
        std::printf(" vm%u=%6.2fW", samples[i].vm_id, phi[i]);
      if (estimator.last_kernel() == "sampled") {
        const auto& stats = estimator.last_sampled();
        std::printf("  [sampled ci=%.3fW evals=%zu stop=%s]",
                    stats.max_halfwidth_w, stats.worth_evaluations,
                    std::string(stats.stopped_by).c_str());
      }
      std::printf("\n");
    }
    if (csv) {
      std::vector<double> row = {t, adjusted};
      row.insert(row.end(), phi.begin(), phi.end());
      csv->write_row(row);
    }
  }

  if (billing) {
    const double tariff = args.get_double("tariff", 0.10);
    util::TablePrinter table({"VM", "type", "energy (kWh)", "cost (USD)"});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      table.add_row({"vm" + std::to_string(ids[i]), fleet[i].type_name,
                     util::TablePrinter::num(
                         common::joules_to_kwh(accountant.energy_j(ids[i])), 6),
                     util::TablePrinter::num(
                         accountant.bill_usd(ids[i], tariff), 6)});
    }
    table.print();
    std::printf("idle attribution: %s; tariff $%.4f/kWh; horizon %.0f s\n",
                to_string(accountant.policy()), tariff, duration);
  }
  return 0;
}

int cmd_fleet(const util::CliArgs& args) {
  fleet::FleetOptions options;
  options.fleet_per_host = fleet_for(args);
  options.hosts = static_cast<std::size_t>(args.get_long("hosts", 4));
  options.threads = static_cast<std::size_t>(args.get_long("threads", 2));
  options.tenants = static_cast<std::size_t>(args.get_long("tenants", 3));
  options.spec = machine_for(args);
  options.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  options.max_retries =
      static_cast<std::uint32_t>(args.get_long("max-retries", 3));
  options.queue_capacity =
      static_cast<std::size_t>(args.get_long("queue-capacity", 0));
  options.kernel = kernel_for(args);
  if (args.has("inject-faults"))
    options.faults = fleet::parse_fault_spec(args.require("inject-faults"));
  const std::string backpressure = args.get("backpressure", "block");
  if (backpressure == "drop-oldest")
    options.backpressure = fleet::BackpressurePolicy::kDropOldest;
  else if (backpressure != "block")
    throw std::invalid_argument("unknown --backpressure '" + backpressure +
                                "' (expected block or drop-oldest)");
  options.validate();  // fail on bad knobs before the offline campaign runs

  // The offline campaign is shared across hosts (identical machine type, so
  // the artifacts are per type — exactly as in examples/cluster_billing).
  core::CollectionOptions collect;
  collect.duration_s = args.get_double("collect-duration", 120.0);
  collect.seed = options.seed;
  std::printf("offline: training the shared host profile (%.0f s)...\n",
              collect.duration_s);
  const auto dataset =
      core::collect_offline_dataset(options.spec, options.fleet_per_host,
                                    collect);

  fleet::FleetEngine engine(options, dataset);
  const std::string checkpoint = args.get("checkpoint");
  if (!checkpoint.empty() && std::filesystem::exists(checkpoint)) {
    engine.restore_checkpoint(checkpoint);
    std::printf("resumed from checkpoint %s at tick %llu\n",
                checkpoint.c_str(),
                static_cast<unsigned long long>(engine.tick()));
  }

  const bool dump = arm_tracer(args);
  const auto ticks =
      static_cast<std::uint64_t>(args.get_double("duration", 60.0));
  std::printf("online: metering %zu hosts x %zu VMs on %zu threads for %llu "
              "ticks (%s backpressure)\n",
              options.hosts, options.fleet_per_host.size(), options.threads,
              static_cast<unsigned long long>(ticks),
              to_string(options.backpressure));
  engine.run(ticks);

  const double tariff = args.get_double("tariff", 0.10);
  const auto& ledger = engine.tenant_ledger();
  util::TablePrinter table({"tenant", "VMs", "energy (kWh)", "cost (USD)"});
  for (const core::TenantId tenant : ledger.tenants()) {
    std::size_t vms = 0;
    for (std::size_t h = 0; h < options.hosts; ++h)
      for (std::size_t v = 0; v < options.fleet_per_host.size(); ++v)
        if (v % options.tenants + 1 == tenant) ++vms;
    const double kwh = common::joules_to_kwh(ledger.tenant_energy_j(tenant));
    table.add_row({std::to_string(tenant), std::to_string(vms),
                   util::TablePrinter::num(kwh, 6),
                   util::TablePrinter::num(kwh * tariff, 6)});
  }
  table.print();
  std::printf("ticks %llu | samples %llu | drops %llu | retries %llu | "
              "degraded %llu | stale %llu | unattributed %.3f J\n",
              static_cast<unsigned long long>(engine.tick()),
              static_cast<unsigned long long>(engine.samples_processed()),
              static_cast<unsigned long long>(engine.samples_dropped()),
              static_cast<unsigned long long>(engine.retries()),
              static_cast<unsigned long long>(engine.degraded_ticks()),
              static_cast<unsigned long long>(engine.stale_ticks()),
              ledger.unattributed_energy_j());

  if (!checkpoint.empty()) {
    engine.save_checkpoint(checkpoint);
    std::printf("checkpoint written to %s\n", checkpoint.c_str());
  }
  if (args.has("metrics")) {
    const std::string metrics_path = args.require("metrics");
    engine.metrics().write_prometheus(metrics_path);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (dump) dump_trace(args);
  return 0;
}

core::TouRateSchedule tou_for(const util::CliArgs& args) {
  core::TouRateSchedule tou;
  tou.offpeak_usd_per_kwh = args.get_double("offpeak-rate", 0.10);
  tou.peak_usd_per_kwh =
      args.get_double("peak-rate", tou.offpeak_usd_per_kwh);
  tou.seconds_per_hour = args.get_double("seconds-per-hour", 3600.0);
  const std::string hours = args.get("peak-hours", "17-21");
  const auto dash = hours.find('-');
  if (dash == std::string::npos)
    throw std::invalid_argument("--peak-hours expects H0-H1, e.g. 17-21");
  tou.peak_start_hour = std::stod(hours.substr(0, dash));
  tou.peak_end_hour = std::stod(hours.substr(dash + 1));
  tou.validate();
  return tou;
}

int cmd_serve(const util::CliArgs& args) {
  fleet::FleetOptions options;
  options.fleet_per_host = fleet_for(args);
  options.hosts = static_cast<std::size_t>(args.get_long("hosts", 4));
  options.threads = static_cast<std::size_t>(args.get_long("threads", 2));
  options.tenants = static_cast<std::size_t>(args.get_long("tenants", 3));
  options.spec = machine_for(args);
  options.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  options.kernel = kernel_for(args);
  options.validate();

  serve::QueryEngineOptions query_options;
  query_options.tou = tou_for(args);
  query_options.cache_capacity =
      static_cast<std::size_t>(args.get_long("cache", 1024));
  query_options.cache_shards =
      static_cast<std::size_t>(args.get_long("cache-shards", 8));
  query_options.coalesce = args.get_long("coalesce", 1) != 0;

  serve::ServerOptions server_options;
  server_options.port =
      static_cast<std::uint16_t>(args.get_long("port", 7077));
  server_options.workers =
      static_cast<std::size_t>(args.get_long("workers", 2));
  server_options.queue_capacity =
      static_cast<std::size_t>(args.get_long("request-queue", 64));
  server_options.tokens_per_s = args.get_double("tokens-per-s", 10000.0);
  server_options.token_burst = args.get_double("burst", 1000.0);
  server_options.out_of_order = !args.has("ordered");
  server_options.validate();
  const double slow_ms = args.get_double("slow-ms", 50.0);
  const double slo_ms = args.get_double("slo-ms", slow_ms);
  const double slo_target = args.get_double("slo-target", 0.99);

  core::CollectionOptions collect;
  collect.duration_s = args.get_double("collect-duration", 120.0);
  collect.seed = options.seed;
  std::printf("offline: training the shared host profile (%.0f s)...\n",
              collect.duration_s);
  const auto dataset = core::collect_offline_dataset(
      options.spec, options.fleet_per_host, collect);

  fleet::FleetEngine engine(options, dataset);
  serve::SnapshotStore store(
      static_cast<std::size_t>(args.get_long("retention", 4096)));
  store.attach(engine);

  std::unique_ptr<ledger::Ledger> log;
  if (args.has("ledger")) {
    ledger::LedgerOptions ledger_options;
    ledger_options.dir = args.require("ledger");
    ledger_options.segment_max_records =
        static_cast<std::uint64_t>(args.get_long("segment-records", 4096));
    ledger_options.metrics = &engine.metrics();
    log = std::make_unique<ledger::Ledger>(ledger_options);
    const ledger::RecoveryReport recovered = log->recovery();
    if (recovered.records > 0 || recovered.torn_records > 0)
      std::printf("ledger: recovered %llu records from %llu segments "
                  "(%llu torn, %llu bytes truncated)\n",
                  static_cast<unsigned long long>(recovered.records),
                  static_cast<unsigned long long>(recovered.segments),
                  static_cast<unsigned long long>(recovered.torn_records),
                  static_cast<unsigned long long>(recovered.truncated_bytes));
    store.set_ledger(log.get());
  }

  const std::string checkpoint = args.get("checkpoint");
  if (!checkpoint.empty() && std::filesystem::exists(checkpoint)) {
    engine.restore_checkpoint(checkpoint);
    std::printf("resumed from checkpoint %s at tick %llu\n",
                checkpoint.c_str(),
                static_cast<unsigned long long>(engine.tick()));
    if (log) {
      // The ledger may hold epochs past the checkpointed tick (a crash after
      // the checkpoint was written); rewind it, then replay its tail into
      // the ring so historical window queries answer byte-identically.
      log->truncate_after(engine.tick());
      const std::size_t replayed = store.restore_from_ledger(*log);
      std::printf("ledger: replayed %zu snapshots into the retention ring\n",
                  replayed);
      if (const auto head = store.latest())
        engine.invariants().observe_ledger_replay(
            head->epoch, head->total_energy_j,
            engine.tenant_ledger().total_energy_j());
    }
  }

  query_options.metrics = &engine.metrics();
  serve::QueryEngine queries(store, query_options);

  // Per-query stage profiling + SLO health, always on for a served fleet:
  // the HEALTH scrape, the slow-query log, and the vmpower_serve_stage_* /
  // vmpower_slo_* families all hang off this profiler.
  obs::SloOptions slo_options;
  slo_options.latency_threshold_s = slo_ms / 1000.0;
  slo_options.latency_objective = slo_target;
  slo_options.metrics = &engine.metrics();
  obs::SloTracker slo(slo_options);
  serve::ServeProfilerOptions profiler_options;
  profiler_options.slow_threshold_s = slow_ms / 1000.0;
  profiler_options.metrics = &engine.metrics();
  profiler_options.slo = &slo;
  serve::ServeProfiler profiler(profiler_options);
  server_options.profiler = &profiler;

  serve::Server server(queries, engine.metrics(), server_options);

  const bool dump = arm_tracer(args);
  // Register the exactly-once accounting series up front so scrapes taken
  // while the server is live already carry them; re-observed at drain below.
  engine.invariants().observe_serve_accounting(0, 0, 0, 0);
  const auto ticks =
      static_cast<std::uint64_t>(args.get_double("duration", 300.0));
  std::printf("serving on 127.0.0.1:%u while metering %zu hosts for %llu "
              "ticks...\n",
              server.port(), options.hosts,
              static_cast<unsigned long long>(ticks));
  engine.run(ticks);

  const double linger = args.get_double("linger", 0.0);
  if (linger > 0.0) {
    std::printf("metering done; serving for %.0f more seconds\n", linger);
    std::this_thread::sleep_for(std::chrono::duration<double>(linger));
  }

  engine.invariants().observe_serve_accounting(
      store.published(), server.admitted(), server.answered(),
      server.outstanding());
  std::printf("queries: cache hits %llu misses %llu | snapshots %llu\n",
              static_cast<unsigned long long>(queries.cache_hits()),
              static_cast<unsigned long long>(queries.cache_misses()),
              static_cast<unsigned long long>(store.published()));
  if (log) {
    const ledger::Stats stats = log->stats();
    std::printf("ledger: %llu records in %llu segments (%llu cold), epochs "
                "[%llu, %llu]\n",
                static_cast<unsigned long long>(stats.records),
                static_cast<unsigned long long>(stats.segments),
                static_cast<unsigned long long>(stats.cold_segments),
                static_cast<unsigned long long>(stats.oldest_epoch),
                static_cast<unsigned long long>(stats.tail_epoch));
  }
  if (!checkpoint.empty()) {
    engine.save_checkpoint(checkpoint);
    std::printf("checkpoint written to %s\n", checkpoint.c_str());
  }
  if (args.has("metrics")) {
    const std::string metrics_path = args.require("metrics");
    profiler.publish();  // fold the latest sketch quantiles into the gauges.
    engine.metrics().write_prometheus(metrics_path);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  server.stop();
  if (dump) dump_trace(args);
  return 0;
}

int cmd_query(const util::CliArgs& args) {
  const auto port =
      static_cast<std::uint16_t>(std::stoul(args.require("port")));
  const auto& positionals = args.positionals();
  std::string line;
  for (std::size_t i = 1; i < positionals.size(); ++i) {
    if (i > 1) line += ' ';
    line += positionals[i];
  }
  if (line.empty())
    throw std::invalid_argument("query: missing query (try: stats)");

  const std::string proto = args.get("proto", "binary");
  if (proto != "binary" && proto != "text")
    throw std::invalid_argument("query: --proto must be binary or text");
  const bool with_id = args.has("id");
  const auto request_id =
      with_id ? static_cast<std::uint64_t>(args.get_long("id", 0)) : 0;
  const long timeout_ms = args.get_long("timeout-ms", 0);
  serve::Client client(port);
  if (timeout_ms > 0)
    client.set_timeout(std::chrono::milliseconds(timeout_ms));
  std::string response;
  try {
    if (proto == "text") {
      response = client.query_text(
          with_id ? "#" + std::to_string(request_id) + " " + line : line);
    } else {
      const auto request = serve::parse_request_text(line);
      if (!request)
        throw std::invalid_argument("query: unparseable query '" + line + "'");
      response = serve::format_response_text(
          with_id ? client.query_with_id(*request, request_id)
                  : client.query(*request));
    }
  } catch (const serve::TimeoutError&) {
    std::fprintf(stderr, "query: no response within %ld ms\n", timeout_ms);
    return 3;
  }
  std::printf("%s\n", response.c_str());
  return 0;
}

int cmd_federate(const util::CliArgs& args) {
  federate::FrontendOptions fed_options;
  fed_options.deadline =
      std::chrono::milliseconds(args.get_long("deadline-ms", 250));
  fed_options.retries =
      static_cast<std::uint32_t>(args.get_long("retries", 1));
  fed_options.backoff =
      std::chrono::milliseconds(args.get_long("backoff-ms", 10));
  fed_options.hedge = args.has("hedge");
  fed_options.hedge_delay =
      std::chrono::milliseconds(args.get_long("hedge-delay-ms", 50));
  fed_options.max_epoch_skew =
      static_cast<std::uint64_t>(args.get_long("max-skew", 1));
  const std::string skew = args.get("skew", "accept");
  if (skew == "reject")
    fed_options.skew_policy = federate::SkewPolicy::kReject;
  else if (skew != "accept")
    throw std::invalid_argument("federate: --skew must be accept or reject");
  fed_options.pooled = args.get_long("fed-pool", 1) != 0;
  fed_options.workers =
      static_cast<std::size_t>(args.get_long("fed-workers", 0));
  fed_options.max_idle_per_endpoint =
      static_cast<std::size_t>(args.get_long("fed-pool-idle", 2));

  fleet::Metrics metrics;
  obs::InvariantMonitor monitor(metrics);
  fed_options.metrics = &metrics;
  fed_options.monitor = &monitor;

  // The shard tier: either a map of externally running `vmpower serve`
  // shards, or --spin N in-process fleets metered right here.
  std::vector<std::unique_ptr<federate::InProcessShard>> spun;
  federate::ShardMap map;
  if (args.has("shards")) {
    map = federate::ShardMap::parse(args.require("shards"));
  } else {
    const auto count = static_cast<std::size_t>(args.get_long("spin", 3));
    if (count == 0)
      throw std::invalid_argument("federate: --spin needs at least 1 shard");
    fleet::FleetOptions options;
    if (args.has("fleet")) {
      options.fleet_per_host = fleet_for(args);
    } else {
      const auto catalogue = common::paper_vm_catalogue();
      options.fleet_per_host = {catalogue[0], catalogue[1]};
    }
    options.hosts = static_cast<std::size_t>(args.get_long("hosts", 2));
    options.threads = static_cast<std::size_t>(args.get_long("threads", 2));
    options.tenants = static_cast<std::size_t>(args.get_long("tenants", 2));
    options.spec = machine_for(args);
    options.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
    options.kernel = kernel_for(args);
    options.validate();

    core::CollectionOptions collect;
    collect.duration_s = args.get_double("collect-duration", 30.0);
    collect.seed = options.seed;
    std::printf("offline: training the shared host profile (%.0f s)...\n",
                collect.duration_s);
    const auto dataset = core::collect_offline_dataset(
        options.spec, options.fleet_per_host, collect);

    const auto ticks =
        static_cast<std::uint64_t>(args.get_double("duration", 60.0));
    std::vector<federate::FleetShard> shards;
    for (std::size_t i = 0; i < count; ++i) {
      federate::InProcessShardOptions shard_options;
      shard_options.fleet = static_cast<std::uint32_t>(i + 1);
      auto shard =
          std::make_unique<federate::InProcessShard>(shard_options);
      fleet::FleetOptions per_shard = options;
      per_shard.seed = options.seed + i;  // independent trajectories.
      fleet::FleetEngine engine(per_shard, dataset);
      shard->store().attach(engine);
      engine.run(ticks);
      std::printf("shard %zu: fleet %u on 127.0.0.1:%u (%llu ticks)\n", i + 1,
                  shard->fleet(), shard->port(),
                  static_cast<unsigned long long>(ticks));
      shards.push_back(federate::FleetShard{shard->fleet(), {shard->port()}});
      spun.push_back(std::move(shard));
    }
    map = federate::ShardMap(std::move(shards));
  }

  federate::FederationFrontend frontend(std::move(map), fed_options);
  const bool dump = arm_tracer(args);

  // Federated per-query profiling: every stage of a federated query — the
  // whole scatter-gather inside "execute" — lands in the same HEALTH /
  // vmpower_serve_stage_* machinery a single fleet exports.
  const double slow_ms = args.get_double("slow-ms", 150.0);
  obs::SloOptions slo_options;
  slo_options.latency_threshold_s =
      args.get_double("slo-ms", slow_ms) / 1000.0;
  slo_options.latency_objective = args.get_double("slo-target", 0.99);
  slo_options.metrics = &metrics;
  obs::SloTracker slo(slo_options);
  serve::ServeProfilerOptions profiler_options;
  profiler_options.slow_threshold_s = slow_ms / 1000.0;
  profiler_options.metrics = &metrics;
  profiler_options.slo = &slo;
  serve::ServeProfiler profiler(profiler_options);

  if (args.has("query")) {
    const auto request = serve::parse_request_text(args.require("query"));
    if (!request)
      throw std::invalid_argument("federate: unparseable query '" +
                                  args.require("query") + "'");
    std::printf("%s\n",
                serve::format_response_text(frontend.execute(*request))
                    .c_str());
  } else {
    serve::ServerOptions server_options;
    server_options.port =
        static_cast<std::uint16_t>(args.get_long("port", 7080));
    server_options.workers =
        static_cast<std::size_t>(args.get_long("workers", 2));
    server_options.profiler = &profiler;
    server_options.validate();
    serve::Server server(frontend, metrics, server_options);
    const double linger = args.get_double("linger", 60.0);
    std::printf("federating %zu shards on 127.0.0.1:%u for %.0f s...\n",
                frontend.map().size(), server.port(), linger);
    std::this_thread::sleep_for(std::chrono::duration<double>(linger));
    server.stop();
  }

  if (args.has("metrics")) {
    const std::string metrics_path = args.require("metrics");
    profiler.publish();
    metrics.write_prometheus(metrics_path);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (dump) dump_trace(args);
  for (auto& shard : spun) shard->stop();
  return 0;
}

int cmd_trace(const util::CliArgs& args) {
#if !VMPOWER_TRACING_COMPILED
  std::fprintf(stderr,
               "vmpower trace: built with -DVMPOWER_TRACING=OFF; the span "
               "macros are compiled out and the ring will stay empty\n");
#endif
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();

  fleet::FleetOptions options;
  if (args.has("fleet")) {
    options.fleet_per_host = fleet_for(args);
  } else {
    const auto catalogue = common::paper_vm_catalogue();
    options.fleet_per_host = {catalogue[0], catalogue[1]};
  }
  options.hosts = static_cast<std::size_t>(args.get_long("hosts", 2));
  options.threads = 2;
  options.tenants = 2;
  options.spec = machine_for(args);
  options.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  options.validate();

  core::CollectionOptions collect;
  collect.duration_s = args.get_double("collect-duration", 30.0);
  collect.seed = options.seed;
  const auto dataset = core::collect_offline_dataset(
      options.spec, options.fleet_per_host, collect);

  fleet::FleetEngine engine(options, dataset);
  serve::SnapshotStore store(1024);
  store.attach(engine);
  serve::QueryEngineOptions query_options;
  query_options.metrics = &engine.metrics();
  serve::QueryEngine queries(store, query_options);
  serve::Dispatcher dispatcher(queries, &engine.metrics());

  const auto ticks =
      static_cast<std::uint64_t>(args.get_double("duration", 16.0));
  engine.run(ticks);

  // Exercise the serve path in-process so one dump spans all three layers
  // (core.estimate / fleet.tick / serve.parse and friends).
  const auto stats = serve::parse_request_text("stats");
  (void)dispatcher.handle_binary(serve::encode_request(*stats), 1001);
  (void)dispatcher.handle_text("#1002 fleet-power");
  (void)dispatcher.handle_text("tenant-power 1");

  if (args.has("out")) {
    const std::string out = args.require("out");
    tracer.write_chrome_jsonl(out);
    std::printf("trace: %zu spans over %llu ticks written to %s\n",
                tracer.size(), static_cast<unsigned long long>(ticks),
                out.c_str());
  } else {
    std::fputs(tracer.to_chrome_jsonl().c_str(), stdout);
  }
  return 0;
}

int cmd_scrape(const util::CliArgs& args) {
  const auto port =
      static_cast<std::uint16_t>(std::stoul(args.require("port")));
  const std::string what = args.get("what", "metrics");
  std::string command;
  if (what == "metrics") command = "METRICS";
  else if (what == "trace") command = "TRACE";
  else if (what == "health") command = "HEALTH";
  else
    throw std::invalid_argument(
        "scrape: --what must be metrics, trace, or health");
  serve::Client client(port);
  const std::string payload = client.scrape(command);
  if (args.has("out")) {
    const std::string out = args.require("out");
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    if (!file || !(file << payload).flush())
      throw std::runtime_error("scrape: cannot write " + out);
    std::printf("%s scrape (%zu bytes) written to %s\n", what.c_str(),
                payload.size(), out.c_str());
  } else {
    std::fputs(payload.c_str(), stdout);
  }
  return 0;
}

int cmd_slo(const util::CliArgs& args) {
  const auto port =
      static_cast<std::uint16_t>(std::stoul(args.require("port")));
  serve::Client client(port);
  const std::string payload = client.scrape("HEALTH");
  if (payload.rfind("health profiler=off", 0) == 0) {
    std::fprintf(stderr,
                 "slo: the server on port %u runs without a profiler\n", port);
    return 1;
  }
  // Default view: the health header and the SLO cells. --full adds the
  // per-stage quantiles and the slow-query log (the whole HEALTH payload).
  if (args.has("full")) {
    std::fputs(payload.c_str(), stdout);
    return 0;
  }
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t end = payload.find('\n', pos);
    if (end == std::string::npos) end = payload.size();
    const std::string line = payload.substr(pos, end - pos);
    if (line.rfind("health ", 0) == 0 || line.rfind("slo ", 0) == 0)
      std::printf("%s\n", line.c_str());
    pos = end + 1;
  }
  return 0;
}

int cmd_ledger(const util::CliArgs& args) {
  const auto& positionals = args.positionals();
  if (positionals.size() < 2)
    throw std::invalid_argument(
        "ledger: missing verb (inspect, verify, or compact)");
  const std::string& verb = positionals[1];
  const std::filesystem::path dir = args.require("dir");

  if (verb == "verify") {
    const ledger::VerifyReport report = ledger::verify_dir(dir);
    std::printf("%s: %llu segments, %llu records, %llu torn, %llu epoch "
                "gaps -> %s\n",
                dir.string().c_str(),
                static_cast<unsigned long long>(report.segments),
                static_cast<unsigned long long>(report.records),
                static_cast<unsigned long long>(report.torn_records),
                static_cast<unsigned long long>(report.epoch_gaps),
                report.clean() ? "clean" : "DAMAGED");
    return report.clean() ? 0 : 1;
  }

  ledger::LedgerOptions options;
  options.dir = dir;
  options.index_stride =
      static_cast<std::uint64_t>(args.get_long("index-stride", 64));
  options.auto_compact = false;  // inspect/compact decide explicitly below.
  options.background_compaction = false;
  ledger::Ledger log(options);

  if (verb == "compact") {
    const std::size_t compacted = log.compact_all();
    std::printf("%s: compacted %zu sealed segments\n", dir.string().c_str(),
                compacted);
    return 0;
  }
  if (verb != "inspect")
    throw std::invalid_argument("ledger: unknown verb '" + verb +
                                "' (expected inspect, verify, or compact)");

  const ledger::Stats stats = log.stats();
  const ledger::RecoveryReport recovered = log.recovery();
  util::TablePrinter table({"segment", "kind", "epochs", "records", "bytes"});
  for (const ledger::SegmentInfo& segment : log.segments())
    table.add_row({segment.file,
                   segment.cold ? "cold" : segment.active ? "active" : "sealed",
                   std::to_string(segment.first_epoch) + "-" +
                       std::to_string(segment.last_epoch),
                   std::to_string(segment.records),
                   std::to_string(segment.bytes)});
  table.print();
  std::printf("extent: epochs [%llu, %llu], time [%.1f s, %.1f s], %llu "
              "records\n",
              static_cast<unsigned long long>(stats.oldest_epoch),
              static_cast<unsigned long long>(stats.tail_epoch),
              stats.oldest_time_s, stats.tail_time_s,
              static_cast<unsigned long long>(stats.records));
  std::printf("recovery: %llu torn records, %llu bytes truncated, %llu cold "
              "footers rescanned\n",
              static_cast<unsigned long long>(recovered.torn_records),
              static_cast<unsigned long long>(recovered.truncated_bytes),
              static_cast<unsigned long long>(recovered.rescanned_cold));
  return 0;
}

int cmd_info(const util::CliArgs& args) {
  const auto approx = core::load_approximation(args.require("approx"));
  std::printf("VHC linear approximation: %zu VHCs, %zu fitted combinations\n",
              approx.num_vhcs(), approx.fitted_combos().size());
  for (const auto& model : approx.export_models()) {
    std::printf("combo %u (rmse %.3f W, %zu samples): cpu weights [",
                model.combo, model.rmse, model.sample_count);
    for (std::size_t j = 0; j < approx.num_vhcs(); ++j)
      std::printf("%s%.2f", j ? ", " : "",
                  model.weights[j * common::kNumComponents]);
    std::printf("]\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliArgs args(argc, argv);
    const std::string command = args.command();
    if (command == "collect") return cmd_collect(args);
    if (command == "train") return cmd_train(args);
    if (command == "meter") return cmd_meter(args, /*billing=*/false);
    if (command == "bill") return cmd_meter(args, /*billing=*/true);
    if (command == "info") return cmd_info(args);
    if (command == "fleet") return cmd_fleet(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "query") return cmd_query(args);
    if (command == "federate") return cmd_federate(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "scrape") return cmd_scrape(args);
    if (command == "slo") return cmd_slo(args);
    if (command == "ledger") return cmd_ledger(args);
    std::fputs(kUsage, command.empty() ? stdout : stderr);
    return command.empty() ? 0 : 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vmpower: %s\n", error.what());
    return 1;
  }
}
