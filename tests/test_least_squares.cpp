#include "util/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>

#include "util/rng.hpp"

namespace vmp::util {
namespace {

TEST(LeastSquares, ExactSquareSystem) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  const std::vector<double> b = {4.0, 9.0};
  const auto r = solve_least_squares(a, b);
  ASSERT_EQ(r.coefficients.size(), 2u);
  EXPECT_NEAR(r.coefficients[0], 2.0, 1e-12);
  EXPECT_NEAR(r.coefficients[1], 3.0, 1e-12);
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-12);
  EXPECT_FALSE(r.rank_deficient);
}

TEST(LeastSquares, OverdeterminedKnownSolution) {
  // y = 2x + 1 sampled at x = 0..4 with symmetric perturbations: the LS fit
  // recovers slope 2, intercept 1 exactly.
  Matrix a(5, 2);
  std::vector<double> b(5);
  const double noise[5] = {0.1, -0.1, 0.0, 0.1, -0.1};
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = i;
    a(i, 1) = 1.0;
    b[i] = 2.0 * i + 1.0 + noise[i];
  }
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.coefficients[0], 2.0, 0.03);
  EXPECT_NEAR(r.coefficients[1], 1.0, 0.08);
  EXPECT_GT(r.residual_norm, 0.0);
}

TEST(LeastSquares, PositiveCoefficientSign) {
  // Regression test for the Householder sign bug found during calibration:
  // a strictly positive relation must yield a positive coefficient.
  Matrix a(10, 1);
  std::vector<double> b(10);
  for (int i = 0; i < 10; ++i) {
    a(i, 0) = 0.1 * (i + 1);
    b[i] = 13.15 * a(i, 0);
  }
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.coefficients[0], 13.15, 1e-9);
}

TEST(LeastSquares, ResidualNormMatchesDirectComputation) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> b = {1.0, 1.0, 0.0};
  const auto r = solve_least_squares(a, b);
  // Direct residual ||A x - b||.
  double res_sq = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double pred =
        a(i, 0) * r.coefficients[0] + a(i, 1) * r.coefficients[1];
    res_sq += (pred - b[i]) * (pred - b[i]);
  }
  EXPECT_NEAR(r.residual_norm, std::sqrt(res_sq), 1e-10);
}

TEST(LeastSquares, ZeroColumnFlagsRankDeficiency) {
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = i + 1.0;
    a(i, 1) = 0.0;  // dead feature
    b[i] = 3.0 * (i + 1.0);
  }
  const auto r = solve_least_squares(a, b);
  EXPECT_TRUE(r.rank_deficient);
  EXPECT_NEAR(r.coefficients[0], 3.0, 1e-10);
  EXPECT_DOUBLE_EQ(r.coefficients[1], 0.0);
}

TEST(LeastSquares, InputValidation) {
  Matrix a(2, 3);
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(solve_least_squares(a, b), std::invalid_argument);  // rows < cols
  Matrix ok(3, 2);
  EXPECT_THROW(solve_least_squares(ok, b), std::invalid_argument);  // b size
  EXPECT_THROW(solve_least_squares(Matrix{}, {}), std::invalid_argument);
}

TEST(Ridge, ShrinksTowardZero) {
  Matrix a(4, 1);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    b[i] = 10.0;
  }
  const auto plain = solve_least_squares(a, b);
  const auto ridged = solve_ridge(a, b, 4.0);
  EXPECT_NEAR(plain.coefficients[0], 10.0, 1e-10);
  // Ridge closed form: X'y / (X'X + lambda) = 40 / 8 = 5.
  EXPECT_NEAR(ridged.coefficients[0], 5.0, 1e-10);
}

TEST(Ridge, ZeroLambdaEqualsOrdinary) {
  Matrix a{{1.0}, {2.0}, {3.0}};
  const std::vector<double> b = {2.0, 4.0, 6.0};
  const auto plain = solve_least_squares(a, b);
  const auto ridged = solve_ridge(a, b, 0.0);
  EXPECT_NEAR(plain.coefficients[0], ridged.coefficients[0], 1e-12);
}

TEST(Ridge, NegativeLambdaRejected) {
  Matrix a{{1.0}};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(solve_ridge(a, b, -1.0), std::invalid_argument);
}

TEST(Ridge, HandlesUnderdeterminedSystems) {
  // One sample, two unknowns: ordinary LS refuses, ridge solves (shrunken).
  Matrix a(1, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  const std::vector<double> b = {2.0};
  EXPECT_THROW(solve_least_squares(a, b), std::invalid_argument);
  const auto r = solve_ridge(a, b, 1e-6);
  EXPECT_NEAR(r.coefficients[0], 1.0, 1e-3);
  EXPECT_NEAR(r.coefficients[1], 1.0, 1e-3);
}

// Property sweep: random well-conditioned systems are recovered to machine
// precision regardless of shape.
class LeastSquaresRecovery
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LeastSquaresRecovery, RecoversPlantedCoefficients) {
  const auto [rows, cols, seed] = GetParam();
  Rng rng(seed);
  Matrix a(rows, cols);
  std::vector<double> truth(cols);
  for (int c = 0; c < cols; ++c) truth[c] = rng.uniform(-5.0, 5.0);
  std::vector<double> b(rows, 0.0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      a(r, c) = rng.uniform(-1.0, 1.0);
      b[r] += a(r, c) * truth[c];
    }
  }
  const auto result = solve_least_squares(a, b);
  for (int c = 0; c < cols; ++c)
    EXPECT_NEAR(result.coefficients[c], truth[c], 1e-8) << "col " << c;
  EXPECT_NEAR(result.residual_norm, 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LeastSquaresRecovery,
    ::testing::Values(std::make_tuple(5, 2, 1), std::make_tuple(10, 3, 2),
                      std::make_tuple(50, 4, 3), std::make_tuple(100, 8, 4),
                      std::make_tuple(200, 12, 5), std::make_tuple(30, 1, 6),
                      std::make_tuple(64, 16, 7)));

}  // namespace
}  // namespace vmp::util
