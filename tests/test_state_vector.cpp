#include "common/state_vector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace vmp::common {
namespace {

TEST(StateVector, DefaultIsZero) {
  const StateVector s;
  EXPECT_DOUBLE_EQ(s.cpu(), 0.0);
  EXPECT_DOUBLE_EQ(s.memory(), 0.0);
  EXPECT_DOUBLE_EQ(s.disk_io(), 0.0);
  EXPECT_DOUBLE_EQ(s.net_io(), 0.0);
  EXPECT_EQ(s, StateVector::zero());
}

TEST(StateVector, CpuOnlyFactory) {
  const StateVector s = StateVector::cpu_only(0.75);
  EXPECT_DOUBLE_EQ(s.cpu(), 0.75);
  EXPECT_DOUBLE_EQ(s.memory(), 0.0);
}

TEST(StateVector, ComponentIndexing) {
  StateVector s;
  s[Component::kMemory] = 0.5;
  s[Component::kNetIo] = 0.25;
  EXPECT_DOUBLE_EQ(s[Component::kMemory], 0.5);
  EXPECT_DOUBLE_EQ(s.net_io(), 0.25);
}

TEST(StateVector, VectorArithmetic) {
  StateVector a = StateVector::cpu_only(0.4);
  StateVector b = StateVector::cpu_only(0.5);
  b[Component::kMemory] = 0.2;
  const StateVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum.cpu(), 0.9);
  EXPECT_DOUBLE_EQ(sum.memory(), 0.2);
  const StateVector diff = sum - a;
  EXPECT_DOUBLE_EQ(diff.cpu(), 0.5);
  const StateVector scaled = b * 2.0;
  EXPECT_DOUBLE_EQ(scaled.cpu(), 1.0);
  EXPECT_DOUBLE_EQ(scaled.memory(), 0.4);
}

TEST(StateVector, AggregationCanExceedOne) {
  // VHC aggregated states are sums of per-VM states (paper Eq. 8).
  StateVector agg;
  for (int i = 0; i < 4; ++i) agg += StateVector::cpu_only(0.9);
  EXPECT_DOUBLE_EQ(agg.cpu(), 3.6);
  EXPECT_FALSE(agg.is_normalized());
}

TEST(StateVector, DotProduct) {
  StateVector s = StateVector::cpu_only(0.5);
  s[Component::kMemory] = 1.0;
  const std::vector<double> w = {13.15, 12.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(s.dot(w), 0.5 * 13.15 + 12.0);
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(s.dot(bad), std::invalid_argument);
}

TEST(StateVector, IsNormalized) {
  EXPECT_TRUE(StateVector::cpu_only(1.0).is_normalized());
  EXPECT_TRUE(StateVector::cpu_only(0.0).is_normalized());
  EXPECT_FALSE(StateVector::cpu_only(1.01).is_normalized());
  EXPECT_FALSE(StateVector::cpu_only(-0.01).is_normalized());
}

TEST(StateVector, Clamped) {
  StateVector s = StateVector::cpu_only(1.5);
  s[Component::kMemory] = -0.5;
  const StateVector c = s.clamped();
  EXPECT_DOUBLE_EQ(c.cpu(), 1.0);
  EXPECT_DOUBLE_EQ(c.memory(), 0.0);
  EXPECT_TRUE(c.is_normalized());
}

TEST(StateVector, QuantizedToResolution) {
  const StateVector s = StateVector::cpu_only(0.4449);
  EXPECT_DOUBLE_EQ(s.quantized(0.01).cpu(), 0.44);
  EXPECT_DOUBLE_EQ(StateVector::cpu_only(0.4450001).quantized(0.01).cpu(), 0.45);
  EXPECT_THROW(s.quantized(0.0), std::invalid_argument);
  EXPECT_THROW(s.quantized(-0.01), std::invalid_argument);
}

TEST(StateVector, MaxAbsDiff) {
  StateVector a = StateVector::cpu_only(0.5);
  StateVector b = StateVector::cpu_only(0.8);
  b[Component::kDiskIo] = 0.1;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.3);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(a), 0.0);
}

TEST(StateVector, ToStringMentionsComponents) {
  const std::string repr = StateVector::cpu_only(0.5).to_string();
  EXPECT_NE(repr.find("cpu=0.500"), std::string::npos);
}

TEST(Component, Names) {
  EXPECT_STREQ(to_string(Component::kCpu), "cpu");
  EXPECT_STREQ(to_string(Component::kMemory), "memory");
  EXPECT_STREQ(to_string(Component::kDiskIo), "disk_io");
  EXPECT_STREQ(to_string(Component::kNetIo), "net_io");
}

}  // namespace
}  // namespace vmp::common
