#include "baselines/rapl_share.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "common/vm_config.hpp"

namespace vmp::base {
namespace {

using common::StateVector;
using core::VmSample;

RaplShareEstimator estimator() {
  return RaplShareEstimator(common::paper_vm_catalogue());
}

VmSample sample(std::uint32_t id, unsigned type_index, double util) {
  return {id, common::paper_vm_type(type_index).type_id,
          StateVector::cpu_only(util)};
}

TEST(RaplShare, SplitsByVcpuWeightedUtilization) {
  auto est = estimator();
  // VM1 (1 vCPU) at 1.0 vs VM4 (8 vCPU) at 0.5: weights 1.0 vs 4.0.
  const std::vector<VmSample> vms = {sample(0, 1, 1.0), sample(1, 4, 0.5)};
  const auto phi = est.estimate(vms, 50.0);
  EXPECT_NEAR(phi[0], 10.0, 1e-9);
  EXPECT_NEAR(phi[1], 40.0, 1e-9);
}

TEST(RaplShare, EfficientByConstruction) {
  auto est = estimator();
  const std::vector<VmSample> vms = {sample(0, 1, 0.3), sample(1, 2, 0.9),
                                     sample(2, 3, 0.1)};
  const auto phi = est.estimate(vms, 77.7);
  EXPECT_NEAR(std::accumulate(phi.begin(), phi.end(), 0.0), 77.7, 1e-9);
}

TEST(RaplShare, BlindToTypePowerProfiles) {
  // The baseline's defining flaw: a vCPU-second costs the same regardless of
  // whose it is, although Table IV shows watt-per-vCPU differs per type.
  auto est = estimator();
  const std::vector<VmSample> vms = {sample(0, 1, 1.0), sample(1, 2, 0.5)};
  // VM1: weight 1.0; VM2 (2 vCPU at 0.5): weight 1.0 -> equal shares, even
  // though VM1's watt-per-core exceeds VM2's.
  const auto phi = est.estimate(vms, 24.0);
  EXPECT_NEAR(phi[0], phi[1], 1e-9);
}

TEST(RaplShare, AllIdleSplitsEqually) {
  auto est = estimator();
  const std::vector<VmSample> vms = {sample(0, 1, 0.0), sample(1, 4, 0.0)};
  const auto phi = est.estimate(vms, 2.0);
  EXPECT_DOUBLE_EQ(phi[0], 1.0);
  EXPECT_DOUBLE_EQ(phi[1], 1.0);
}

TEST(RaplShare, Validation) {
  EXPECT_THROW(RaplShareEstimator({}), std::invalid_argument);
  auto est = estimator();
  EXPECT_THROW(est.estimate({}, 1.0), std::invalid_argument);
  const std::vector<VmSample> vms = {sample(0, 1, 0.5)};
  EXPECT_THROW(est.estimate(vms, -1.0), std::invalid_argument);
  const std::vector<VmSample> unknown = {
      {0, 999, StateVector::cpu_only(0.5)}};
  EXPECT_THROW(est.estimate(unknown, 1.0), std::out_of_range);
}

TEST(RaplShare, Name) { EXPECT_EQ(estimator().name(), "rapl-proportional"); }

}  // namespace
}  // namespace vmp::base
