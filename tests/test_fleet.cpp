#include "fleet/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "fleet/faults.hpp"
#include "fleet/queue.hpp"
#include "util/thread_pool.hpp"

namespace vmp::fleet {
namespace {

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueue, FifoAndValidation) {
  BoundedQueue<int> queue(4);
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.try_pop(), std::nullopt);
}

TEST(BoundedQueue, DropOldestEvictsFrontAndCounts) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kDropOldest);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_FALSE(queue.push(3));  // evicts 1.
  EXPECT_EQ(queue.dropped(), 1u);
  EXPECT_EQ(queue.high_watermark(), 2u);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(BoundedQueue, BlockPolicyBlocksProducerUntilConsumed) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    queue.push(2);  // full: must wait for the pop below.
    second_pushed = true;
  });
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  producer.join();
  EXPECT_TRUE(second_pushed);
  EXPECT_EQ(queue.dropped(), 0u);
}

TEST(BoundedQueue, CloseWakesEveryone) {
  BoundedQueue<int> queue(1);
  std::thread consumer([&] { EXPECT_EQ(queue.pop(), std::nullopt); });
  queue.close();
  consumer.join();
  EXPECT_FALSE(queue.push(7));  // discarded after close.
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran, 100);
  EXPECT_THROW(util::ThreadPool(0), std::invalid_argument);
}

// --- Fault injection --------------------------------------------------------

TEST(Faults, SpecParsingAndValidation) {
  const FaultSpec spec = parse_fault_spec("meter:0.5,dropout:0.1,stale:0.25");
  EXPECT_DOUBLE_EQ(spec.meter_failure, 0.5);
  EXPECT_DOUBLE_EQ(spec.dropout, 0.1);
  EXPECT_DOUBLE_EQ(spec.stale_telemetry, 0.25);
  EXPECT_TRUE(spec.any());
  EXPECT_FALSE(FaultSpec{}.any());
  EXPECT_THROW(parse_fault_spec("meter:1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("disk:0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("meter=0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("meter:abc"), std::invalid_argument);
}

TEST(Faults, RollsAreDeterministicInTheKey) {
  FaultSpec spec;
  spec.meter_failure = 0.5;
  const FaultInjector a(spec, 42), b(spec, 42);
  int fired = 0;
  for (std::uint64_t tick = 0; tick < 200; ++tick) {
    const bool hit = a.fires(FaultInjector::Kind::kMeter, 3, tick);
    EXPECT_EQ(hit, b.fires(FaultInjector::Kind::kMeter, 3, tick));
    fired += hit;
  }
  // ~Binomial(200, 0.5); a [40, 160] band is astronomically safe.
  EXPECT_GT(fired, 40);
  EXPECT_LT(fired, 160);

  FaultSpec never, always;
  always.dropout = 1.0;
  EXPECT_FALSE(
      FaultInjector(never, 1).fires(FaultInjector::Kind::kDropout, 0, 0));
  EXPECT_TRUE(
      FaultInjector(always, 1).fires(FaultInjector::Kind::kDropout, 0, 0));
}

// --- FleetEngine ------------------------------------------------------------

class FleetEngineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kHosts = 4;

  std::vector<common::VmConfig> fleet_ = {common::demo_c_vm(),
                                          common::demo_c_vm()};

  core::OfflineDataset dataset_ = [this] {
    core::CollectionOptions options;
    options.duration_s = 30.0;
    return core::collect_offline_dataset(sim::xeon_prototype(), fleet_,
                                         options);
  }();

  FleetOptions options_for(std::size_t threads) const {
    FleetOptions options;
    options.hosts = kHosts;
    options.threads = threads;
    options.fleet_per_host = fleet_;
    options.tenants = 2;
    options.seed = 7;
    options.retry_backoff_base = std::chrono::microseconds{0};  // fast tests.
    return options;
  }

  static std::vector<double> ledger_fingerprint(const FleetEngine& engine) {
    std::vector<double> values;
    const auto& tenants = engine.tenant_ledger();
    for (const core::TenantId tenant : tenants.tenants()) {
      values.push_back(tenants.tenant_energy_j(tenant));
      for (std::size_t h = 0; h < engine.options().hosts; ++h)
        values.push_back(
            tenants.tenant_energy_on_host_j(tenant, static_cast<core::HostId>(h)));
    }
    for (std::size_t h = 0; h < engine.options().hosts; ++h)
      for (const std::uint32_t vm : engine.host_ledger(h).vm_ids())
        values.push_back(engine.host_ledger(h).energy_j(vm));
    values.push_back(tenants.unattributed_energy_j());
    return values;
  }
};

TEST_F(FleetEngineTest, LedgersAreByteIdenticalAcrossThreadCounts) {
  FleetEngine serial(options_for(1), dataset_);
  serial.run(15);
  FleetEngine threaded(options_for(3), dataset_);
  threaded.run(15);

  const auto a = ledger_fingerprint(serial);
  const auto b = ledger_fingerprint(threaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "fingerprint slot " << i;  // exact, not NEAR.
  EXPECT_GT(serial.tenant_ledger().total_energy_j(), 0.0);
}

TEST_F(FleetEngineTest, DeterminismHoldsWithFaultInjectionEnabled) {
  FleetOptions faulty = options_for(1);
  faulty.faults = parse_fault_spec("meter:0.4,dropout:0.1,stale:0.3");
  FleetEngine serial(faulty, dataset_);
  serial.run(20);

  faulty.threads = 3;
  FleetEngine threaded(faulty, dataset_);
  threaded.run(20);

  EXPECT_EQ(ledger_fingerprint(serial), ledger_fingerprint(threaded));
  EXPECT_EQ(serial.degraded_ticks(), threaded.degraded_ticks());
  EXPECT_EQ(serial.retries(), threaded.retries());
  EXPECT_EQ(serial.stale_ticks(), threaded.stale_ticks());
  EXPECT_GT(serial.degraded_ticks(), 0u);
}

TEST_F(FleetEngineTest, DegradedHostsCarryLastGoodEstimateNeverZero) {
  FleetOptions faulty = options_for(2);
  faulty.faults = parse_fault_spec("meter:0.6,dropout:0.15");
  FleetEngine engine(faulty, dataset_);
  engine.run(30);

  EXPECT_GT(engine.degraded_ticks(), 0u);
  EXPECT_GT(engine.retries(), 0u);
  // Every host keeps billing through its blackouts: carried estimates, not
  // silent zeros.
  for (std::size_t h = 0; h < kHosts; ++h)
    EXPECT_GT(engine.host_ledger(h).total_energy_j(), 0.0) << "host " << h;

  const std::string dump = engine.metrics().to_prometheus();
  EXPECT_NE(dump.find("vmpower_fleet_degraded_ticks_total"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_fleet_meter_retries_total"),
            std::string::npos);
}

TEST_F(FleetEngineTest, DropOldestBackpressureAccountsEveryShedSample) {
  FleetOptions options = options_for(3);
  options.backpressure = BackpressurePolicy::kDropOldest;
  options.queue_capacity = 1;  // 4 hosts racing into one slot: must shed.
  FleetEngine engine(options, dataset_);
  engine.run(12);

  EXPECT_GT(engine.samples_dropped(), 0u);
  // Conservation: every produced sample is either aggregated or counted as
  // dropped — none vanish.
  EXPECT_EQ(engine.samples_processed() + engine.samples_dropped(),
            kHosts * 12u);
  const std::string dump = engine.metrics().to_prometheus();
  EXPECT_NE(dump.find("vmpower_fleet_sample_drops_total"), std::string::npos);
}

TEST_F(FleetEngineTest, CheckpointRestoreResumesExactTrajectory) {
  const std::filesystem::path path = ::testing::TempDir() + "fleet_ckpt.txt";

  FleetOptions options = options_for(2);
  options.faults = parse_fault_spec("meter:0.3,stale:0.2");
  FleetEngine original(options, dataset_);
  original.run(8);
  original.save_checkpoint(path);
  original.run(7);  // the reference: one continuous 15-tick run.

  FleetEngine resumed(options, dataset_);
  resumed.restore_checkpoint(path);
  EXPECT_EQ(resumed.tick(), 8u);
  resumed.run(7);

  EXPECT_EQ(ledger_fingerprint(original), ledger_fingerprint(resumed));
  EXPECT_EQ(original.degraded_ticks(), resumed.degraded_ticks());
  EXPECT_EQ(original.samples_processed(), resumed.samples_processed());
  std::filesystem::remove(path);
}

TEST_F(FleetEngineTest, RestoreValidation) {
  const std::filesystem::path path = ::testing::TempDir() + "fleet_bad.txt";
  FleetEngine engine(options_for(1), dataset_);
  engine.run(1);
  EXPECT_THROW(engine.restore_checkpoint(path), std::logic_error);

  FleetEngine fresh(options_for(1), dataset_);
  EXPECT_THROW(fresh.restore_checkpoint(path), std::runtime_error);

  // Host-count mismatch is rejected before any state is replayed.
  engine.save_checkpoint(path);
  FleetOptions narrow = options_for(1);
  narrow.hosts = 2;
  FleetEngine mismatched(narrow, dataset_);
  EXPECT_THROW(mismatched.restore_checkpoint(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST_F(FleetEngineTest, OptionsValidation) {
  FleetOptions options = options_for(1);
  options.hosts = 0;
  EXPECT_THROW(FleetEngine(options, dataset_), std::invalid_argument);
  options = options_for(1);
  options.fleet_per_host.clear();
  EXPECT_THROW(FleetEngine(options, dataset_), std::invalid_argument);
  options = options_for(0);
  EXPECT_THROW(FleetEngine(options, dataset_), std::invalid_argument);
  options = options_for(1);
  options.faults.meter_failure = 2.0;
  EXPECT_THROW(FleetEngine(options, dataset_), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::fleet
