// Parameterized end-to-end property sweeps of the full estimation pipeline:
// for random fleets, workloads, and seeds, the Shapley-VHC estimator must
// uphold the paper's axioms sample by sample.
#include <gtest/gtest.h>

#include <numeric>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "sim/physical_machine.hpp"
#include "util/rng.hpp"
#include "workload/primitives.hpp"
#include "workload/synthetic.hpp"

namespace vmp {
namespace {

using common::StateVector;
using core::VmSample;

class PipelineProperties : public ::testing::TestWithParam<int> {
 protected:
  sim::MachineSpec spec_ = sim::xeon_prototype();

  // Builds a random fleet of 2-4 VMs from the catalogue that fits the host.
  std::vector<common::VmConfig> random_fleet(util::Rng& rng) {
    const auto catalogue = common::paper_vm_catalogue();
    std::vector<common::VmConfig> fleet;
    std::size_t vcpus = 0;
    const std::size_t count = 2 + rng.uniform_u64(3);
    for (std::size_t i = 0; i < count; ++i) {
      const auto& config = catalogue[rng.uniform_u64(catalogue.size())];
      if (vcpus + config.vcpus > spec_.topology.logical_cpus()) break;
      fleet.push_back(config);
      vcpus += config.vcpus;
    }
    if (fleet.size() < 2) fleet.assign(2, catalogue[0]);
    return fleet;
  }
};

TEST_P(PipelineProperties, EfficiencyHoldsEverySample) {
  util::Rng rng(GetParam() * 7907);
  const auto fleet = random_fleet(rng);

  core::CollectionOptions options;
  options.duration_s = 60.0;
  options.seed = GetParam();
  const auto dataset = core::collect_offline_dataset(spec_, fleet, options);
  core::ShapleyVhcEstimator estimator(dataset.universe, dataset.approximation);

  sim::PhysicalMachine machine(spec_, GetParam());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        fleet[i],
        std::make_unique<wl::SyntheticRandomCpu>(GetParam() * 100 + i));
    machine.hypervisor().start_vm(id);
  }
  for (int t = 0; t < 30; ++t) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = estimator.estimate(samples, adjusted);
    const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
    ASSERT_NEAR(total, adjusted, 1e-6) << "seed=" << GetParam() << " t=" << t;
  }
}

TEST_P(PipelineProperties, SymmetryForIdenticalTwins) {
  // Two identical VMs in identical states must receive identical shares,
  // whatever else runs beside them.
  util::Rng rng(GetParam() * 104729 + 13);
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {catalogue[0], catalogue[0],
                                               catalogue[1]};
  core::CollectionOptions options;
  options.duration_s = 60.0;
  options.seed = GetParam() + 500;
  const auto dataset = core::collect_offline_dataset(spec_, fleet, options);
  core::ShapleyVhcEstimator estimator(dataset.universe, dataset.approximation);

  for (int trial = 0; trial < 10; ++trial) {
    const double twin_util = rng.uniform();
    const std::vector<VmSample> samples = {
        {0, catalogue[0].type_id, StateVector::cpu_only(twin_util)},
        {1, catalogue[0].type_id, StateVector::cpu_only(twin_util)},
        {2, catalogue[1].type_id, StateVector::cpu_only(rng.uniform())}};
    const auto phi = estimator.estimate(samples, rng.uniform(5.0, 60.0));
    ASSERT_NEAR(phi[0], phi[1], 1e-9) << "trial " << trial;
  }
}

TEST_P(PipelineProperties, DummyGetsNothing) {
  // An idle VM (all-zero state) receives a zero share at every sample — in
  // the *unanchored* game, where worths come purely from the approximation
  // (an idle VM contributes zero to every aggregated state, so its marginal
  // is exactly zero). The anchored online mode deliberately trades a little
  // of Dummy away: the gap between the measured power and the
  // approximation's v(N, C') lands on every VM's share, idle ones included,
  // in exchange for exact Efficiency.
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {catalogue[0], catalogue[1]};
  core::CollectionOptions options;
  options.duration_s = 60.0;
  options.seed = GetParam() + 900;
  const auto dataset = core::collect_offline_dataset(spec_, fleet, options);
  core::ShapleyVhcEstimator unanchored(dataset.universe, dataset.approximation,
                                       /*anchor_grand_to_measurement=*/false);
  core::ShapleyVhcEstimator anchored(dataset.universe, dataset.approximation);

  util::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const double busy_util = rng.uniform();
    const std::vector<VmSample> samples = {
        {0, catalogue[0].type_id, StateVector::cpu_only(busy_util)},
        {1, catalogue[1].type_id, StateVector::zero()}};
    const auto phi = unanchored.estimate(samples, rng.uniform(1.0, 15.0));
    ASSERT_NEAR(phi[1], 0.0, 1e-9) << "trial " << trial;

    // Anchored: the idle VM absorbs at most half the anchor gap.
    const double measured = rng.uniform(1.0, 15.0);
    const auto anchored_phi = anchored.estimate(samples, measured);
    const double gap = std::abs(measured - (phi[0] + phi[1]));
    ASSERT_LE(std::abs(anchored_phi[1]), 0.5 * gap + 1e-9) << "trial " << trial;
  }
}

TEST_P(PipelineProperties, SharesAreNonNegativeUnderMonotoneWorths) {
  // The machine's power is monotone in coalition membership, so no VM should
  // be charged negative power.
  util::Rng rng(GetParam() * 31 + 7);
  const auto fleet = random_fleet(rng);
  core::CollectionOptions options;
  options.duration_s = 60.0;
  options.seed = GetParam() + 1300;
  const auto dataset = core::collect_offline_dataset(spec_, fleet, options);
  core::ShapleyVhcEstimator estimator(dataset.universe, dataset.approximation);

  sim::PhysicalMachine machine(spec_, GetParam() + 77);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        fleet[i],
        std::make_unique<wl::SyntheticRandomCpu>(GetParam() * 9 + i));
    machine.hypervisor().start_vm(id);
  }
  for (int t = 0; t < 20; ++t) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = estimator.estimate(samples, adjusted);
    for (std::size_t i = 0; i < phi.size(); ++i)
      ASSERT_GT(phi[i], -0.5) << "vm " << i << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperties, ::testing::Range(1, 9));

}  // namespace
}  // namespace vmp
