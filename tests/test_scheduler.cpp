#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::sim {
namespace {

const CpuTopology kTopo{1, 4, 2};  // 8 logical CPUs

std::size_t busy_threads(const Placement& p) {
  std::size_t n = 0;
  for (const ThreadAssignment& t : p)
    if (t.busy()) ++n;
  return n;
}

std::size_t cores_with_both_siblings_busy(const Placement& p,
                                          const CpuTopology& topo) {
  std::size_t n = 0;
  for (std::size_t core = 0; core < topo.physical_cores(); ++core) {
    const LogicalCpu t0 = topo.first_thread_of(core);
    if (p[t0].busy() && p[t0 + 1].busy()) ++n;
  }
  return n;
}

TEST(Place, EveryDemandGetsExactlyOneThread) {
  const std::vector<VcpuDemand> demands = {
      {0, 0.5, 1.0}, {1, 0.7, 1.0}, {2, 1.0, 1.0}};
  for (PlacementMode mode : {PlacementMode::kSpread, PlacementMode::kPack}) {
    const Placement p = place(kTopo, demands, mode);
    ASSERT_EQ(p.size(), kTopo.logical_cpus());
    EXPECT_EQ(busy_threads(p), 3u);
  }
}

TEST(Place, SpreadPrefersEmptyCores) {
  const std::vector<VcpuDemand> demands = {{0, 1.0, 1.0}, {1, 1.0, 1.0}};
  const Placement p = place(kTopo, demands, PlacementMode::kSpread);
  EXPECT_EQ(cores_with_both_siblings_busy(p, kTopo), 0u);
}

TEST(Place, PackFillsSiblingsFirst) {
  const std::vector<VcpuDemand> demands = {{0, 1.0, 1.0}, {1, 1.0, 1.0}};
  const Placement p = place(kTopo, demands, PlacementMode::kPack);
  // Both vCPUs share physical core 0 — the Fig. 4 configuration.
  EXPECT_TRUE(p[0].busy());
  EXPECT_TRUE(p[1].busy());
  EXPECT_EQ(cores_with_both_siblings_busy(p, kTopo), 1u);
}

TEST(Place, PackPairsAcrossVms) {
  // Three 1-vCPU VMs under pack: two share core 0, the third opens core 1.
  const std::vector<VcpuDemand> demands = {
      {0, 1.0, 1.0}, {1, 1.0, 1.0}, {2, 1.0, 1.0}};
  const Placement p = place(kTopo, demands, PlacementMode::kPack);
  EXPECT_EQ(cores_with_both_siblings_busy(p, kTopo), 1u);
  EXPECT_TRUE(p[2].busy());
}

TEST(Place, SpreadFallsBackToSiblingsWhenCrowded) {
  // 5 vCPUs on 4 cores: spread must start doubling up.
  std::vector<VcpuDemand> demands;
  for (std::size_t i = 0; i < 5; ++i) demands.push_back({i, 1.0, 1.0});
  const Placement p = place(kTopo, demands, PlacementMode::kSpread);
  EXPECT_EQ(busy_threads(p), 5u);
  EXPECT_EQ(cores_with_both_siblings_busy(p, kTopo), 1u);
}

TEST(Place, FullMachineBothModesIdentical) {
  std::vector<VcpuDemand> demands;
  for (std::size_t i = 0; i < 8; ++i) demands.push_back({i, 0.5, 1.0});
  const Placement spread = place(kTopo, demands, PlacementMode::kSpread);
  const Placement pack = place(kTopo, demands, PlacementMode::kPack);
  EXPECT_EQ(busy_threads(spread), 8u);
  EXPECT_EQ(busy_threads(pack), 8u);
}

TEST(Place, OvercommitRejected) {
  std::vector<VcpuDemand> demands;
  for (std::size_t i = 0; i < 9; ++i) demands.push_back({i, 0.5, 1.0});
  EXPECT_THROW(place(kTopo, demands, PlacementMode::kSpread),
               std::invalid_argument);
}

TEST(Place, CarriesUtilizationAndIntensity) {
  const std::vector<VcpuDemand> demands = {{7, 0.33, 1.25}};
  const Placement p = place(kTopo, demands, PlacementMode::kSpread);
  const auto it =
      std::find_if(p.begin(), p.end(), [](const auto& t) { return t.busy(); });
  ASSERT_NE(it, p.end());
  EXPECT_EQ(it->vm_index, 7u);
  EXPECT_DOUBLE_EQ(it->utilization, 0.33);
  EXPECT_DOUBLE_EQ(it->intensity, 1.25);
  EXPECT_NEAR(it->effective_load(), 0.4125, 1e-12);
}

TEST(Place, IdleThreadHasZeroEffectiveLoad) {
  const Placement p = place(kTopo, {}, PlacementMode::kSpread);
  for (const ThreadAssignment& t : p) {
    EXPECT_FALSE(t.busy());
    EXPECT_DOUBLE_EQ(t.effective_load(), 0.0);
  }
}

TEST(Place, DeterministicForGivenMode) {
  const std::vector<VcpuDemand> demands = {{0, 0.4, 1.0}, {1, 0.6, 1.0}};
  const Placement a = place(kTopo, demands, PlacementMode::kPack);
  const Placement b = place(kTopo, demands, PlacementMode::kPack);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vm_index, b[i].vm_index);
    EXPECT_DOUBLE_EQ(a[i].utilization, b[i].utilization);
  }
}

TEST(StochasticScheduler, AffinityControlsModeMix) {
  const std::vector<VcpuDemand> demands = {{0, 1.0, 1.0}, {1, 1.0, 1.0}};
  StochasticScheduler sched(0.3, /*seed=*/5);
  int packs = 0;
  for (int i = 0; i < 2000; ++i) {
    (void)sched.schedule(kTopo, demands);
    if (sched.last_mode() == PlacementMode::kPack) ++packs;
  }
  EXPECT_NEAR(packs / 2000.0, 0.3, 0.04);
}

TEST(StochasticScheduler, ExtremesArePure) {
  const std::vector<VcpuDemand> demands = {{0, 1.0, 1.0}};
  StochasticScheduler always_pack(1.0, 1);
  StochasticScheduler never_pack(0.0, 1);
  for (int i = 0; i < 50; ++i) {
    (void)always_pack.schedule(kTopo, demands);
    EXPECT_EQ(always_pack.last_mode(), PlacementMode::kPack);
    (void)never_pack.schedule(kTopo, demands);
    EXPECT_EQ(never_pack.last_mode(), PlacementMode::kSpread);
  }
}

TEST(StochasticScheduler, Validation) {
  EXPECT_THROW(StochasticScheduler(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(StochasticScheduler(1.1, 1), std::invalid_argument);
}

TEST(PlacementMode, Names) {
  EXPECT_STREQ(to_string(PlacementMode::kPack), "pack");
  EXPECT_STREQ(to_string(PlacementMode::kSpread), "spread");
}

}  // namespace
}  // namespace vmp::sim
