// Durable attribution ledger: on-disk format, rotation/compaction, crash
// recovery (torn tails, byte flips, damaged footers), checkpoint rewind, and
// the end-to-end promise — answers served from the ledger are byte-identical
// to the retention-ring answers they replace, across a full restart.
#include "ledger/ledger.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"

namespace vmp::ledger {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory per test, removed on destruction (success or
/// failure) so ledger files never accumulate under /tmp.
struct ScratchDir {
  fs::path path;

  ScratchDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("vmp-ledger-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Deterministic record at `epoch` with awkward doubles (not short decimals)
/// so bit-exactness is actually exercised, not satisfied by accident.
TickRecord record_at(std::uint64_t epoch) {
  const double t = static_cast<double>(epoch);
  TickRecord record;
  record.epoch = epoch;
  record.tick = epoch;
  record.time_s = t;
  record.period_s = 1.0;
  record.vms = {{0, 1, 1, 0.1 * t, 10.1 * t}, {0, 2, 2, 0.2 * t, 20.2 * t}};
  record.tenants = {{1, 0.1 * t, 101.3 * t}, {2, 0.2 * t, 202.7 * t}};
  record.total_power_w = 0.3 * t;
  record.total_energy_j = 304.0 * t;
  record.unattributed_j = 0.0;
  return record;
}

void expect_bit_identical(const TickRecord& a, const TickRecord& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.tick, b.tick);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.time_s),
            std::bit_cast<std::uint64_t>(b.time_s));
  ASSERT_EQ(a.vms.size(), b.vms.size());
  for (std::size_t i = 0; i < a.vms.size(); ++i) {
    EXPECT_EQ(a.vms[i].tenant, b.vms[i].tenant);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.vms[i].energy_j),
              std::bit_cast<std::uint64_t>(b.vms[i].energy_j));
  }
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.tenants[i].energy_j),
              std::bit_cast<std::uint64_t>(b.tenants[i].energy_j));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.total_energy_j),
            std::bit_cast<std::uint64_t>(b.total_energy_j));
}

LedgerOptions small_segments(const fs::path& dir,
                             std::uint64_t max_records = 8) {
  LedgerOptions options;
  options.dir = dir;
  options.segment_max_records = max_records;
  options.index_stride = 4;
  options.background_compaction = false;  // deterministic tests.
  return options;
}

// --- format -----------------------------------------------------------------

TEST(LedgerFormat, RecordRoundTripIsBitExact) {
  const TickRecord record = record_at(37);
  const std::string body = encode_record(record);
  const auto decoded = decode_record(body);
  ASSERT_TRUE(decoded.has_value());
  expect_bit_identical(record, *decoded);
  // Re-encoding the decoded record reproduces the bytes exactly.
  EXPECT_EQ(encode_record(*decoded), body);
}

TEST(LedgerFormat, DecodeRejectsTruncatedAndOverstatedBodies) {
  const std::string body = encode_record(record_at(5));
  EXPECT_FALSE(decode_record(body.substr(0, body.size() - 1)).has_value());
  EXPECT_FALSE(decode_record(body.substr(0, 10)).has_value());
  EXPECT_FALSE(decode_record("").has_value());
}

TEST(LedgerFormat, FrameReaderDetectsDamage) {
  std::string log;
  append_frame(log, record_at(1));
  append_frame(log, record_at(2));

  std::size_t offset = 0;
  TickRecord record;
  EXPECT_EQ(read_frame(log, offset, record), FrameStatus::kOk);
  EXPECT_EQ(record.epoch, 1u);
  const std::size_t second = offset;
  EXPECT_EQ(read_frame(log, offset, record), FrameStatus::kOk);
  EXPECT_EQ(record.epoch, 2u);
  EXPECT_EQ(read_frame(log, offset, record), FrameStatus::kEndOfLog);

  // A flipped body byte fails the CRC; the offset stays put (torn tail).
  std::string flipped = log;
  flipped[second + kFrameHeaderBytes + 3] ^= 0x40;
  offset = second;
  EXPECT_EQ(read_frame(flipped, offset, record), FrameStatus::kTorn);
  EXPECT_EQ(offset, second);

  // A frame cut mid-body is torn, not end-of-log.
  std::string cut = log.substr(0, log.size() - 5);
  offset = second;
  EXPECT_EQ(read_frame(cut, offset, record), FrameStatus::kTorn);

  // An insane declared length is damage, never an allocation.
  std::string insane = log.substr(0, second);
  insane += std::string(4, '\xff');  // length prefix ~4 GiB.
  insane += std::string(8, '\0');
  offset = second;
  EXPECT_EQ(read_frame(insane, offset, record), FrameStatus::kTorn);
}

// --- append / rotation / compaction / queries -------------------------------

TEST(Ledger, OptionsValidate) {
  EXPECT_THROW(Ledger{LedgerOptions{}}, std::invalid_argument);
  ScratchDir scratch;
  LedgerOptions zero = small_segments(scratch.path);
  zero.segment_max_records = 0;
  EXPECT_THROW(Ledger{zero}, std::invalid_argument);
}

TEST(Ledger, AppendRotatesCompactsAndAnswersQueries) {
  ScratchDir scratch;
  Ledger log(small_segments(scratch.path));
  for (std::uint64_t epoch = 1; epoch <= 30; ++epoch)
    log.append(record_at(epoch));

  const Stats stats = log.stats();
  EXPECT_EQ(stats.records, 30u);
  EXPECT_EQ(stats.oldest_epoch, 1u);
  EXPECT_EQ(stats.tail_epoch, 30u);
  EXPECT_GE(stats.cold_segments, 3u);  // 30 records over 8-record segments.
  EXPECT_EQ(stats.sealed_segments, 0u);

  // Point lookups cross the cold index and the active WAL alike.
  const auto cold = log.at_epoch(17);
  ASSERT_TRUE(cold.has_value());
  expect_bit_identical(record_at(17), *cold);
  const auto hot = log.at_epoch(30);
  ASSERT_TRUE(hot.has_value());
  expect_bit_identical(record_at(30), *hot);
  EXPECT_FALSE(log.at_epoch(0).has_value());
  EXPECT_FALSE(log.at_epoch(31).has_value());

  // Step semantics: newest record at-or-before t.
  EXPECT_EQ(log.at_or_before(12.5)->epoch, 12u);
  EXPECT_EQ(log.at_or_before(12.0)->epoch, 12u);
  EXPECT_EQ(log.at_or_before(99.0)->epoch, 30u);
  EXPECT_FALSE(log.at_or_before(0.5).has_value());

  // Ranges clamp to the extent and come back ascending.
  const auto records = log.range(5, 20);
  ASSERT_EQ(records.size(), 16u);
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(records[i].epoch, 5 + i);
  EXPECT_EQ(log.range(25, 99).size(), 6u);
  EXPECT_TRUE(log.range(40, 50).empty());

  EXPECT_TRUE(verify_dir(scratch.path).clean());
}

TEST(Ledger, AppendEnforcesEpochMonotonicity) {
  ScratchDir scratch;
  Ledger log(small_segments(scratch.path));
  log.append(record_at(5));
  EXPECT_THROW(log.append(record_at(5)), std::logic_error);
  EXPECT_THROW(log.append(record_at(4)), std::logic_error);
  log.append(record_at(7));  // gaps forward are the caller's business.
  EXPECT_EQ(log.stats().tail_epoch, 7u);
}

TEST(Ledger, ReopenRecoversEverythingAndResumesTheTailWal) {
  ScratchDir scratch;
  auto log = std::make_unique<Ledger>(small_segments(scratch.path));
  for (std::uint64_t epoch = 1; epoch <= 20; ++epoch)
    log->append(record_at(epoch));
  const std::uint64_t segments_before = log->stats().segments;
  log.reset();  // clean shutdown.

  log = std::make_unique<Ledger>(small_segments(scratch.path));
  const RecoveryReport report = log->recovery();
  EXPECT_EQ(report.records, 20u);
  EXPECT_EQ(report.torn_records, 0u);
  EXPECT_EQ(log->stats().tail_epoch, 20u);
  expect_bit_identical(record_at(13), *log->at_epoch(13));

  // The under-threshold tail WAL resumes as active: appending continues in
  // place instead of opening a fresh segment.
  log->append(record_at(21));
  EXPECT_EQ(log->stats().segments, segments_before);
  EXPECT_EQ(log->stats().tail_epoch, 21u);
}

// --- damage: torn tails, byte flips, broken footers -------------------------

TEST(Ledger, RecoveryTruncatesATornTail) {
  ScratchDir scratch;
  LedgerOptions options = small_segments(scratch.path, 1024);
  options.auto_compact = false;  // one WAL file, easy to wound.
  auto log = std::make_unique<Ledger>(options);
  for (std::uint64_t epoch = 1; epoch <= 10; ++epoch)
    log->append(record_at(epoch));
  fs::path wal;
  for (const auto& entry : fs::directory_iterator(scratch.path))
    wal = entry.path();
  log.reset();

  // Chop mid-record, as a crash between write and flush would.
  fs::resize_file(wal, fs::file_size(wal) - 3);
  EXPECT_FALSE(verify_dir(scratch.path).clean());

  log = std::make_unique<Ledger>(options);
  EXPECT_EQ(log->recovery().torn_records, 1u);
  EXPECT_EQ(log->recovery().records, 9u);
  EXPECT_GT(log->recovery().truncated_bytes, 0u);
  EXPECT_EQ(log->stats().tail_epoch, 9u);
  expect_bit_identical(record_at(9), *log->at_epoch(9));

  // The lost epoch can simply be re-appended; the file is clean again.
  log->append(record_at(10));
  log.reset();
  EXPECT_TRUE(verify_dir(scratch.path).clean());
}

TEST(Ledger, RecoveryKeepsRecordsBeforeAByteFlip) {
  ScratchDir scratch;
  LedgerOptions options = small_segments(scratch.path, 1024);
  options.auto_compact = false;
  auto log = std::make_unique<Ledger>(options);
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch)
    log->append(record_at(epoch));
  fs::path wal;
  for (const auto& entry : fs::directory_iterator(scratch.path))
    wal = entry.path();
  const std::uint64_t intact_bytes = fs::file_size(wal);
  for (std::uint64_t epoch = 6; epoch <= 10; ++epoch)
    log->append(record_at(epoch));
  log.reset();

  {  // Flip one byte inside record 6's frame (bit rot / partial overwrite).
    std::fstream file(wal, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(intact_bytes + 12));
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(intact_bytes + 12));
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    file.seekp(static_cast<std::streamoff>(intact_bytes + 12));
    file.write(&byte, 1);
  }

  log = std::make_unique<Ledger>(options);
  EXPECT_EQ(log->recovery().records, 5u);  // everything before the flip.
  EXPECT_EQ(log->recovery().torn_records, 1u);
  EXPECT_EQ(log->stats().tail_epoch, 5u);
  expect_bit_identical(record_at(5), *log->at_epoch(5));
  EXPECT_FALSE(log->at_epoch(6).has_value());
}

TEST(Ledger, DamagedColdFooterFallsBackToRescanAndRecompacts) {
  ScratchDir scratch;
  auto log = std::make_unique<Ledger>(small_segments(scratch.path));
  for (std::uint64_t epoch = 1; epoch <= 16; ++epoch)
    log->append(record_at(epoch));
  ASSERT_EQ(log->stats().cold_segments, 2u);
  log.reset();

  fs::path cold;
  for (const auto& entry : fs::directory_iterator(scratch.path))
    if (entry.path().filename().string().starts_with("cold-")) {
      cold = entry.path();
      break;
    }
  ASSERT_FALSE(cold.empty());
  {  // Wreck the footer magic; the frames stay CRC-protected.
    std::fstream file(cold, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(fs::file_size(cold) - 1));
    file.write("\0", 1);
  }

  log = std::make_unique<Ledger>(small_segments(scratch.path));
  EXPECT_EQ(log->recovery().rescanned_cold, 1u);
  const Stats stats = log->stats();
  EXPECT_EQ(stats.records, 16u);  // nothing lost — and recompacted already.
  EXPECT_EQ(stats.cold_segments, 2u);
  EXPECT_EQ(stats.sealed_segments, 0u);
  expect_bit_identical(record_at(3), *log->at_epoch(3));
  EXPECT_TRUE(verify_dir(scratch.path).clean());
}

TEST(Ledger, VerifyDirCountsEpochGaps) {
  ScratchDir scratch;
  {
    Ledger log(small_segments(scratch.path));
    for (std::uint64_t epoch = 1; epoch <= 24; ++epoch)
      log.append(record_at(epoch));
  }
  fs::path middle;
  for (const auto& entry : fs::directory_iterator(scratch.path))
    if (entry.path().filename().string().starts_with("cold-") &&
        entry.path().filename().string().find("0000000000000000000" "9") !=
            std::string::npos)
      middle = entry.path();
  ASSERT_FALSE(middle.empty()) << "expected a cold segment starting at 9";
  fs::remove(middle);  // epochs 9..16 vanish.

  const VerifyReport report = verify_dir(scratch.path);
  EXPECT_EQ(report.epoch_gaps, 1u);
  EXPECT_FALSE(report.clean());
}

// --- truncation (checkpoint rewind) -----------------------------------------

TEST(Ledger, TruncateAfterRewindsAcrossAllTiers) {
  ScratchDir scratch;
  Ledger log(small_segments(scratch.path));
  for (std::uint64_t epoch = 1; epoch <= 30; ++epoch)
    log.append(record_at(epoch));
  // Tiers now: cold 1-8, 9-16, 17-24; active WAL 25-30.

  log.truncate_after(99);  // past the tail: no-op.
  EXPECT_EQ(log.stats().tail_epoch, 30u);

  log.truncate_after(20);  // drops the WAL, splits cold 17-24.
  Stats stats = log.stats();
  EXPECT_EQ(stats.tail_epoch, 20u);
  EXPECT_EQ(stats.records, 20u);
  expect_bit_identical(record_at(20), *log.at_epoch(20));
  EXPECT_FALSE(log.at_epoch(21).has_value());

  log.truncate_after(8);  // drops whole segments.
  stats = log.stats();
  EXPECT_EQ(stats.tail_epoch, 8u);
  EXPECT_EQ(stats.records, 8u);

  // The rewound ledger accepts the replayed-forward epochs again.
  log.append(record_at(9));
  EXPECT_EQ(log.stats().tail_epoch, 9u);
  log.wait_for_compaction();
  EXPECT_TRUE(verify_dir(scratch.path).clean());
}

TEST(Ledger, TruncateAfterResizesTheActiveWalInPlace) {
  ScratchDir scratch;
  LedgerOptions options = small_segments(scratch.path, 1024);
  options.auto_compact = false;
  Ledger log(options);
  for (std::uint64_t epoch = 1; epoch <= 10; ++epoch)
    log.append(record_at(epoch));

  log.truncate_after(7);
  EXPECT_EQ(log.stats().tail_epoch, 7u);
  EXPECT_EQ(log.stats().records, 7u);
  log.append(record_at(8));  // the same file keeps accepting appends.
  EXPECT_EQ(log.stats().tail_epoch, 8u);
  EXPECT_EQ(log.stats().segments, 1u);
  EXPECT_TRUE(verify_dir(scratch.path).clean());
}

// --- metrics ----------------------------------------------------------------

TEST(Ledger, ExportsMetricFamilies) {
  ScratchDir scratch;
  obs::MetricsRegistry registry;
  LedgerOptions options = small_segments(scratch.path);
  options.metrics = &registry;
  Ledger log(options);
  for (std::uint64_t epoch = 1; epoch <= 10; ++epoch)
    log.append(record_at(epoch));

  const std::string dump = registry.to_prometheus();
  for (const char* family :
       {"vmpower_ledger_appended_records_total",
        "vmpower_ledger_appended_bytes_total",
        "vmpower_ledger_compacted_records_total",
        "vmpower_ledger_recovered_records_total",
        "vmpower_ledger_torn_records_total", "vmpower_ledger_segments",
        "vmpower_ledger_cold_segments", "vmpower_ledger_tail_epoch",
        "vmpower_ledger_oldest_epoch"})
    EXPECT_NE(dump.find(family), std::string::npos) << family;
  EXPECT_NE(dump.find("vmpower_ledger_tail_epoch 10"), std::string::npos);
}

TEST(Ledger, InvariantMonitorFlagsTailLagAndReplayMismatch) {
  obs::MetricsRegistry registry;
  obs::InvariantMonitor monitor(registry);
  monitor.observe_ledger(/*snapshot_epoch=*/7, /*ledger_tail_epoch=*/7);
  monitor.observe_ledger_replay(7, 304.0, 304.0);
  EXPECT_EQ(monitor.breaches(), 0u);
  monitor.observe_ledger(8, 7);  // an append was skipped: durable hole.
  EXPECT_EQ(monitor.breaches(), 1u);
  monitor.observe_ledger_replay(8, 304.0, 304.0000000001);
  EXPECT_EQ(monitor.breaches(), 2u);
}

}  // namespace
}  // namespace vmp::ledger

// --- serving integration: the ledger under the retention ring ---------------

namespace vmp::serve {
namespace {

namespace fs = std::filesystem;
using ledger::Ledger;
using ledger::LedgerOptions;

/// Same linear synthetic fleet as test_serve.cpp: tenant 1 draws 100t J,
/// tenant 2 draws 200t J, VM (0,1) draws 10t J.
Snapshot synthetic_at(double t) {
  Snapshot snapshot;
  snapshot.tick = static_cast<std::uint64_t>(t);
  snapshot.time_s = t;
  snapshot.vms = {{0, 1, 1, t, 10.0 * t}, {0, 2, 2, 2.0 * t, 20.0 * t}};
  snapshot.tenants = {{1, t, 100.0 * t}, {2, 2.0 * t, 200.0 * t}};
  snapshot.total_power_w = 3.0 * t;
  snapshot.total_energy_j = 300.0 * t;
  return snapshot;
}

Request window_request(QueryKind kind, double t0, double t1) {
  Request request;
  request.kind = kind;
  request.host = 0;
  request.vm = 1;
  request.tenant = 2;
  request.t0 = t0;
  request.t1 = t1;
  return request;
}

TEST(LedgerServe, SnapshotRecordConversionIsBitExact) {
  const Snapshot snapshot = synthetic_at(9.0);
  Snapshot back = to_snapshot(to_record(snapshot));
  back.epoch = snapshot.epoch;
  EXPECT_EQ(back.vms.size(), snapshot.vms.size());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.vms[0].energy_j),
            std::bit_cast<std::uint64_t>(snapshot.vms[0].energy_j));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.tenants[1].energy_j),
            std::bit_cast<std::uint64_t>(snapshot.tenants[1].energy_j));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.total_energy_j),
            std::bit_cast<std::uint64_t>(snapshot.total_energy_j));
}

struct Scratch {
  fs::path path;
  Scratch() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("vmp-ledger-serve-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(path);
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

LedgerOptions inline_options(const fs::path& dir) {
  LedgerOptions options;
  options.dir = dir;
  options.segment_max_records = 8;
  options.index_stride = 4;
  options.background_compaction = false;
  return options;
}

TEST(LedgerServe, RestartServesByteIdenticalWindowAnswers) {
  Scratch scratch;
  const std::vector<Request> requests = {
      window_request(QueryKind::kTenantEnergy, 5.0, 15.0),
      window_request(QueryKind::kVmEnergy, 3.0, 33.0),
      window_request(QueryKind::kTenantCost, 7.0, 29.0),
  };

  // First life: big ring, every publish mirrored into the ledger.
  std::vector<std::string> hot_answers;
  {
    auto log = std::make_unique<Ledger>(inline_options(scratch.path));
    SnapshotStore store(64);
    store.set_ledger(log.get());
    for (int t = 1; t <= 40; ++t) store.publish(synthetic_at(t));
    QueryEngine hot(store);
    for (const Request& request : requests) {
      const Response response = hot.execute(request);
      ASSERT_TRUE(response.ok) << request.canonical();
      hot_answers.push_back(encode_response(response));
    }
    EXPECT_EQ(log->stats().tail_epoch, 40u);
  }  // process "dies": ledger closed, ring gone.

  // Second life: tiny ring refilled from the ledger tail; the windows above
  // now resolve through the cold path — and must answer byte-identically.
  auto log = std::make_unique<Ledger>(inline_options(scratch.path));
  EXPECT_EQ(log->recovery().torn_records, 0u);
  SnapshotStore store(8);
  EXPECT_EQ(store.restore_from_ledger(*log), 8u);
  store.set_ledger(log.get());
  EXPECT_EQ(store.latest()->epoch, 40u);
  EXPECT_EQ(store.oldest()->epoch, 33u);

  QueryEngine cold(store);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Response response = cold.execute(requests[i]);
    ASSERT_TRUE(response.ok) << requests[i].canonical();
    EXPECT_EQ(encode_response(response), hot_answers[i])
        << requests[i].canonical();
  }

  // The restored store continues the epoch sequence into the same ledger.
  store.publish(synthetic_at(41));
  EXPECT_EQ(store.latest()->epoch, 41u);
  EXPECT_EQ(log->stats().tail_epoch, 41u);
}

TEST(LedgerServe, WindowErrorsCarryTheOldestReachableEpoch) {
  // No ledger: a bound past the ring is kOutOfRetention, detail = the
  // oldest epoch still in the ring.
  {
    SnapshotStore store(4);
    for (int t = 1; t <= 11; ++t) store.publish(synthetic_at(t));
    QueryEngine engine(store);
    const Response response =
        engine.execute(window_request(QueryKind::kTenantEnergy, 3.0, 10.0));
    ASSERT_FALSE(response.ok);
    EXPECT_EQ(response.code, ErrorCode::kOutOfRetention);
    EXPECT_EQ(response.detail, 8u);  // ring holds epochs 8..11.
  }

  // With a ledger attached late (epochs 1-5 never durably logged): a bound
  // past the ledger's own oldest record is kOutOfHistory, detail = the
  // ledger's oldest epoch.
  {
    Scratch scratch;
    auto log = std::make_unique<Ledger>(inline_options(scratch.path));
    SnapshotStore store(4);
    for (int t = 1; t <= 5; ++t) store.publish(synthetic_at(t));
    store.set_ledger(log.get());
    for (int t = 6; t <= 20; ++t) store.publish(synthetic_at(t));
    QueryEngine engine(store);

    const Response too_old =
        engine.execute(window_request(QueryKind::kTenantEnergy, 2.0, 19.0));
    ASSERT_FALSE(too_old.ok);
    EXPECT_EQ(too_old.code, ErrorCode::kOutOfHistory);
    EXPECT_EQ(too_old.detail, 6u);

    // Clamping to the advertised epoch's time makes the query answerable,
    // served from the ledger's cold records.
    const Response clamped =
        engine.execute(window_request(QueryKind::kTenantEnergy, 6.0, 19.0));
    ASSERT_TRUE(clamped.ok);
    EXPECT_DOUBLE_EQ(clamped.values.at(0), 200.0 * (19.0 - 6.0));
  }
}

TEST(LedgerServe, WindowBoundExactlyAtTheOldestRingEpochStaysInTheRing) {
  Scratch scratch;
  auto log = std::make_unique<Ledger>(inline_options(scratch.path));
  SnapshotStore store(4);
  store.set_ledger(log.get());
  for (int t = 1; t <= 12; ++t) store.publish(synthetic_at(t));
  // Ring holds epochs 9..12; the ledger holds everything.
  ASSERT_EQ(store.oldest()->epoch, 9u);

  QueryEngine engine(store);
  // Lower bound exactly at the oldest ring snapshot's time: at_or_before is
  // inclusive, so this is the last window the ring itself can answer — the
  // fall-through boundary, one tick after which the ledger takes over.
  const Response at_edge =
      engine.execute(window_request(QueryKind::kTenantEnergy, 9.0, 12.0));
  ASSERT_TRUE(at_edge.ok) << at_edge.message;
  EXPECT_DOUBLE_EQ(at_edge.values.at(0), 200.0 * (12.0 - 9.0));

  // One instant earlier resolves the bound through the ledger (epoch 8) and
  // must agree with the arithmetic the ring would have produced.
  const Response below_edge =
      engine.execute(window_request(QueryKind::kTenantEnergy, 8.999, 12.0));
  ASSERT_TRUE(below_edge.ok) << below_edge.message;
  EXPECT_DOUBLE_EQ(below_edge.values.at(0), 200.0 * (12.0 - 8.0));
}

TEST(LedgerServe, EmptyRingWithNonEmptyLedgerServesFromTheTail) {
  Scratch scratch;
  // First life writes durable history.
  {
    auto log = std::make_unique<Ledger>(inline_options(scratch.path));
    SnapshotStore store(8);
    store.set_ledger(log.get());
    for (int t = 1; t <= 20; ++t) store.publish(synthetic_at(t));
  }

  // Second life: the ledger is attached but the ring was never refilled
  // (restore_from_ledger not called, no publish yet). Point and window
  // queries must answer from the ledger tail instead of kNoSnapshot.
  auto log = std::make_unique<Ledger>(inline_options(scratch.path));
  SnapshotStore store(8);
  store.set_ledger(log.get());
  ASSERT_EQ(store.latest(), nullptr);

  QueryEngine engine(store);
  const Response point = engine.execute(window_request(QueryKind::kStats, 0, 0));
  ASSERT_TRUE(point.ok) << point.message;
  EXPECT_EQ(point.epoch, 20u);  // the ledger tail epoch.
  EXPECT_DOUBLE_EQ(point.values.at(1), 20.0);  // time_s.

  const Response window =
      engine.execute(window_request(QueryKind::kTenantEnergy, 5.0, 15.0));
  ASSERT_TRUE(window.ok) << window.message;
  EXPECT_DOUBLE_EQ(window.values.at(0), 200.0 * (15.0 - 5.0));

  // An empty ring with an *empty* ledger is still kNoSnapshot.
  Scratch empty_scratch;
  auto empty_log = std::make_unique<Ledger>(inline_options(empty_scratch.path));
  SnapshotStore empty_store(8);
  empty_store.set_ledger(empty_log.get());
  QueryEngine empty_engine(empty_store);
  const Response none =
      empty_engine.execute(window_request(QueryKind::kStats, 0, 0));
  ASSERT_FALSE(none.ok);
  EXPECT_EQ(none.code, ErrorCode::kNoSnapshot);
}

TEST(LedgerServe, LedgerReachingEpochOneExtendsTheGenesisBaseline) {
  Scratch scratch;
  auto log = std::make_unique<Ledger>(inline_options(scratch.path));
  SnapshotStore store(2);  // ring far too small to hold the window.
  store.set_ledger(log.get());
  for (int t = 1; t <= 10; ++t) store.publish(synthetic_at(t));
  QueryEngine engine(store);

  // t0 predates even the ledger — but the ledger's oldest epoch is 1, so
  // "before accounting started" is a zero baseline, not missing history.
  const Response response =
      engine.execute(window_request(QueryKind::kTenantEnergy, 0.25, 10.0));
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_DOUBLE_EQ(response.values.at(0), 200.0 * 10.0);
}

}  // namespace
}  // namespace vmp::serve
