// util::logging: level filtering, sink hooks, and line atomicity under
// concurrency — a sink must only ever see complete, untorn lines.
#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace vmp::util {
namespace {

/// Installs a collecting sink for the test's scope and restores the default
/// (stderr) sink afterwards, so other tests keep their quiet default.
class SinkCapture {
 public:
  SinkCapture() {
    set_log_sink([this](LogLevel level, std::string_view line) {
      levels_.push_back(level);
      lines_.emplace_back(line);
    });
  }
  ~SinkCapture() { set_log_sink({}); }

  // The sink runs under the logging mutex, so reads after the emitting
  // threads join are race-free.
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : saved_level_(log_level()) {}
  ~LoggingTest() override { set_log_level(saved_level_); }

 private:
  LogLevel saved_level_;
};

TEST_F(LoggingTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

TEST_F(LoggingTest, SinkReceivesFormattedPrefixedLines) {
  set_log_level(LogLevel::kInfo);
  SinkCapture capture;
  VMP_LOG_INFO("tick %d of %s", 7, "run");
  VMP_LOG_WARN("queue at %.1f%%", 93.5);

  ASSERT_EQ(capture.lines_.size(), 2u);
  EXPECT_EQ(capture.lines_[0], "[vmpower INFO] tick 7 of run");
  EXPECT_EQ(capture.lines_[1], "[vmpower WARN] queue at 93.5%");
  EXPECT_EQ(capture.levels_[0], LogLevel::kInfo);
  EXPECT_EQ(capture.levels_[1], LogLevel::kWarn);
}

TEST_F(LoggingTest, FilteredLevelsNeverReachTheSink) {
  set_log_level(LogLevel::kWarn);
  SinkCapture capture;
  VMP_LOG_DEBUG("invisible %d", 1);
  VMP_LOG_INFO("also invisible");
  VMP_LOG_ERROR("visible");
  ASSERT_EQ(capture.lines_.size(), 1u);
  EXPECT_EQ(capture.lines_[0], "[vmpower ERROR] visible");

  set_log_level(LogLevel::kOff);
  VMP_LOG_ERROR("suppressed entirely");
  EXPECT_EQ(capture.lines_.size(), 1u);
}

TEST_F(LoggingTest, LongMessagesSurviveUntruncated) {
  set_log_level(LogLevel::kWarn);
  SinkCapture capture;
  const std::string payload(4096, 'x');
  VMP_LOG_WARN("big=%s end", payload.c_str());
  ASSERT_EQ(capture.lines_.size(), 1u);
  EXPECT_EQ(capture.lines_[0], "[vmpower WARN] big=" + payload + " end");
}

TEST_F(LoggingTest, ConcurrentEmittersNeverTearLines) {
  set_log_level(LogLevel::kInfo);
  SinkCapture capture;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([t] {
        for (int i = 0; i < kPerThread; ++i)
          VMP_LOG_INFO("thread=%d seq=%d tail", t, i);
      });
    for (std::thread& thread : threads) thread.join();
  }

  ASSERT_EQ(capture.lines_.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // Every delivered line is exactly one complete message: correct prefix,
  // correct tail, no embedded newline, and per-thread sequences all present.
  std::vector<std::vector<int>> seen(kThreads);
  for (const std::string& line : capture.lines_) {
    ASSERT_EQ(line.rfind("[vmpower INFO] thread=", 0), 0u) << line;
    ASSERT_NE(line.find(" tail"), std::string::npos) << line;
    ASSERT_EQ(line.find('\n'), std::string::npos) << line;
    int thread = -1, seq = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "[vmpower INFO] thread=%d seq=%d",
                          &thread, &seq),
              2)
        << line;
    ASSERT_GE(thread, 0);
    ASSERT_LT(thread, kThreads);
    seen[static_cast<std::size_t>(thread)].push_back(seq);
  }
  for (auto& sequence : seen) {
    ASSERT_EQ(sequence.size(), static_cast<std::size_t>(kPerThread));
    // One mutex serialises emission, so each thread's own lines stay in
    // program order.
    EXPECT_TRUE(std::is_sorted(sequence.begin(), sequence.end()));
  }
}

}  // namespace
}  // namespace vmp::util
