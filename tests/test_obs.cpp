// Observability layer: tracer ring + spans, invariant monitors, and the
// end-to-end efficiency-residual acceptance property on the fleet engine.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "fleet/engine.hpp"
#include "fleet/faults.hpp"
#include "obs/invariants.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace vmp::obs {
namespace {

// --- Tracer ring ------------------------------------------------------------

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer(8);
  EXPECT_FALSE(tracer.enabled());
  tracer.record({"x", "test"});
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, RingKeepsNewestAndCountsOverwrites) {
  Tracer tracer(3);
  tracer.set_enabled(true);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    SpanEvent event;
    event.name = "tick";
    event.category = "test";
    event.span_id = i;
    tracer.record(event);
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Oldest first: 3, 4, 5 survived.
  EXPECT_EQ(events[0].span_id, 3u);
  EXPECT_EQ(events[2].span_id, 5u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, ChromeJsonlEmitsOneCompleteEventPerLine) {
  Tracer tracer(16);
  tracer.set_anchor(0);  // pin the wall anchor so ts is the raw start offset
  tracer.set_enabled(true);
  SpanEvent event;
  event.name = "fleet.tick";
  event.category = "fleet";
  event.trace_id = 7;
  event.span_id = 1;
  event.start_us = 10;
  event.duration_us = 4;
  event.thread = 2;
  tracer.record(event);

  const std::string jsonl = tracer.to_chrome_jsonl();
  // Exactly one newline-terminated object.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
  EXPECT_NE(jsonl.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"fleet.tick\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"cat\":\"fleet\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(jsonl.find("\"dur\":4"), std::string::npos);
  EXPECT_NE(jsonl.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"trace\":7"), std::string::npos);
}

TEST(Tracer, SpansInheritContextAndNestViaParentIds) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  {
    TraceContext context(42);
    EXPECT_EQ(TraceContext::current_trace(), 42u);
    VMP_TRACE_SPAN("outer", "test");
    { VMP_TRACE_SPAN("inner", "test"); }
  }
  EXPECT_EQ(TraceContext::current_trace(), 0u);
  tracer.set_enabled(false);

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first; both carry the ambient trace id and the inner span
  // parents on the outer one.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].trace_id, 42u);
  EXPECT_EQ(events[1].trace_id, 42u);
  EXPECT_EQ(events[0].parent_id, events[1].span_id);
  EXPECT_EQ(events[1].parent_id, 0u);
  EXPECT_GE(events[1].duration_us, events[0].duration_us);
  tracer.clear();
}

TEST(Tracer, ConcurrentRecordingIsLosslessUnderCapacity) {
  Tracer tracer(4096);
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SpanEvent event;
        event.name = "worker";
        event.category = "test";
        event.trace_id = static_cast<std::uint64_t>(t);
        event.span_id = tracer.next_span_id();
        tracer.record(event);
      }
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.size(), kThreads * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
  // Span ids were handed out exactly once.
  std::set<std::uint64_t> ids;
  for (const SpanEvent& event : tracer.snapshot()) ids.insert(event.span_id);
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

// --- Invariant monitors -----------------------------------------------------

TEST(InvariantMonitor, EfficiencyBreachCountsAndStampsEpoch) {
  MetricsRegistry registry;
  InvariantOptions options;
  options.efficiency_residual_warn_w = 1e-3;
  InvariantMonitor monitor(registry, options);

  monitor.observe_efficiency(5, 1e-9);  // noise: no breach.
  EXPECT_EQ(monitor.breaches(), 0u);
  monitor.observe_efficiency(6, 0.5);  // billed power no meter saw.
  EXPECT_EQ(monitor.breaches(), 1u);

  const std::string dump = registry.to_prometheus();
  EXPECT_NE(dump.find("vmpower_invariant_efficiency_residual_w 0.5\n"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_invariant_epoch 6\n"), std::string::npos);
  EXPECT_NE(
      dump.find(
          "vmpower_invariant_breaches_total{invariant=\"efficiency\"} 1\n"),
      std::string::npos);
}

TEST(InvariantMonitor, WarnLogsAreRateLimitedButBreachesAllCount) {
  MetricsRegistry registry;
  InvariantOptions options;
  options.efficiency_residual_warn_w = 1e-3;
  options.warn_log_interval = 8;
  InvariantMonitor monitor(registry, options);

  std::vector<std::string> lines;
  util::set_log_sink([&lines](util::LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  for (std::uint64_t epoch = 1; epoch <= 20; ++epoch)
    monitor.observe_efficiency(epoch, 1.0);
  util::set_log_sink({});

  EXPECT_EQ(monitor.breaches(), 20u);
  // Epochs 1, 9, 17 log; the rest are throttled.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("invariant=efficiency"), std::string::npos);
  EXPECT_NE(lines[0].find("epoch=1 "), std::string::npos);
  EXPECT_NE(lines[1].find("epoch=9 "), std::string::npos);
  EXPECT_NE(lines[2].find("epoch=17 "), std::string::npos);
}

TEST(InvariantMonitor, TableHitRateWarnsOnlyWhenThresholdEnabled) {
  MetricsRegistry registry;
  InvariantMonitor lenient(registry, {});
  lenient.observe_table_hit_rate(3, 0, 0.0);  // disabled by default.
  EXPECT_EQ(lenient.breaches(), 0u);

  InvariantOptions options;
  options.table_hit_rate_warn = 0.5;
  MetricsRegistry strict_registry;
  InvariantMonitor strict(strict_registry, options);
  strict.observe_table_hit_rate(3, 1, 0.9);
  EXPECT_EQ(strict.breaches(), 0u);
  strict.observe_table_hit_rate(4, 1, 0.2);
  EXPECT_EQ(strict.breaches(), 1u);
  const std::string dump = strict_registry.to_prometheus();
  EXPECT_NE(dump.find("vmpower_fleet_table_hit_rate{host=\"1\"} 0.2\n"),
            std::string::npos);
}

TEST(InvariantMonitor, BlockingQueueFullIsFlowControlNotABreach) {
  MetricsRegistry registry;
  InvariantMonitor monitor(registry, {});
  // A blocking queue at capacity: expected behaviour, no warn.
  monitor.observe_queue("fleet_samples", 1, 8, 8, 0, /*lossy=*/false);
  EXPECT_EQ(monitor.breaches(), 0u);
  // The same occupancy on a lossy queue is impending data loss.
  monitor.observe_queue("shedding", 1, 8, 8, 0, /*lossy=*/true);
  EXPECT_EQ(monitor.breaches(), 1u);
  // Sheds breach regardless of the policy.
  monitor.observe_queue("fleet_samples", 2, 2, 8, 5, /*lossy=*/false);
  EXPECT_EQ(monitor.breaches(), 2u);

  const std::string dump = registry.to_prometheus();
  EXPECT_NE(dump.find("vmpower_queue_high_watermark{queue=\"fleet_samples\"}"),
            std::string::npos);
  EXPECT_NE(
      dump.find(
          "vmpower_queue_shed_observed_total{queue=\"fleet_samples\"} 5\n"),
      std::string::npos);
}

TEST(InvariantMonitor, ServeAccountingBreachesOnSurplusAndIdleDeficit) {
  MetricsRegistry registry;
  InvariantMonitor monitor(registry, {});
  // Balanced books: every admitted request answered, nothing in flight.
  monitor.observe_serve_accounting(1, 10, 10, 0);
  EXPECT_EQ(monitor.breaches(), 0u);
  // A deficit while work is outstanding is normal pipelining, not a breach.
  monitor.observe_serve_accounting(2, 12, 10, 2);
  EXPECT_EQ(monitor.breaches(), 0u);
  // A deficit with *nothing* in flight means a request was dropped.
  monitor.observe_serve_accounting(3, 12, 11, 0);
  EXPECT_EQ(monitor.breaches(), 1u);
  // A surplus means some request id was answered twice.
  monitor.observe_serve_accounting(4, 12, 13, 0);
  EXPECT_EQ(monitor.breaches(), 2u);

  const std::string dump = registry.to_prometheus();
  EXPECT_NE(dump.find("vmpower_serve_outstanding 0\n"), std::string::npos);
  EXPECT_NE(
      dump.find(
          "vmpower_invariant_breaches_total{invariant=\"serve_exactly_once\"}"
          " 2\n"),
      std::string::npos);
}

TEST(InvariantMonitor, RingObservationsExportWithoutWarning) {
  MetricsRegistry registry;
  InvariantMonitor monitor(registry, {});
  monitor.observe_ring(12, 4, 4, 8);  // full ring + evictions: by design.
  EXPECT_EQ(monitor.breaches(), 0u);
  const std::string dump = registry.to_prometheus();
  EXPECT_NE(dump.find("vmpower_serve_snapshot_ring_occupancy 4\n"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_serve_snapshot_ring_retention 4\n"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_serve_snapshot_evictions_total 8\n"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_serve_snapshot_epoch 12\n"),
            std::string::npos);
}

// --- End-to-end efficiency residual ----------------------------------------

class ResidualTest : public ::testing::Test {
 protected:
  std::vector<common::VmConfig> fleet_ = {common::demo_c_vm(),
                                          common::demo_c_vm()};
  core::OfflineDataset dataset_ = [this] {
    core::CollectionOptions options;
    options.duration_s = 30.0;
    return core::collect_offline_dataset(sim::xeon_prototype(), fleet_,
                                         options);
  }();

  fleet::FleetOptions options_for() const {
    fleet::FleetOptions options;
    options.hosts = 3;
    options.threads = 1;
    options.fleet_per_host = fleet_;
    options.tenants = 2;
    options.seed = 7;
    options.retry_backoff_base = std::chrono::microseconds{0};
    return options;
  }
};

TEST_F(ResidualTest, FaultFreeResidualIsFloatingPointNoise) {
  fleet::FleetEngine engine(options_for(), dataset_);
  double max_residual = 0.0;
  engine.set_tick_observer([&max_residual](const fleet::FleetEngine& e,
                                           std::uint64_t,
                                           const auto&) {
    max_residual = std::max(max_residual, e.efficiency_residual_w());
  });
  engine.run(20);
  // The anchored estimator satisfies Efficiency exactly: Σφ equals the
  // measured adjusted power up to floating-point association error.
  EXPECT_LT(max_residual, 1e-6);
  EXPECT_EQ(engine.invariants().breaches(), 0u);
}

TEST_F(ResidualTest, MeterFaultsProduceNonzeroResidualAndBreach) {
  fleet::FleetOptions options = options_for();
  options.faults = fleet::parse_fault_spec("meter:1.0");
  fleet::FleetEngine engine(options, dataset_);
  double max_residual = 0.0;
  engine.set_tick_observer([&max_residual](const fleet::FleetEngine& e,
                                           std::uint64_t,
                                           const auto&) {
    max_residual = std::max(max_residual, e.efficiency_residual_w());
  });
  engine.run(20);
  // Every tick bills from carried estimates while the simulator's true draw
  // moves on: power was billed that no meter saw.
  EXPECT_GT(max_residual, 1e-3);
  EXPECT_GT(engine.invariants().breaches(), 0u);

  const std::string dump = engine.metrics().to_prometheus();
  EXPECT_NE(
      dump.find("vmpower_invariant_breaches_total{invariant=\"efficiency\"}"),
      std::string::npos);
}

TEST_F(ResidualTest, KernelSelectionCountersExportPerKernel) {
  fleet::FleetEngine engine(options_for(), dataset_);
  engine.run(10);
  const std::string dump = engine.metrics().to_prometheus();
  // Every host tick dispatched to exactly one kernel; the demo fleet's two
  // identical idle-heavy VMs exercise the fast paths.
  EXPECT_NE(dump.find("vmpower_fleet_kernel_selected_total{kernel="),
            std::string::npos);
}

}  // namespace
}  // namespace vmp::obs
