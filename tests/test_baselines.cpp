#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "baselines/integrated_model.hpp"
#include "baselines/marginal.hpp"
#include "baselines/power_model.hpp"
#include "baselines/resource_usage.hpp"
#include "baselines/trainer.hpp"
#include "common/vm_config.hpp"
#include "sim/physical_machine.hpp"
#include "sim/runner.hpp"
#include "workload/synthetic.hpp"

namespace vmp::base {
namespace {

using common::StateVector;
using core::VmSample;

sim::MachineSpec quiet_spec() {
  sim::MachineSpec spec = sim::xeon_prototype();
  spec.meter_noise_sigma_w = 0.0;
  spec.meter_quantum_w = 0.0;
  spec.affinity_jitter = 0.0;
  return spec;
}

std::vector<VmPowerModel> paper_models() {
  // Hand-built Table IV-style models; tests of the trainer itself fit their
  // own below.
  std::vector<VmPowerModel> models(2);
  models[0].type = 0;
  models[0].type_name = "VM1";
  models[0].weights = {13.15, 0.0, 0.0, 0.0};
  models[1].type = 1;
  models[1].type_name = "VM2";
  models[1].weights = {22.53, 0.0, 0.0, 0.0};
  return models;
}

TEST(VmPowerModel, PredictIsLinearInState) {
  const auto models = paper_models();
  EXPECT_DOUBLE_EQ(models[0].predict(StateVector::cpu_only(1.0)), 13.15);
  EXPECT_DOUBLE_EQ(models[0].predict(StateVector::cpu_only(0.5)), 6.575);
  EXPECT_DOUBLE_EQ(models[0].predict(StateVector::zero()), 0.0);
  EXPECT_DOUBLE_EQ(models[0].cpu_coefficient(), 13.15);
}

TEST(ModelFor, FindsByTypeOrThrows) {
  const auto models = paper_models();
  EXPECT_EQ(model_for(models, 1).type_name, "VM2");
  EXPECT_THROW(model_for(models, 9), std::out_of_range);
}

TEST(Trainer, IsolationModelMatchesThreadPower) {
  TrainingOptions options;
  options.duration_s = 150.0;
  const VmPowerModel model =
      train_isolation_model(quiet_spec(), common::paper_vm_type(1), options);
  EXPECT_NEAR(model.cpu_coefficient(), 13.15, 0.1);
  EXPECT_EQ(model.type, common::paper_vm_type(1).type_id);
}

TEST(Trainer, MultiVcpuTypesAreSubLinear) {
  // Table IV's signature: coefficients grow sub-linearly in vCPUs because of
  // partial sibling packing.
  TrainingOptions options;
  options.duration_s = 150.0;
  const auto models =
      train_catalogue_models(quiet_spec(), common::paper_vm_catalogue(), options);
  ASSERT_EQ(models.size(), 4u);
  const double w1 = models[0].cpu_coefficient();
  EXPECT_LT(models[1].cpu_coefficient(), 2.0 * w1);
  EXPECT_LT(models[2].cpu_coefficient(), 4.0 * w1);
  EXPECT_LT(models[3].cpu_coefficient(), 8.0 * w1);
  EXPECT_GT(models[3].cpu_coefficient(), 6.0 * w1);
}

TEST(Trainer, OptionsValidation) {
  TrainingOptions options;
  options.duration_s = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.period_s = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(PowerModelEstimator, PureModelReadout) {
  PowerModelEstimator estimator(paper_models());
  const std::vector<VmSample> vms = {{0, 0, StateVector::cpu_only(1.0)},
                                     {1, 1, StateVector::cpu_only(0.5)}};
  // adjusted power is ignored by design.
  const auto phi = estimator.estimate(vms, 3.0);
  EXPECT_DOUBLE_EQ(phi[0], 13.15);
  EXPECT_DOUBLE_EQ(phi[1], 11.265);
}

TEST(PowerModelEstimator, ViolatesEfficiencyUnderContention) {
  // The Sec. III failure: two identical VMs at 100 % sum to 26.3 W by the
  // model while the machine only draws ~20 W.
  PowerModelEstimator estimator(paper_models());
  const std::vector<VmSample> vms = {{0, 0, StateVector::cpu_only(1.0)},
                                     {1, 0, StateVector::cpu_only(1.0)}};
  const double measured = 20.2;
  const auto phi = estimator.estimate(vms, measured);
  EXPECT_GT(phi[0] + phi[1], measured + 5.0);
}

TEST(PowerModelEstimator, Validation) {
  EXPECT_THROW(PowerModelEstimator({}), std::invalid_argument);
  PowerModelEstimator estimator(paper_models());
  EXPECT_THROW(estimator.estimate({}, 0.0), std::invalid_argument);
}

TEST(ResourceUsageEstimator, EfficientByConstruction) {
  ResourceUsageEstimator estimator(paper_models());
  const std::vector<VmSample> vms = {{0, 0, StateVector::cpu_only(1.0)},
                                     {1, 0, StateVector::cpu_only(1.0)}};
  const auto phi = estimator.estimate(vms, 20.2);
  EXPECT_NEAR(phi[0] + phi[1], 20.2, 1e-9);
  EXPECT_NEAR(phi[0], phi[1], 1e-9);
}

TEST(ResourceUsageEstimator, ProportionsMatchPowerModel) {
  // The paper's Fig. 12 observation: resource-usage allocation is a rescaled
  // power-model allocation.
  PowerModelEstimator pm(paper_models());
  ResourceUsageEstimator ru(paper_models());
  const std::vector<VmSample> vms = {{0, 0, StateVector::cpu_only(0.8)},
                                     {1, 1, StateVector::cpu_only(0.6)}};
  const auto pm_phi = pm.estimate(vms, 15.0);
  const auto ru_phi = ru.estimate(vms, 15.0);
  EXPECT_NEAR(pm_phi[0] / pm_phi[1], ru_phi[0] / ru_phi[1], 1e-9);
}

TEST(ResourceUsageEstimator, AllIdleSplitsEqually) {
  ResourceUsageEstimator estimator(paper_models());
  const std::vector<VmSample> vms = {{0, 0, StateVector::zero()},
                                     {1, 0, StateVector::zero()}};
  const auto phi = estimator.estimate(vms, 1.0);
  EXPECT_DOUBLE_EQ(phi[0], 0.5);
  EXPECT_DOUBLE_EQ(phi[1], 0.5);
}

TEST(ResourceUsageEstimator, Validation) {
  ResourceUsageEstimator estimator(paper_models());
  const std::vector<VmSample> vms = {{0, 0, StateVector::cpu_only(1.0)}};
  EXPECT_THROW(estimator.estimate(vms, -1.0), std::invalid_argument);
  EXPECT_THROW(estimator.estimate({}, 1.0), std::invalid_argument);
}

TEST(MarginalEstimator, OrderDependence) {
  sim::MachineSpec spec = quiet_spec();
  spec.pack_affinity = 1.0;
  spec.llc_contention_w = 0.0;
  const sim::CoalitionProbe probe(spec,
                                  {common::demo_c_vm(), common::demo_c_vm()});
  const std::vector<VmSample> vms = {{0, 0, StateVector::cpu_only(1.0)},
                                     {1, 0, StateVector::cpu_only(1.0)}};
  MarginalContributionEstimator first_then_second(probe, {0, 1});
  MarginalContributionEstimator second_then_first(probe, {1, 0});
  const auto a = first_then_second.estimate(vms, 0.0);
  const auto b = second_then_first.estimate(vms, 0.0);
  // The first arrival is charged 13.15, the second the contended remainder.
  EXPECT_NEAR(a[0], 13.15, 1e-9);
  EXPECT_NEAR(a[1], 13.15 * (1.0 - spec.smt_contention), 1e-9);
  EXPECT_NEAR(b[1], 13.15, 1e-9);
  EXPECT_NEAR(b[0], 13.15 * (1.0 - spec.smt_contention), 1e-9);
  // Either order is efficient (telescoping).
  EXPECT_NEAR(a[0] + a[1], b[0] + b[1], 1e-9);
}

TEST(MarginalEstimator, Validation) {
  const sim::CoalitionProbe probe(quiet_spec(), {common::demo_c_vm()});
  EXPECT_THROW(MarginalContributionEstimator(probe, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(MarginalContributionEstimator(probe, {1}),
               std::invalid_argument);
  MarginalContributionEstimator estimator(probe);
  const std::vector<VmSample> wrong = {{0, 0, StateVector::cpu_only(1.0)},
                                       {1, 0, StateVector::cpu_only(1.0)}};
  EXPECT_THROW(estimator.estimate(wrong, 0.0), std::invalid_argument);
}

TEST(IntegratedModel, RecoversSlopeAndIdle) {
  IntegratedTrainingOptions options;
  options.duration_s = 200.0;
  const IntegratedModel model =
      train_integrated_model(quiet_spec(), common::demo_c_vm(), 2, options);
  EXPECT_NEAR(model.idle_w, quiet_spec().idle_power_w, 1.0);
  EXPECT_GT(model.slope_w, 9.0);
  EXPECT_LT(model.slope_w, 14.0);
  EXPECT_DOUBLE_EQ(model.predict_total(0.0), model.idle_w);
}

TEST(IntegratedModel, LowErrorOnHeldOutRun) {
  // The Fig. 3 claim: ~2 % machine-level error.
  const sim::MachineSpec spec = sim::xeon_prototype();  // with noise/jitter
  IntegratedTrainingOptions options;
  options.duration_s = 300.0;
  const IntegratedModel model =
      train_integrated_model(spec, common::demo_c_vm(), 2, options);

  sim::PhysicalMachine machine(spec, 999);
  for (int i = 0; i < 2; ++i) {
    const auto id = machine.hypervisor().create_vm(
        common::demo_c_vm(), std::make_unique<wl::SyntheticRandomCpu>(500 + i));
    machine.hypervisor().start_vm(id);
  }
  const sim::ScenarioTrace trace = sim::run_scenario(machine, 200.0);
  EXPECT_LT(integrated_model_error(model, trace), 0.04);
}

TEST(IntegratedModel, Validation) {
  EXPECT_THROW(
      train_integrated_model(quiet_spec(), common::demo_c_vm(), 0, {}),
      std::invalid_argument);
  const IntegratedModel model{10.0, 138.0};
  sim::PhysicalMachine machine(quiet_spec(), 1);
  const sim::ScenarioTrace empty{};
  EXPECT_THROW((void)integrated_model_error(model, empty), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::base
