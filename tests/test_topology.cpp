#include "sim/cpu_topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::sim {
namespace {

TEST(CpuTopology, DimensionsAndCounts) {
  const CpuTopology t(2, 8, 2);
  EXPECT_EQ(t.sockets(), 2u);
  EXPECT_EQ(t.cores_per_socket(), 8u);
  EXPECT_EQ(t.threads_per_core(), 2u);
  EXPECT_EQ(t.physical_cores(), 16u);
  EXPECT_EQ(t.logical_cpus(), 32u);
}

TEST(CpuTopology, Validation) {
  EXPECT_THROW(CpuTopology(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(CpuTopology(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(CpuTopology(1, 1, 0), std::invalid_argument);
  EXPECT_THROW(CpuTopology(1, 1, 3), std::invalid_argument);
}

TEST(CpuTopology, CoreMajorLayout) {
  const CpuTopology t(1, 4, 2);
  EXPECT_EQ(t.core_of(0), 0u);
  EXPECT_EQ(t.core_of(1), 0u);
  EXPECT_EQ(t.core_of(2), 1u);
  EXPECT_EQ(t.core_of(7), 3u);
  EXPECT_THROW(t.core_of(8), std::out_of_range);
}

TEST(CpuTopology, SiblingPairsAreInvolutions) {
  const CpuTopology t(1, 8, 2);
  for (LogicalCpu cpu = 0; cpu < t.logical_cpus(); ++cpu) {
    const LogicalCpu sib = t.sibling_of(cpu);
    EXPECT_NE(sib, cpu);
    EXPECT_EQ(t.sibling_of(sib), cpu);
    EXPECT_EQ(t.core_of(sib), t.core_of(cpu));
  }
  EXPECT_THROW(t.sibling_of(16), std::out_of_range);
}

TEST(CpuTopology, SmtOffSiblingIsSelf) {
  const CpuTopology t(1, 4, 1);
  for (LogicalCpu cpu = 0; cpu < 4; ++cpu) EXPECT_EQ(t.sibling_of(cpu), cpu);
}

TEST(CpuTopology, FirstThreadOfCore) {
  const CpuTopology t(1, 4, 2);
  EXPECT_EQ(t.first_thread_of(0), 0u);
  EXPECT_EQ(t.first_thread_of(3), 6u);
  EXPECT_THROW(t.first_thread_of(4), std::out_of_range);
}

TEST(CpuTopology, Equality) {
  EXPECT_EQ(CpuTopology(1, 8, 2), CpuTopology(1, 8, 2));
  EXPECT_NE(CpuTopology(1, 8, 2), CpuTopology(1, 8, 1));
}

}  // namespace
}  // namespace vmp::sim
