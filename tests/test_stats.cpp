#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace vmp::util {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, VarianceUnbiased) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 4.571428571, 1e-8);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MinMaxThrowOnEmpty) {
  EXPECT_THROW(min_of({}), std::invalid_argument);
  EXPECT_THROW(max_of({}), std::invalid_argument);
  const std::vector<double> xs = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 1.0);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(9.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(10.0, 10.0), 0.0);
  // Floor guards near-zero truths.
  EXPECT_DOUBLE_EQ(relative_error(1.0, 0.0, 2.0), 0.5);
}

TEST(Stats, EcdfAndFractionBelow) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ecdf(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(xs, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_below(xs, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below({}, 1.0), 0.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  Rng rng(3);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_of(xs));
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(4);
  RunningStats a, b, combined;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    (i < 200 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Summary, FieldsConsistent) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace vmp::util
