#include "core/collector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/vm_config.hpp"

namespace vmp::core {
namespace {

sim::MachineSpec quiet_spec() {
  sim::MachineSpec spec = sim::xeon_prototype();
  spec.meter_noise_sigma_w = 0.0;
  spec.meter_quantum_w = 0.0;
  spec.affinity_jitter = 0.0;
  return spec;
}

TEST(Collector, OptionsValidation) {
  CollectionOptions options;
  options.duration_s = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.period_s = -1.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = {};
  options.resolution = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  EXPECT_NO_THROW(CollectionOptions{}.validate());
}

TEST(Collector, EmptyFleetRejected) {
  CollectionOptions options;
  options.duration_s = 10.0;
  EXPECT_THROW(collect_offline_dataset(quiet_spec(), {}, options),
               std::invalid_argument);
}

TEST(Collector, TraversesAllNonEmptyCombos) {
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {catalogue[0], catalogue[1]};
  CollectionOptions options;
  options.duration_s = 30.0;
  const OfflineDataset dataset =
      collect_offline_dataset(quiet_spec(), fleet, options);
  EXPECT_EQ(dataset.universe.size(), 2u);
  // 2^2 - 1 = 3 non-empty combos, each with 30 samples.
  EXPECT_EQ(dataset.table.combos().size(), 3u);
  EXPECT_EQ(dataset.table.total_samples(), 90u);
  for (VhcComboMask combo = 1; combo < 4; ++combo)
    EXPECT_TRUE(dataset.approximation.has_combo(combo)) << combo;
}

TEST(Collector, FittedWeightsNearIsolationCoefficient) {
  // A single VM1-type VHC trained alone: the combo-{0} weight is the thread
  // power (13.15 W at full utilization for a 1-vCPU VM).
  const std::vector<common::VmConfig> fleet = {common::paper_vm_type(1)};
  CollectionOptions options;
  options.duration_s = 200.0;
  const OfflineDataset dataset =
      collect_offline_dataset(quiet_spec(), fleet, options);
  EXPECT_NEAR(dataset.approximation.weights(0b1)[0], 13.15, 0.15);
}

TEST(Collector, HomogeneousPairWeightReflectsContention) {
  // Two VM1s trained together: the per-unit weight drops below 13.15 because
  // the pack fraction of their co-schedule saves SMT power.
  const std::vector<common::VmConfig> fleet = {common::paper_vm_type(1),
                                               common::paper_vm_type(1)};
  CollectionOptions options;
  options.duration_s = 200.0;
  const OfflineDataset dataset =
      collect_offline_dataset(quiet_spec(), fleet, options);
  const double w = dataset.approximation.weights(0b1)[0];
  EXPECT_LT(w, 13.15);
  EXPECT_GT(w, 9.0);
}

TEST(Collector, ExerciseAllComponentsFitsMemoryWeight) {
  const std::vector<common::VmConfig> fleet = {common::paper_vm_type(3)};
  CollectionOptions options;
  options.duration_s = 300.0;
  options.exercise_all_components = true;
  const OfflineDataset dataset =
      collect_offline_dataset(quiet_spec(), fleet, options);
  const auto w = dataset.approximation.weights(0b1);
  EXPECT_GT(w[0], 10.0);  // cpu weight
  // VM3 holds 8 GB of the 32 GB host: full residency draws 12 W * 0.25 = 3 W.
  EXPECT_NEAR(w[1], 3.0, 0.6);
  EXPECT_GT(w[2], 0.5);  // disk weight present too
}

TEST(Collector, CpuOnlySyntheticLeavesOtherWeightsZero) {
  const std::vector<common::VmConfig> fleet = {common::paper_vm_type(1)};
  CollectionOptions options;
  options.duration_s = 100.0;
  const OfflineDataset dataset =
      collect_offline_dataset(quiet_spec(), fleet, options);
  const auto w = dataset.approximation.weights(0b1);
  EXPECT_NEAR(w[1], 0.0, 1e-6);
  EXPECT_NEAR(w[2], 0.0, 1e-6);
}

TEST(Collector, DeterministicForFixedSeed) {
  const std::vector<common::VmConfig> fleet = {common::paper_vm_type(1)};
  CollectionOptions options;
  options.duration_s = 50.0;
  options.seed = 77;
  const auto a = collect_offline_dataset(quiet_spec(), fleet, options);
  const auto b = collect_offline_dataset(quiet_spec(), fleet, options);
  EXPECT_DOUBLE_EQ(a.approximation.weights(0b1)[0],
                   b.approximation.weights(0b1)[0]);
}

}  // namespace
}  // namespace vmp::core
