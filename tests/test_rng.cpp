#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace vmp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, NearbySeedsDecorrelated) {
  // SplitMix64 seeding must break the correlation of consecutive seeds.
  Rng a(1000), b(1001);
  double matching_bits = 0;
  for (int i = 0; i < 64; ++i) {
    const auto x = a(), y = b();
    matching_bits += std::popcount(x ^ y);
  }
  // Expect ~32 differing bits per word on average.
  EXPECT_NEAR(matching_bits / 64.0, 32.0, 6.0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.5, 7.5);
    ASSERT_GE(u, 2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_u64(10)];
  for (int c : counts) EXPECT_NEAR(c, draws / 10, draws / 10 / 5);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(12);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(14);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 50000.0, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, ShuffleUniformFirstPosition) {
  Rng rng(16);
  std::vector<int> counts(5, 0);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<int> v = {0, 1, 2, 3, 4};
    rng.shuffle(v);
    ++counts[v[0]];
  }
  for (int c : counts) EXPECT_NEAR(c, 4000, 450);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  // Regression pin: the seeding recipe must not silently change, or every
  // recorded experiment would shift.
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

}  // namespace
}  // namespace vmp::util
