#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/primitives.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"
#include "workload/user_pattern.hpp"

namespace vmp::wl {
namespace {

using common::Component;
using common::StateVector;

TEST(IdleWorkload, AlwaysZero) {
  IdleWorkload idle;
  EXPECT_EQ(idle.demand(0.0), StateVector::zero());
  EXPECT_EQ(idle.demand(1e6), StateVector::zero());
  EXPECT_DOUBLE_EQ(idle.power_intensity(), 1.0);
}

TEST(ConstantWorkload, HoldsStateAndValidates) {
  ConstantWorkload w(StateVector::cpu_only(0.6), 1.1);
  EXPECT_DOUBLE_EQ(w.demand(0.0).cpu(), 0.6);
  EXPECT_DOUBLE_EQ(w.demand(999.0).cpu(), 0.6);
  EXPECT_DOUBLE_EQ(w.power_intensity(), 1.1);
  EXPECT_THROW(ConstantWorkload(StateVector::cpu_only(1.5)),
               std::invalid_argument);
  EXPECT_THROW(ConstantWorkload(StateVector::cpu_only(0.5), 0.0),
               std::invalid_argument);
}

TEST(StepWorkload, PhasesInOrder) {
  StepWorkload w({{10.0, StateVector::cpu_only(0.2)},
                  {10.0, StateVector::cpu_only(0.8)}});
  EXPECT_DOUBLE_EQ(w.demand(0.0).cpu(), 0.2);
  EXPECT_DOUBLE_EQ(w.demand(9.99).cpu(), 0.2);
  EXPECT_DOUBLE_EQ(w.demand(10.0).cpu(), 0.8);
  EXPECT_DOUBLE_EQ(w.demand(50.0).cpu(), 0.8);  // holds last phase
  EXPECT_DOUBLE_EQ(w.total_duration(), 20.0);
}

TEST(StepWorkload, Looping) {
  StepWorkload w({{5.0, StateVector::cpu_only(0.1)},
                  {5.0, StateVector::cpu_only(0.9)}},
                 /*loop=*/true);
  EXPECT_DOUBLE_EQ(w.demand(2.0).cpu(), 0.1);
  EXPECT_DOUBLE_EQ(w.demand(7.0).cpu(), 0.9);
  EXPECT_DOUBLE_EQ(w.demand(12.0).cpu(), 0.1);  // wrapped
}

TEST(StepWorkload, Validation) {
  EXPECT_THROW(StepWorkload({}), std::invalid_argument);
  EXPECT_THROW(StepWorkload({{0.0, StateVector::cpu_only(0.5)}}),
               std::invalid_argument);
  EXPECT_THROW(StepWorkload({{1.0, StateVector::cpu_only(2.0)}}),
               std::invalid_argument);
}

TEST(StepWorkload, NegativeTimeClampsToStart) {
  StepWorkload w({{5.0, StateVector::cpu_only(0.3)}});
  EXPECT_DOUBLE_EQ(w.demand(-1.0).cpu(), 0.3);
}

TEST(RampWorkload, LinearThenHold) {
  RampWorkload w(0.0, 1.0, 10.0);
  EXPECT_DOUBLE_EQ(w.demand(0.0).cpu(), 0.0);
  EXPECT_DOUBLE_EQ(w.demand(5.0).cpu(), 0.5);
  EXPECT_DOUBLE_EQ(w.demand(10.0).cpu(), 1.0);
  EXPECT_DOUBLE_EQ(w.demand(20.0).cpu(), 1.0);
  EXPECT_THROW(RampWorkload(0.0, 1.5, 10.0), std::invalid_argument);
  EXPECT_THROW(RampWorkload(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(SineWorkload, OscillatesAndClamps) {
  SineWorkload w(0.9, 0.5, 100.0);  // peaks would exceed 1.0 -> clamped
  double lo = 1.0, hi = 0.0;
  for (double t = 0.0; t < 100.0; t += 1.0) {
    const double u = w.demand(t).cpu();
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.45);
  EXPECT_DOUBLE_EQ(hi, 1.0);
  EXPECT_THROW(SineWorkload(0.5, 0.1, 0.0), std::invalid_argument);
}

TEST(RandomWalkWorkload, StaysInBoundsAndMeanReverts) {
  RandomWalkWorkload w(0.5, 0.05, 0.2, /*seed=*/5);
  double sum = 0.0;
  int n = 0;
  for (double t = 0.0; t < 2000.0; t += 1.0) {
    const double u = w.demand(t).cpu();
    ASSERT_GE(u, 0.0);
    ASSERT_LE(u, 1.0);
    sum += u;
    ++n;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.1);
}

TEST(RandomWalkWorkload, Validation) {
  EXPECT_THROW(RandomWalkWorkload(1.5, 0.1, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(RandomWalkWorkload(0.5, -0.1, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(RandomWalkWorkload(0.5, 0.1, 1.5, 1), std::invalid_argument);
}

TEST(SyntheticRandomCpu, DwellsAndRedraws) {
  SyntheticRandomCpu w(/*seed=*/3, /*dwell_s=*/5.0);
  const double u0 = w.demand(0.0).cpu();
  EXPECT_DOUBLE_EQ(w.demand(4.9).cpu(), u0);  // same dwell epoch
  // Across many epochs the level must change and cover the range.
  double lo = 1.0, hi = 0.0;
  for (double t = 0.0; t < 500.0; t += 5.0) {
    const double u = w.demand(t).cpu();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.2);
  EXPECT_GT(hi, 0.8);
}

TEST(SyntheticRandomCpu, RangeRespected) {
  SyntheticRandomCpu w(/*seed=*/4, 1.0, 0.3, 0.6);
  for (double t = 0.0; t < 100.0; t += 1.0) {
    const double u = w.demand(t).cpu();
    ASSERT_GE(u, 0.3);
    ASSERT_LE(u, 0.6);
  }
  EXPECT_THROW(SyntheticRandomCpu(1, 0.0), std::invalid_argument);
  EXPECT_THROW(SyntheticRandomCpu(1, 1.0, 0.8, 0.2), std::invalid_argument);
  EXPECT_THROW(SyntheticRandomCpu(1, 1.0, -0.1, 0.5), std::invalid_argument);
}

TEST(SyntheticRandomState, RandomizesAllComponents) {
  SyntheticRandomState w(/*seed=*/6, 1.0);
  double max_mem = 0.0, max_disk = 0.0;
  for (double t = 0.0; t < 200.0; t += 1.0) {
    const StateVector s = w.demand(t);
    ASSERT_TRUE(s.is_normalized());
    max_mem = std::max(max_mem, s.memory());
    max_disk = std::max(max_disk, s.disk_io());
  }
  EXPECT_GT(max_mem, 0.5);
  EXPECT_GT(max_disk, 0.2);
}

TEST(BcFloatLoop, FullCpuOnly) {
  BcFloatLoop w;
  const StateVector s = w.demand(123.0);
  EXPECT_DOUBLE_EQ(s.cpu(), 1.0);
  EXPECT_DOUBLE_EQ(s.memory(), 0.0);
  EXPECT_DOUBLE_EQ(w.power_intensity(), 1.0);
}

TEST(UserPatterns, UserBUsesOneThirdMoreCpu) {
  auto a = make_user_a_pattern();
  auto b = make_user_b_pattern();
  double sum_a = 0.0, sum_b = 0.0;
  const double horizon = 5.0 * kUserPatternPhaseSeconds;
  for (double t = 0.0; t < horizon; t += 10.0) {
    sum_a += a->demand(t).cpu();
    sum_b += b->demand(t).cpu();
  }
  EXPECT_NEAR(sum_b / sum_a, 4.0 / 3.0, 0.02);  // the paper's "33% more"
}

TEST(TraceWorkload, ReplayAndHold) {
  TraceWorkload w({StateVector::cpu_only(0.1), StateVector::cpu_only(0.2)}, 1.0);
  EXPECT_DOUBLE_EQ(w.demand(0.5).cpu(), 0.1);
  EXPECT_DOUBLE_EQ(w.demand(1.5).cpu(), 0.2);
  EXPECT_DOUBLE_EQ(w.demand(99.0).cpu(), 0.2);
  EXPECT_EQ(w.length(), 2u);
}

TEST(TraceWorkload, Looping) {
  TraceWorkload w({StateVector::cpu_only(0.1), StateVector::cpu_only(0.2)}, 1.0,
                  /*loop=*/true);
  EXPECT_DOUBLE_EQ(w.demand(2.0).cpu(), 0.1);
  EXPECT_DOUBLE_EQ(w.demand(3.0).cpu(), 0.2);
}

TEST(TraceWorkload, Validation) {
  EXPECT_THROW(TraceWorkload({}, 1.0), std::invalid_argument);
  EXPECT_THROW(TraceWorkload({StateVector::zero()}, 0.0), std::invalid_argument);
  EXPECT_THROW(TraceWorkload({StateVector::zero()}, 1.0, false, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vmp::wl
